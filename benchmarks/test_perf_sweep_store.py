"""Benchmarks of the persistent sweep store: warm-resume speedup + backends.

``test_perf_sweep_store`` runs a small seed-replicated emulation sweep
twice against the same JSON-lines store (in a pytest tmp dir, so CI stays
hermetic): the cold run computes and persists every (point, seed) replica;
the warm run — with the in-process cache cleared, as after a process
restart — must serve every replica from the store without recomputing
anything, at least ``MIN_SPEEDUP`` times faster.

``test_perf_store_backends`` compares the jsonl / sharded / sqlite
backends head-to-head on ~2000 synthetic records: cold write wall time,
warm (re)load wall time, and axis-query (``select``) latency.  Results are
correctness-asserted (identical query answers on every backend) but only
the roundtrip is hard-asserted — relative backend speeds are recorded, not
gated, because they are hardware- and filesystem-dependent.

Both tests read-modify-write ``benchmarks/BENCH_sweep_store.json`` (each
owns its own keys), so running either alone never clobbers the other's
numbers.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.experiments import sweep
from repro.experiments.store import SweepStore
from repro.metrics.aggregate import AggregateMetrics

RESULTS_PATH = Path(__file__).parent / "BENCH_sweep_store.json"


def _update_results(payload: dict) -> None:
    """Merge this test's keys into the shared BENCH json (read-modify-write)."""
    existing: dict = {}
    if RESULTS_PATH.exists():
        try:
            existing = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            existing = {}
    existing.update(payload)
    RESULTS_PATH.write_text(json.dumps(existing, indent=2) + "\n")

GRID = dict(
    mixes=["BBRv1"],
    buffers_bdp=[1.0, 2.0],
    disciplines=["droptail"],
    substrate="emulation",
    duration_s=1.0,
)
SEEDS = 3
MIN_SPEEDUP = 10.0


def test_perf_sweep_store(benchmark, tmp_path):
    store_path = tmp_path / "sweep_store.jsonl"
    n_replicas = len(GRID["buffers_bdp"]) * SEEDS

    sweep.clear_cache()
    cold_store = SweepStore(store_path)
    start = time.perf_counter()
    cold_points = sweep.run_sweep(seeds=SEEDS, store=cold_store, **GRID)
    cold_s = time.perf_counter() - start
    assert len(cold_store) == n_replicas

    # Clear the in-process cache to model a fresh process; only the store
    # may serve the warm run.
    sweep.clear_cache()
    warm_store = SweepStore(store_path)
    start = time.perf_counter()
    warm_points = benchmark.pedantic(
        lambda: sweep.run_sweep(seeds=SEEDS, store=warm_store, **GRID),
        rounds=1,
        iterations=1,
    )
    warm_s = time.perf_counter() - start

    assert warm_store.hits == n_replicas, "warm run must hit the store for all points"
    assert warm_store.misses == 0, "warm run recomputed at least one point"
    assert [p.summary for p in warm_points] == [p.summary for p in cold_points]

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    results = {
        "grid": {
            "mixes": GRID["mixes"],
            "buffers_bdp": GRID["buffers_bdp"],
            "disciplines": GRID["disciplines"],
            "substrate": GRID["substrate"],
            "duration_s": GRID["duration_s"],
            "seeds": SEEDS,
            "replicas": n_replicas,
        },
        "cold_wall_s": round(cold_s, 4),
        "warm_wall_s": round(warm_s, 4),
        "speedup": round(speedup, 1),
        "warm_store_hits": warm_store.hits,
        "warm_store_misses": warm_store.misses,
        "issue_target_speedup": MIN_SPEEDUP,
    }
    _update_results(results)

    print(f"\nSweep store cold vs warm ({n_replicas} emulation replicas):")
    print(f"  cold (compute + persist)  {cold_s:8.3f} s")
    print(f"  warm (store only)         {warm_s:8.3f} s")
    print(f"  speedup                   {speedup:8.1f}x")

    assert speedup >= MIN_SPEEDUP, (
        f"warm sweep only {speedup:.1f}x faster than cold (expected >= {MIN_SPEEDUP}x)"
    )


# --- Backend comparison: jsonl vs sharded vs sqlite ------------------------

N_ROWS = 2000
BACKEND_KINDS = ("jsonl", "sharded", "sqlite")
QUERY_REPEATS = 20


def _synthetic_rows() -> list[tuple[str, AggregateMetrics, dict]]:
    mixes = ["BBRv1", "BBRv2", "BBRv1/CUBIC", "BBRv2/CUBIC"]
    buffers = [0.25, 0.5, 1.0, 4.0, 16.0]
    rows = []
    for i in range(N_ROWS):
        meta = {
            "mix": mixes[i % len(mixes)],
            "buffer_bdp": buffers[i % len(buffers)],
            "discipline": "droptail" if i % 2 else "red",
            "substrate": "fluid",
            "seed": i % 100,
        }
        metrics = AggregateMetrics(
            jain_fairness=(i % 97) / 97,
            loss_percent=(i % 13) / 13,
            buffer_occupancy_percent=float(i % 50),
            utilization_percent=50.0 + (i % 50),
            jitter_ms=float(i % 7),
        )
        rows.append((f"bench-key-{i:05d}", metrics, meta))
    return rows


def test_perf_store_backends(benchmark, tmp_path):
    rows = _synthetic_rows()
    paths = {
        "jsonl": tmp_path / "bench.jsonl",
        "sharded": tmp_path / "bench.shards",
        "sqlite": tmp_path / "bench.sqlite",
    }
    per_backend: dict[str, dict] = {}
    query_answers: dict[str, int] = {}

    for kind in BACKEND_KINDS:
        # Cold write: N_ROWS puts to an empty store (fsync off so the
        # numbers compare append strategies, not tmpfs flush behaviour).
        store = SweepStore(paths[kind], backend=kind, fsync=False)
        start = time.perf_counter()
        for key, metrics, meta in rows:
            store.put(key, metrics, meta=meta)
        write_s = time.perf_counter() - start
        store.close()

        # Warm load: reopen replays/queries the persisted records.
        start = time.perf_counter()
        warm = SweepStore(paths[kind], backend=kind, fsync=False)
        n_loaded = len(warm)
        load_s = time.perf_counter() - start
        assert n_loaded == N_ROWS

        # Axis query latency: one indexed axis + one equality filter.
        start = time.perf_counter()
        for _ in range(QUERY_REPEATS):
            hits = warm.select(mix="BBRv1", discipline="red")
        query_s = (time.perf_counter() - start) / QUERY_REPEATS
        query_answers[kind] = len(hits)
        warm.close()

        per_backend[kind] = {
            "cold_write_s": round(write_s, 4),
            "warm_load_s": round(load_s, 4),
            "axis_query_ms": round(query_s * 1e3, 3),
        }

    # Every backend must answer the axis query identically.
    assert len(set(query_answers.values())) == 1, query_answers

    benchmark.pedantic(
        lambda: SweepStore(paths["sqlite"], backend="sqlite").select(mix="BBRv1"),
        rounds=3,
        iterations=1,
    )

    _update_results(
        {
            "backends": {
                "rows": N_ROWS,
                "query": {"mix": "BBRv1", "discipline": "red", "hits": query_answers["jsonl"]},
                **per_backend,
            }
        }
    )

    print(f"\nStore backends ({N_ROWS} synthetic records):")
    for kind in BACKEND_KINDS:
        stats = per_backend[kind]
        print(
            f"  {kind:8s} write {stats['cold_write_s']:7.3f} s   "
            f"load {stats['warm_load_s']:7.3f} s   "
            f"query {stats['axis_query_ms']:7.3f} ms"
        )

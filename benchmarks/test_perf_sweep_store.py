"""Benchmark of the persistent sweep store: cold vs. warm campaign wall time.

Runs a small seed-replicated emulation sweep twice against the same
JSON-lines store (in a pytest tmp dir, so CI stays hermetic): the cold run
computes and persists every (point, seed) replica; the warm run — with the
in-process cache cleared, as after a process restart — must serve every
replica from the store without recomputing anything.  Records both wall
times and the speedup in ``benchmarks/BENCH_sweep_store.json`` and asserts

* the warm run hits the store for *all* points (zero recomputation), and
* the warm run is at least 10x faster than the cold one (the acceptance
  floor of the campaign subsystem; measured speedups are orders of
  magnitude larger because a warm point is one dict lookup).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.experiments import sweep
from repro.experiments.store import SweepStore

RESULTS_PATH = Path(__file__).parent / "BENCH_sweep_store.json"

GRID = dict(
    mixes=["BBRv1"],
    buffers_bdp=[1.0, 2.0],
    disciplines=["droptail"],
    substrate="emulation",
    duration_s=1.0,
)
SEEDS = 3
MIN_SPEEDUP = 10.0


def test_perf_sweep_store(benchmark, tmp_path):
    store_path = tmp_path / "sweep_store.jsonl"
    n_replicas = len(GRID["buffers_bdp"]) * SEEDS

    sweep.clear_cache()
    cold_store = SweepStore(store_path)
    start = time.perf_counter()
    cold_points = sweep.run_sweep(seeds=SEEDS, store=cold_store, **GRID)
    cold_s = time.perf_counter() - start
    assert len(cold_store) == n_replicas

    # Clear the in-process cache to model a fresh process; only the store
    # may serve the warm run.
    sweep.clear_cache()
    warm_store = SweepStore(store_path)
    start = time.perf_counter()
    warm_points = benchmark.pedantic(
        lambda: sweep.run_sweep(seeds=SEEDS, store=warm_store, **GRID),
        rounds=1,
        iterations=1,
    )
    warm_s = time.perf_counter() - start

    assert warm_store.hits == n_replicas, "warm run must hit the store for all points"
    assert warm_store.misses == 0, "warm run recomputed at least one point"
    assert [p.summary for p in warm_points] == [p.summary for p in cold_points]

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    results = {
        "grid": {
            "mixes": GRID["mixes"],
            "buffers_bdp": GRID["buffers_bdp"],
            "disciplines": GRID["disciplines"],
            "substrate": GRID["substrate"],
            "duration_s": GRID["duration_s"],
            "seeds": SEEDS,
            "replicas": n_replicas,
        },
        "cold_wall_s": round(cold_s, 4),
        "warm_wall_s": round(warm_s, 4),
        "speedup": round(speedup, 1),
        "warm_store_hits": warm_store.hits,
        "warm_store_misses": warm_store.misses,
        "issue_target_speedup": MIN_SPEEDUP,
    }
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")

    print(f"\nSweep store cold vs warm ({n_replicas} emulation replicas):")
    print(f"  cold (compute + persist)  {cold_s:8.3f} s")
    print(f"  warm (store only)         {warm_s:8.3f} s")
    print(f"  speedup                   {speedup:8.1f}x")

    assert speedup >= MIN_SPEEDUP, (
        f"warm sweep only {speedup:.1f}x faster than cold (expected >= {MIN_SPEEDUP}x)"
    )

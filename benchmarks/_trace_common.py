"""Shared printing/assertions for the single-flow trace-validation benches."""

from __future__ import annotations


def print_trace_figure(name: str, result: dict) -> None:
    print(f"\n{name} — single-flow trace validation ({result['cca']})")
    for discipline, per_substrate in result.items():
        if discipline == "cca":
            continue
        for substrate, data in per_substrate.items():
            print(
                f"  [{discipline:8s} | {substrate:9s}] mean rate={data['mean_rate_pct']:6.1f}%  "
                f"mean queue={data['mean_queue_pct']:5.1f}%  "
                f"loss={data['loss_pct']:5.2f}%  util={data['utilization_pct']:5.1f}%"
            )

"""Figure 05: bbr2 single-flow trace validation (fluid model vs. emulator)."""

from __future__ import annotations

from repro.experiments import figures

from conftest import BENCH_DT, TRACE_DURATION, run_once
from _trace_common import print_trace_figure


def test_fig05_bbr2_trace(benchmark):
    result = run_once(
        benchmark,
        figures.figure_5,
        duration_s=TRACE_DURATION,
        dt=BENCH_DT,
    )
    print_trace_figure("Figure 05", result)
    for discipline in ("droptail", "red"):
        for substrate in ("fluid", "emulation"):
            data = result[discipline][substrate]
            assert 0.0 <= data["loss_pct"] <= 100.0
            if substrate == "fluid":
                # The fluid model (the paper's contribution) must keep the
                # link busy; the emulator's RED queue has no minimum drop
                # threshold and can collapse loss-sensitive single flows,
                # which is a substrate artifact (see EXPERIMENTS.md).
                assert data["utilization_pct"] > 20.0

"""Benchmark of ``--prune-analytic`` grid pruning: cold vs pruned wall time.

The grid deliberately stacks several buffer sizes above the pruner's
provable never-binds threshold (about 52 BDP for the standard 10-flow
BBRv1 mix: ``PRUNE_HEADROOM * C * (2 * sum(d_i) + (2N - 1) * max(d_i))``
packets): with droptail FIFO and a buffer the queue provably never
reaches, those points share one trajectory, so the pruner simulates only
the smallest such buffer and materialises the rest as store aliases with
rescaled occupancy.

The cold run simulates every grid point; the pruned run must simulate
exactly ``n_distinct`` points, alias the rest, and produce identical
metrics (up to the occupancy renormalisation).  Both runs use the
process-pool executor (``workers=4``) — the fluid lockstep batcher
amortises per-point cost so aggressively that pruning barely shows up on
it, whereas on the pooled path wall time tracks the number of simulated
points.

Results land in ``benchmarks/BENCH_analysis.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.experiments import sweep
from repro.experiments.store import SweepStore

RESULTS_PATH = Path(__file__).parent / "BENCH_analysis.json"

#: 1.0 binds; everything from 55 up is provably slack (threshold ~52.14 BDP),
#: so the pruned run simulates {1.0, 55.0} and aliases the remaining six.
BUFFERS_BDP = [1.0, 55.0, 70.0, 85.0, 100.0, 115.0, 130.0, 145.0]
GRID = dict(
    mixes=["BBRv1"],
    disciplines=["droptail"],
    substrate="fluid",
    duration_s=5.0,
    dt=1e-3,
    workers=4,
)
N_DISTINCT = 2
MIN_SPEEDUP = 1.3


def _update_results(payload: dict) -> None:
    """Merge this test's keys into the shared BENCH json (read-modify-write)."""
    existing: dict = {}
    if RESULTS_PATH.exists():
        try:
            existing = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            existing = {}
    existing.update(payload)
    RESULTS_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def test_perf_prune_analytic(benchmark, tmp_path):
    sweep.clear_cache()
    cold_store = SweepStore(tmp_path / "cold.jsonl")
    start = time.perf_counter()
    cold_points = sweep.run_sweep(
        buffers_bdp=BUFFERS_BDP, store=cold_store, **GRID
    )
    cold_s = time.perf_counter() - start
    assert len(cold_store) == len(BUFFERS_BDP)
    assert all("pruned" not in r["meta"] for r in cold_store.select())

    sweep.clear_cache()
    pruned_store = SweepStore(tmp_path / "pruned.jsonl")
    start = time.perf_counter()
    pruned_points = benchmark.pedantic(
        lambda: sweep.run_sweep(
            buffers_bdp=BUFFERS_BDP,
            store=pruned_store,
            prune_analytic=True,
            **GRID,
        ),
        rounds=1,
        iterations=1,
    )
    pruned_s = time.perf_counter() - start

    # Every grid point is answered; only N_DISTINCT were simulated.
    assert len(pruned_store) == len(BUFFERS_BDP)
    aliases = [r for r in pruned_store.select() if "pruned" in r["meta"]]
    assert len(aliases) == len(BUFFERS_BDP) - N_DISTINCT
    assert {a["meta"]["pruned"]["primary_buffer_bdp"] for a in aliases} == {55.0}

    # Aliased points carry the primary's metrics, occupancy renormalised.
    cold_by_buffer = {p.buffer_bdp: p.metrics for p in cold_points}
    for point in pruned_points:
        cold_metrics = cold_by_buffer[point.buffer_bdp]
        assert point.metrics.utilization_percent == pytest.approx(
            cold_metrics.utilization_percent, abs=1e-6
        )
        assert point.metrics.loss_percent == pytest.approx(
            cold_metrics.loss_percent, abs=1e-9
        )

    speedup = cold_s / pruned_s if pruned_s > 0 else float("inf")
    _update_results(
        {
            "grid": {
                "mixes": GRID["mixes"],
                "buffers_bdp": BUFFERS_BDP,
                "disciplines": GRID["disciplines"],
                "substrate": GRID["substrate"],
                "duration_s": GRID["duration_s"],
                "dt": GRID["dt"],
                "workers": GRID["workers"],
            },
            "points_total": len(BUFFERS_BDP),
            "points_pruned": len(aliases),
            "points_simulated": N_DISTINCT,
            "cold_wall_s": round(cold_s, 4),
            "pruned_wall_s": round(pruned_s, 4),
            "speedup": round(speedup, 2),
            "issue_target_speedup": MIN_SPEEDUP,
        }
    )

    print(f"\nAnalytic grid pruning ({len(BUFFERS_BDP)} fluid points, workers=4):")
    print(f"  cold (simulate all)        {cold_s:8.3f} s")
    print(f"  pruned (simulate {N_DISTINCT}, alias {len(aliases)})  {pruned_s:8.3f} s")
    print(f"  speedup                    {speedup:8.2f}x")

    assert speedup >= MIN_SPEEDUP, (
        f"pruned sweep only {speedup:.2f}x faster than cold (expected >= {MIN_SPEEDUP}x)"
    )

"""Micro-benchmark of the multi-bottleneck topology subsystem.

Runs a 3-hop parking lot (10 long flows + 1 cross flow per hop) on both
substrates and records the throughput in
``benchmarks/BENCH_perf_topology.json`` so future PRs can track the cost of
the topology generalisation:

* fluid: integrator steps/second of the *attenuated* arrival pipeline
  (upstream loss/capacity attenuation + effective-bottleneck Eq. 17, the
  default), the unattenuated PR-4 vectorized pipeline for the attenuation
  cost, and the scalar reference for the vectorization ratio,
* emulation: sent packets/second across the 3-link chain (every packet now
  crosses three queue admissions and three fused delay-line hops).

The attenuation guard-rail asserts the corrected pipeline costs at most
25 % versus the unattenuated vectorized baseline.  The vectorized/scalar
fluid equivalence is re-asserted on the benchmarked (attenuated) runs,
mirroring ``benchmarks/test_perf_fluid_step.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core import FluidSimulator
from repro.emulation import EmulationRunner
from repro.experiments.scenarios import parking_lot_scenario

from conftest import BENCH_DT, run_once

RESULTS_PATH = Path(__file__).parent / "BENCH_perf_topology.json"

FLUID_SECONDS = 0.5
EMULATION_SECONDS = 3.0
HOPS = 3
CROSS_FLOWS = 1


def _config(duration_s: float):
    return parking_lot_scenario(
        "BBRv1",
        hops=HOPS,
        cross_flows=CROSS_FLOWS,
        duration_s=duration_s,
        dt=BENCH_DT,
    )


def _measure_fluid(config, vectorized: bool, attenuate: bool = True):
    simulator = FluidSimulator(
        config, vectorized=vectorized, attenuate_arrivals=attenuate
    )
    start = time.perf_counter()
    trace = simulator.run()
    elapsed = time.perf_counter() - start
    steps = int(round(config.duration_s / config.fluid.dt)) + 1
    return steps / elapsed, trace


def _interleaved_best(n, config):
    """Best-of-``n`` attenuated and unattenuated vectorized runs, interleaved.

    The attenuation-cost guard compares a ratio; interleaving the two
    measurements makes a transient machine slowdown hit both sides instead
    of skewing one, and best-of-``n`` damps scheduler noise.
    """
    best_att = best_base = None
    for _ in range(n):
        att_sps, att_trace = _measure_fluid(config, vectorized=True)
        base_sps, _ = _measure_fluid(config, vectorized=True, attenuate=False)
        if best_att is None or att_sps > best_att[0]:
            best_att = (att_sps, att_trace)
        best_base = base_sps if best_base is None else max(best_base, base_sps)
    return best_att[0], best_att[1], best_base


def test_perf_topology(benchmark):
    fluid_config = _config(FLUID_SECONDS)
    scalar_sps, scalar_trace = _measure_fluid(fluid_config, vectorized=False)
    vector_sps, vector_trace, baseline_sps = run_once(
        benchmark, lambda: _interleaved_best(3, fluid_config)
    )
    for fa, fb in zip(scalar_trace.flows, vector_trace.flows, strict=True):
        np.testing.assert_allclose(fa.rate, fb.rate, rtol=1e-9, atol=1e-9)
    for la, lb in zip(scalar_trace.links, vector_trace.links, strict=True):
        np.testing.assert_allclose(la.queue, lb.queue, rtol=1e-9, atol=1e-9)

    emu_config = _config(EMULATION_SECONDS)
    runner = EmulationRunner(emu_config)
    start = time.perf_counter()
    runner.run()
    emu_elapsed = time.perf_counter() - start
    sent = sum(s.sent_count for s in runner.senders.values())
    sent_pkts_per_s = sent / emu_elapsed

    results = {
        "topology": {
            "preset": "parking-lot",
            "hops": HOPS,
            "cross_flows_per_hop": CROSS_FLOWS,
            "flows": fluid_config.num_flows,
        },
        "fluid": {
            "dt": BENCH_DT,
            "duration_s": FLUID_SECONDS,
            "scalar_steps_per_s": round(scalar_sps),
            "vectorized_steps_per_s": round(vector_sps),
            "speedup": round(vector_sps / scalar_sps, 2),
        },
        "attenuation": {
            # The corrected (attenuated) pipeline vs the PR-4 unattenuated
            # vectorized baseline, interleaved best-of-3 on the same
            # scenario (see _interleaved_best).
            "attenuated_steps_per_s": round(vector_sps),
            "unattenuated_steps_per_s": round(baseline_sps),
            "cost_percent": round(100.0 * (1.0 - vector_sps / baseline_sps), 1),
        },
        "emulation": {
            "duration_s": EMULATION_SECONDS,
            "sent_packets": sent,
            "sent_pkts_per_s": round(sent_pkts_per_s),
            "wall_s": round(emu_elapsed, 3),
        },
    }
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")

    print("\n3-hop parking-lot throughput:")
    print(
        f"  fluid      scalar {scalar_sps:8.0f}  vectorized {vector_sps:8.0f} "
        f"steps/s ({vector_sps / scalar_sps:.1f}x)"
    )
    print(
        f"  attenuation cost {100.0 * (1.0 - vector_sps / baseline_sps):5.1f}% "
        f"(unattenuated baseline {baseline_sps:8.0f} steps/s)"
    )
    print(f"  emulation  {sent_pkts_per_s:8.0f} sent pkts/s ({sent} pkts)")

    # Guard rails, not targets: the vectorized pipeline must still beat the
    # scalar loop with 3 queued links, the upstream attenuation must cost at
    # most 25% vs the unattenuated vectorized baseline, and the chained
    # emulator must sustain a sane packet rate (the dumbbell does ~150k
    # pkts/s; three hops triple the per-packet queue work).
    assert vector_sps >= 2.0 * scalar_sps, (
        f"vectorized 3-hop integrator only {vector_sps / scalar_sps:.2f}x scalar"
    )
    assert vector_sps >= 0.75 * baseline_sps, (
        f"attenuated pipeline costs {100.0 * (1.0 - vector_sps / baseline_sps):.1f}% "
        f"vs the unattenuated baseline (budget: 25%)"
    )
    assert sent_pkts_per_s > 10_000, (
        f"3-hop emulation dropped to {sent_pkts_per_s:.0f} sent pkts/s"
    )

"""Figure 2: interplay of the BBRv1 / BBRv2 fluid-model variables."""

from __future__ import annotations

import numpy as np

from repro.experiments import figures

from conftest import run_once


def test_fig02_bbr_variables(benchmark):
    result = run_once(benchmark, figures.figure_2, duration_s=1.0, dt=1e-4)
    print("\nFigure 2 — fluid-model variables (single flow, % of link rate)")
    for cca in ("bbr1", "bbr2"):
        data = result[cca]
        print(
            f"  {cca}: mean rate={np.mean(data['rate_pct']):6.1f}%  "
            f"mean x_btl={np.mean(data['x_btl_pct']):6.1f}%  "
            f"max rate={np.max(data['rate_pct']):6.1f}%  "
            f"min rate={np.min(data['rate_pct'][10:]):6.1f}%"
        )
    # Paper shape: BBRv1 pulses to 125% of BtlBw and drains to 75%; BBRv2
    # stays close to the link rate between sparse probes.
    assert np.max(result["bbr1"]["rate_pct"]) > 110.0
    assert np.mean(result["bbr2"]["rate_pct"][100:]) > 85.0
    assert "w_hi_pkts" in result["bbr2"]

"""Micro-benchmark of the emulator event layer: closure scheduler vs delay lines.

Measures packets/second of the 10 s multi-flow BBRv1 emulation under the
pre-change per-packet-closure scheduler (kept verbatim in
``repro.emulation.closure_ref``) and under the typed delay-line/timer
scheduler, records the results in ``benchmarks/BENCH_perf_emulation.json``
for the performance trajectory, and asserts:

* the droptail equivalence contract — same seed, identical per-flow
  ``sent/delivered/lost`` counts and identical link drop/transmit counters
  across the two event layers (the speedup claim is only meaningful if the
  schedulers simulate the same network);
* the structural O(flows + links) heap invariant — the delay-line run
  keeps a handful of live events regardless of the thousands of packets in
  flight, while the closure reference holds one heap entry per in-flight
  packet hop;
* a conservative single-core speedup floor (the measured median on an
  otherwise idle machine is ~2x; the assertion leaves headroom for noisy
  CI).  The issue's ≥5x target is recorded in the JSON for honesty — the
  remaining gap is CCA/bookkeeping work shared by both schedulers, not
  event scheduling; ``--workers N`` scales emulation sweeps further on
  multi-core machines (this container is single-core);
* a disabled-telemetry overhead ceiling — the instrumented delay-line hot
  path (``repro.obs`` spans/counters reduced to no-op stubs when
  telemetry is off) must cost <= 3% of throughput.  Cross-run pkts/s on a
  shared machine swings far more than 3% (observed +-20% here even after
  closure-reference normalisation), so the guard measures the disabled
  costs *within the run* instead: microbenchmarks of the three stub
  shapes the instrumentation uses (the loop-local integer add the event
  loop pays per pop, the ``TELEMETRY.enabled`` attribute check, the
  null-span context), charged at the run's measured instrumentation
  density (events popped per second of wall time), must imply <= 3%
  overhead — with absolute per-call ceilings so the stubs cannot quietly
  grow a lock, an allocation, or an env read.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.config import dumbbell_scenario
from repro.emulation.runner import EmulationRunner
from repro.obs import TELEMETRY

RESULTS_PATH = Path(__file__).parent / "BENCH_perf_emulation.json"

FLOWS = 4
DURATION_S = 10.0
REPEATS = 3
#: Conservative CI floor; the measured median speedup is ~2x.
MIN_SPEEDUP = 1.5
#: Ceiling on the throughput overhead implied by the measured disabled-stub
#: costs at the run's instrumentation density (~1% measured; the event
#: loop pays one loop-local int add per pop, everything else is per-run).
MAX_DISABLED_TELEMETRY_OVERHEAD = 0.03
#: Absolute stub-cost ceilings (generous 4-10x over measured CPython cost
#: on any modern core): the disabled ``enabled`` check is one attribute
#: lookup, the null span one method call returning a shared object.  A
#: lock, allocation, or env read in the disabled path jumps these 10-100x.
MAX_ENABLED_CHECK_NS = 500.0
MAX_NULL_SPAN_NS = 2500.0
#: Generous stand-in for the per-run instrumented call sites charged at
#: full stub cost (emu.run span, enabled check, store/executor touches —
#: actually a handful).
PER_RUN_STUB_SITES = 100


def _scenario():
    return dumbbell_scenario(["bbr1"] * FLOWS, duration_s=DURATION_S, seed=1)


def _timed_run(scheduler: str):
    runner = EmulationRunner(_scenario(), scheduler=scheduler)
    start = time.perf_counter()
    runner.run()
    elapsed = time.perf_counter() - start
    counts = [
        (s.sent_count, s.delivered_count, s.lost_count) for s in runner.senders.values()
    ]
    sent = sum(c[0] for c in counts)
    return sent / elapsed, counts, runner


def _stub_costs_ns(iterations: int = 200_000, repeats: int = 3) -> dict[str, float]:
    """Per-call cost of the three disabled-telemetry stub shapes.

    Best-of-``repeats``: each timing window is only milliseconds long, so
    one scheduler preemption inside it can double the apparent per-call
    cost — preemption inflates, never deflates, so the minimum is the
    honest cost floor.
    """

    def _local_add() -> int:
        popped = 0
        for _ in range(iterations):
            popped += 1
        return popped

    def _enabled_check() -> int:
        hits = 0
        for _ in range(iterations):
            if TELEMETRY.enabled:
                hits += 1
        return hits

    def _null_span() -> int:
        for _ in range(iterations):
            with TELEMETRY.span("bench.stub"):
                pass
        return 0

    def _best(func) -> float:
        best_s = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            hits = func()
            best_s = min(best_s, time.perf_counter() - start)
            assert hits == 0 or func is _local_add, (
                "telemetry must be disabled for the stub benchmark"
            )
        return best_s / iterations * 1e9

    return {
        "local_add": _best(_local_add),
        "enabled_check": _best(_enabled_check),
        "null_span": _best(_null_span),
    }


def _peak_live_events(scheduler: str) -> int:
    """Peak number of live scheduled events during a short probing run."""
    runner = EmulationRunner(_scenario().with_duration(1.0), scheduler=scheduler)
    peak = 0

    def probe():
        nonlocal peak
        peak = max(peak, len(runner.events))
        runner.events.schedule(0.01, probe)

    runner.events.schedule(0.05, probe)
    runner.run()
    return peak


def test_perf_emulation(benchmark):
    # The guard below measures the *disabled*-telemetry hot path; a stray
    # REPRO_TELEMETRY in the environment would measure the enabled one.
    TELEMETRY.disable()
    closure_pps = []
    delayline_pps = []
    closure_counts = delayline_counts = None
    closure_runner = delayline_runner = None
    for _ in range(REPEATS - 1):
        pps, closure_counts, closure_runner = _timed_run("closure")
        closure_pps.append(pps)
        pps, delayline_counts, delayline_runner = _timed_run("delayline")
        delayline_pps.append(pps)
    # Final repetition through the benchmark fixture so the harness records it.
    pps, closure_counts, closure_runner = _timed_run("closure")
    closure_pps.append(pps)
    pps, delayline_counts, delayline_runner = benchmark.pedantic(
        lambda: _timed_run("delayline"), rounds=1, iterations=1
    )
    delayline_pps.append(pps)

    closure_median = statistics.median(closure_pps)
    delayline_median = statistics.median(delayline_pps)
    speedup = delayline_median / closure_median

    # Same seed => identical droptail accounting across the event layers.
    assert delayline_counts == closure_counts, (
        "delay-line scheduler diverged from the closure reference: "
        f"{delayline_counts} != {closure_counts}"
    )
    assert (
        delayline_runner.bottleneck.queue.dropped
        == closure_runner.bottleneck.queue.dropped
    )
    assert (
        delayline_runner.bottleneck.transmitted == closure_runner.bottleneck.transmitted
    )

    closure_peak = _peak_live_events("closure")
    delayline_peak = _peak_live_events("delayline")
    # O(flows + links): pacing timer, watchdog, access line and return line
    # per sender, plus the sampler and the probe (with slack); the closure
    # reference holds one entry per in-flight packet hop.
    assert delayline_peak <= 4 * FLOWS + 4, delayline_peak
    assert closure_peak >= 10 * delayline_peak, (closure_peak, delayline_peak)

    # Disabled-telemetry overhead, measured within this run: charge the
    # microbenchmarked stub costs at the run's actual instrumentation
    # density.  Per popped event the loop pays one local integer add (the
    # events-popped counter); per run a handful of call sites pay the
    # ``enabled`` check / null span, charged here at a deliberately
    # over-counted PER_RUN_STUB_SITES.  The implied share of the timed
    # delay-line run must stay under the ceiling.
    stub_ns = _stub_costs_ns()
    events_popped = delayline_runner.events.popped
    sent = sum(c[0] for c in delayline_counts)
    delayline_wall_s = sent / delayline_median
    per_run_stub_s = (
        events_popped * stub_ns["local_add"]
        + PER_RUN_STUB_SITES * (stub_ns["enabled_check"] + stub_ns["null_span"])
    ) * 1e-9
    telemetry_overhead = per_run_stub_s / delayline_wall_s

    results = {
        "scenario": {
            "cca": "bbr1",
            "flows": FLOWS,
            "duration_s": DURATION_S,
            "discipline": "droptail",
            "buffer_bdp": 1.0,
            "seed": 1,
        },
        "packets_per_second": {
            "closure": round(closure_median),
            "delayline": round(delayline_median),
        },
        "speedup": round(speedup, 2),
        "issue_target_speedup": 5.0,
        "equivalence": {
            "identical_counts": True,
            "per_flow_sent_delivered_lost": [list(c) for c in delayline_counts],
            "link_dropped": delayline_runner.bottleneck.queue.dropped,
            "link_transmitted": delayline_runner.bottleneck.transmitted,
        },
        "live_heap_events_peak": {
            "closure": closure_peak,
            "delayline": delayline_peak,
        },
        "telemetry_disabled_overhead": round(telemetry_overhead, 4),
        "telemetry_stub_ns": {k: round(v, 1) for k, v in stub_ns.items()},
    }
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")

    print("\nEmulator event-layer throughput (sent packets/second, 10 s BBRv1 x 4):")
    print(f"  closure reference  {closure_median:10.0f} pkts/s  (heap peak {closure_peak})")
    print(f"  delay-line/timer   {delayline_median:10.0f} pkts/s  (heap peak {delayline_peak})")
    print(f"  speedup            {speedup:10.2f}x")
    print(
        f"  telemetry overhead {100 * telemetry_overhead:9.2f}% (disabled stubs: "
        f"add {stub_ns['local_add']:.0f}ns, check {stub_ns['enabled_check']:.0f}ns, "
        f"span {stub_ns['null_span']:.0f}ns over {events_popped} events)"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"delay-line scheduler only {speedup:.2f}x the closure reference "
        f"(expected >= {MIN_SPEEDUP}x)"
    )
    assert stub_ns["enabled_check"] <= MAX_ENABLED_CHECK_NS, (
        f"disabled TELEMETRY.enabled check costs {stub_ns['enabled_check']:.0f}ns "
        f"per call (ceiling {MAX_ENABLED_CHECK_NS:.0f}ns) — the disabled path "
        "must stay one attribute lookup"
    )
    assert stub_ns["null_span"] <= MAX_NULL_SPAN_NS, (
        f"disabled TELEMETRY.span() costs {stub_ns['null_span']:.0f}ns per call "
        f"(ceiling {MAX_NULL_SPAN_NS:.0f}ns) — it must return the shared "
        "no-op span without allocating or locking"
    )
    assert telemetry_overhead <= MAX_DISABLED_TELEMETRY_OVERHEAD, (
        f"disabled-telemetry stubs imply {100 * telemetry_overhead:.1f}% of "
        f"delay-line throughput (ceiling "
        f"{100 * MAX_DISABLED_TELEMETRY_OVERHEAD:.0f}%)"
    )

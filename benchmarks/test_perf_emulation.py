"""Micro-benchmark of the emulator event layer: closure scheduler vs delay lines.

Measures packets/second of the 10 s multi-flow BBRv1 emulation under the
pre-change per-packet-closure scheduler (kept verbatim in
``repro.emulation.closure_ref``) and under the typed delay-line/timer
scheduler, records the results in ``benchmarks/BENCH_perf_emulation.json``
for the performance trajectory, and asserts:

* the droptail equivalence contract — same seed, identical per-flow
  ``sent/delivered/lost`` counts and identical link drop/transmit counters
  across the two event layers (the speedup claim is only meaningful if the
  schedulers simulate the same network);
* the structural O(flows + links) heap invariant — the delay-line run
  keeps a handful of live events regardless of the thousands of packets in
  flight, while the closure reference holds one heap entry per in-flight
  packet hop;
* a conservative single-core speedup floor (the measured median on an
  otherwise idle machine is ~2x; the assertion leaves headroom for noisy
  CI).  The issue's ≥5x target is recorded in the JSON for honesty — the
  remaining gap is CCA/bookkeeping work shared by both schedulers, not
  event scheduling; ``--workers N`` scales emulation sweeps further on
  multi-core machines (this container is single-core).
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.config import dumbbell_scenario
from repro.emulation.runner import EmulationRunner

RESULTS_PATH = Path(__file__).parent / "BENCH_perf_emulation.json"

FLOWS = 4
DURATION_S = 10.0
REPEATS = 3
#: Conservative CI floor; the measured median speedup is ~2x.
MIN_SPEEDUP = 1.5


def _scenario():
    return dumbbell_scenario(["bbr1"] * FLOWS, duration_s=DURATION_S, seed=1)


def _timed_run(scheduler: str):
    runner = EmulationRunner(_scenario(), scheduler=scheduler)
    start = time.perf_counter()
    runner.run()
    elapsed = time.perf_counter() - start
    counts = [
        (s.sent_count, s.delivered_count, s.lost_count) for s in runner.senders.values()
    ]
    sent = sum(c[0] for c in counts)
    return sent / elapsed, counts, runner


def _peak_live_events(scheduler: str) -> int:
    """Peak number of live scheduled events during a short probing run."""
    runner = EmulationRunner(_scenario().with_duration(1.0), scheduler=scheduler)
    peak = 0

    def probe():
        nonlocal peak
        peak = max(peak, len(runner.events))
        runner.events.schedule(0.01, probe)

    runner.events.schedule(0.05, probe)
    runner.run()
    return peak


def test_perf_emulation(benchmark):
    closure_pps = []
    delayline_pps = []
    closure_counts = delayline_counts = None
    closure_runner = delayline_runner = None
    for _ in range(REPEATS - 1):
        pps, closure_counts, closure_runner = _timed_run("closure")
        closure_pps.append(pps)
        pps, delayline_counts, delayline_runner = _timed_run("delayline")
        delayline_pps.append(pps)
    # Final repetition through the benchmark fixture so the harness records it.
    pps, closure_counts, closure_runner = _timed_run("closure")
    closure_pps.append(pps)
    pps, delayline_counts, delayline_runner = benchmark.pedantic(
        lambda: _timed_run("delayline"), rounds=1, iterations=1
    )
    delayline_pps.append(pps)

    closure_median = statistics.median(closure_pps)
    delayline_median = statistics.median(delayline_pps)
    speedup = delayline_median / closure_median

    # Same seed => identical droptail accounting across the event layers.
    assert delayline_counts == closure_counts, (
        "delay-line scheduler diverged from the closure reference: "
        f"{delayline_counts} != {closure_counts}"
    )
    assert (
        delayline_runner.bottleneck.queue.dropped
        == closure_runner.bottleneck.queue.dropped
    )
    assert (
        delayline_runner.bottleneck.transmitted == closure_runner.bottleneck.transmitted
    )

    closure_peak = _peak_live_events("closure")
    delayline_peak = _peak_live_events("delayline")
    # O(flows + links): pacing timer, watchdog, access line and return line
    # per sender, plus the sampler and the probe (with slack); the closure
    # reference holds one entry per in-flight packet hop.
    assert delayline_peak <= 4 * FLOWS + 4, delayline_peak
    assert closure_peak >= 10 * delayline_peak, (closure_peak, delayline_peak)

    results = {
        "scenario": {
            "cca": "bbr1",
            "flows": FLOWS,
            "duration_s": DURATION_S,
            "discipline": "droptail",
            "buffer_bdp": 1.0,
            "seed": 1,
        },
        "packets_per_second": {
            "closure": round(closure_median),
            "delayline": round(delayline_median),
        },
        "speedup": round(speedup, 2),
        "issue_target_speedup": 5.0,
        "equivalence": {
            "identical_counts": True,
            "per_flow_sent_delivered_lost": [list(c) for c in delayline_counts],
            "link_dropped": delayline_runner.bottleneck.queue.dropped,
            "link_transmitted": delayline_runner.bottleneck.transmitted,
        },
        "live_heap_events_peak": {
            "closure": closure_peak,
            "delayline": delayline_peak,
        },
    }
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")

    print("\nEmulator event-layer throughput (sent packets/second, 10 s BBRv1 x 4):")
    print(f"  closure reference  {closure_median:10.0f} pkts/s  (heap peak {closure_peak})")
    print(f"  delay-line/timer   {delayline_median:10.0f} pkts/s  (heap peak {delayline_peak})")
    print(f"  speedup            {speedup:10.2f}x")

    assert speedup >= MIN_SPEEDUP, (
        f"delay-line scheduler only {speedup:.2f}x the closure reference "
        f"(expected >= {MIN_SPEEDUP}x)"
    )

"""Theorems 1-5: equilibria, stability, and reduced-model convergence."""

from __future__ import annotations

from repro.experiments import figures, report

from conftest import run_once


def test_theorem_table(benchmark):
    rows = run_once(benchmark, figures.theorem_table, flow_counts=(2, 5, 10, 50))
    print("\nTheorems 1-5 — equilibria and stability")
    print(report.format_table(list(rows[0].keys()), [list(r.values()) for r in rows]))
    for row in rows:
        # Thm 1: deep-buffer equilibrium queue equals one propagation BDP.
        assert abs(row["thm1_queue_bdp"] - 1.0) < 1e-9
        # Thm 2, 3, 5: all equilibria asymptotically stable.
        assert row["thm2_stable"] and row["thm3_stable"] and row["thm5_stable"]
        # Thm 3: loss approaches 20% from below as N grows.
        assert 0.0 <= row["thm3_loss_fraction"] < 0.2
        # Thm 4 / Sec 5.2.2: BBRv2 cuts the equilibrium queue by >= 75%.
        assert row["thm4_queue_reduction"] >= 0.75


def test_reduced_model_convergence(benchmark):
    results = run_once(
        benchmark,
        lambda: {
            "bbr1": figures.convergence_demo("bbr1", num_flows=10, duration_s=60.0),
            "bbr2": figures.convergence_demo("bbr2", num_flows=10, duration_s=60.0),
        },
    )
    print("\nReduced-model convergence (queue in packets)")
    for version, data in results.items():
        print(
            f"  {version}: final queue={data['final_queue_pkts']:8.2f}  "
            f"expected={data['expected_queue_pkts']:8.2f}"
        )
        assert data["final_queue_pkts"] == (
            __import__("pytest").approx(data["expected_queue_pkts"], rel=0.05)
        )

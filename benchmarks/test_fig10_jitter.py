"""Figure 10: jitter vs. buffer size (known fluid-model limitation)."""

from __future__ import annotations

from conftest import run_once
from _aggregate_common import print_aggregate, run_aggregate


def test_fig10_jitter(benchmark):
    data = run_once(benchmark, run_aggregate, "jitter_ms")
    print_aggregate("Figure 10 — jitter [ms]", data)
    # The paper itself reports that the fluid model cannot predict jitter
    # (Insight 9: discrete, packet-scale phenomena are abstracted away); the
    # reproduced values are therefore only checked to be finite, small and
    # non-negative.
    for discipline, by_mix in data.items():
        for mix, line in by_mix.items():
            for _, value in line:
                assert 0.0 <= value < 10.0

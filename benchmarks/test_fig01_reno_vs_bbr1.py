"""Figure 1: sending-rate competition between one Reno and one BBRv1 flow."""

from __future__ import annotations

import numpy as np

from repro.experiments import figures

from conftest import BENCH_DT, run_once


def test_fig01_reno_vs_bbr1(benchmark):
    result = run_once(
        benchmark, figures.figure_1, duration_s=8.0, dt=BENCH_DT
    )
    print("\nFigure 1 — Reno vs BBRv1 sending rates (% of link rate)")
    for substrate in ("fluid", "emulation"):
        data = result[substrate]
        time = data["time"]
        print(f"  [{substrate}]")
        for t in (1.0, 2.0, 4.0, 6.0, 8.0):
            k = min(len(time) - 1, int(np.searchsorted(time, t)))
            print(
                f"    t={t:4.1f}s  reno={data['reno_pct'][k]:6.1f}%  "
                f"bbr1={data['bbr1_pct'][k]:6.1f}%"
            )
        print(
            f"    mean: reno={data['mean_reno_pct']:.1f}%  bbr1={data['mean_bbr1_pct']:.1f}%"
        )
    # Paper shape: BBRv1 claims the dominant share while Reno is suppressed.
    fluid = result["fluid"]
    assert fluid["mean_bbr1_pct"] > fluid["mean_reno_pct"]

"""Shared helpers for the aggregate-figure benchmarks (Figs. 6-10, 13-17).

All five aggregate figures derive from the same sweep, which
``repro.experiments.sweep`` caches in-process, so only the first benchmark
of the session pays the simulation cost.
"""

from __future__ import annotations

from repro.experiments import figures, report

from conftest import BENCH_BUFFERS, BENCH_DURATION


def run_aggregate(metric: str, short_rtt: bool = False, **kwargs):
    return figures.aggregate_figure(
        metric,
        buffers_bdp=BENCH_BUFFERS,
        duration_s=BENCH_DURATION,
        short_rtt=short_rtt,
        **kwargs,
    )


def print_aggregate(title: str, data) -> None:
    print()
    for discipline, by_mix in data.items():
        print(report.series_table(f"{title} [{discipline}]", by_mix))
        print()


def series_value(data, discipline: str, mix: str, buffer_bdp: float) -> float:
    for x, y in data[discipline][mix]:
        if x == buffer_bdp:
            return y
    raise KeyError((discipline, mix, buffer_bdp))

"""Figure 8: buffer occupancy vs. buffer size, plus the Insight 5 ablation."""

from __future__ import annotations

from repro.experiments import figures

from conftest import BENCH_BUFFERS, BENCH_DURATION, run_once
from _aggregate_common import print_aggregate, run_aggregate, series_value


def test_fig08_queuing(benchmark):
    data = run_once(benchmark, run_aggregate, "buffer_occupancy_percent")
    print_aggregate("Figure 8 — buffer occupancy [%]", data)
    small = BENCH_BUFFERS[0]
    # Paper shape 1: BBRv1 keeps the buffer heavily used in shallow buffers.
    assert series_value(data, "droptail", "BBRv1", small) > 40.0
    # Paper shape 2: homogeneous BBRv2 uses far less buffer than BBRv1.
    assert series_value(data, "droptail", "BBRv2", small) < series_value(
        data, "droptail", "BBRv1", small
    )
    # Paper shape 3: RED keeps queues much shorter than drop-tail for BBRv1.
    assert series_value(data, "red", "BBRv1", small) < series_value(
        data, "droptail", "BBRv1", small
    )


def test_fig08_insight5_bbr2_large_buffers(benchmark):
    result = run_once(
        benchmark,
        figures.figure_8_insight5,
        buffers_bdp=(1.0, 5.0, 7.0),
        duration_s=BENCH_DURATION,
    )
    print("\nInsight 5 — BBRv2 buffer occupancy with start-up-distorted inflight_hi")
    for row in result["rows"]:
        print(
            f"  buffer={row['buffer_bdp']:.0f} BDP  default w_hi: "
            f"{row['occupancy_default_pct']:5.1f}%  distorted w_hi: "
            f"{row['occupancy_startup_distorted_pct']:5.1f}%"
        )
    rows = {row["buffer_bdp"]: row for row in result["rows"]}
    # The start-up-distorted initial condition must increase buffer usage in
    # large buffers relative to the well-initialised model.
    assert (
        rows[7.0]["occupancy_startup_distorted_pct"]
        >= rows[7.0]["occupancy_default_pct"]
    )

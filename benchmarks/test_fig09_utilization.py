"""Figure 9: bottleneck utilization vs. buffer size."""

from __future__ import annotations

from conftest import BENCH_BUFFERS, run_once
from _aggregate_common import print_aggregate, run_aggregate, series_value


def test_fig09_utilization(benchmark):
    data = run_once(benchmark, run_aggregate, "utilization_percent")
    print_aggregate("Figure 9 — utilization [%]", data)
    small, large = BENCH_BUFFERS[0], BENCH_BUFFERS[-1]
    # Paper shape 1: BBRv1 (and mixes containing it) fully utilise the link.
    assert series_value(data, "droptail", "BBRv1", small) > 95.0
    assert series_value(data, "droptail", "BBRv1/RENO", large) > 95.0
    # Paper shape 2: every mix keeps utilization high (>90%) in deep buffers.
    for mix in ("BBRv2", "BBRv2/RENO", "BBRv1/CUBIC"):
        assert series_value(data, "droptail", mix, large) > 85.0

"""Figure 6: Jain fairness vs. buffer size for the seven CCA mixes."""

from __future__ import annotations

from conftest import BENCH_BUFFERS, run_once
from _aggregate_common import print_aggregate, run_aggregate, series_value


def test_fig06_fairness(benchmark):
    data = run_once(benchmark, run_aggregate, "jain_fairness")
    print_aggregate("Figure 6 — Jain fairness", data)
    small, large = BENCH_BUFFERS[0], BENCH_BUFFERS[-1]
    # Paper shape 1: BBRv1 vs. loss-based CCAs is the least fair setting in
    # shallow drop-tail buffers and improves with buffer size.
    assert series_value(data, "droptail", "BBRv1/RENO", small) < 0.75
    assert series_value(data, "droptail", "BBRv1/RENO", large) > series_value(
        data, "droptail", "BBRv1/RENO", small
    )
    # Paper shape 2: homogeneous BBRv2 is close to fair everywhere.
    assert series_value(data, "droptail", "BBRv2", small) > 0.8
    # Paper shape 3: under RED, BBRv1 stays unfair to Reno across buffer sizes.
    assert series_value(data, "red", "BBRv1/RENO", large) < 0.8

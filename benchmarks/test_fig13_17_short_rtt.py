"""Figures 13-17: aggregate validation for the short-RTT setting (Appendix C)."""

from __future__ import annotations

from repro.experiments import figures

from conftest import BENCH_DURATION, FULL, run_once
from _aggregate_common import print_aggregate


SHORT_MIXES = None if FULL else ("BBRv1", "BBRv2", "BBRv1/RENO", "BBRv2/RENO")
SHORT_BUFFERS = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0) if FULL else (1.0, 7.0)


def run_short(metric: str):
    return figures.figures_13_17(
        metric,
        mixes=SHORT_MIXES,
        buffers_bdp=SHORT_BUFFERS,
        duration_s=BENCH_DURATION,
    )


def test_fig13_17_short_rtt(benchmark):
    results = run_once(
        benchmark,
        lambda: {
            "fig13_fairness": run_short("jain_fairness"),
            "fig14_loss": run_short("loss_percent"),
            "fig15_queuing": run_short("buffer_occupancy_percent"),
            "fig16_utilization": run_short("utilization_percent"),
            "fig17_jitter": run_short("jitter_ms"),
        },
    )
    for name, data in results.items():
        print_aggregate(f"{name} (short RTT)", data)
    fairness = results["fig13_fairness"]["droptail"]
    loss = results["fig14_loss"]["droptail"]
    # The short-RTT setting confirms the main-body shapes: BBRv1 unfair to
    # Reno in shallow buffers, BBRv1 loss far above BBRv2 loss.
    assert fairness["BBRv1/RENO"][0][1] < fairness["BBRv2"][0][1]
    assert loss["BBRv1"][0][1] > loss["BBRv2"][0][1]

"""Insights 1-6: the qualitative findings of Section 6, checked on the sweep."""

from __future__ import annotations

from conftest import BENCH_BUFFERS, run_once
from _aggregate_common import run_aggregate, series_value


def test_insights(benchmark):
    data = run_once(
        benchmark,
        lambda: {
            "fairness": run_aggregate("jain_fairness"),
            "loss": run_aggregate("loss_percent"),
            "occupancy": run_aggregate("buffer_occupancy_percent"),
            "utilization": run_aggregate("utilization_percent"),
        },
    )
    small, large = BENCH_BUFFERS[0], BENCH_BUFFERS[-1]
    loss, fairness = data["loss"], data["fairness"]
    occupancy, utilization = data["occupancy"], data["utilization"]

    # Insight 1 — BBRv1 causes considerable loss; loss-sensitive CCAs ~1%.
    insight1 = (
        series_value(loss, "droptail", "BBRv1", small) > 5.0
        and series_value(loss, "droptail", "BBRv2", large) < 1.0
    )
    # Insight 2 — BBRv1 unfair towards loss-based CCAs in shallow drop-tail
    # buffers; fairness improves with buffer size.
    insight2 = series_value(fairness, "droptail", "BBRv1/RENO", small) < series_value(
        fairness, "droptail", "BBRv1/RENO", large
    )
    # Insight 3 — BBRv1 fully utilises the link but bloats the buffer.
    insight3 = (
        series_value(utilization, "droptail", "BBRv1", small) > 95.0
        and series_value(occupancy, "droptail", "BBRv1", small) > 40.0
    )
    # Insight 4 — BBRv2 reduces buffer usage and loss vs. BBRv1 and is fair.
    insight4 = (
        series_value(occupancy, "droptail", "BBRv2", small)
        < series_value(occupancy, "droptail", "BBRv1", small)
        and series_value(loss, "droptail", "BBRv2", small)
        < series_value(loss, "droptail", "BBRv1", small)
        and series_value(fairness, "droptail", "BBRv2", small) > 0.8
    )
    # Insight 6 — under RED, BBRv2 mixes with loss-based CCAs stay less fair
    # than homogeneous BBRv2.
    insight6 = series_value(fairness, "red", "BBRv2/RENO", large) <= series_value(
        fairness, "red", "BBRv2", large
    ) + 0.05

    print("\nInsights 1-6 (True = reproduced):")
    for name, value in [
        ("Insight 1 (loss bands)", insight1),
        ("Insight 2 (BBRv1 unfairness vs loss-based)", insight2),
        ("Insight 3 (BBRv1 utilization + bufferbloat)", insight3),
        ("Insight 4 (BBRv2 achieves redesign goals)", insight4),
        ("Insight 6 (BBRv2 vs loss-based under RED)", insight6),
    ]:
        print(f"  {name}: {value}")
    assert insight1 and insight2 and insight3 and insight4

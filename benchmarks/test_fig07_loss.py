"""Figure 7: loss rate vs. buffer size for the seven CCA mixes."""

from __future__ import annotations

from conftest import BENCH_BUFFERS, run_once
from _aggregate_common import print_aggregate, run_aggregate, series_value


def test_fig07_loss(benchmark):
    data = run_once(benchmark, run_aggregate, "loss_percent")
    print_aggregate("Figure 7 — loss [%]", data)
    small, large = BENCH_BUFFERS[0], BENCH_BUFFERS[-1]
    # Paper shape 1: BBRv1 causes considerable loss in shallow drop-tail
    # buffers, decreasing with buffer size.  (The fluid model is started from
    # post-start-up estimates, which exaggerates the absolute shallow-buffer
    # loss relative to the paper — see EXPERIMENTS.md.)
    bbr1_small = series_value(data, "droptail", "BBRv1", small)
    bbr1_large = series_value(data, "droptail", "BBRv1", large)
    assert bbr1_small > 5.0
    assert bbr1_large < bbr1_small
    # Paper shape 2: the loss of loss-sensitive CCAs goes to (near) zero for
    # increasing buffer sizes and stays far below BBRv1's.
    assert series_value(data, "droptail", "BBRv2", large) < 1.0
    assert series_value(data, "droptail", "BBRv2", small) < bbr1_small

"""Shared configuration of the benchmark harness.

Every benchmark regenerates the data behind one figure or table of the
paper and prints the reproduced series, so running

    pytest benchmarks/ --benchmark-only

produces the full set of reproduced results (recorded in EXPERIMENTS.md).

By default the aggregate sweeps use a reduced buffer grid (1, 4, 7 BDP) and
a slightly shortened trace duration so the whole suite completes in a few
minutes on a laptop; set ``REPRO_BENCH_FULL=1`` to run the paper's full
1-7 BDP grid and durations.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

SRC = Path(__file__).parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import pytest  # noqa: E402

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: Buffer grid used by the aggregate-figure benchmarks.
BENCH_BUFFERS = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0) if FULL else (1.0, 4.0, 7.0)
#: Duration of the aggregate scenarios.
BENCH_DURATION = 5.0 if FULL else 4.0
#: Duration of the single-flow trace validations.
TRACE_DURATION = 30.0 if FULL else 10.0
#: Integration step used by the benchmarks.
BENCH_DT = 2.5e-4


@pytest.fixture(autouse=True)
def _no_ambient_store(monkeypatch):
    """Keep benchmarks hermetic: never pick up an operator's REPRO_STORE file."""
    monkeypatch.delenv("REPRO_STORE", raising=False)


def run_once(benchmark, func, *args, **kwargs):
    """Run a benchmark exactly once (the figures are deterministic and heavy)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def bench_buffers():
    return BENCH_BUFFERS


@pytest.fixture(scope="session")
def bench_duration():
    return BENCH_DURATION

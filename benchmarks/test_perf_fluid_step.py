"""Micro-benchmark of the fluid integrator: steps/second, scalar vs. vectorized.

Records the integrator throughput in ``benchmarks/BENCH_perf_fluid_step.json``
so future PRs can track the performance trajectory, and asserts the headline
speedups of the vectorization work against the seed scalar loop (which is
kept in-tree, bit-for-bit, as the ``vectorized=False`` reference):

* on the production-scale population (60 mixed-CCA senders) the vectorized
  pipeline is at least 5x the scalar reference loop,
* the multi-scenario lockstep path (``simulate_many``, which the aggregate
  sweeps of Figs. 6-10/13-17 run on) is at least 5x the scalar loop as
  well (in practice ~20-30x), and
* the paper-shaped 20-sender scenario — where per-step numpy dispatch
  overhead bites hardest — stays at least 2x the scalar loop (tracked in
  the JSON for the trajectory).

A second benchmark records the **churn scaling curve**: vectorized
integrator throughput at 100/500/1000/2000 flows under a Poisson /
bounded-Pareto flow schedule (active-flow masking on), so the cost of
large time-varying populations is tracked release over release.

All comparisons are apples-to-apples and all paths produce numerically
identical traces (see ``tests/test_simulator_vectorized.py``); rate-trace
equivalence is re-asserted here on the benchmarked runs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.config import FluidParams, dumbbell_scenario
from repro.core import FluidSimulator, simulate_many
from repro.experiments import scenarios

from conftest import BENCH_DT, run_once

RESULTS_PATH = Path(__file__).parent / "BENCH_perf_fluid_step.json"

BENCH_SECONDS = 0.5

#: Flow populations of the churn scaling curve and its (short) horizon.
SCALING_FLOWS = (100, 500, 1000, 2000)
SCALING_SECONDS = 0.1


def _merge_results(updates: dict) -> None:
    """Merge one benchmark's section into the shared results file."""
    results = {}
    if RESULTS_PATH.exists():
        results = json.loads(RESULTS_PATH.read_text())
    results.update(updates)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")


def _mixed_ccas(num_flows: int) -> list[str]:
    per_cca = num_flows // 4
    return (
        ["reno"] * per_cca + ["cubic"] * per_cca + ["bbr1"] * per_cca + ["bbr2"] * per_cca
    )


def _config(num_flows: int):
    return dumbbell_scenario(
        _mixed_ccas(num_flows), duration_s=BENCH_SECONDS, fluid=FluidParams(dt=BENCH_DT)
    )


def _steps(config) -> int:
    return int(round(config.duration_s / config.fluid.dt)) + 1


def _measure(config, vectorized: bool):
    simulator = FluidSimulator(config, vectorized=vectorized)
    start = time.perf_counter()
    trace = simulator.run()
    elapsed = time.perf_counter() - start
    return _steps(config) / elapsed, trace


def test_perf_fluid_step(benchmark):
    paper_config = _config(20)
    scale_config = _config(60)

    scalar_paper_sps, scalar_trace = _measure(paper_config, vectorized=False)
    vector_paper_sps, vector_trace = run_once(
        benchmark, lambda: _measure(paper_config, vectorized=True)
    )
    scalar_scale_sps, _ = _measure(scale_config, vectorized=False)
    vector_scale_sps, _ = _measure(scale_config, vectorized=True)

    # The speedup claim is only meaningful if the traces agree.
    for fa, fb in zip(scalar_trace.flows, vector_trace.flows, strict=True):
        np.testing.assert_allclose(fa.rate, fb.rate, rtol=1e-9, atol=1e-9)
    np.testing.assert_allclose(
        scalar_trace.bottleneck().queue,
        vector_trace.bottleneck().queue,
        rtol=1e-9,
        atol=1e-9,
    )

    # The sweep path: many independent scenarios integrated in lockstep.
    batch_configs = [
        dumbbell_scenario(
            _mixed_ccas(20),
            duration_s=BENCH_SECONDS,
            buffer_bdp=buffer_bdp,
            discipline=discipline,
            fluid=FluidParams(dt=BENCH_DT),
        )
        for discipline in ("droptail", "red")
        for buffer_bdp in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0)
    ]
    start = time.perf_counter()
    simulate_many(batch_configs)
    batch_elapsed = time.perf_counter() - start
    batch_sps = _steps(paper_config) * len(batch_configs) / batch_elapsed

    _merge_results({
        "dt": BENCH_DT,
        "duration_s": BENCH_SECONDS,
        "paper_population_20": {
            "scalar_steps_per_s": round(scalar_paper_sps),
            "vectorized_steps_per_s": round(vector_paper_sps),
            "speedup": round(vector_paper_sps / scalar_paper_sps, 2),
        },
        "scale_population_60": {
            "scalar_steps_per_s": round(scalar_scale_sps),
            "vectorized_steps_per_s": round(vector_scale_sps),
            "speedup": round(vector_scale_sps / scalar_scale_sps, 2),
        },
        "sweep_path_simulate_many": {
            "scenarios": len(batch_configs),
            "scenario_steps_per_s": round(batch_sps),
            "speedup_vs_scalar": round(batch_sps / scalar_paper_sps, 2),
            "speedup_vs_vectorized": round(batch_sps / vector_paper_sps, 2),
        },
    })

    print("\nFluid-integrator throughput (flow-population steps/second):")
    print(
        f"  20 senders  scalar {scalar_paper_sps:8.0f}  "
        f"vectorized {vector_paper_sps:8.0f}  ({vector_paper_sps / scalar_paper_sps:.1f}x)"
    )
    print(
        f"  60 senders  scalar {scalar_scale_sps:8.0f}  "
        f"vectorized {vector_scale_sps:8.0f}  ({vector_scale_sps / scalar_scale_sps:.1f}x)"
    )
    print(
        f"  sweep path  {batch_sps:8.0f} scenario-steps/s "
        f"({batch_sps / scalar_paper_sps:.1f}x scalar, {len(batch_configs)} scenarios)"
    )

    assert vector_scale_sps >= 5.0 * scalar_scale_sps, (
        f"60-sender vectorized integrator only "
        f"{vector_scale_sps / scalar_scale_sps:.2f}x the scalar loop"
    )
    assert batch_sps >= 5.0 * scalar_paper_sps, (
        f"batched sweep path only {batch_sps / scalar_paper_sps:.2f}x the "
        f"scalar loop"
    )
    assert vector_paper_sps >= 2.0 * scalar_paper_sps, (
        f"20-sender vectorized integrator regressed to "
        f"{vector_paper_sps / scalar_paper_sps:.2f}x the scalar loop"
    )


def test_perf_fluid_churn_scaling(benchmark):
    """Vectorized integrator throughput vs. population size under churn."""

    def _churn_config(num_flows: int):
        return scenarios.churn_scenario(
            "BBRv1/RENO",
            num_flows=num_flows,
            arrivals="poisson",
            load=0.5,
            size_dist="pareto",
            duration_s=SCALING_SECONDS,
            dt=BENCH_DT,
            seed=1,
        )

    def _measure_population(num_flows: int) -> float:
        config = _churn_config(num_flows)
        simulator = FluidSimulator(config, vectorized=True)
        start = time.perf_counter()
        simulator.run()
        elapsed = time.perf_counter() - start
        return _steps(config) / elapsed

    def _curve() -> dict[str, float]:
        return {str(n): round(_measure_population(n)) for n in SCALING_FLOWS}

    curve = run_once(benchmark, _curve)
    _merge_results({
        "churn_scaling": {
            "dt": BENCH_DT,
            "duration_s": SCALING_SECONDS,
            "arrivals": "poisson",
            "size_dist": "pareto",
            "vectorized_steps_per_s_by_flows": curve,
        },
    })

    print("\nFluid integrator churn scaling (vectorized steps/second):")
    for n in SCALING_FLOWS:
        print(f"  {n:5d} flows  {curve[str(n)]:8.0f} steps/s")

    # Sanity floor, not a race: even the 2000-flow population must step.
    assert all(sps > 0 for sps in curve.values())
    # Throughput must degrade sub-linearly in the population (vectorized
    # work is O(N) per step, so 20x the flows may not cost much more than
    # ~20x the time; a superlinear blow-up indicates accidental per-flow
    # Python work in the masked pipeline).
    ratio = curve[str(SCALING_FLOWS[0])] / max(1.0, curve[str(SCALING_FLOWS[-1])])
    assert ratio < 100.0, (
        f"throughput fell {ratio:.0f}x from {SCALING_FLOWS[0]} to "
        f"{SCALING_FLOWS[-1]} flows — superlinear scaling"
    )

"""Tests of the persistent sweep store and seed-replicated campaigns."""

from __future__ import annotations

import json

import pytest

from repro.experiments import scenarios, sweep
from repro.experiments.store import (
    SCHEMA_VERSION,
    SweepStore,
    resolve_store,
    scenario_key,
    stable_hash,
)
from repro.metrics.aggregate import AggregateMetrics, summarize_metrics


def _metrics(value: float = 1.0) -> AggregateMetrics:
    return AggregateMetrics(
        jain_fairness=value,
        loss_percent=value * 2,
        buffer_occupancy_percent=value * 3,
        utilization_percent=value * 4,
        jitter_ms=value * 5,
    )


FAST = dict(duration_s=0.5, dt=1e-3)


@pytest.fixture(autouse=True)
def _clear_cache():
    sweep.clear_cache()
    yield
    sweep.clear_cache()


class TestStableHash:
    def test_deterministic_and_order_insensitive(self):
        assert stable_hash({"a": 1, "b": 2.5}) == stable_hash({"b": 2.5, "a": 1})
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_scenario_key_includes_seed(self):
        a = scenarios.aggregate_scenario("BBRv1", 1.0, "droptail", seed=1)
        b = scenarios.aggregate_scenario("BBRv1", 1.0, "droptail", seed=2)
        assert scenario_key(a, "emulation") != scenario_key(b, "emulation")

    def test_scenario_key_includes_sampling_params(self):
        config = scenarios.aggregate_scenario("BBRv1", 1.0, "droptail")
        base = scenario_key(config, "emulation")
        assert base != scenario_key(config, "emulation", record_interval_s=0.02)
        assert base != scenario_key(config, "emulation", scheduler="closure")
        assert base != scenario_key(config, "fluid")

    def test_fluid_key_ignores_emulation_sampling(self):
        config = scenarios.aggregate_scenario("BBRv1", 1.0, "droptail")
        assert scenario_key(config, "fluid") == scenario_key(
            config, "fluid", record_interval_s=0.02, scheduler="closure"
        )

    def test_fluid_key_hashes_seed_only_for_random_schedules(self):
        import dataclasses

        # A random schedule (poisson arrivals / pareto sizes) consumes the
        # seed on both substrates: fluid seed replicas are distinct points.
        churn = scenarios.churn_scenario("BBRv1", num_flows=4, arrivals="poisson")
        assert scenario_key(churn, "fluid") != scenario_key(
            dataclasses.replace(churn, seed=churn.seed + 1), "fluid"
        )
        # A deterministic schedule keeps the historical aliasing.
        det = scenarios.churn_scenario(
            "BBRv1", num_flows=4, arrivals="staggered", size_dist="infinite"
        )
        assert scenario_key(det, "fluid") == scenario_key(
            dataclasses.replace(det, seed=det.seed + 1), "fluid"
        )


class TestSweepStore:
    def test_roundtrip_and_persistence(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = SweepStore(path)
        assert store.get("k") is None
        store.put("k", _metrics(), meta={"mix": "BBRv1", "seed": 3})
        assert store.get("k") == _metrics()
        # A fresh instance reloads from disk.
        reloaded = SweepStore(path)
        assert len(reloaded) == 1
        assert reloaded.get("k") == _metrics()

    def test_hit_miss_counters(self, tmp_path):
        store = SweepStore(tmp_path / "s.jsonl")
        store.get("absent")
        store.put("k", _metrics())
        store.get("k")
        assert (store.hits, store.misses) == (1, 1)

    def test_last_write_wins(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = SweepStore(path)
        store.put("k", _metrics(1.0))
        store.put("k", _metrics(2.0))
        assert SweepStore(path).get("k") == _metrics(2.0)

    def test_torn_tail_line_tolerated(self, tmp_path):
        path = tmp_path / "s.jsonl"
        SweepStore(path).put("k", _metrics())
        with path.open("a") as handle:
            handle.write('{"schema": 1, "key": "torn", "metr')
        store = SweepStore(path)
        assert store.get("k") == _metrics()
        assert "torn" not in store

    def test_schema_mismatch_ignored(self, tmp_path):
        path = tmp_path / "s.jsonl"
        record = {
            "schema": SCHEMA_VERSION + 1,
            "key": "old",
            "metrics": _metrics().as_dict(),
            "meta": {},
        }
        path.write_text(json.dumps(record) + "\n")
        assert SweepStore(path).get("old") is None

    def test_schema_is_v4_after_flow_schedules(self):
        # ScenarioConfig grew a FlowSchedule and AggregateMetrics the churn
        # columns, so every scenario hash and stored row shape changed.
        assert SCHEMA_VERSION == 4

    def test_v2_rows_skipped_on_load(self, tmp_path):
        # Regression: a store written by the pre-attenuation code (schema
        # 2, e.g. a stale parking-lot fluid point) must not serve its rows
        # — they would silently mix unattenuated multi-hop results into a
        # corrected sweep — while the hit/miss counters keep counting the
        # *current-schema* lookups correctly.
        path = tmp_path / "s.jsonl"
        stale = {
            "schema": 2,
            "key": "lot-point",
            "metrics": _metrics(9.0).as_dict(),
            "meta": {"mix": "BBRv1", "topology": "parking-lot", "hops": 3},
        }
        path.write_text(json.dumps(stale) + "\n")
        store = SweepStore(path)
        assert len(store) == 0
        assert "lot-point" not in store
        assert store.get("lot-point") is None
        assert (store.hits, store.misses) == (0, 1)
        assert store.rows(topology="parking-lot") == []
        # A fresh v3 write under the same key supersedes the stale row and
        # counts as a hit from then on.
        store.put("lot-point", _metrics(1.0), meta={"mix": "BBRv1"})
        assert store.get("lot-point") == _metrics(1.0)
        assert (store.hits, store.misses) == (1, 1)
        reloaded = SweepStore(path)
        assert reloaded.get("lot-point") == _metrics(1.0)

    def test_v3_rows_skipped_on_load(self, tmp_path):
        # Regression: a store written by the pre-FlowSchedule code (schema
        # 3) must not serve its rows — they lack the churn metric columns
        # and predate the schedule-aware scenario hash — while current-
        # schema writes round-trip normally alongside the stale line.
        path = tmp_path / "s.jsonl"
        stale = {
            "schema": 3,
            "key": "pre-churn-point",
            "metrics": {
                # v3 rows carried only the five original aggregate metrics.
                "jain_fairness": 1.0,
                "loss_percent": 0.5,
                "buffer_occupancy_percent": 40.0,
                "utilization_percent": 95.0,
                "jitter_ms": 0.2,
            },
            "meta": {"mix": "BBRv1", "buffer_bdp": 1.0},
        }
        path.write_text(json.dumps(stale) + "\n")
        store = SweepStore(path)
        assert len(store) == 0
        assert store.get("pre-churn-point") is None
        assert (store.hits, store.misses) == (0, 1)
        store.put("pre-churn-point", _metrics(2.0), meta={"mix": "BBRv1"})
        assert SweepStore(path).get("pre-churn-point") == _metrics(2.0)

    def test_rows_filtering(self, tmp_path):
        store = SweepStore(tmp_path / "s.jsonl")
        store.put("a", _metrics(1.0), meta={"mix": "BBRv1", "seed": 1})
        store.put("b", _metrics(2.0), meta={"mix": "BBRv1", "seed": 2})
        store.put("c", _metrics(3.0), meta={"mix": "BBRv2", "seed": 1})
        rows = store.rows(mix="BBRv1")
        assert {row["seed"] for row in rows} == {1, 2}
        assert all("jain_fairness" in row for row in rows)

    def test_resolve_store(self, tmp_path, monkeypatch):
        assert resolve_store(None) is None
        store = resolve_store(tmp_path / "a.jsonl")
        assert isinstance(store, SweepStore)
        assert resolve_store(store) is store
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env.jsonl"))
        env_store = resolve_store(None)
        assert env_store is not None and env_store.path.name == "env.jsonl"


class TestRunPointStore:
    def test_warm_point_skips_computation(self, tmp_path, monkeypatch):
        store = SweepStore(tmp_path / "s.jsonl")
        cold = sweep.run_point("BBRv1", 1.0, "droptail", store=store, **FAST)
        sweep.clear_cache()
        # Any recomputation would construct a simulator; forbid it outright.
        monkeypatch.setattr(
            sweep, "FluidSimulator", lambda *a, **k: pytest.fail("point was recomputed")
        )
        warm = sweep.run_point(
            "BBRv1", 1.0, "droptail", store=SweepStore(store.path), **FAST
        )
        assert warm.metrics == cold.metrics

    def test_store_key_respects_seed(self, tmp_path):
        store = SweepStore(tmp_path / "s.jsonl")
        sweep.run_point(
            "BBRv1", 1.0, "droptail", substrate="emulation", seed=1,
            duration_s=0.5, store=store,
        )
        sweep.run_point(
            "BBRv1", 1.0, "droptail", substrate="emulation", seed=2,
            duration_s=0.5, store=store,
        )
        assert len(store) == 2
        seeds = {record["meta"]["seed"] for record in store.records()}
        assert seeds == {1, 2}


class TestRunSweepStore:
    GRID = dict(
        mixes=["BBRv1"], buffers_bdp=[1.0, 2.0], disciplines=["droptail"],
        substrate="emulation", duration_s=0.5,
    )

    def test_warm_sweep_recomputes_nothing(self, tmp_path, monkeypatch):
        store = SweepStore(tmp_path / "s.jsonl")
        cold = sweep.run_sweep(store=store, **self.GRID)
        sweep.clear_cache()
        monkeypatch.setattr(
            sweep,
            "EmulationRunner",
            lambda *a, **k: pytest.fail("point was recomputed"),
        )
        warm_store = SweepStore(store.path)
        warm = sweep.run_sweep(store=warm_store, **self.GRID)
        assert warm_store.hits == len(cold) and warm_store.misses == 0
        assert [p.metrics for p in warm] == [p.metrics for p in cold]

    def test_interrupted_sweep_resumes_from_store(self, tmp_path, monkeypatch):
        store_path = tmp_path / "s.jsonl"
        real_runner = sweep.EmulationRunner
        calls: list[float] = []

        def failing_runner(config, **kwargs):
            calls.append(config.bottleneck.buffer_bdp)
            if config.bottleneck.buffer_bdp == 2.0:
                raise RuntimeError("simulated crash")
            return real_runner(config, **kwargs)

        monkeypatch.setattr(sweep, "EmulationRunner", failing_runner)
        with pytest.raises(sweep.SweepPointError) as excinfo:
            sweep.run_sweep(store=SweepStore(store_path), **self.GRID)
        # The wrapped error names the failing grid point...
        assert excinfo.value.buffer_bdp == 2.0
        assert "BBRv1" in str(excinfo.value)
        # ...and the completed point was persisted before the crash.
        assert len(SweepStore(store_path)) == 1

        sweep.clear_cache()
        calls.clear()
        monkeypatch.setattr(sweep, "EmulationRunner", real_runner, raising=True)
        count_runner = lambda config, **kwargs: calls.append(
            config.bottleneck.buffer_bdp
        ) or real_runner(config, **kwargs)
        monkeypatch.setattr(sweep, "EmulationRunner", count_runner)
        points = sweep.run_sweep(store=SweepStore(store_path), **self.GRID)
        # Resume recomputes only the point that failed.
        assert calls == [2.0]
        assert len(points) == 2


class TestSeedsAxis:
    def test_seed_list_normalisation(self):
        assert sweep._seed_list(3) == [1, 2, 3]
        assert sweep._seed_list([7, 9]) == [7, 9]
        with pytest.raises(ValueError):
            sweep._seed_list(0)
        with pytest.raises(ValueError):
            sweep._seed_list([])
        with pytest.raises(ValueError):
            sweep._seed_list([1, 1])

    def test_run_point_seeds_returns_summary(self):
        point = sweep.run_point(
            "BBRv1", 1.0, "droptail", substrate="emulation", seeds=2, duration_s=0.5
        )
        assert isinstance(point, sweep.SummaryPoint)
        assert point.seeds == (1, 2)
        assert point.summary.num_seeds == 2
        row = point.row()
        assert "jain_fairness_mean" in row and "jain_fairness_ci95" in row

    def test_run_sweep_seeds_returns_summaries(self, tmp_path):
        store = SweepStore(tmp_path / "s.jsonl")
        summaries = sweep.run_sweep(
            mixes=["BBRv1"], buffers_bdp=[1.0], disciplines=["droptail"],
            substrate="emulation", duration_s=0.5, seeds=3, store=store,
        )
        assert len(summaries) == 1
        summary = summaries[0]
        assert isinstance(summary, sweep.SummaryPoint)
        # Distinct seeds genuinely vary (the RNG-collision fix keeps them
        # independent), so the spread over seeds is non-degenerate.
        assert summary.summary.std.loss_percent >= 0.0
        # Per-seed rows are recoverable from the store.
        rows = store.rows(mix="BBRv1", substrate="emulation")
        assert {row["seed"] for row in rows} == {1, 2, 3}

    def test_fluid_seeds_are_deterministic(self):
        summaries = sweep.run_sweep(
            mixes=["BBRv1"], buffers_bdp=[1.0], disciplines=["droptail"],
            seeds=2, **FAST,
        )
        # The fluid model is deterministic: replicas agree exactly.
        assert summaries[0].summary.std.utilization_percent == 0.0
        assert summaries[0].summary.ci95.jain_fairness == 0.0

    def test_fluid_seed_replicas_computed_once(self, tmp_path, monkeypatch):
        # The fluid model never consumes the seed, so K replicas must cost
        # one integration and one store record, not K.
        computed: list = []
        real = sweep.simulate_many

        def counting(configs):
            computed.extend(configs)
            return real(configs)

        monkeypatch.setattr(sweep, "simulate_many", counting)
        store = SweepStore(tmp_path / "s.jsonl")
        summaries = sweep.run_sweep(
            mixes=["BBRv1"], buffers_bdp=[1.0], disciplines=["droptail"],
            seeds=3, store=store, **FAST,
        )
        assert len(computed) == 1
        assert summaries[0].summary.num_seeds == 3
        assert len(store) == 1

    def test_env_store_persists_each_point_exactly_once(self, tmp_path, monkeypatch):
        # Regression: the serial path used to persist twice when the store
        # came from REPRO_STORE (once inside run_point, once in run_sweep).
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_STORE", str(path))
        sweep.run_sweep(
            mixes=["BBRv1"], buffers_bdp=[1.0], disciplines=["droptail"],
            substrate="emulation", duration_s=0.5,
        )
        assert len(path.read_text().strip().splitlines()) == 1

    def test_store_false_disables_env_store(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_STORE", str(path))
        sweep.run_point("BBRv1", 1.0, "droptail", store=False, **FAST)
        assert not path.exists()

    def test_series_on_summary_points_uses_mean(self):
        summaries = sweep.run_sweep(
            mixes=["BBRv1"], buffers_bdp=[1.0], disciplines=["droptail"],
            seeds=2, **FAST,
        )
        line = sweep.series(summaries, "utilization_percent", "BBRv1", "droptail")
        assert line[0][0] == 1.0
        ci_line = sweep.series_ci(summaries, "utilization_percent", "BBRv1", "droptail")
        assert len(ci_line[0]) == 3


class TestMetricsSummary:
    def test_single_replica_zero_spread(self):
        summary = summarize_metrics([_metrics(1.0)])
        assert summary.num_seeds == 1
        assert summary.mean == _metrics(1.0)
        assert summary.std.jain_fairness == 0.0
        assert summary.ci95.jain_fairness == 0.0

    def test_two_replicas_student_t(self):
        summary = summarize_metrics([_metrics(1.0), _metrics(3.0)])
        assert summary.mean.jain_fairness == pytest.approx(2.0)
        # ddof=1 std of [1, 3] is sqrt(2); CI = t_{0.975,1} * std / sqrt(2).
        assert summary.std.jain_fairness == pytest.approx(2.0**0.5)
        assert summary.ci95.jain_fairness == pytest.approx(12.706 * 2.0**0.5 / 2.0**0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_metrics([])

"""Tests of the fluid model's upstream loss/capacity arrival attenuation.

The paper's Eq. 1 feeds every link the flows' delayed *sending* rates —
correct on a single bottleneck, an overestimate downstream of a lossy hop.
The corrected pipelines attenuate the per-link arrivals along each flow's
path (survival product over upstream links, capped by the smallest upstream
delivered capacity) and take Eq. 17 at the *effective* (survival-scaled)
bottleneck.  These tests pin:

* bit-identity where attenuation must be a no-op — one-hop scenarios and
  loss-free multi-hop scenarios whose rates stay below every upstream
  capacity — in both the vectorized and scalar pipelines,
* exact scalar/vectorized equivalence in heavy-loss multi-hop regimes,
* the physical invariants (downstream arrivals thinned by upstream loss,
  capped by upstream capacity), and
* the headline acceptance criterion: on a heavy-loss heterogeneous 3-hop
  parking lot the fluid per-link utilization/loss agree with the packet
  emulator within bounded error, strictly better than the unattenuated
  model did.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import topology
from repro.config import FlowConfig, FluidParams, ScenarioConfig, dumbbell_scenario
from repro.core import simulate
from repro.core.simulator import simulate_many
from repro.emulation.runner import emulate
from repro.experiments.scenarios import parking_lot_scenario
from repro.metrics import link_metrics

FAST = FluidParams(dt=1e-3)


def heavy_loss_lot(duration_s: float = 2.0) -> ScenarioConfig:
    """Heterogeneous 3-hop parking lot in a heavy-loss regime.

    hop-1 is half the capacity of hops 2-3, buffers are small and RED, so
    the 10 BBRv1 long flows overload hop-1 hard (>50 % loss) and the
    downstream hops see strongly thinned traffic — exactly where the
    unattenuated Eq. 1 overestimated load.
    """
    return parking_lot_scenario(
        "BBRv1",
        hops=3,
        cross_flows=1,
        capacity_mbps=(50.0, 100.0, 100.0),
        buffer_bdp=0.5,
        discipline="red",
        duration_s=duration_s,
        seed=1,
    )


def trace_pairs_equal(a, b) -> None:
    """Assert two fluid traces are bit-identical."""
    assert np.array_equal(a.time, b.time)
    for fa, fb in zip(a.flows, b.flows, strict=True):
        assert np.array_equal(fa.rate, fb.rate)
        assert np.array_equal(fa.delivery_rate, fb.delivery_rate)
        assert np.array_equal(fa.cwnd, fb.cwnd)
        assert np.array_equal(fa.rtt, fb.rtt)
    for la, lb in zip(a.links, b.links, strict=True):
        assert np.array_equal(la.queue, lb.queue)
        assert np.array_equal(la.loss_prob, lb.loss_prob)
        assert np.array_equal(la.arrival_rate, lb.arrival_rate)
        assert np.array_equal(la.departure_rate, lb.departure_rate)


class TestBitIdentityRegressions:
    """Attenuation must be a no-op exactly where the model says it is."""

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_one_hop_unchanged_by_attenuation(self, vectorized):
        config = dumbbell_scenario(
            ["bbr1", "reno", "cubic", "bbr2"], duration_s=0.5, fluid=FAST
        )
        a = simulate(config, vectorized=vectorized)
        b = simulate(config, vectorized=vectorized, attenuate_arrivals=False)
        trace_pairs_equal(a, b)

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_one_hop_topology_unchanged_by_attenuation(self, vectorized):
        topo = topology.dumbbell(3)
        config = ScenarioConfig(
            bottleneck=None,
            flows=tuple(FlowConfig(cca=c) for c in ("bbr1", "reno", "cubic")),
            duration_s=0.5,
            fluid=FAST,
            topology=topo,
        )
        a = simulate(config, vectorized=vectorized)
        b = simulate(config, vectorized=vectorized, attenuate_arrivals=False)
        trace_pairs_equal(a, b)

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_lossfree_multihop_unchanged_by_attenuation(self, vectorized):
        # Loss-based CCAs ramping from small windows over a deep-buffered
        # chain: zero loss everywhere and rates below every upstream
        # capacity, so both the survival product and the capacity cap are
        # inactive and the corrected pipeline must reproduce the
        # unattenuated model bit for bit.
        topo = topology.parking_lot(
            3, cross_flows=1, long_flows=2, hop_delay_s=0.010 / 3, buffer_bdp=7.0
        )
        flows = tuple(
            FlowConfig(cca=cca, access_delay_s=0.005)
            for cca in ("reno", "cubic", "reno", "cubic", "reno")
        )
        config = ScenarioConfig(
            bottleneck=None, flows=flows, duration_s=0.5, fluid=FAST, topology=topo
        )
        a = simulate(config, vectorized=vectorized)
        b = simulate(config, vectorized=vectorized, attenuate_arrivals=False)
        assert max(float(link.loss_prob.max()) for link in a.links) == 0.0
        trace_pairs_equal(a, b)


class TestAttenuatedPipelines:
    def test_scalar_matches_vectorized_heavy_loss(self):
        config = heavy_loss_lot(duration_s=0.75)
        a = simulate(config)
        b = simulate(config, vectorized=False)
        for fa, fb in zip(a.flows, b.flows, strict=True):
            np.testing.assert_allclose(fa.rate, fb.rate, rtol=1e-9, atol=1e-9)
            np.testing.assert_allclose(
                fa.delivery_rate, fb.delivery_rate, rtol=1e-9, atol=1e-9
            )
            np.testing.assert_allclose(fa.rtt, fb.rtt, rtol=1e-9, atol=1e-9)
        for la, lb in zip(a.links, b.links, strict=True):
            np.testing.assert_allclose(la.queue, lb.queue, rtol=1e-9, atol=1e-9)
            np.testing.assert_allclose(
                la.arrival_rate, lb.arrival_rate, rtol=1e-9, atol=1e-9
            )
            np.testing.assert_allclose(
                la.loss_prob, lb.loss_prob, rtol=1e-9, atol=1e-9
            )

    def test_simulate_many_lockstep_with_attenuation(self):
        config = heavy_loss_lot(duration_s=0.5)
        deep = config.with_buffer(2.0)
        batched = simulate_many([config, deep])
        alone = [simulate(config), simulate(deep)]
        for t_batch, t_alone in zip(batched, alone, strict=True):
            for fa, fb in zip(t_batch.flows, t_alone.flows, strict=True):
                np.testing.assert_allclose(fa.rate, fb.rate, rtol=1e-9, atol=1e-9)
            for la, lb in zip(t_batch.links, t_alone.links, strict=True):
                np.testing.assert_allclose(la.queue, lb.queue, rtol=1e-9, atol=1e-9)

    def test_ragged_path_lengths_in_one_batch(self):
        # A lockstep batch mixing 3-link parking-lot paths with 2-link
        # multi-dumbbell spans exercises the padded (ragged) segment
        # matrix; every flow must still match its solo integration.
        from repro.experiments.scenarios import multi_dumbbell_scenario

        lot = parking_lot_scenario(
            "BBRv1", hops=3, buffer_bdp=0.5, discipline="red",
            duration_s=0.5, dt=1e-3,
        )
        md = multi_dumbbell_scenario(
            "BBRv1", dumbbells=2, span_flows=2, buffer_bdp=0.5,
            discipline="red", duration_s=0.5, dt=1e-3,
        )
        batched = simulate_many([lot, md])
        alone = [simulate(lot), simulate(md)]
        for t_batch, t_alone in zip(batched, alone, strict=True):
            for fa, fb in zip(t_batch.flows, t_alone.flows, strict=True):
                np.testing.assert_allclose(fa.rate, fb.rate, rtol=1e-9, atol=1e-9)
                np.testing.assert_allclose(
                    fa.delivery_rate, fb.delivery_rate, rtol=1e-9, atol=1e-9
                )

    def test_upstream_loss_thins_downstream_arrivals(self):
        config = heavy_loss_lot(duration_s=0.75)
        att = simulate(config)
        unatt = simulate(config, attenuate_arrivals=False)
        # hop-1 drops >40 % of its arrivals; the unattenuated model feeds
        # hops 2-3 the raw sending rates regardless.
        assert float(att.links[0].loss_prob.max()) > 0.4
        for hop in (1, 2):
            assert float(att.links[hop].arrival_rate.mean()) < 0.8 * float(
                unatt.links[hop].arrival_rate.mean()
            )

    def test_total_upstream_loss_does_not_crash_either_pipeline(self):
        # Regression: a saturated RED queue reaches loss == 1.0, zeroing
        # the downstream survival prefix.  The scalar walk used to raise
        # ZeroDivisionError on `C / S` (and the vectorized pipeline emitted
        # inf with a RuntimeWarning); both must now treat the unreachable
        # links as infinite effective capacity and stay finite — and stay
        # in lockstep with each other.
        config = parking_lot_scenario(
            "BBRv1/CUBIC",
            hops=3,
            cross_flows=4,
            capacity_mbps=(200.0, 1.0, 0.5),
            discipline="red",
            buffer_bdp=0.05,
            whi_init_bdp=50.0,
            duration_s=0.4,
            dt=1e-3,
        )
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            a = simulate(config)
            b = simulate(config, vectorized=False)
        assert max(float(link.loss_prob.max()) for link in a.links) == 1.0
        for trace in (a, b):
            for flow in trace.flows:
                assert np.all(np.isfinite(flow.rate))
                assert np.all(np.isfinite(flow.delivery_rate))
        for fa, fb in zip(a.flows, b.flows, strict=True):
            np.testing.assert_allclose(fa.rate, fb.rate, rtol=1e-9, atol=1e-9)

    def test_downstream_arrival_capped_by_upstream_capacity(self):
        # No loss anywhere (huge buffers), but BBR probes 25 % above the
        # 50 Mbps hop-1 capacity: traffic entering hop-2 can still never
        # exceed what hop-1 can deliver.
        topo = topology.parking_lot(
            2,
            cross_flows=0,
            long_flows=1,
            capacity_mbps=(50.0, 100.0),
            hop_delay_s=0.005,
            buffer_bdp=20.0,
        )
        config = ScenarioConfig(
            bottleneck=None,
            flows=(FlowConfig(cca="bbr1", access_delay_s=0.005),),
            duration_s=1.0,
            fluid=FluidParams(dt=2.5e-4),
            topology=topo,
        )
        c1_pps = 50.0e6 / (1500 * 8)
        att = simulate(config)
        unatt = simulate(config, attenuate_arrivals=False)
        assert float(unatt.links[1].arrival_rate.max()) > 1.2 * c1_pps
        assert float(att.links[1].arrival_rate.max()) <= c1_pps * (1 + 1e-12)


class TestCrossSubstrateAgreement:
    """Acceptance criterion: fluid vs emulator on the heavy-loss lot."""

    @pytest.fixture(scope="class")
    def traces(self):
        config = heavy_loss_lot(duration_s=2.0)
        return {
            "att": link_metrics(simulate(config)),
            "unatt": link_metrics(simulate(config, attenuate_arrivals=False)),
            "emu": link_metrics(emulate(config)),
        }

    def test_downstream_utilization_error_bounded_and_reduced(self, traces):
        for hop in (1, 2):
            emu = traces["emu"][hop].utilization_percent
            att_err = abs(traces["att"][hop].utilization_percent - emu)
            unatt_err = abs(traces["unatt"][hop].utilization_percent - emu)
            assert att_err / emu < 0.25, (
                f"hop-{hop + 1} utilization off by {att_err:.1f} points "
                f"(emulator {emu:.1f})"
            )
            assert att_err < unatt_err, (
                f"attenuation did not improve hop-{hop + 1} utilization: "
                f"{att_err:.1f} vs {unatt_err:.1f} points"
            )

    def test_downstream_loss_error_bounded_and_reduced(self, traces):
        for hop in (1, 2):
            emu = traces["emu"][hop].loss_percent
            att_err = abs(traces["att"][hop].loss_percent - emu)
            unatt_err = abs(traces["unatt"][hop].loss_percent - emu)
            assert att_err < 5.0, (
                f"hop-{hop + 1} loss off by {att_err:.1f} points "
                f"(emulator {emu:.1f} %)"
            )
            assert att_err < unatt_err

    def test_bottleneck_hop_agreement_unharmed(self, traces):
        # The shared hop-1 was already modelled correctly; attenuation must
        # not disturb it (its arrivals have no upstream terms).
        emu = traces["emu"][0].utilization_percent
        att = traces["att"][0].utilization_percent
        assert abs(att - emu) / emu < 0.05

"""Tests of the experiment harness: scenarios, sweeps, figures, reports."""

from __future__ import annotations

import pytest

from repro.experiments import figures, report, scenarios, sweep


class TestScenarios:
    def test_all_mixes_have_ten_senders(self):
        for mix, ccas in scenarios.CCA_MIXES.items():
            assert len(ccas) == 10, mix

    def test_heterogeneous_mixes_are_half_half(self):
        for mix, ccas in scenarios.CCA_MIXES.items():
            if "/" in mix:
                distinct = set(ccas)
                assert len(distinct) == 2, mix
                assert all(ccas.count(cca) == 5 for cca in distinct), mix

    def test_trace_validation_scenario_matches_paper(self):
        config = scenarios.trace_validation_scenario("bbr1")
        assert config.num_flows == 1
        assert config.bottleneck.capacity_mbps == 100.0
        assert config.bottleneck.delay_s == pytest.approx(0.010)
        assert config.rtt_s(0) == pytest.approx(0.0312)
        assert config.bottleneck.buffer_bdp == 1.0

    def test_aggregate_scenario_rtt_ranges(self):
        normal = scenarios.aggregate_scenario("BBRv1", 2.0, "droptail")
        short = scenarios.aggregate_scenario("BBRv1", 2.0, "droptail", short_rtt=True)
        assert 0.030 <= normal.rtt_s(0) <= 0.040
        assert 0.010 <= short.rtt_s(0) <= 0.020

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError):
            scenarios.aggregate_scenario("BBRv3", 1.0, "droptail")

    def test_competition_scenario_flow_order(self):
        config = scenarios.competition_scenario()
        assert [f.cca for f in config.flows] == ["reno", "bbr1"]


class TestSweep:
    @pytest.fixture(autouse=True)
    def _clear_cache(self):
        sweep.clear_cache()
        yield
        sweep.clear_cache()

    def fast_kwargs(self):
        return dict(duration_s=1.0, dt=1e-3)

    def test_run_point_returns_metrics(self):
        point = sweep.run_point("BBRv1", 1.0, "droptail", **self.fast_kwargs())
        assert point.mix == "BBRv1"
        assert 0.0 <= point.metrics.jain_fairness <= 1.0
        assert 0.0 <= point.metrics.utilization_percent <= 100.0

    def test_cache_reuses_results(self):
        first = sweep.run_point("BBRv1", 1.0, "droptail", **self.fast_kwargs())
        second = sweep.run_point("BBRv1", 1.0, "droptail", **self.fast_kwargs())
        assert first is second

    def test_cache_can_be_bypassed(self):
        first = sweep.run_point("BBRv1", 1.0, "droptail", **self.fast_kwargs())
        second = sweep.run_point(
            "BBRv1", 1.0, "droptail", use_cache=False, **self.fast_kwargs()
        )
        assert first is not second

    def test_run_sweep_covers_grid(self):
        points = sweep.run_sweep(
            mixes=["BBRv1", "BBRv2"],
            buffers_bdp=[1.0, 4.0],
            disciplines=["droptail"],
            **self.fast_kwargs(),
        )
        assert len(points) == 4
        assert {p.buffer_bdp for p in points} == {1.0, 4.0}

    def test_series_extraction_sorted(self):
        points = sweep.run_sweep(
            mixes=["BBRv1"], buffers_bdp=[4.0, 1.0], disciplines=["droptail"], **self.fast_kwargs()
        )
        line = sweep.series(points, "utilization_percent", "BBRv1", "droptail")
        assert [x for x, _ in line] == [1.0, 4.0]

    def test_unknown_substrate_rejected(self):
        with pytest.raises(ValueError):
            sweep.run_point("BBRv1", 1.0, "droptail", substrate="ns3")

    def test_row_flattening(self):
        point = sweep.run_point("BBRv1", 1.0, "droptail", **self.fast_kwargs())
        row = point.row()
        assert row["mix"] == "BBRv1"
        assert "jain_fairness" in row

    def test_batched_sweep_matches_per_point_runs(self):
        kwargs = dict(
            mixes=["BBRv1", "BBRv1/RENO"],
            buffers_bdp=[1.0, 4.0],
            disciplines=["droptail", "red"],
            **self.fast_kwargs(),
        )
        batched = sweep.run_sweep(**kwargs)
        for point in batched:
            reference = sweep.run_point(
                point.mix,
                point.buffer_bdp,
                point.discipline,
                use_cache=False,
                **self.fast_kwargs(),
            )
            for key, value in reference.metrics.as_dict().items():
                assert point.metrics.as_dict()[key] == pytest.approx(value, rel=1e-9, nan_ok=True)

    def test_run_sweep_serves_cached_points_before_dispatch(self):
        cached = sweep.run_point("BBRv1", 1.0, "droptail", **self.fast_kwargs())
        points = sweep.run_sweep(
            mixes=["BBRv1"], buffers_bdp=[1.0], disciplines=["droptail"], **self.fast_kwargs()
        )
        assert points[0] is cached

    def test_run_sweep_populates_cache(self):
        sweep.run_sweep(
            mixes=["BBRv1"], buffers_bdp=[1.0], disciplines=["droptail"], **self.fast_kwargs()
        )
        again = sweep.run_sweep(
            mixes=["BBRv1"], buffers_bdp=[1.0], disciplines=["droptail"], **self.fast_kwargs()
        )
        assert again[0] is sweep.run_point("BBRv1", 1.0, "droptail", **self.fast_kwargs())

    def test_cache_key_distinguishes_seed_and_sampling(self):
        def key(**overrides):
            params = dict(
                mix="BBRv1", buffer_bdp=1.0, discipline="droptail",
                substrate="emulation", short_rtt=False, duration_s=1.0,
                dt=1e-3, whi_init_bdp=None, seed=1,
                record_interval_s=0.01, scheduler="delayline",
            )
            params.update(overrides)
            return sweep._cache_key(**params)

        base = key()
        # Regression: points differing only in seed (or in the emulator's
        # sampling parameters) used to alias onto one cache slot.
        assert base != key(seed=2)
        assert base != key(record_interval_s=0.02)
        assert base != key(scheduler="closure")

    def test_run_point_caches_seeds_separately(self):
        first = sweep.run_point(
            "BBRv1", 1.0, "droptail", substrate="emulation", seed=1, duration_s=0.5
        )
        second = sweep.run_point(
            "BBRv1", 1.0, "droptail", substrate="emulation", seed=2, duration_s=0.5
        )
        assert first is not second
        # Both seeds are served from the cache on re-request.
        assert (
            sweep.run_point(
                "BBRv1", 1.0, "droptail", substrate="emulation", seed=1, duration_s=0.5
            )
            is first
        )

    def test_sweep_point_row_includes_seed(self):
        point = sweep.run_point("BBRv1", 1.0, "droptail", seed=4, **self.fast_kwargs())
        assert point.row()["seed"] == 4

    def test_workers_pool_failure_names_combo(self, monkeypatch):
        # A worker failure must not silently discard completed points and
        # must identify the failing grid coordinates.
        with pytest.raises(sweep.SweepPointError) as excinfo:
            sweep.run_sweep(
                mixes=["BBRv3-missing"], buffers_bdp=[1.0],
                disciplines=["droptail"], workers=2, **self.fast_kwargs(),
            )
        assert excinfo.value.mix == "BBRv3-missing"
        assert excinfo.value.buffer_bdp == 1.0

    def test_workers_path_matches_serial(self):
        serial = sweep.run_sweep(
            mixes=["BBRv1"], buffers_bdp=[1.0], disciplines=["droptail"], **self.fast_kwargs()
        )
        sweep.clear_cache()
        parallel = sweep.run_sweep(
            mixes=["BBRv1"],
            buffers_bdp=[1.0],
            disciplines=["droptail"],
            workers=2,
            **self.fast_kwargs(),
        )
        assert len(parallel) == len(serial) == 1
        for key, value in serial[0].metrics.as_dict().items():
            assert parallel[0].metrics.as_dict()[key] == pytest.approx(value, rel=1e-9, nan_ok=True)


class TestFigures:
    def test_theorem_table_rows(self):
        rows = figures.theorem_table(flow_counts=(2, 10))
        assert len(rows) == 2
        for row in rows:
            assert row["thm2_stable"] and row["thm3_stable"] and row["thm5_stable"]
            assert row["thm1_queue_bdp"] == pytest.approx(1.0)
            assert row["thm4_queue_bdp"] < 0.25

    def test_convergence_demo_reaches_expected_queue(self):
        result = figures.convergence_demo("bbr2", num_flows=5, duration_s=40.0)
        assert result["final_queue_pkts"] == pytest.approx(
            result["expected_queue_pkts"], rel=0.05
        )

    def test_figure_2_variables_present(self):
        data = figures.figure_2(duration_s=0.3, dt=5e-4)
        assert set(data) == {"bbr1", "bbr2"}
        assert "w_hi_pkts" in data["bbr2"]
        assert len(data["bbr1"]["time"]) > 10

    def test_aggregate_figure_requires_known_metric(self):
        with pytest.raises(ValueError):
            figures.aggregate_figure("throughput")

    def test_aggregate_figure_structure(self):
        sweep.clear_cache()
        data = figures.figure_9(
            mixes=["BBRv1"],
            buffers_bdp=[1.0],
            disciplines=["droptail"],
            duration_s=1.0,
            dt=1e-3,
        )
        assert "droptail" in data
        assert data["droptail"]["BBRv1"][0][0] == 1.0

    def test_figure_index_complete(self):
        assert set(figures.AGGREGATE_FIGURES) == {
            "fig06_fairness",
            "fig07_loss",
            "fig08_queuing",
            "fig09_utilization",
            "fig10_jitter",
        }


class TestReport:
    def test_format_table_alignment(self):
        text = report.format_table(["a", "metric"], [["x", 1.23456], ["long-name", 2.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.235" in text

    def test_format_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            report.format_table(["a", "b"], [[1]])

    def test_write_csv_roundtrip(self, tmp_path):
        rows = [{"x": 1, "y": 2.5}, {"x": 2, "y": 3.5}]
        path = report.write_csv(tmp_path / "out.csv", rows)
        content = path.read_text().strip().splitlines()
        assert content[0] == "x,y"
        assert len(content) == 3

    def test_write_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            report.write_csv(tmp_path / "out.csv", [])

    def test_series_table(self):
        text = report.series_table(
            "Fig test",
            {"BBRv1": [(1.0, 0.5), (4.0, 0.9)], "BBRv2": [(1.0, 0.7), (4.0, 0.95)]},
        )
        assert "Fig test" in text
        assert "BBRv2" in text

    def test_series_table_requires_series(self):
        with pytest.raises(ValueError):
            report.series_table("empty", {})

"""Tests of the typed event primitives (Timer, DelayLine) and the
closure-vs-delayline scheduler equivalence, plus the emulator accounting
fixes that rode along with the event-layer rewrite (spurious-RTO
reconciliation, RED idle decay, absolute-grid sampling)."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.config import dumbbell_scenario
from repro.emulation.cca.base import AckSample, LossEvent, PacketCCA
from repro.emulation.events import DelayLine, EventQueue
from repro.emulation.link import BottleneckLink
from repro.emulation.nodes import Sender
from repro.emulation.packet import Packet
from repro.emulation.queues import DropTailQueue, RedQueue
from repro.emulation.runner import EmulationRunner


class TestTimer:
    def test_fires_at_scheduled_time(self):
        events = EventQueue()
        fired = []
        timer = events.timer(lambda: fired.append(events.now))
        timer.schedule(0.5)
        events.run(until=1.0)
        assert fired == [0.5]

    def test_cancel_prevents_firing(self):
        events = EventQueue()
        fired = []
        timer = events.timer(lambda: fired.append(1))
        timer.schedule(0.5)
        timer.cancel()
        events.run(until=1.0)
        assert not fired
        assert not timer.active

    def test_rearm_replaces_pending_firing(self):
        events = EventQueue()
        fired = []
        timer = events.timer(lambda: fired.append(events.now))
        timer.schedule_at(0.5)
        timer.schedule_at(0.25)
        events.run(until=1.0)
        assert fired == [0.25]

    def test_active_and_when(self):
        events = EventQueue()
        timer = events.timer(lambda: None)
        assert not timer.active and timer.when is None
        timer.schedule_at(0.75)
        assert timer.active and timer.when == 0.75
        events.run(until=1.0)
        assert not timer.active and timer.when is None

    def test_callback_can_rearm_itself(self):
        events = EventQueue()
        fired = []
        timer = events.timer(lambda: (fired.append(events.now), timer.schedule(0.1)))
        timer.schedule(0.1)
        events.run(until=0.35)
        assert fired == pytest.approx([0.1, 0.2, 0.3])
        assert timer.active  # armed for 0.4, beyond the horizon

    def test_len_excludes_tombstoned_entries(self):
        events = EventQueue()
        timer = events.timer(lambda: None)
        timer.schedule_at(0.5)
        timer.schedule_at(0.6)  # tombstones the 0.5 entry
        assert len(events) == 1
        timer.cancel()
        assert len(events) == 0
        events.run(until=1.0)
        assert len(events) == 0

    def test_cannot_schedule_in_past(self):
        events = EventQueue()
        events.run(until=1.0)
        timer = events.timer(lambda: None)
        with pytest.raises(ValueError):
            timer.schedule_at(0.5)
        with pytest.raises(ValueError):
            timer.schedule(-0.1)


def make_packet(seq: int = 0, flow: int = 0) -> Packet:
    return Packet(flow_id=flow, seq=seq, size_bytes=1500, sent_time=0.0)


class TestDelayLine:
    def test_constant_delay_applied(self):
        events = EventQueue()
        out = []
        line = DelayLine(events, 0.25, lambda item: out.append((events.now, item)))
        line.send("a")
        events.run(until=1.0)
        assert out == [(0.25, "a")]

    def test_fifo_order_preserved(self):
        events = EventQueue()
        out = []
        line = DelayLine(events, 0.1, out.append)
        events.schedule_at(0.0, lambda: [line.send(i) for i in range(5)])
        events.run(until=1.0)
        assert out == [0, 1, 2, 3, 4]

    def test_equal_ready_times_delivered_in_send_order(self):
        # Items sent at the same instant share a ready time and must pop in
        # send order within a single batched firing.
        events = EventQueue()
        out = []
        line = DelayLine(events, 0.0, out.append)
        fired = []
        events.schedule_at(0.5, lambda: fired.append("marker"))
        events.schedule_at(0.5, lambda: [line.send(i) for i in (1, 2, 3)])
        events.run(until=1.0)
        assert out == [1, 2, 3]

    def test_one_live_event_for_many_items(self):
        events = EventQueue()
        line = DelayLine(events, 0.5, lambda item: None)
        for i in range(100):
            line.send(i)
        assert len(line) == 100
        assert len(events) == 1  # a single pop event services the whole line

    def test_interleaved_sends_keep_timing(self):
        events = EventQueue()
        out = []
        line = DelayLine(events, 0.2, lambda item: out.append((round(events.now, 6), item)))
        events.schedule_at(0.0, lambda: line.send("x"))
        events.schedule_at(0.1, lambda: line.send("y"))
        events.run(until=1.0)
        assert out == [(0.2, "x"), (0.3, "y")]

    def test_send_at_requires_monotone_ready_times(self):
        events = EventQueue()
        line = DelayLine(events, 0.0, lambda item: None)
        line.send_at(0.5, "a")
        with pytest.raises(ValueError):
            line.send_at(0.4, "b")

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            DelayLine(EventQueue(), -0.1, lambda item: None)


class _InertCCA(PacketCCA):
    """A CCA that never changes its window (for white-box sender tests)."""

    name = "inert"

    def __init__(self, cwnd: float = 100.0) -> None:
        super().__init__()
        self.cwnd_pkts = cwnd
        self.timeouts = 0

    def on_ack(self, sample: AckSample) -> None:
        pass

    def on_loss(self, event: LossEvent) -> None:
        pass

    def on_timeout(self, now: float) -> None:
        self.timeouts += 1


def _make_sender(events: EventQueue) -> Sender:
    link = BottleneckLink(
        events=events,
        queue=DropTailQueue(capacity_pkts=100),
        capacity_pps=1000.0,
        delay_s=0.0,
        deliver=lambda p: None,
    )
    return Sender(
        events=events,
        flow_id=0,
        cca=_InertCCA(),
        bottleneck=link,
        access_delay_s=0.0,
        return_delay_s=0.0,
        mss_bytes=1500,
    )


class TestSpuriousRtoReconciliation:
    def test_late_ack_moves_loss_back_to_delivery(self):
        events = EventQueue()
        sender = _make_sender(events)
        p0 = Packet(0, 0, 1500, 0.0, 0)
        p1 = Packet(0, 1, 1500, 0.0, 0)
        sender.inflight.update({0: p0, 1: p1})
        sender.n_inflight = 2
        sender.sent_count = 2
        sender.next_seq = 2
        # Let the watchdog believe the connection stalled past the RTO.
        events.now = 2.0
        sender._check_timeout()
        assert sender.lost_count == 2
        assert sender.delivered_count == 0
        assert sender.cca.timeouts == 1
        # The ACK for packet 0 arrives late: it was genuinely delivered.
        sender._on_ack(p0)
        assert sender.delivered_count == 1
        assert sender.lost_count == 1
        assert sender.reconciled_count == 1
        # A second copy of the same ACK must not double-count.
        sender._on_ack(p0)
        assert sender.delivered_count == 1
        assert sender.lost_count == 1

    def test_marks_confirmed_lost_are_purged_fifo(self):
        events = EventQueue()
        sender = _make_sender(events)
        packets = {seq: Packet(0, seq, 1500, 0.0, 0) for seq in range(3)}
        sender.inflight.update(packets)
        sender.n_inflight = 3
        sender.sent_count = 3
        sender.next_seq = 3
        events.now = 2.0
        sender._check_timeout()
        assert sender._timeout_marked == {0, 1, 2}
        # ACK for seq 2 arrives: seqs 0 and 1 can never be ACKed any more
        # (FIFO network), so their marks are dropped and they stay lost.
        sender._on_ack(packets[2])
        assert sender._timeout_marked == set()
        assert sender.delivered_count == 1
        assert sender.lost_count == 2
        # Stale duplicate ACKs for purged marks change nothing.
        sender._on_ack(packets[0])
        assert sender.delivered_count == 1
        assert sender.lost_count == 2


class TestRedIdleDecay:
    def test_decide_applies_idle_decay(self):
        events = EventQueue()
        queue = RedQueue(capacity_pkts=100, rng=random.Random(1))
        queue.bind_clock(events, service_time_s=0.001)
        queue.avg_queue = 50.0
        queue.notify_idle(0.0)
        events.now = 1.0  # 1000 service times of idleness
        assert queue.decide(0, 1.0)
        expected = 50.0 * (1.0 - queue.ewma_weight) ** 1000
        assert queue.avg_queue == pytest.approx(expected)
        assert queue.avg_queue < 10.0

    def test_offer_applies_idle_decay_after_pop_empties_queue(self):
        events = EventQueue()
        queue = RedQueue(capacity_pkts=100, rng=random.Random(1))
        queue.bind_clock(events, service_time_s=0.001)
        queue.offer(make_packet(0))
        queue.avg_queue = 40.0
        queue.pop()  # queue empties -> idle period starts at now=0
        events.now = 0.5
        queue.offer(make_packet(1))
        expected = 40.0 * (1.0 - queue.ewma_weight) ** 500
        assert queue.avg_queue == pytest.approx(expected)

    def test_unbound_queue_keeps_legacy_ewma(self):
        # Without a clock (the pre-change closure path) the EWMA decays one
        # step per arrival, exactly as before.
        queue = RedQueue(capacity_pkts=100, rng=random.Random(1))
        queue.avg_queue = 40.0
        queue.offer(make_packet(0))
        assert queue.avg_queue == pytest.approx(40.0 * (1.0 - queue.ewma_weight))

    def test_decay_only_hits_first_arrival_after_idle(self):
        events = EventQueue()
        queue = RedQueue(capacity_pkts=100, rng=random.Random(1))
        queue.bind_clock(events, service_time_s=0.001)
        queue.avg_queue = 50.0
        queue.notify_idle(0.0)
        events.now = 1.0
        queue.decide(0, 1.0)
        decayed = queue.avg_queue
        queue.decide(3, 1.0)  # regular EWMA from here on
        w = queue.ewma_weight
        assert queue.avg_queue == pytest.approx((1.0 - w) * decayed + w * 3)


class TestSchedulerEquivalence:
    """Same seeds => identical droptail accounting across event layers."""

    @pytest.mark.parametrize("ccas", [["bbr1"] * 3, ["bbr1", "reno", "cubic", "bbr2"]])
    def test_droptail_counts_identical(self, ccas):
        config = dumbbell_scenario(ccas, duration_s=2.0, seed=3)
        old = EmulationRunner(config, scheduler="closure")
        old.run()
        new = EmulationRunner(config, scheduler="delayline")
        new.run()
        counts_old = [
            (s.sent_count, s.delivered_count, s.lost_count) for s in old.senders.values()
        ]
        counts_new = [
            (s.sent_count, s.delivered_count, s.lost_count) for s in new.senders.values()
        ]
        assert counts_old == counts_new
        assert old.bottleneck.queue.dropped == new.bottleneck.queue.dropped
        assert old.bottleneck.transmitted == new.bottleneck.transmitted

    def test_droptail_traces_identical(self):
        config = dumbbell_scenario(["bbr1"] * 2, duration_s=2.0, seed=11)
        trace_old = EmulationRunner(config, scheduler="closure").run()
        trace_new = EmulationRunner(config, scheduler="delayline").run()
        for old_flow, new_flow in zip(trace_old.flows, trace_new.flows, strict=True):
            np.testing.assert_allclose(old_flow.rate, new_flow.rate)
            np.testing.assert_allclose(old_flow.delivery_rate, new_flow.delivery_rate)
        np.testing.assert_allclose(
            trace_old.bottleneck().queue, trace_new.bottleneck().queue
        )
        np.testing.assert_allclose(
            trace_old.bottleneck().loss_prob, trace_new.bottleneck().loss_prob
        )

    def test_unknown_scheduler_rejected(self):
        config = dumbbell_scenario(["bbr1"], duration_s=1.0)
        with pytest.raises(ValueError):
            EmulationRunner(config, scheduler="quantum")


class TestSamplingGrid:
    def test_timestamps_on_exact_absolute_grid(self):
        config = dumbbell_scenario(["bbr1"], duration_s=1.0)
        trace = EmulationRunner(config, record_interval_s=0.01).run()
        expected = (np.arange(len(trace.time)) + 1.0) * 0.01
        # Bitwise equality: sample k fires at exactly (k + 1) * interval,
        # with no accumulated floating-point drift.
        np.testing.assert_array_equal(trace.time, expected)
        assert len(trace.time) == 100

    def test_heap_stays_small_while_running(self):
        # The tentpole invariant: the delay-line scheduler keeps O(flows +
        # links) live events regardless of how many packets are in flight.
        config = dumbbell_scenario(["bbr1"] * 4, duration_s=0.5)
        runner = EmulationRunner(config)
        peak = 0

        def probe():
            nonlocal peak
            peak = max(peak, len(runner.events))
            runner.events.schedule(0.01, probe)

        runner.events.schedule(0.005, probe)
        runner.run()
        # 4 senders x (pacing + watchdog + access line + return line) + the
        # sampler + the probe itself, with a little slack.
        assert peak <= 4 * 4 + 4

    def test_inflight_counter_consistent(self):
        config = dumbbell_scenario(["bbr1", "reno"], duration_s=1.0)
        runner = EmulationRunner(config)
        runner.run()
        for sender in runner.senders.values():
            assert sender.n_inflight == len(sender.inflight)

"""Tests of the fluid queue and loss models (Eq. 2, 4, 6)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import queues

positive_rates = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
capacities = st.floats(min_value=1.0, max_value=1e6, allow_nan=False)
buffers = st.floats(min_value=1.0, max_value=1e5, allow_nan=False)


class TestDroptailLoss:
    def test_no_loss_when_queue_empty(self):
        assert queues.droptail_loss(2000.0, 1000.0, 0.0, 100.0) == pytest.approx(0.0, abs=1e-9)

    def test_no_loss_when_below_capacity(self):
        assert queues.droptail_loss(500.0, 1000.0, 100.0, 100.0) == pytest.approx(0.0, abs=1e-6)

    def test_full_queue_loss_equals_excess(self):
        # With a full queue and 25% overload, 20% of the traffic is lost.
        loss = queues.droptail_loss(1250.0, 1000.0, 100.0, 100.0)
        assert loss == pytest.approx(0.2, rel=1e-2)

    def test_infinite_buffer_never_drops(self):
        assert queues.droptail_loss(2000.0, 1000.0, 1e9, math.inf) == 0.0

    def test_zero_arrival_is_lossless(self):
        assert queues.droptail_loss(0.0, 1000.0, 100.0, 100.0) == 0.0

    @given(positive_rates, capacities, buffers)
    def test_loss_bounded(self, arrival, capacity, buffer_size):
        queue = buffer_size / 2.0
        loss = queues.droptail_loss(arrival, capacity, queue, buffer_size)
        assert 0.0 <= loss <= 1.0

    @given(positive_rates, capacities, buffers)
    def test_loss_increases_with_queue(self, arrival, capacity, buffer_size):
        low = queues.droptail_loss(arrival, capacity, 0.5 * buffer_size, buffer_size)
        high = queues.droptail_loss(arrival, capacity, buffer_size, buffer_size)
        assert high >= low - 1e-12


class TestRedLoss:
    def test_proportional_to_occupancy(self):
        assert queues.red_loss(50.0, 100.0) == pytest.approx(0.5)

    def test_clamped_at_one(self):
        assert queues.red_loss(200.0, 100.0) == 1.0

    def test_infinite_buffer(self):
        assert queues.red_loss(100.0, math.inf) == 0.0

    @given(st.floats(min_value=0.0, max_value=1e5), buffers)
    def test_bounded(self, queue, buffer_size):
        assert 0.0 <= queues.red_loss(queue, buffer_size) <= 1.0


class TestDispatch:
    def test_unknown_discipline_rejected(self):
        with pytest.raises(ValueError):
            queues.loss_probability("codel", 1000.0, 1000.0, 10.0, 100.0)

    def test_red_dispatch_matches_red_loss(self):
        assert queues.loss_probability("red", 0.0, 1000.0, 30.0, 100.0) == pytest.approx(0.3)


class TestQueueIntegration:
    def test_grows_under_overload(self):
        q = queues.step_queue(0.0, 2000.0, 1000.0, 0.0, 100.0, dt=0.01)
        assert q == pytest.approx(10.0)

    def test_drains_under_underload(self):
        q = queues.step_queue(50.0, 0.0, 1000.0, 0.0, 100.0, dt=0.01)
        assert q == pytest.approx(40.0)

    def test_never_negative(self):
        assert queues.step_queue(0.0, 0.0, 1000.0, 0.0, 100.0, dt=1.0) == 0.0

    def test_never_exceeds_buffer(self):
        assert queues.step_queue(99.0, 1e6, 1000.0, 0.0, 100.0, dt=1.0) == 100.0

    def test_loss_reduces_effective_arrival(self):
        lossless = queues.step_queue(0.0, 2000.0, 1000.0, 0.0, 1e6, dt=0.01)
        lossy = queues.step_queue(0.0, 2000.0, 1000.0, 0.5, 1e6, dt=0.01)
        assert lossy < lossless

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            queues.queue_derivative(1000.0, 1000.0, 1.5, 10.0, 100.0)
        with pytest.raises(ValueError):
            queues.step_queue(0.0, 1000.0, 1000.0, 0.0, 100.0, dt=0.0)

    @given(
        st.floats(min_value=0.0, max_value=100.0),
        positive_rates,
        capacities,
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_queue_stays_in_bounds(self, queue, arrival, capacity, loss):
        buffer_size = 100.0
        new_queue = queues.step_queue(queue, arrival, capacity, loss, buffer_size, dt=0.05)
        assert 0.0 <= new_queue <= buffer_size

"""Tests of the analytic campaign layer.

Covers the four layers the analytic substrate threads through:

* model — :func:`from_scenario` adapters plus closed-form-vs-numerical
  Jacobian cross-checks for Theorems 2 and 5;
* experiments — the ``analytic`` sweep substrate, the ``--prune-analytic``
  grid pruner and its :func:`buffer_never_binds` certificate, grid
  sharding (:func:`validate_shard`) and ``SweepStore.merge_from``;
* report — phase diagrams and the prediction-vs-simulation residuals of
  :mod:`repro.experiments.phase`, including the documented agreement
  regimes (BBRv1 deep buffer, BBRv2 deep buffer) and the documented
  disagreement (BBRv2 at 4 BDP, whose fluid ``w_hi`` dynamics the reduced
  model deliberately omits);
* CLI — ``repro-bbr stability``, ``store merge`` and the shard flags,
  including the two-shard-run → merge → ``status`` exit-0 workflow.
"""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

from repro import cli
from repro.analysis import (
    UnsupportedScenarioError,
    analyze_network,
    analyze_scenario,
    buffer_never_binds,
    check_bbr1_deep_buffer_stability,
    check_bbr1_numerical_stability,
    check_bbr2_numerical_stability,
    check_bbr2_stability,
    from_scenario,
    reference_network,
)
from repro.config import FlowSchedule
from repro.experiments import phase, scenarios, sweep
from repro.experiments.store import SweepStore, scenario_key
from repro.metrics.aggregate import AggregateMetrics
from repro.obs import log as obs_log


@pytest.fixture(autouse=True)
def _fresh_sweep_cache():
    """Isolate the in-process point cache and the global log level per test."""
    sweep.clear_cache()
    prev_level = obs_log.level()
    yield
    sweep.clear_cache()
    obs_log.set_level(prev_level)


def _metrics(**overrides: float) -> AggregateMetrics:
    base = dict(
        jain_fairness=1.0,
        loss_percent=0.0,
        buffer_occupancy_percent=50.0,
        utilization_percent=100.0,
        jitter_ms=0.0,
    )
    base.update(overrides)
    return AggregateMetrics(**base)


class TestJacobianCrossChecks:
    """Closed-form Jacobians vs finite-difference ones, on a parameter grid."""

    @pytest.mark.parametrize("delay_s", [0.02, 0.035, 0.05, 0.2, 0.5, 0.8])
    @pytest.mark.parametrize("num_flows", [2, 10])
    def test_theorem2_closed_form_matches_numerical(self, delay_s, num_flows):
        closed = check_bbr1_deep_buffer_stability(delay_s)
        numerical = check_bbr1_numerical_stability(
            reference_network(num_flows, rtt_s=delay_s)
        )
        assert closed.asymptotically_stable
        assert numerical.asymptotically_stable
        scale = max(1.0, abs(closed.max_real_part))
        assert closed.max_real_part == pytest.approx(
            numerical.max_real_part, rel=1e-4, abs=1e-6 * scale
        )

    @pytest.mark.parametrize("delay_s", [0.02, 0.035, 0.1])
    @pytest.mark.parametrize("num_flows", [2, 5, 10, 50])
    def test_theorem5_closed_form_matches_numerical(self, delay_s, num_flows):
        net = reference_network(num_flows, rtt_s=delay_s)
        closed = check_bbr2_stability(num_flows, delay_s)
        numerical = check_bbr2_numerical_stability(net)
        assert closed.asymptotically_stable
        assert numerical.asymptotically_stable
        scale = max(1.0, abs(closed.max_real_part))
        assert closed.max_real_part == pytest.approx(
            numerical.max_real_part, rel=1e-4, abs=1e-6 * scale
        )


class TestFromScenario:
    def test_projects_dumbbell_onto_single_bottleneck(self):
        config = scenarios.aggregate_scenario("BBRv1", buffer_bdp=2.0, discipline="droptail")
        net, ccas = from_scenario(config)
        assert net.num_flows == config.num_flows
        assert ccas == tuple(flow.cca for flow in config.flows)
        assert set(ccas) == {"bbr1"}
        assert net.capacity_pps == config.bottleneck.capacity_pps
        assert net.buffer_pkts == pytest.approx(config.buffer_packets())
        assert net.propagation_delays_s == pytest.approx(
            tuple(config.rtt_s(i) for i in range(config.num_flows))
        )

    def test_rejects_churn_schedules(self):
        config = dataclasses.replace(
            scenarios.aggregate_scenario("BBRv1", buffer_bdp=1.0, discipline="droptail"),
            schedule=FlowSchedule(arrivals="staggered", arrival_spacing_s=0.25),
        )
        with pytest.raises(UnsupportedScenarioError):
            from_scenario(config)

    def test_rejects_non_bbr_populations(self):
        config = scenarios.aggregate_scenario(
            "BBRv1/RENO", buffer_bdp=1.0, discipline="droptail"
        )
        with pytest.raises(UnsupportedScenarioError):
            analyze_scenario(config)

    def test_mixed_bbr_population_analyzes_numerically(self):
        config = scenarios.aggregate_scenario(
            "BBRv1/BBRv2", buffer_bdp=4.0, discipline="droptail"
        )
        point = analyze_scenario(config)
        assert point.version == "mixed"
        assert point.method == "numerical"
        assert point.classification in ("stable", "oscillatory", "unstable")


class TestAnalyticSubstrate:
    def test_run_point_predicts_and_stores_analysis(self, tmp_path):
        store = SweepStore(tmp_path / "analytic.jsonl")
        point = sweep.run_point(
            "BBRv1", 4.0, "droptail", substrate="analytic", store=store
        )
        assert point.substrate == "analytic"
        assert point.analysis is not None
        assert point.analysis["classification"] in ("stable", "oscillatory")
        assert point.metrics.jitter_ms == 0.0
        assert point.metrics.utilization_percent == pytest.approx(100.0)
        (record,) = store.select()
        assert record["meta"]["substrate"] == "analytic"
        assert record["meta"]["analysis"] == point.analysis
        served = sweep.run_point(
            "BBRv1", 4.0, "droptail", substrate="analytic", store=store,
            use_cache=False,
        )
        assert store.hits >= 1
        assert served.metrics == point.metrics
        store.close()

    def test_seed_replicas_share_one_record(self, tmp_path):
        store = SweepStore(tmp_path / "seeds.jsonl")
        sweep.run_sweep(
            mixes=["BBRv2"],
            buffers_bdp=[1.0],
            disciplines=["droptail"],
            substrate="analytic",
            seeds=3,
            store=store,
        )
        assert len(store) == 1
        store.close()

    def test_churn_workloads_rejected(self):
        with pytest.raises(ValueError, match="analytic substrate"):
            sweep.run_point(
                "BBRv1", 1.0, "droptail", substrate="analytic", arrivals="poisson"
            )

    def test_theorem_regimes_reported(self):
        deep = analyze_network(("bbr1",) * 10, reference_network(10, buffer_bdp=4.0))
        shallow = analyze_network(("bbr1",) * 10, reference_network(10, buffer_bdp=0.5))
        fair = analyze_network(("bbr2",) * 10, reference_network(10, buffer_bdp=4.0))
        assert (deep.regime, deep.theorems) == ("deep-buffer", "1+2")
        assert (shallow.regime, shallow.theorems) == ("shallow-buffer", "3")
        assert (fair.regime, fair.theorems) == ("fair", "4+5")
        assert deep.queue_pkts == pytest.approx(
            deep.capacity_pps * 0.035, rel=1e-12
        )
        assert shallow.loss_fraction == pytest.approx(9.0 / 50.0)
        assert fair.queue_pkts == pytest.approx(
            9.0 / 41.0 * fair.capacity_pps * 0.035, rel=1e-12
        )


class TestPruner:
    def test_certificate_scope(self):
        def scenario(mix="BBRv1", buffer_bdp=60.0, discipline="droptail"):
            return scenarios.aggregate_scenario(
                mix, buffer_bdp=buffer_bdp, discipline=discipline
            )

        assert buffer_never_binds(scenario(buffer_bdp=60.0))
        assert buffer_never_binds(scenario(buffer_bdp=math.inf))
        # Below the provable queue supremum the buffer may bind.
        assert not buffer_never_binds(scenario(buffer_bdp=4.0))
        # Outside the certificate's hypotheses: conservative False.
        assert not buffer_never_binds(scenario(mix="BBRv2"))
        assert not buffer_never_binds(scenario(discipline="red"))
        literal = dataclasses.replace(
            scenario(), fluid=dataclasses.replace(scenario().fluid, literal_xmax=True)
        )
        assert not buffer_never_binds(literal)

    def test_pruned_points_alias_the_primary(self, tmp_path):
        store = SweepStore(tmp_path / "pruned.jsonl")
        points = sweep.run_sweep(
            mixes=["BBRv1"],
            buffers_bdp=[1.0, 60.0, 80.0],
            disciplines=["droptail"],
            substrate="fluid",
            duration_s=2.0,
            dt=1e-3,
            prune_analytic=True,
            store=store,
        )
        by_buffer = {point.buffer_bdp: point for point in points}
        assert set(by_buffer) == {1.0, 60.0, 80.0}
        primary, alias = by_buffer[60.0], by_buffer[80.0]
        # The trajectory is identical; only the occupancy normalisation
        # differs (same queue over a 80-BDP instead of a 60-BDP buffer).
        assert alias.metrics.buffer_occupancy_percent == pytest.approx(
            primary.metrics.buffer_occupancy_percent * 60.0 / 80.0
        )
        assert alias.metrics == dataclasses.replace(
            primary.metrics,
            buffer_occupancy_percent=alias.metrics.buffer_occupancy_percent,
        )
        meta = {
            record["meta"]["buffer_bdp"]: record["meta"]
            for record in store.select()
        }
        assert "pruned" not in meta[1.0]
        assert "pruned" not in meta[60.0]
        pruned = meta[80.0]["pruned"]
        assert pruned["primary_buffer_bdp"] == 60.0
        assert pruned["aliased_to"] == scenario_key(
            scenarios.aggregate_scenario(
                "BBRv1", buffer_bdp=60.0, discipline="droptail",
                duration_s=2.0, dt=1e-3,
            ),
            "fluid",
        )
        store.close()

    def test_sub_threshold_buffers_not_pruned(self, tmp_path):
        store = SweepStore(tmp_path / "kept.jsonl")
        sweep.run_sweep(
            mixes=["BBRv1"],
            buffers_bdp=[4.0, 6.0],
            disciplines=["droptail"],
            substrate="fluid",
            duration_s=2.0,
            dt=1e-3,
            prune_analytic=True,
            store=store,
        )
        for record in store.select():
            assert "pruned" not in record["meta"]
        store.close()

    def test_rejected_on_emulation(self):
        with pytest.raises(ValueError, match="prune_analytic"):
            sweep.run_sweep(
                mixes=["BBRv1"],
                buffers_bdp=[1.0],
                disciplines=["droptail"],
                substrate="emulation",
                prune_analytic=True,
            )


class TestSharding:
    def test_validate_shard(self):
        assert sweep.validate_shard(None, None) == (None, None)
        assert sweep.validate_shard(1, 4) == (1, 4)
        with pytest.raises(ValueError, match="set together"):
            sweep.validate_shard(0, None)
        with pytest.raises(ValueError, match="set together"):
            sweep.validate_shard(None, 4)
        with pytest.raises(ValueError, match="shard_index must be in"):
            sweep.validate_shard(2, 2)
        with pytest.raises(ValueError, match="shard_index must be in"):
            sweep.validate_shard(-1, 2)
        with pytest.raises(ValueError, match="at least 1"):
            sweep.validate_shard(0, 0)

    def test_shards_partition_the_grid(self, tmp_path):
        axes = dict(
            mixes=["BBRv1", "BBRv2"],
            buffers_bdp=[1.0, 4.0],
            disciplines=["droptail"],
            substrate="analytic",
        )
        full = {(p.mix, p.buffer_bdp) for p in sweep.run_sweep(**axes)}
        shards = []
        for index in range(3):
            shards.append(
                {
                    (p.mix, p.buffer_bdp)
                    for p in sweep.run_sweep(
                        shard_index=index, shard_count=3, **axes
                    )
                }
            )
        assert set().union(*shards) == full
        for i in range(3):
            for j in range(i + 1, 3):
                assert not shards[i] & shards[j]

    def test_grid_point_keys_mirror_sweep_sharding(self):
        axes = dict(
            mixes=["BBRv1", "BBRv2"],
            buffers_bdp=[1.0, 4.0],
            disciplines=["droptail"],
            substrate="analytic",
            seeds=1,
        )
        full = {key for _, key in sweep.grid_point_keys(**axes)}
        sharded = [
            {key for _, key in sweep.grid_point_keys(shard_index=i, shard_count=2, **axes)}
            for i in range(2)
        ]
        assert sharded[0] | sharded[1] == full
        assert not sharded[0] & sharded[1]


class TestStoreMerge:
    def test_last_write_wins_across_backends(self, tmp_path):
        src = SweepStore(tmp_path / "src.jsonl")
        dest = SweepStore(tmp_path / "dest.sqlite", backend="sqlite")
        dest.put("k1", _metrics(utilization_percent=10.0), meta={"origin": "dest"})
        src.put("k1", _metrics(utilization_percent=90.0), meta={"origin": "src"})
        src.put("k2", _metrics(), meta={"origin": "src"})
        results, failures = dest.merge_from(src)
        assert (results, failures) == (2, 0)
        assert len(dest) == 2
        assert dest.get("k1").utilization_percent == pytest.approx(90.0)
        src.close()
        dest.close()

    def test_results_supersede_failures(self, tmp_path):
        failed = SweepStore(tmp_path / "failed.jsonl")
        failed.put_failure("k1", "worker crashed", meta={"mix": "BBRv1"})
        succeeded = SweepStore(tmp_path / "succeeded.jsonl")
        succeeded.put("k1", _metrics(), meta={"mix": "BBRv1"})
        dest = SweepStore(tmp_path / "merged.jsonl")
        dest.merge_from(failed)
        assert [r["key"] for r in dest.failures()] == ["k1"]
        dest.merge_from(succeeded)
        assert dest.failures() == []
        assert "k1" in dest
        # The reverse order also never shadows a result with a failure.
        dest2 = SweepStore(tmp_path / "merged2.jsonl")
        dest2.merge_from(succeeded)
        dest2.merge_from(failed)
        assert dest2.failures() == []
        assert "k1" in dest2
        for s in (failed, succeeded, dest, dest2):
            s.close()


class TestCli:
    GRID = [
        "--substrate", "analytic",
        "--mixes", "BBRv1", "BBRv2",
        "--buffers", "1", "4",
        "--disciplines", "droptail",
    ]

    def test_two_shard_merge_status_workflow(self, tmp_path, capsys):
        shard0 = str(tmp_path / "shard0.jsonl")
        shard1 = str(tmp_path / "shard1.jsonl")
        merged = str(tmp_path / "merged.sqlite")
        for index, path in enumerate((shard0, shard1)):
            code = cli.main(
                ["-q", "sweep", *self.GRID, "--store", path,
                 "--shard-index", str(index), "--shard-count", "2"]
            )
            assert code == 0
        code = cli.main(["store", "merge", shard0, shard1, merged])
        assert code == 0
        code = cli.main(
            ["-q", "status", merged, "--substrate", "analytic",
             "--mixes", "BBRv1", "BBRv2", "--buffers", "1", "4",
             "--disciplines", "droptail", "--seeds", "1"]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.out + captured.err
        assert "0 remaining" in captured.out

    def test_shard_index_out_of_range_rejected(self, tmp_path, capsys):
        code = cli.main(
            ["-q", "sweep", *self.GRID, "--shard-index", "2", "--shard-count", "2"]
        )
        assert code == 2
        assert "shard_index must be in" in capsys.readouterr().err

    def test_empty_shard_exits_zero(self, tmp_path, capsys):
        # One grid point across many shards: most shards are empty, and an
        # empty slice is a completed (trivial) run for that worker.
        codes = [
            cli.main(
                ["-q", "sweep", "--substrate", "analytic", "--mixes", "BBRv1",
                 "--buffers", "1", "--disciplines", "droptail",
                 "--shard-index", str(i), "--shard-count", "8"]
            )
            for i in range(8)
        ]
        assert set(codes) == {0}
        assert any(
            "contains no grid points" in line
            for line in capsys.readouterr().out.splitlines()
        )

    def test_merge_rejects_dest_among_sources(self, tmp_path, capsys):
        path = tmp_path / "store.jsonl"
        store = SweepStore(path)
        store.put("k", _metrics())
        store.close()
        code = cli.main(["store", "merge", str(path), str(path)])
        assert code == 2
        assert "also a merge source" in capsys.readouterr().err

    def test_stability_json(self, capsys):
        code = cli.main(
            ["stability", "--flow-counts", "2", "--rtts-ms", "35",
             "--buffers", "0.25", "1", "--json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert len(document["phase"]) == 2 * 2  # versions x buffers
        assert document["thresholds"] == dict(phase.DEFAULT_THRESHOLDS)
        assert document["disagreements"] == 0
        regimes = {
            (row["version"], row["buffer_bdp"]): row["regime"]
            for row in document["phase"]
        }
        assert regimes[("bbr1", 0.25)] == "shallow-buffer"
        assert regimes[("bbr1", 1.0)] == "deep-buffer"

    def test_stability_csv(self, tmp_path, capsys):
        out = tmp_path / "phase.csv"
        code = cli.main(
            ["stability", "--flow-counts", "2", "--rtts-ms", "35",
             "--buffers", "1", "--csv", str(out)]
        )
        assert code == 0
        header, *rows = out.read_text().strip().splitlines()
        assert "classification" in header and len(rows) == 2

    def test_stability_with_unvalidatable_store(self, tmp_path, capsys):
        path = str(tmp_path / "analytic.jsonl")
        assert cli.main(["-q", "sweep", *self.GRID, "--store", path]) == 0
        code = cli.main(
            ["stability", "--flow-counts", "2", "--buffers", "1",
             "--rtts-ms", "35", "--store", path]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "no validatable simulation rows" in captured.err


class TestValidationRegimes:
    """The documented agreement regimes of the phase-diagram validation.

    The analytic predictions are equilibrium statements; the fluid rows
    are finite-horizon time averages.  Within the documented thresholds
    (:data:`repro.experiments.phase.DEFAULT_THRESHOLDS`) the BBRv1
    deep-buffer regime (Theorems 1+2) and the BBRv2 deep-buffer regime
    (Theorems 4+5, 8 BDP) agree with 30-60 s fluid averages; BBRv2 at
    4 BDP is a *documented disagreement* — the fluid model's start-up
    ``w_hi`` estimate and inflight caps (the Insight 5 mechanism) depress
    long-run utilization in ways the reduced model deliberately omits.
    """

    def test_bbr1_deep_buffer_agrees(self, tmp_path):
        store = SweepStore(tmp_path / "v1.jsonl")
        sweep.run_sweep(
            mixes=["BBRv1"],
            buffers_bdp=[4.0, 8.0],
            disciplines=["droptail"],
            substrate="fluid",
            duration_s=30.0,
            dt=1e-3,
            store=store,
        )
        rows = phase.validate_against_store(store)
        store.close()
        assert {row["buffer_bdp"] for row in rows} == {4.0, 8.0}
        for row in rows:
            # Heterogeneous RTTs put the standard mix on the numerical
            # reduced-model path rather than the equal-delay closed form.
            assert row["regime"] in ("deep-buffer", "reduced-model")
            assert row["agrees"], row

    def test_bbr2_regimes(self, tmp_path):
        store = SweepStore(tmp_path / "v2.jsonl")
        sweep.run_sweep(
            mixes=["BBRv2"],
            buffers_bdp=[4.0, 8.0],
            disciplines=["droptail"],
            substrate="fluid",
            duration_s=60.0,
            dt=1e-3,
            store=store,
        )
        rows = {row["buffer_bdp"]: row for row in phase.validate_against_store(store)}
        store.close()
        assert rows[8.0]["agrees"], rows[8.0]
        # Documented disagreement: the fluid BBRv2 model underutilizes at
        # 4 BDP (w_hi start-up estimate + inflight caps), which the reduced
        # model does not capture; the residual report surfaces it honestly.
        assert not rows[4.0]["agrees"]
        assert (
            abs(rows[4.0]["residual_utilization_percent"])
            > phase.DEFAULT_THRESHOLDS["utilization_percent"]
        )

"""Tests and properties of the smooth primitives (sigmoid, Gamma, pulses)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import smooth

finite_floats = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)


class TestSigmoid:
    def test_midpoint(self):
        assert smooth.sigmoid(0.0) == pytest.approx(0.5)

    def test_saturation(self):
        assert smooth.sigmoid(1.0) == pytest.approx(1.0, abs=1e-6)
        assert smooth.sigmoid(-1.0) == pytest.approx(0.0, abs=1e-6)

    def test_sharpness_controls_width(self):
        soft = smooth.sigmoid(0.01, sharpness=10)
        sharp = smooth.sigmoid(0.01, sharpness=1000)
        assert sharp > soft

    def test_vectorised(self):
        values = smooth.sigmoid(np.array([-1.0, 0.0, 1.0]))
        assert values.shape == (3,)
        assert np.all(np.diff(values) > 0)

    def test_invalid_sharpness(self):
        with pytest.raises(ValueError):
            smooth.sigmoid(0.0, sharpness=0.0)

    def test_no_overflow_for_large_arguments(self):
        assert smooth.sigmoid(1e9) == pytest.approx(1.0)
        assert smooth.sigmoid(-1e9) == pytest.approx(0.0)

    @given(finite_floats)
    def test_bounded(self, v):
        assert 0.0 <= smooth.sigmoid(v) <= 1.0

    @given(finite_floats, finite_floats)
    def test_monotone(self, a, b):
        lo, hi = sorted((a, b))
        assert smooth.sigmoid(lo) <= smooth.sigmoid(hi) + 1e-12


class TestSmoothRelu:
    def test_positive_branch(self):
        assert smooth.smooth_relu(1.0) == pytest.approx(1.0, abs=1e-6)

    def test_negative_branch(self):
        assert smooth.smooth_relu(-1.0) == pytest.approx(0.0, abs=1e-6)

    @given(finite_floats)
    def test_close_to_relu(self, v):
        # With the default sharpness, Gamma deviates from max(0, v) only in a
        # narrow band around zero (width of order 1/sharpness).
        assert smooth.smooth_relu(v) == pytest.approx(max(0.0, v), abs=2e-2)

    @given(finite_floats)
    def test_non_negative_for_positive_inputs(self, v):
        if v >= 0:
            assert smooth.smooth_relu(v) >= 0.0


class TestPulse:
    def test_inside_is_one(self):
        assert smooth.pulse(0.5, 0.0, 1.0) == pytest.approx(1.0, abs=1e-6)

    def test_outside_is_zero(self):
        assert smooth.pulse(2.0, 0.0, 1.0) == pytest.approx(0.0, abs=1e-6)
        assert smooth.pulse(-1.0, 0.0, 1.0) == pytest.approx(0.0, abs=1e-6)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            smooth.pulse(0.0, 1.0, 0.0)

    @given(finite_floats, finite_floats, finite_floats)
    def test_bounded(self, t, a, width):
        start, end = a, a + abs(width)
        assert 0.0 <= smooth.pulse(t, start, end) <= 1.0


class TestPhasePulse:
    def test_bbr1_phase_windows(self):
        tau_min = 0.03
        # The BBRv1 model scales the sharpness by 1/tau_min so the pulse edges
        # are much narrower than a phase (cf. Bbr1Fluid.step).
        sharpness = 200.0 / tau_min
        # Middle of phase 2 is active, middle of phase 3 is not.
        assert smooth.phase_pulse(2.5 * tau_min, 2, tau_min, sharpness) == pytest.approx(
            1.0, abs=1e-3
        )
        assert smooth.phase_pulse(3.5 * tau_min, 2, tau_min, sharpness) == pytest.approx(
            0.0, abs=1e-3
        )

    def test_phase_partition_of_unity(self):
        # Summing the pulses of all 8 phases covers the whole period.
        tau_min = 0.03
        sharpness = 200.0 / tau_min
        times = np.linspace(0.1 * tau_min, 7.9 * tau_min, 200)
        total = sum(
            smooth.phase_pulse(times, phase, tau_min, sharpness) for phase in range(8)
        )
        assert np.all(total > 0.95)
        assert np.all(total < 1.6)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            smooth.phase_pulse(0.0, -1, 0.03)
        with pytest.raises(ValueError):
            smooth.phase_pulse(0.0, 1, 0.0)

"""Tests of the ring-buffer signal histories used by the method of steps."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.history import SignalHistory, VectorHistory


class TestSignalHistory:
    def test_reads_back_delayed_values(self):
        history = SignalHistory(dt=0.1, max_delay=1.0)
        for value in range(10):
            history.push(float(value))
        assert history.current == 9.0
        assert history.at_delay(0.0) == 9.0
        assert history.at_delay(0.3) == 6.0
        assert history.at_delay(1.0) == 0.0

    def test_returns_initial_value_beyond_recorded_history(self):
        history = SignalHistory(dt=0.1, max_delay=0.5, initial=42.0)
        history.push(1.0)
        # Requesting more delay than has been recorded falls back to the
        # initial (pre-history) value of the signal.
        assert history.at_delay(0.5) == pytest.approx(42.0)

    def test_initial_value_used_before_any_push(self):
        history = SignalHistory(dt=0.1, max_delay=0.5, initial=7.0)
        assert history.at_delay(0.2) == 7.0

    def test_negative_delay_rejected(self):
        history = SignalHistory(dt=0.1, max_delay=0.5)
        with pytest.raises(ValueError):
            history.at_delay(-0.1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SignalHistory(dt=0.0, max_delay=1.0)
        with pytest.raises(ValueError):
            SignalHistory(dt=0.1, max_delay=-1.0)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    def test_zero_delay_always_returns_last_pushed(self, values):
        history = SignalHistory(dt=0.01, max_delay=0.1)
        for value in values:
            history.push(value)
        assert history.at_delay(0.0) == pytest.approx(values[-1])


class TestVectorHistory:
    def test_per_component_delays(self):
        history = VectorHistory(width=3, dt=0.1, max_delay=1.0)
        for step in range(10):
            history.push(np.array([step, 10 * step, 100 * step], dtype=float))
        looked_up = history.at_delays(np.array([0.0, 0.2, 0.5]))
        assert looked_up[0] == 9.0
        assert looked_up[1] == 70.0
        assert looked_up[2] == 400.0

    def test_vector_at_delay(self):
        history = VectorHistory(width=2, dt=0.1, max_delay=0.5)
        history.push(np.array([1.0, 2.0]))
        history.push(np.array([3.0, 4.0]))
        np.testing.assert_allclose(history.vector_at_delay(0.1), [1.0, 2.0])
        np.testing.assert_allclose(history.current, [3.0, 4.0])

    def test_shape_validation(self):
        history = VectorHistory(width=2, dt=0.1, max_delay=0.5)
        with pytest.raises(ValueError):
            history.push(np.zeros(3))
        with pytest.raises(ValueError):
            history.at_delays(np.zeros(3))

    def test_initial_vector_broadcast(self):
        history = VectorHistory(width=3, dt=0.1, max_delay=0.5, initial=np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(history.vector_at_delay(0.3), [1.0, 2.0, 3.0])

    def test_negative_delays_rejected(self):
        history = VectorHistory(width=2, dt=0.1, max_delay=0.5)
        history.push(np.zeros(2))
        with pytest.raises(ValueError):
            history.at_delays(np.array([-0.1, 0.0]))

    def test_lag_steps_rounds_to_grid(self):
        history = VectorHistory(width=2, dt=0.1, max_delay=1.0)
        np.testing.assert_array_equal(
            history.lag_steps(np.array([0.0, 0.31])), [0, 3]
        )

    def test_lag_steps_validation(self):
        history = VectorHistory(width=2, dt=0.1, max_delay=0.5)
        with pytest.raises(ValueError):
            history.lag_steps(np.array([-0.1]))
        with pytest.raises(ValueError):
            history.lag_steps(np.array([100.0]))

    def test_gather_matches_at_delay(self):
        history = VectorHistory(width=3, dt=0.1, max_delay=1.0)
        for step in range(25):
            history.push(np.array([step, 10 * step, 100 * step], dtype=float))
        delays = np.array([0.0, 0.2, 0.7])
        indices = np.arange(3, dtype=np.intp)
        lags = history.lag_steps(delays)
        gathered = history.gather(indices, lags)
        expected = [history.at_delay(i, d) for i, d in zip(indices, delays, strict=True)]
        np.testing.assert_allclose(gathered, expected)

    def test_gather_clamps_to_recorded_history(self):
        history = VectorHistory(width=2, dt=0.1, max_delay=1.0, initial=7.0)
        history.push(np.array([1.0, 2.0]))
        lags = history.lag_steps(np.array([0.9, 0.0]))
        gathered = history.gather(np.array([0, 1], dtype=np.intp), lags)
        # Clamping matches at_delay: beyond the single recorded sample the
        # lookup falls back to the initial (pre-history) value.
        assert gathered[0] == history.at_delay(0, 0.9) == pytest.approx(7.0)
        assert gathered[1] == history.at_delay(1, 0.0) == pytest.approx(2.0)

    def test_gather_arbitrary_component_order(self):
        history = VectorHistory(width=3, dt=0.1, max_delay=1.0)
        for step in range(15):
            history.push(np.array([step, 10 * step, 100 * step], dtype=float))
        indices = np.array([2, 2, 0], dtype=np.intp)
        lags = history.lag_steps(np.array([0.0, 0.3, 0.1]))
        np.testing.assert_allclose(
            history.gather(indices, lags), [1400.0, 1100.0, 13.0]
        )

    def test_advance_writes_in_place(self):
        history = VectorHistory(width=2, dt=0.1, max_delay=0.3)
        row = history.advance()
        row[:] = [3.0, 4.0]
        np.testing.assert_allclose(history.current, [3.0, 4.0])
        np.testing.assert_allclose(history.vector_at_delay(0.0), [3.0, 4.0])

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=50),
    )
    def test_gather_always_matches_at_delay(self, width, steps):
        history = VectorHistory(width=width, dt=0.01, max_delay=0.2)
        for step in range(steps):
            history.push(np.arange(width, dtype=float) + step)
        delays = np.linspace(0.0, 0.2, width)
        indices = np.arange(width, dtype=np.intp)
        gathered = history.gather(indices, history.lag_steps(delays))
        expected = [history.at_delay(i, d) for i, d in zip(indices, delays, strict=True)]
        np.testing.assert_allclose(gathered, expected)

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=50),
    )
    def test_lookup_never_raises_within_max_delay(self, width, steps):
        history = VectorHistory(width=width, dt=0.01, max_delay=0.2)
        for step in range(steps):
            history.push(np.full(width, float(step)))
        for delay in (0.0, 0.05, 0.1, 0.2):
            values = history.vector_at_delay(delay)
            assert values.shape == (width,)
            assert np.all(values <= steps - 1)

"""Tests of the scenario-configuration dataclasses."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import (
    FlowConfig,
    FluidParams,
    LinkConfig,
    ScenarioConfig,
    dumbbell_scenario,
    spread_access_delays,
)


class TestLinkConfig:
    def test_capacity_in_packets(self):
        link = LinkConfig(capacity_mbps=100.0, delay_s=0.01)
        assert link.capacity_pps == pytest.approx(8333.33, rel=1e-3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacity_mbps": 0.0, "delay_s": 0.01},
            {"capacity_mbps": 100.0, "delay_s": -0.01},
            {"capacity_mbps": 100.0, "delay_s": 0.01, "buffer_bdp": 0.0},
            {"capacity_mbps": 100.0, "delay_s": 0.01, "discipline": "codel"},
        ],
    )
    def test_invalid_links_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LinkConfig(**kwargs)


class TestFlowConfig:
    def test_unknown_cca_rejected(self):
        with pytest.raises(ValueError):
            FlowConfig(cca="vegas")

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            FlowConfig(cca="reno", access_delay_s=-1.0)


class TestFluidParams:
    def test_defaults_valid(self):
        params = FluidParams()
        assert params.dt > 0
        assert params.loss_sharpness > params.sigmoid_sharpness

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dt": 0.0},
            {"sigmoid_sharpness": -1.0},
            {"droptail_exponent": 0.5},
            {"loss_epsilon": 1.5},
            {"loss_sharpness": 0.0},
            {"whi_init_bdp": 0.0},
            {"loss_based_init_window_pkts": 0.0},
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FluidParams(**kwargs)


class TestScenario:
    def test_dumbbell_builder(self):
        config = dumbbell_scenario(["bbr1", "reno"], buffer_bdp=2.0)
        assert config.num_flows == 2
        assert config.bottleneck.buffer_bdp == 2.0
        assert {f.cca for f in config.flows} == {"bbr1", "reno"}

    def test_rtts_span_requested_range(self):
        config = dumbbell_scenario(["reno"] * 10, rtt_range_s=(0.030, 0.040))
        rtts = [config.rtt_s(i) for i in range(10)]
        assert min(rtts) == pytest.approx(0.030, abs=1e-9)
        assert max(rtts) == pytest.approx(0.040, abs=1e-9)

    def test_buffer_in_packets_uses_mean_rtt(self):
        config = dumbbell_scenario(["reno"], rtt_range_s=(0.030, 0.030), buffer_bdp=1.0)
        assert config.buffer_packets() == pytest.approx(
            config.bottleneck.capacity_pps * 0.030, rel=1e-6
        )

    def test_with_buffer_and_discipline_return_copies(self):
        config = dumbbell_scenario(["reno"])
        deep = config.with_buffer(7.0)
        red = config.with_discipline("red")
        assert deep.bottleneck.buffer_bdp == 7.0
        assert config.bottleneck.buffer_bdp == 1.0
        assert red.bottleneck.discipline == "red"
        assert config.bottleneck.discipline == "droptail"

    def test_empty_flow_list_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(
                bottleneck=LinkConfig(capacity_mbps=100.0, delay_s=0.01), flows=()
            )

    def test_infinite_buffer_supported(self):
        config = dumbbell_scenario(["reno"], buffer_bdp=math.inf)
        assert math.isinf(config.buffer_packets())


class TestSpreadAccessDelays:
    def test_single_flow_uses_midpoint(self):
        delays = spread_access_delays(1, (0.030, 0.040), 0.010)
        assert delays[0] == pytest.approx((0.035 - 0.020) / 2.0)

    def test_rejects_rtt_below_bottleneck_roundtrip(self):
        with pytest.raises(ValueError):
            spread_access_delays(2, (0.015, 0.040), 0.010)

    @given(
        st.integers(min_value=1, max_value=50),
        st.floats(min_value=0.001, max_value=0.02),
    )
    def test_all_delays_non_negative(self, n, bottleneck_delay):
        low = 2 * bottleneck_delay
        delays = spread_access_delays(n, (low, low + 0.02), bottleneck_delay)
        assert len(delays) == n
        assert all(d >= -1e-12 for d in delays)

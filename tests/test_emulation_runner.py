"""Integration tests of the packet-level emulator end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import dumbbell_scenario
from repro.emulation import EmulationRunner, emulate
from repro.emulation.runner import derive_rng
from repro.metrics import aggregate_metrics


def run(ccas, **kwargs):
    defaults = dict(buffer_bdp=2.0, duration_s=3.0)
    defaults.update(kwargs)
    return emulate(dumbbell_scenario(ccas, **defaults))


@pytest.fixture(scope="module")
def reno_trace():
    return run(["reno"])


@pytest.fixture(scope="module")
def bbr1_trace():
    return run(["bbr1"])


class TestTraceStructure:
    def test_substrate_tag(self, reno_trace):
        assert reno_trace.substrate == "emulation"

    def test_series_lengths_match(self, reno_trace):
        assert len(reno_trace.time) == len(reno_trace.flows[0].rate)
        assert len(reno_trace.time) == len(reno_trace.bottleneck().queue)

    def test_all_series_finite_and_non_negative(self, reno_trace):
        flow = reno_trace.flows[0]
        link = reno_trace.bottleneck()
        for series in (flow.rate, flow.delivery_rate, flow.cwnd, flow.inflight, flow.rtt):
            assert np.all(np.isfinite(series))
            assert np.all(series >= 0)
        assert np.all(link.queue <= link.buffer_pkts + 1e-9)
        assert np.all((link.loss_prob >= 0) & (link.loss_prob <= 1))


class TestConservation:
    def test_packet_conservation(self):
        config = dumbbell_scenario(["reno", "bbr1"], buffer_bdp=1.0, duration_s=2.0)
        runner = EmulationRunner(config)
        runner.run()
        sent = sum(s.sent_count for s in runner.senders.values())
        delivered = sum(s.delivered_count for s in runner.senders.values())
        queue = runner.bottleneck.queue
        # Every sent packet is either still in the network, delivered/acked,
        # dropped at the bottleneck, or written off by the stall watchdog.
        assert delivered <= sent
        assert queue.enqueued + queue.dropped <= sent
        assert delivered <= queue.enqueued

    def test_deterministic_given_seed(self):
        config = dumbbell_scenario(["bbr2", "reno"], duration_s=1.5, seed=7)
        first = emulate(config)
        second = emulate(config)
        np.testing.assert_allclose(first.flows[0].rate, second.flows[0].rate)
        np.testing.assert_allclose(first.bottleneck().queue, second.bottleneck().queue)

    def test_seed_reaches_per_flow_ccas(self):
        # The scenario seed must propagate into the per-flow CCA randomness
        # (e.g. BBRv2's 2-3 s probing interval).
        base = EmulationRunner(dumbbell_scenario(["bbr2"] * 2, duration_s=1.0, seed=1))
        other = EmulationRunner(dumbbell_scenario(["bbr2"] * 2, duration_s=1.0, seed=2))
        walls_base = [s.cca._probe_wall_s for s in base.senders.values()]
        walls_other = [s.cca._probe_wall_s for s in other.senders.values()]
        assert walls_base != walls_other


class TestRngDerivation:
    def test_streams_collision_free_across_seed_flow_grid(self):
        # The old affine derivation (seed + 17 * (i + 1)) aliased streams
        # across scenarios; the hashed derivation must give every
        # (seed, flow) pair its own generator.
        first_draws = [
            derive_rng(seed, f"flow:{i}").random()
            for seed in range(1, 21)
            for i in range(10)
        ]
        assert len(set(first_draws)) == len(first_draws)

    def test_old_affine_collision_fixed(self):
        # Regression: seed 1 / flow 1 and seed 18 / flow 0 used to share a
        # stream (1 + 17*2 == 18 + 17*1 == 35).
        assert derive_rng(1, "flow:1").random() != derive_rng(18, "flow:0").random()

    def test_colliding_scenario_seeds_get_independent_cca_randomness(self):
        base = EmulationRunner(dumbbell_scenario(["bbr2"] * 2, duration_s=0.1, seed=1))
        other = EmulationRunner(dumbbell_scenario(["bbr2"] * 2, duration_s=0.1, seed=18))
        # Under the old derivation these two CCAs drew from the same stream.
        assert base.senders[1].cca._probe_wall_s != other.senders[0].cca._probe_wall_s

    def test_distinct_seeds_give_distinct_traces(self):
        # RED's drop decisions draw from the (seed-derived) queue RNG on the
        # very first congested packets, so distinct scenario seeds must
        # diverge within a short run.
        config = dumbbell_scenario(["reno"] * 2, discipline="red", duration_s=1.0, seed=1)
        other = dumbbell_scenario(["reno"] * 2, discipline="red", duration_s=1.0, seed=18)
        first, second = emulate(config), emulate(other)
        assert any(
            not np.allclose(a.rate, b.rate)
            for a, b in zip(first.flows, second.flows, strict=True)
        )

    def test_queue_and_flow_streams_are_separate(self):
        assert derive_rng(1, "queue").random() != derive_rng(1, "flow:0").random()


class TestTailInterval:
    def test_partial_tail_interval_flushed(self):
        # duration is not a multiple of the 0.01 s record interval: the
        # final 5 ms used to be silently discarded.
        config = dumbbell_scenario(["reno"], duration_s=1.005)
        trace = emulate(config)
        assert len(trace.time) == 101
        assert trace.time[-1] == pytest.approx(1.005)
        np.testing.assert_allclose(
            trace.time[:100], (np.arange(100) + 1.0) * 0.01
        )

    def test_tail_rates_normalised_by_partial_length(self):
        # At steady state the departure rate of the 5 ms tail sample must be
        # near capacity; normalising by the full 10 ms interval would halve it.
        config = dumbbell_scenario(["reno"], duration_s=1.005)
        trace = emulate(config)
        capacity = trace.bottleneck().capacity_pps
        assert trace.bottleneck().departure_rate[-1] > 0.7 * capacity
        assert trace.bottleneck().departure_rate[-1] < 1.3 * capacity

    def test_exact_multiple_has_no_extra_sample(self):
        config = dumbbell_scenario(["reno"], duration_s=1.0)
        trace = emulate(config)
        assert len(trace.time) == 100
        assert trace.time[-1] == pytest.approx(1.0)

    def test_duration_shorter_than_interval_still_sampled(self):
        config = dumbbell_scenario(["reno"], duration_s=0.004)
        trace = emulate(config)
        assert len(trace.time) == 1
        assert trace.time[0] == pytest.approx(0.004)

    def test_closure_scheduler_flushes_tail_too(self):
        config = dumbbell_scenario(["reno"], duration_s=0.505)
        trace = emulate(config, scheduler="closure")
        assert trace.time[-1] == pytest.approx(0.505)


class TestSingleFlowBehaviour:
    @pytest.mark.parametrize("cca", ["reno", "cubic", "bbr1", "bbr2"])
    def test_high_utilization(self, cca):
        trace = run([cca])
        # After start-up every CCA should keep the 100 Mbps link busy.
        assert aggregate_metrics(trace.after(1.0)).utilization_percent > 80.0

    def test_reno_loss_stays_moderate(self, reno_trace):
        assert aggregate_metrics(reno_trace).loss_percent < 10.0

    def test_bbr1_keeps_queue_below_loss_based(self, bbr1_trace):
        cubic_trace = run(["cubic"])
        assert (
            aggregate_metrics(bbr1_trace.after(1.0)).buffer_occupancy_percent
            < aggregate_metrics(cubic_trace.after(1.0)).buffer_occupancy_percent + 50.0
        )

    def test_rtt_at_least_propagation_delay(self, bbr1_trace):
        assert np.all(bbr1_trace.flows[0].rtt >= 0.030 * 0.99)


class TestMultiFlow:
    def test_homogeneous_bbr1_fairness(self):
        trace = run(["bbr1"] * 4, duration_s=6.0)
        metrics = aggregate_metrics(trace.after(3.0))
        assert metrics.jain_fairness > 0.7

    def test_homogeneous_bbr2_flows_all_progress(self):
        # The simplified packet-level BBRv2 converges towards fairness only
        # over tens of seconds (cf. EXPERIMENTS.md), so here we only require
        # that no flow is starved outright.
        trace = run(["bbr2"] * 4, duration_s=6.0)
        goodputs = [f.mean_goodput() for f in trace.after(3.0).flows]
        assert min(goodputs) > 0.0
        assert aggregate_metrics(trace.after(3.0)).jain_fairness > 0.3

    def test_red_discipline_runs(self):
        trace = run(["bbr1"] * 2 + ["reno"] * 2, discipline="red", duration_s=2.0)
        assert aggregate_metrics(trace).utilization_percent > 50.0

    def test_total_throughput_bounded_by_capacity(self):
        trace = run(["bbr1"] * 3, duration_s=2.0)
        capacity = trace.bottleneck().capacity_pps
        total_goodput = sum(f.mean_goodput() for f in trace.flows)
        assert total_goodput <= capacity * 1.05

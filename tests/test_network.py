"""Tests of the fluid-model network description (links, paths, dumbbell)."""

from __future__ import annotations

import math

import pytest

from repro.config import dumbbell_scenario
from repro.core.network import Link, Network, Path


def simple_dumbbell(num_flows: int = 3) -> Network:
    config = dumbbell_scenario(["bbr1"] * num_flows, rtt_range_s=(0.030, 0.040))
    return Network.dumbbell(config)


class TestLink:
    def test_queued_link_detection(self):
        assert Link(capacity_pps=1000.0, delay_s=0.01, buffer_pkts=100).has_queue
        assert not Link(capacity_pps=math.inf, delay_s=0.01).has_queue

    def test_validation(self):
        with pytest.raises(ValueError):
            Link(capacity_pps=0.0, delay_s=0.01)
        with pytest.raises(ValueError):
            Link(capacity_pps=100.0, delay_s=-0.01)
        with pytest.raises(ValueError):
            Link(capacity_pps=100.0, delay_s=0.01, buffer_pkts=0.0)


class TestDumbbell:
    def test_structure(self):
        net = simple_dumbbell(4)
        # One bottleneck plus one access link per sender.
        assert net.num_links == 5
        assert net.num_flows == 4
        assert net.queued_link_indices() == [0]
        assert net.users(0) == [0, 1, 2, 3]

    def test_bottleneck_identification(self):
        net = simple_dumbbell(2)
        for flow in range(2):
            assert net.bottleneck_of(flow) == 0

    def test_propagation_rtt_matches_config(self):
        config = dumbbell_scenario(["reno"] * 5, rtt_range_s=(0.030, 0.040))
        net = Network.dumbbell(config)
        for i in range(5):
            assert net.propagation_rtt(i) == pytest.approx(config.rtt_s(i), abs=1e-12)

    def test_forward_plus_backward_delay_is_rtt(self):
        net = simple_dumbbell(3)
        for flow in range(3):
            bottleneck = net.bottleneck_of(flow)
            total = net.forward_delay(flow, bottleneck) + net.backward_delay(flow, bottleneck)
            assert total == pytest.approx(net.propagation_rtt(flow), abs=1e-12)

    def test_path_latency_includes_queueing(self):
        net = simple_dumbbell(1)
        base = net.path_latency(0, {0: 0.0})
        loaded = net.path_latency(0, {0: 100.0})
        assert loaded == pytest.approx(base + 100.0 / net.links[0].capacity_pps)

    def test_bdp_positive(self):
        net = simple_dumbbell(2)
        for flow in range(2):
            assert net.bdp_packets(flow) > 0

    def test_unknown_link_in_forward_delay(self):
        net = simple_dumbbell(1)
        with pytest.raises(KeyError):
            net.forward_delay(0, 99)


def asymmetric_parking_lot(capacities_pps=(5000.0, 4000.0, 4000.0)) -> Network:
    """One long flow over a chain of queued hops (no access link needed)."""
    links = [
        Link(capacity_pps=c, delay_s=0.002, buffer_pkts=100.0, name=f"hop-{i + 1}")
        for i, c in enumerate(capacities_pps)
    ]
    path = Path(link_indices=tuple(range(len(links))), return_delay_s=0.006)
    return Network(links, [path])


class TestEffectiveBottleneck:
    """``bottleneck_of`` under upstream-survival scaling (attenuation fix)."""

    def test_raw_pick_is_smallest_capacity(self):
        net = asymmetric_parking_lot((5000.0, 4000.0, 4500.0))
        assert net.bottleneck_of(0) == 1

    def test_raw_tie_picks_most_upstream(self):
        # Ordering on ties: with equal (effective) capacities the most
        # upstream link binds first and must be the reference.
        net = asymmetric_parking_lot((4000.0, 4000.0, 4000.0))
        assert net.bottleneck_of(0) == 0
        assert net.bottleneck_of(0, survival={}) == 0

    def test_upstream_loss_shields_downstream_link(self):
        # hop-2 has the smallest raw capacity, but heavy loss at hop-1
        # thins the flow's traffic: saturating hop-2 now takes a sending
        # rate of 4000/0.7 > 5000, so hop-1 is the effective bottleneck.
        net = asymmetric_parking_lot((5000.0, 4000.0, 4500.0))
        survival = {0: 1.0, 1: 0.7, 2: 0.7}
        assert net.bottleneck_of(0, survival=survival) == 0

    def test_mild_loss_keeps_raw_bottleneck(self):
        net = asymmetric_parking_lot((5000.0, 4000.0, 4500.0))
        survival = {0: 1.0, 1: 0.99, 2: 0.99}
        assert net.bottleneck_of(0, survival=survival) == 1

    def test_effective_tie_picks_most_upstream(self):
        # 4000 / 0.8 == 5000 exactly: a tie between hop-1 and hop-2 in
        # effective capacity resolves to the upstream hop-1.
        net = asymmetric_parking_lot((5000.0, 4000.0, 4500.0))
        survival = {1: 0.8, 2: 0.8}
        assert net.bottleneck_of(0, survival=survival) == 0

    def test_invalid_survival_rejected(self):
        net = asymmetric_parking_lot()
        with pytest.raises(ValueError, match="survival"):
            net.bottleneck_of(0, survival={1: -0.1})
        with pytest.raises(ValueError, match="survival"):
            net.bottleneck_of(0, survival={1: 1.5})

    def test_zero_survival_makes_link_unreachable(self):
        # Everything dropped upstream of hop-2: it can never be the
        # reference even though its raw capacity is the smallest.
        net = asymmetric_parking_lot((5000.0, 4000.0, 4500.0))
        assert net.bottleneck_of(0, survival={1: 0.0, 2: 0.0}) == 0

    def test_upstream_queued_links(self):
        net = asymmetric_parking_lot()
        assert net.upstream_queued_links(0, 0) == []
        assert net.upstream_queued_links(0, 2) == [0, 1]
        with pytest.raises(KeyError):
            net.upstream_queued_links(0, 99)


class TestValidation:
    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            Network([], [])

    def test_dangling_path_rejected(self):
        link = Link(capacity_pps=1000.0, delay_s=0.01, buffer_pkts=10)
        with pytest.raises(ValueError):
            Network([link], [Path(link_indices=(3,))])

    def test_path_needs_links(self):
        with pytest.raises(ValueError):
            Path(link_indices=())

    def test_flow_without_queued_link_has_no_bottleneck(self):
        access = Link(capacity_pps=math.inf, delay_s=0.01)
        net = Network([access], [Path(link_indices=(0,), return_delay_s=0.01)])
        with pytest.raises(ValueError):
            net.bottleneck_of(0)

"""Tests of the fluid-model network description (links, paths, dumbbell)."""

from __future__ import annotations

import math

import pytest

from repro.config import dumbbell_scenario
from repro.core.network import Link, Network, Path


def simple_dumbbell(num_flows: int = 3) -> Network:
    config = dumbbell_scenario(["bbr1"] * num_flows, rtt_range_s=(0.030, 0.040))
    return Network.dumbbell(config)


class TestLink:
    def test_queued_link_detection(self):
        assert Link(capacity_pps=1000.0, delay_s=0.01, buffer_pkts=100).has_queue
        assert not Link(capacity_pps=math.inf, delay_s=0.01).has_queue

    def test_validation(self):
        with pytest.raises(ValueError):
            Link(capacity_pps=0.0, delay_s=0.01)
        with pytest.raises(ValueError):
            Link(capacity_pps=100.0, delay_s=-0.01)
        with pytest.raises(ValueError):
            Link(capacity_pps=100.0, delay_s=0.01, buffer_pkts=0.0)


class TestDumbbell:
    def test_structure(self):
        net = simple_dumbbell(4)
        # One bottleneck plus one access link per sender.
        assert net.num_links == 5
        assert net.num_flows == 4
        assert net.queued_link_indices() == [0]
        assert net.users(0) == [0, 1, 2, 3]

    def test_bottleneck_identification(self):
        net = simple_dumbbell(2)
        for flow in range(2):
            assert net.bottleneck_of(flow) == 0

    def test_propagation_rtt_matches_config(self):
        config = dumbbell_scenario(["reno"] * 5, rtt_range_s=(0.030, 0.040))
        net = Network.dumbbell(config)
        for i in range(5):
            assert net.propagation_rtt(i) == pytest.approx(config.rtt_s(i), abs=1e-12)

    def test_forward_plus_backward_delay_is_rtt(self):
        net = simple_dumbbell(3)
        for flow in range(3):
            bottleneck = net.bottleneck_of(flow)
            total = net.forward_delay(flow, bottleneck) + net.backward_delay(flow, bottleneck)
            assert total == pytest.approx(net.propagation_rtt(flow), abs=1e-12)

    def test_path_latency_includes_queueing(self):
        net = simple_dumbbell(1)
        base = net.path_latency(0, {0: 0.0})
        loaded = net.path_latency(0, {0: 100.0})
        assert loaded == pytest.approx(base + 100.0 / net.links[0].capacity_pps)

    def test_bdp_positive(self):
        net = simple_dumbbell(2)
        for flow in range(2):
            assert net.bdp_packets(flow) > 0

    def test_unknown_link_in_forward_delay(self):
        net = simple_dumbbell(1)
        with pytest.raises(KeyError):
            net.forward_delay(0, 99)


class TestValidation:
    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            Network([], [])

    def test_dangling_path_rejected(self):
        link = Link(capacity_pps=1000.0, delay_s=0.01, buffer_pkts=10)
        with pytest.raises(ValueError):
            Network([link], [Path(link_indices=(3,))])

    def test_path_needs_links(self):
        with pytest.raises(ValueError):
            Path(link_indices=())

    def test_flow_without_queued_link_has_no_bottleneck(self):
        access = Link(capacity_pps=math.inf, delay_s=0.01)
        net = Network([access], [Path(link_indices=(0,), return_delay_s=0.01)])
        with pytest.raises(ValueError):
            net.bottleneck_of(0)

"""Fixture: RNG001 — non-literal derive_rng stream label."""


def setup(seed: int, label: str):
    return derive_rng(seed, label)  # RNG001: label is a variable


def derive_rng(seed: int, stream: str):  # stub so the file parses standalone
    raise NotImplementedError

"""Fixture: DET001 — wall-clock call inside a simulation kernel."""

import time
from datetime import datetime


def step(state: float) -> float:
    started = time.time()  # DET001
    stamp = datetime.now()  # DET001
    return state + started + stamp.timestamp()

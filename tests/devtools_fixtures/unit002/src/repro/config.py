"""Fixture: UNIT002 — arithmetic mixing differently-suffixed units."""


def total(delay_s: float, capacity_mbps: float) -> float:
    return delay_s + capacity_mbps  # UNIT002: seconds + Mbps


def compare(duration_s: float, budget_packets: int) -> bool:
    return duration_s > budget_packets  # UNIT002: seconds vs packets

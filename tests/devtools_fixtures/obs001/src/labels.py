"""Seeded OBS001 violations: one dynamic telemetry label, one without a
dotted namespace.  The literal, namespaced calls at the bottom must NOT
be flagged."""

from repro.obs import TELEMETRY


def dynamic_label(metric):
    TELEMETRY.count(metric)  # OBS001: label is not a literal


def flat_label(depth):
    TELEMETRY.gauge("queue_depth", depth)  # OBS001: no dotted namespace


def fine(flows):
    with TELEMETRY.span("emu.run", flows=flows):
        TELEMETRY.count("emu.events_popped", 10)
    TELEMETRY.gauge_max(label="emu.heap_peak", value=flows)

"""Fixture: DET003 — ad-hoc RNG construction outside derive_rng."""

import hashlib
import random


def derive_rng(seed: int, stream: str) -> random.Random:
    digest = hashlib.sha256(f"fixture:{seed}:{stream}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))  # blessed site


def make_generator(seed: int) -> random.Random:
    return random.Random(seed)  # DET003: bypasses derive_rng

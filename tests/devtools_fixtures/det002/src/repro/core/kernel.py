"""Fixture: DET002 — ambient global-state randomness inside a kernel."""

import random

import numpy as np


def jitter() -> float:
    return random.random()  # DET002: module-level random


def noise() -> float:
    return np.random.uniform(0.0, 1.0)  # DET002: numpy global RNG

"""Fixture: RNG003 — integer arithmetic folds the seed (PR-3 aliasing bug)."""


def per_flow(seed: int, i: int):
    # (seed=1, i=1) aliases (seed=18, i=0): exactly the pre-PR-3 derivation.
    return derive_rng(seed + 17 * (i + 1), "flow")  # RNG003


def derive_rng(seed: int, stream: str):  # stub so the file parses standalone
    raise NotImplementedError

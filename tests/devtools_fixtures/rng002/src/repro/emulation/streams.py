"""Fixture: RNG002 — colliding derive_rng stream-label prefixes.

``f"flow:{i}"`` and ``f"flow:cross:{j}"`` share the ``flow:`` namespace:
(i="cross:0") and (j=0) hash to the same stream.
"""


def flows(seed: int, i: int):
    return derive_rng(seed, f"flow:{i}")


def cross_flows(seed: int, j: int):
    return derive_rng(seed, f"flow:cross:{j}")  # RNG002: prefix collision


def anonymous(seed: int, i: int):
    return derive_rng(seed, f"{i}")  # RNG002: no literal prefix at all


def derive_rng(seed: int, stream: str):  # stub so the file parses standalone
    raise NotImplementedError

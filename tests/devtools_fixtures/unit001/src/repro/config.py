"""Fixture: UNIT001 — unit-bearing names without unit suffixes."""

from dataclasses import dataclass


@dataclass(frozen=True)
class FixtureLink:
    capacity: float = 100.0  # UNIT001: field lacks _mbps/_pps suffix


def build(delay: float, buffer_bdp: float = 1.0) -> FixtureLink:  # UNIT001: delay
    return FixtureLink()


@dataclass(frozen=True)
class FixtureSchedule:
    arrival_rate: float = 5.0  # UNIT001: rate field lacks the _per_s suffix


def schedule(arrival_rate_per_s: float) -> FixtureSchedule:  # ok: _per_s suffix
    return FixtureSchedule()

"""Fixture: UNIT001 — unit-bearing names without unit suffixes."""

from dataclasses import dataclass


@dataclass(frozen=True)
class FixtureLink:
    capacity: float = 100.0  # UNIT001: field lacks _mbps/_pps suffix


def build(delay: float, buffer_bdp: float = 1.0) -> FixtureLink:  # UNIT001: delay
    return FixtureLink()

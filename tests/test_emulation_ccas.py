"""Unit tests of the packet-level congestion-control algorithms."""

from __future__ import annotations

import math
import random

import pytest

from repro.emulation.cca import create_packet_cca
from repro.emulation.cca.base import AckSample, LossEvent
from repro.emulation.cca.bbr1 import Bbr1Packet
from repro.emulation.cca.bbr2 import Bbr2Packet
from repro.emulation.cca.cubic import CubicPacket
from repro.emulation.cca.reno import RenoPacket


def ack(now=1.0, rtt=0.03, rate=1000.0, inflight=10, seq=0, delivered=1) -> AckSample:
    return AckSample(
        now=now,
        rtt=rtt,
        delivery_rate=rate,
        inflight=inflight,
        acked_seq=seq,
        newly_delivered=delivered,
    )


def loss(now=1.0, num=1, inflight=10, highest=100, seqs=(50,)) -> LossEvent:
    return LossEvent(
        now=now, num_lost=num, inflight=inflight, highest_seq_sent=highest, lost_seqs=seqs
    )


class TestFactory:
    @pytest.mark.parametrize("name", ["reno", "cubic", "bbr1", "bbr2"])
    def test_create(self, name):
        cca = create_packet_cca(name, random.Random(0), initial_rate_pps=1000.0)
        assert cca.name == name

    def test_unknown(self):
        with pytest.raises(ValueError):
            create_packet_cca("vegas", random.Random(0), 1000.0)


class TestRenoPacket:
    def test_slow_start_doubles_per_window(self):
        reno = RenoPacket(initial_cwnd_pkts=10.0)
        for seq in range(10):
            reno.on_ack(ack(seq=seq))
        assert reno.cwnd_pkts == pytest.approx(20.0)

    def test_congestion_avoidance_adds_one_per_window(self):
        reno = RenoPacket(initial_cwnd_pkts=10.0, ssthresh_pkts=5.0)
        start = reno.cwnd_pkts
        for seq in range(10):
            reno.on_ack(ack(seq=seq))
        assert reno.cwnd_pkts == pytest.approx(start + 1.0, rel=0.05)

    def test_loss_halves_window_once_per_episode(self):
        reno = RenoPacket(initial_cwnd_pkts=100.0)
        reno.on_loss(loss(seqs=(10,), highest=200))
        assert reno.cwnd_pkts == pytest.approx(50.0)
        # A second loss from the same window (seq below the recovery marker)
        # must not halve the window again.
        reno.on_loss(loss(seqs=(20,), highest=210))
        assert reno.cwnd_pkts == pytest.approx(50.0)

    def test_new_episode_halves_again(self):
        reno = RenoPacket(initial_cwnd_pkts=100.0)
        reno.on_loss(loss(seqs=(10,), highest=200))
        reno.on_loss(loss(seqs=(250,), highest=300))
        assert reno.cwnd_pkts == pytest.approx(25.0)

    def test_timeout_collapses_window(self):
        reno = RenoPacket(initial_cwnd_pkts=64.0)
        reno.on_timeout(now=1.0)
        assert reno.cwnd_pkts == 1.0
        assert reno.ssthresh_pkts == pytest.approx(32.0)

    def test_unpaced(self):
        assert RenoPacket().pacing_interval() == 0.0

    def test_window_floor(self):
        reno = RenoPacket(initial_cwnd_pkts=2.0)
        reno.on_loss(loss(seqs=(1,), highest=5))
        assert reno.window_limit() >= 1.0


class TestCubicPacket:
    def test_slow_start_growth(self):
        cubic = CubicPacket(initial_cwnd_pkts=10.0)
        for seq in range(10):
            cubic.on_ack(ack(seq=seq))
        assert cubic.cwnd_pkts == pytest.approx(20.0)

    def test_loss_applies_beta(self):
        cubic = CubicPacket(initial_cwnd_pkts=100.0)
        cubic.on_loss(loss(seqs=(10,), highest=100))
        assert cubic.cwnd_pkts == pytest.approx(70.0)
        assert cubic.w_max == pytest.approx(100.0)

    def test_window_recovers_towards_wmax(self):
        cubic = CubicPacket(initial_cwnd_pkts=100.0)
        cubic.on_loss(loss(now=0.0, seqs=(10,), highest=100))
        # Feed ACKs over simulated time; the cubic function must grow the
        # window back towards (and beyond) w_max.
        for step in range(400):
            cubic.on_ack(ack(now=0.1 * step, seq=step + 200))
        assert cubic.cwnd_pkts > 95.0

    def test_duplicate_loss_in_same_window_ignored(self):
        cubic = CubicPacket(initial_cwnd_pkts=100.0)
        cubic.on_loss(loss(seqs=(10,), highest=100))
        cubic.on_loss(loss(seqs=(20,), highest=105))
        assert cubic.cwnd_pkts == pytest.approx(70.0)

    def test_timeout(self):
        cubic = CubicPacket(initial_cwnd_pkts=80.0)
        cubic.on_timeout(now=2.0)
        assert cubic.cwnd_pkts == 1.0


class TestBbr1Packet:
    def make(self) -> Bbr1Packet:
        return Bbr1Packet(rng=random.Random(3), initial_rate_pps=1000.0)

    def test_startup_gain_applied(self):
        bbr = self.make()
        assert bbr.state == "startup"
        bbr.on_ack(ack(rate=2000.0))
        assert bbr.pacing_rate_pps == pytest.approx(2.885 * bbr.btlbw_pps, rel=1e-6)

    def test_btlbw_is_windowed_max(self):
        bbr = self.make()
        bbr.on_ack(ack(rate=500.0))
        bbr.on_ack(ack(rate=2000.0))
        bbr.on_ack(ack(rate=800.0))
        assert bbr.btlbw_pps == pytest.approx(2000.0)

    def test_rtprop_is_minimum(self):
        bbr = self.make()
        bbr.on_ack(ack(rtt=0.05))
        bbr.on_ack(ack(rtt=0.03))
        bbr.on_ack(ack(rtt=0.08))
        assert bbr.rtprop_s == pytest.approx(0.03)

    def test_loss_is_ignored(self):
        bbr = self.make()
        bbr.on_ack(ack(rate=2000.0))
        before = (bbr.cwnd_pkts, bbr.pacing_rate_pps)
        bbr.on_loss(loss(num=50))
        assert (bbr.cwnd_pkts, bbr.pacing_rate_pps) == before

    def test_exits_startup_when_bandwidth_plateaus(self):
        bbr = self.make()
        now = 0.0
        for round_idx in range(20):
            for _ in range(10):
                now += 0.003
                bbr.on_ack(ack(now=now, rate=5000.0, inflight=5))
            if bbr.state != "startup":
                break
        assert bbr.state in ("drain", "probe_bw")

    def test_probe_rtt_after_10s_without_new_minimum(self):
        bbr = self.make()
        bbr.on_ack(ack(now=0.0, rtt=0.03, rate=5000.0))
        bbr.on_ack(ack(now=10.5, rtt=0.05, rate=5000.0))
        assert bbr.state == "probe_rtt"
        assert bbr.cwnd_pkts == pytest.approx(4.0)

    def test_probe_bw_cycles_through_gains(self):
        bbr = self.make()
        bbr.state = "probe_bw"
        bbr.rtprop_s = 0.01
        bbr._rtprop_valid = True
        bbr._rtprop_stamp = 0.0
        seen_gains = set()
        now = 0.0
        for _ in range(200):
            now += 0.005
            bbr.on_ack(ack(now=now, rtt=0.01, rate=5000.0))
            seen_gains.add(round(bbr.pacing_gain, 3))
        assert 1.25 in seen_gains
        assert 0.75 in seen_gains
        assert 1.0 in seen_gains


class TestBbr2Packet:
    def make(self) -> Bbr2Packet:
        return Bbr2Packet(rng=random.Random(3), initial_rate_pps=1000.0)

    def test_starts_in_startup(self):
        bbr = self.make()
        assert bbr.state == "startup"

    def test_cruise_reached_after_drain(self):
        bbr = self.make()
        now = 0.0
        for _ in range(30):
            for _ in range(10):
                now += 0.003
                bbr.on_ack(ack(now=now, rate=5000.0, inflight=3))
            if bbr.state == "cruise":
                break
        assert bbr.state in ("cruise", "drain")

    def test_cruise_loss_sets_inflight_lo(self):
        bbr = self.make()
        bbr.state = "cruise"
        bbr.cwnd_pkts = 100.0
        bbr.on_loss(loss(num=2))
        assert bbr.inflight_lo == pytest.approx(70.0)

    def test_repeated_cruise_loss_decays_inflight_lo(self):
        bbr = self.make()
        bbr.state = "cruise"
        bbr.cwnd_pkts = 100.0
        bbr.on_loss(loss(num=1))
        bbr.on_loss(loss(num=1))
        assert bbr.inflight_lo == pytest.approx(49.0)

    def test_up_phase_loss_cuts_inflight_hi_and_enters_down(self):
        bbr = self.make()
        bbr.state = "up"
        bbr.inflight_hi = 200.0
        bbr._round_delivered = 10
        bbr._round_lost = 0
        bbr.on_loss(loss(num=5, inflight=150))
        assert bbr.state == "down"
        assert bbr.inflight_hi == pytest.approx(140.0)

    def test_probe_rtt_cwnd_is_half_bdp(self):
        bbr = self.make()
        bbr.on_ack(ack(now=0.0, rtt=0.03, rate=5000.0))
        bbr.on_ack(ack(now=10.5, rtt=0.05, rate=5000.0))
        assert bbr.state == "probe_rtt"
        assert bbr.cwnd_pkts == pytest.approx(max(4.0, bbr.bdp_pkts() / 2.0))

    def test_headroom_applied_in_cruise(self):
        bbr = self.make()
        bbr.state = "cruise"
        bbr.inflight_hi = 100.0
        bbr.btlbw_pps = 1e6  # make the 2*BDP cap irrelevant
        bbr.rtprop_s = 0.1
        bbr._set_controls()
        assert bbr.cwnd_pkts == pytest.approx(85.0)

    def test_timeout_resets_short_term_bound(self):
        bbr = self.make()
        bbr.on_timeout(now=1.0)
        assert bbr.inflight_lo == pytest.approx(4.0)


class TestBaseProtocol:
    def test_window_limit_floor(self):
        reno = RenoPacket(initial_cwnd_pkts=1.0)
        reno.cwnd_pkts = 0.2
        assert reno.window_limit() == 1.0

    def test_pacing_interval_inverse_of_rate(self):
        bbr = Bbr1Packet(rng=random.Random(0), initial_rate_pps=1000.0)
        bbr.pacing_rate_pps = 500.0
        assert bbr.pacing_interval() == pytest.approx(0.002)

    def test_infinite_rate_is_unpaced(self):
        reno = RenoPacket()
        reno.pacing_rate_pps = math.inf
        assert reno.pacing_interval() == 0.0


class TestFastPathMatchesSpec:
    """The inlined hot paths must stay in lockstep with the helper pipeline.

    ``Bbr1Packet.on_ack_fast`` (and the other CCAs' fast entry points)
    inline the readable helper methods for speed; this drives a long,
    state-transition-rich sample stream through both formulations and pins
    them field-for-field so a future edit to either side cannot silently
    diverge.
    """

    STATE_FIELDS = (
        "state",
        "cwnd_pkts",
        "pacing_rate_pps",
        "pacing_gain",
        "cwnd_gain",
        "btlbw_pps",
        "rtprop_s",
        "_round",
        "_delivered",
        "_full_bw_count",
        "_cycle_index",
    )

    @staticmethod
    def _spec_on_ack(cca, sample):
        # The original (pre-inline) Bbr1Packet.on_ack helper pipeline.
        round_start = cca._update_round(sample)
        cca._update_btlbw(sample)
        cca._update_rtprop(sample)
        cca._check_full_pipe(round_start)
        cca._maybe_enter_probe_rtt(sample)
        cca._apply_state(sample)
        cca._set_controls()

    def _sample_stream(self):
        # A stream long and varied enough to visit startup, drain,
        # probe_bw (with cycle advances) and probe_rtt (> 10 s without a
        # new RTT minimum), including idle rates and RTT inflation.
        rng = random.Random(42)
        now = 0.0
        for step in range(2200):
            now += 0.01
            if step < 300:
                rtt = 0.03 + 0.02 * rng.random()
            else:
                # Flat, inflated RTT: no new minimum, so PROBE_RTT fires
                # once 10 s pass without refreshing the RTprop window.
                rtt = 0.05
            rate = max(0.0, 8000.0 + 4000.0 * rng.random() - (3000.0 if step % 97 == 0 else 0.0))
            inflight = rng.randrange(1, 400)
            yield ack(
                now=now, rtt=rtt, rate=rate, inflight=inflight, seq=step, delivered=step
            )

    def test_bbr1_on_ack_fast_matches_helper_pipeline(self):
        fast = Bbr1Packet(rng=random.Random(7), initial_rate_pps=1000.0)
        spec = Bbr1Packet(rng=random.Random(7), initial_rate_pps=1000.0)
        states = set()
        for sample in self._sample_stream():
            fast.on_ack(sample)
            self._spec_on_ack(spec, sample)
            for field in self.STATE_FIELDS:
                assert getattr(fast, field) == getattr(spec, field), field
            states.add(fast.state)
        # The stream must actually have exercised the state machine (drain
        # usually transits to probe_bw within a single acknowledgement, so
        # it is not required to be observable between samples).
        assert {"startup", "probe_bw", "probe_rtt"} <= states

    @pytest.mark.parametrize("cls", [RenoPacket, CubicPacket])
    def test_loss_based_on_ack_fast_matches_on_ack(self, cls):
        fast, spec = cls(), cls()
        for sample in self._sample_stream():
            fast.on_ack_fast(
                sample.now,
                sample.rtt,
                sample.delivery_rate,
                sample.inflight,
                sample.acked_seq,
                sample.newly_delivered,
            )
            spec.on_ack(sample)
            assert fast.cwnd_pkts == spec.cwnd_pkts

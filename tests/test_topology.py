"""Tests of the multi-bottleneck topology subsystem.

Covers the :class:`~repro.config.TopologyConfig` layer and its builders,
the equivalence contract (a one-hop topology dumbbell must be *bit-identical*
to the legacy single-bottleneck form on the fluid substrate and
count-identical on the emulator, under both schedulers), multi-hop behaviour
on both substrates, and the topology axis of the sweep/store layer.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import topology
from repro.config import (
    FlowConfig,
    FluidParams,
    LinkConfig,
    ScenarioConfig,
    TopologyConfig,
    dumbbell_scenario,
)
from repro.core import Network, simulate
from repro.core.simulator import simulate_many
from repro.emulation import EmulationRunner
from repro.emulation.runner import emulate
from repro.experiments import scenarios, sweep
from repro.experiments.store import SweepStore, scenario_key
from repro.metrics import link_metrics

FAST = FluidParams(dt=1e-3)


def _wrap_one_hop(config: ScenarioConfig) -> ScenarioConfig:
    """Re-express a legacy dumbbell scenario through an explicit one-hop topology."""
    topo = topology.dumbbell(
        config.num_flows,
        capacity_mbps=config.bottleneck.capacity_mbps,
        delay_s=config.bottleneck.delay_s,
        buffer_bdp=config.bottleneck.buffer_bdp,
        discipline=config.bottleneck.discipline,
    )
    return ScenarioConfig(
        bottleneck=None,
        flows=config.flows,
        duration_s=config.duration_s,
        fluid=config.fluid,
        seed=config.seed,
        topology=topo,
    )


def _parking_lot_config(duration_s: float = 0.5, discipline: str = "droptail"):
    topo = topology.parking_lot(
        3, cross_flows=1, long_flows=2, hop_delay_s=0.010 / 3, discipline=discipline
    )
    flows = tuple(
        FlowConfig(cca=cca, access_delay_s=0.005)
        for cca in ("bbr1", "reno", "cubic", "bbr2", "reno")
    )
    return ScenarioConfig(
        bottleneck=None, flows=flows, duration_s=duration_s, fluid=FAST, topology=topo
    )


class TestTopologyConfig:
    def test_requires_named_links(self):
        with pytest.raises(ValueError, match="non-empty name"):
            TopologyConfig(
                links=(LinkConfig(100.0, 0.01),), paths=(("bottleneck",),)
            )

    def test_rejects_duplicate_names(self):
        link = LinkConfig(100.0, 0.01, name="a")
        with pytest.raises(ValueError, match="duplicate"):
            TopologyConfig(links=(link, link), paths=(("a",),))

    def test_rejects_unknown_path_links(self):
        link = LinkConfig(100.0, 0.01, name="a")
        with pytest.raises(ValueError, match="unknown links"):
            TopologyConfig(links=(link,), paths=(("b",),))

    def test_rejects_loops_in_path(self):
        link = LinkConfig(100.0, 0.01, name="a")
        with pytest.raises(ValueError, match="twice"):
            TopologyConfig(links=(link,), paths=(("a", "a"),))

    def test_reference_defaults_to_smallest_capacity(self):
        links = (
            LinkConfig(100.0, 0.01, name="fat"),
            LinkConfig(50.0, 0.01, name="thin"),
        )
        topo = TopologyConfig(links=links, paths=(("fat", "thin"),))
        assert topo.reference == "thin"
        assert topo.reference_link.capacity_mbps == 50.0

    def test_with_buffer_and_discipline_map_every_link(self):
        topo = topology.parking_lot(3)
        deep = topo.with_buffer(7.0)
        red = topo.with_discipline("red")
        assert all(link.buffer_bdp == 7.0 for link in deep.links)
        assert all(link.discipline == "red" for link in red.links)

    def test_scenario_path_count_must_match_flows(self):
        topo = topology.dumbbell(3)
        with pytest.raises(ValueError, match="paths"):
            ScenarioConfig(
                bottleneck=None, flows=(FlowConfig(cca="reno"),), topology=topo
            )

    def test_scenario_needs_bottleneck_or_topology(self):
        with pytest.raises(ValueError, match="bottleneck or a topology"):
            ScenarioConfig(bottleneck=None, flows=(FlowConfig(cca="reno"),))

    def test_bottleneck_mirrors_reference_link(self):
        config = _parking_lot_config()
        assert config.bottleneck == config.topology.reference_link

    def test_path_aware_rtt(self):
        config = _parking_lot_config()
        # Long flow crosses the whole 10 ms chain; cross flow one hop.
        assert config.rtt_s(0) == pytest.approx(2 * (0.005 + 0.010))
        assert config.rtt_s(2) == pytest.approx(2 * (0.005 + 0.010 / 3))

    def test_per_link_buffers_scale_with_reference_bdp(self):
        config = _parking_lot_config()
        ref_bdp = config.bottleneck_bdp_packets()
        for link in config.topology.links:
            assert config.link_buffer_packets(link.name) == pytest.approx(ref_bdp)

    def test_effective_topology_of_legacy_config(self):
        config = dumbbell_scenario(["reno", "bbr1"])
        topo = config.effective_topology()
        assert topo.num_links == 1
        assert topo.links[0].name == "bottleneck"
        assert topo.paths == (("bottleneck",), ("bottleneck",))


class TestBuilders:
    def test_parking_lot_shape(self):
        topo = topology.parking_lot(3, cross_flows=2, long_flows=1)
        assert topo.link_names == ("hop-1", "hop-2", "hop-3")
        assert topo.paths[0] == ("hop-1", "hop-2", "hop-3")
        assert topo.paths[1:3] == (("hop-1",), ("hop-1",))
        assert topo.paths[5:7] == (("hop-3",), ("hop-3",))
        assert len(topo.paths) == 1 + 3 * 2

    def test_parking_lot_heterogeneous_capacities(self):
        topo = topology.parking_lot(2, capacity_mbps=(100.0, 50.0))
        assert topo.reference == "hop-2"

    def test_multi_dumbbell_shape(self):
        topo = topology.multi_dumbbell(2, flows_per_dumbbell=2, span_flows=1)
        assert topo.link_names == ("bottleneck-1", "bottleneck-2")
        assert topo.paths[:2] == (("bottleneck-1",), ("bottleneck-1",))
        assert topo.paths[2:4] == (("bottleneck-2",), ("bottleneck-2",))
        assert topo.paths[4] == ("bottleneck-1", "bottleneck-2")

    def test_multi_dumbbell_scenario_more_dumbbells_than_mix_flows(self):
        # Regression: 12 dumbbells over a 10-flow mix used to crash in
        # spread_access_delays on the empty local groups; the surplus
        # dumbbells must simply carry only spanning traffic.
        config = scenarios.multi_dumbbell_scenario("BBRv1", dumbbells=12, span_flows=2)
        assert config.num_flows == 12
        assert config.topology.num_links == 12
        span_paths = config.topology.paths[-2:]
        assert all(len(path) == 12 for path in span_paths)

    def test_fair_share_window_tracks_capacity(self):
        # Regression: the fair-share initial window used to hard-code
        # 100 Mbps regardless of the capacity argument.
        slow = scenarios.parking_lot_scenario("BBRv1", capacity_mbps=10.0)
        fast = scenarios.parking_lot_scenario("BBRv1", capacity_mbps=100.0)
        assert slow.fluid.loss_based_init_window_pkts == pytest.approx(
            max(10.0, fast.fluid.loss_based_init_window_pkts / 10.0)
        )

    def test_per_hop_disciplines(self):
        topo = topology.parking_lot(3, discipline=("red", "droptail", "red"))
        assert [link.discipline for link in topo.links] == ["red", "droptail", "red"]
        md = topology.multi_dumbbell(2, discipline=("droptail", "red"))
        assert [link.discipline for link in md.links] == ["droptail", "red"]

    def test_per_hop_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="one value per hop"):
            topology.parking_lot(3, capacity_mbps=(100.0, 50.0))
        with pytest.raises(ValueError, match="one value per hop"):
            topology.parking_lot(3, discipline=("red", "droptail"))
        with pytest.raises(ValueError, match="one value per hop"):
            topology.multi_dumbbell(2, delay_s=(0.01, 0.01, 0.01))

    def test_network_from_topology_layout(self):
        config = _parking_lot_config()
        net = Network.from_scenario(config)
        assert net.queued_link_indices() == [0, 1, 2]
        assert net.num_flows == 5
        # Long flow: access link then the whole chain.
        assert net.paths[0].link_indices == (3, 0, 1, 2)
        # Cross flow on hop 2: access link then that hop only.
        assert net.paths[3].link_indices == (6, 1)
        assert net.propagation_rtt(0) == pytest.approx(config.rtt_s(0))


class TestHeterogeneousScenarios:
    def test_parking_lot_reference_follows_smallest_capacity(self):
        config = scenarios.parking_lot_scenario(
            "BBRv1", hops=3, capacity_mbps=(100.0, 25.0, 50.0)
        )
        assert config.topology.reference == "hop-2"
        assert config.bottleneck.capacity_mbps == 25.0
        # Fair-share initial window follows the reference capacity, not the
        # 100 Mbps first hop.
        homogeneous = scenarios.parking_lot_scenario("BBRv1", hops=3, capacity_mbps=25.0)
        assert config.fluid.loss_based_init_window_pkts == pytest.approx(
            homogeneous.fluid.loss_based_init_window_pkts
        )

    def test_parking_lot_per_hop_delays(self):
        config = scenarios.parking_lot_scenario(
            "BBRv1", hops=3, cross_flows=1, hop_delays_s=(0.002, 0.006, 0.002)
        )
        assert [link.delay_s for link in config.topology.links] == [0.002, 0.006, 0.002]
        # Long flows span the 10 ms chain; each hop's cross flow sees that
        # hop's own delay, so the hop-2 cross flow has the same RTT spread
        # but a different access delay than hop-1's.
        long_rtt = config.rtt_s(0)
        assert long_rtt == pytest.approx(2 * (config.flows[0].access_delay_s + 0.010))
        cross_hop1, cross_hop2 = config.flows[10], config.flows[11]
        assert cross_hop1.access_delay_s != cross_hop2.access_delay_s

    def test_parking_lot_scalar_arguments_unchanged(self):
        # The heterogeneous plumbing must not disturb the homogeneous form.
        a = scenarios.parking_lot_scenario("BBRv1", hops=3)
        b = scenarios.parking_lot_scenario("BBRv1", hops=3, capacity_mbps=100.0)
        assert a == b

    def test_multi_dumbbell_heterogeneous(self):
        config = scenarios.multi_dumbbell_scenario(
            "BBRv1",
            dumbbells=2,
            span_flows=1,
            capacity_mbps=(100.0, 50.0),
            bottleneck_delay_s=(0.005, 0.015),
            discipline=("droptail", "red"),
        )
        links = config.topology.links
        assert [link.capacity_mbps for link in links] == [100.0, 50.0]
        assert [link.delay_s for link in links] == [0.005, 0.015]
        assert [link.discipline for link in links] == ["droptail", "red"]
        assert config.topology.reference == "bottleneck-2"
        # The spanning flow crosses both dumbbells: 20 ms one-way floor.
        span_index = config.num_flows - 1
        assert config.rtt_s(span_index) >= 2 * 0.020

    def test_topology_scenario_threads_hop_axis(self):
        config = scenarios.topology_scenario(
            "parking-lot",
            hops=2,
            hop_capacities=(100.0, 50.0),
            hop_delays=(0.004, 0.006),
            hop_disciplines=("red", "droptail"),
        )
        links = config.topology.links
        assert [link.capacity_mbps for link in links] == [100.0, 50.0]
        assert [link.delay_s for link in links] == [0.004, 0.006]
        assert [link.discipline for link in links] == ["red", "droptail"]

    def test_validate_hop_axis_errors(self):
        with pytest.raises(ValueError, match="hop_capacities lists 2"):
            scenarios.validate_hop_axis(3, hop_capacities=(100.0, 50.0))
        with pytest.raises(ValueError, match="must be positive"):
            scenarios.validate_hop_axis(2, hop_capacities=(100.0, 0.0))
        with pytest.raises(ValueError, match="must be positive"):
            scenarios.validate_hop_axis(2, hop_delays=(0.01, -0.01))
        with pytest.raises(ValueError, match="unknown hop_disciplines"):
            scenarios.validate_hop_axis(2, hop_disciplines=("red", "codel"))
        with pytest.raises(ValueError, match="dumbbell"):
            scenarios.validate_hop_axis(
                2, hop_capacities=(100.0, 50.0), preset="dumbbell"
            )
        with pytest.raises(ValueError, match="dumbbell"):
            scenarios.topology_scenario("dumbbell", hops=2, hop_delays=(0.01, 0.01))

    def test_both_substrates_run_heterogeneous_chain(self):
        config = scenarios.topology_scenario(
            "parking-lot",
            hops=2,
            hop_capacities=(100.0, 50.0),
            hop_disciplines=("droptail", "red"),
            duration_s=0.5,
            dt=1e-3,
        )
        fluid = simulate(config)
        emu = emulate(config)
        for trace in (fluid, emu):
            assert [link.name for link in trace.links] == ["hop-1", "hop-2"]
            caps = [link.capacity_pps for link in trace.links]
            assert caps[0] == pytest.approx(2 * caps[1])


class TestOneHopEquivalence:
    """A one-hop topology must reproduce the legacy dumbbell exactly."""

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_fluid_bit_identical(self, vectorized):
        legacy = dumbbell_scenario(
            ["bbr1", "reno", "cubic", "bbr2"], duration_s=0.5, fluid=FAST
        )
        wrapped = _wrap_one_hop(legacy)
        a = simulate(legacy, vectorized=vectorized)
        b = simulate(wrapped, vectorized=vectorized)
        for fa, fb in zip(a.flows, b.flows, strict=True):
            assert np.array_equal(fa.rate, fb.rate)
            assert np.array_equal(fa.delivery_rate, fb.delivery_rate)
            assert np.array_equal(fa.rtt, fb.rtt)
            assert np.array_equal(fa.cwnd, fb.cwnd)
        assert np.array_equal(a.links[0].queue, b.links[0].queue)
        assert np.array_equal(a.links[0].loss_prob, b.links[0].loss_prob)

    @pytest.mark.parametrize("scheduler", ["delayline", "closure"])
    @pytest.mark.parametrize("discipline", ["droptail", "red"])
    def test_emulator_count_identical(self, scheduler, discipline):
        legacy = dumbbell_scenario(
            ["bbr1", "reno"], duration_s=1.0, discipline=discipline, seed=5
        )
        wrapped = _wrap_one_hop(legacy)
        ra = EmulationRunner(legacy, scheduler=scheduler)
        rb = EmulationRunner(wrapped, scheduler=scheduler)
        ta = ra.run()
        tb = rb.run()
        for i in ra.senders:
            assert ra.senders[i].sent_count == rb.senders[i].sent_count
            assert ra.senders[i].delivered_count == rb.senders[i].delivered_count
            assert ra.senders[i].lost_count == rb.senders[i].lost_count
        assert ra.bottleneck.queue.enqueued == rb.bottleneck.queue.enqueued
        assert ra.bottleneck.queue.dropped == rb.bottleneck.queue.dropped
        assert ra.bottleneck.transmitted == rb.bottleneck.transmitted
        for fa, fb in zip(ta.flows, tb.flows, strict=True):
            assert np.array_equal(fa.rate, fb.rate)
        assert np.array_equal(ta.links[0].queue, tb.links[0].queue)


class TestFluidMultiHop:
    def test_vectorized_matches_scalar(self):
        config = _parking_lot_config()
        a = simulate(config)
        b = simulate(config, vectorized=False)
        for fa, fb in zip(a.flows, b.flows, strict=True):
            np.testing.assert_allclose(fa.rate, fb.rate, rtol=1e-9, atol=1e-9)
            np.testing.assert_allclose(fa.rtt, fb.rtt, rtol=1e-9, atol=1e-9)
        for la, lb in zip(a.links, b.links, strict=True):
            np.testing.assert_allclose(la.queue, lb.queue, rtol=1e-9, atol=1e-9)

    def test_one_link_trace_per_hop(self):
        trace = simulate(_parking_lot_config())
        assert [link.name for link in trace.links] == ["hop-1", "hop-2", "hop-3"]
        for link in trace.links:
            assert np.all(np.isfinite(link.queue))
            assert np.all((link.loss_prob >= 0) & (link.loss_prob <= 1))

    def test_long_flow_rtt_includes_every_hop_queue(self):
        trace = simulate(_parking_lot_config(duration_s=1.0))
        # The long flow's RTT floor is the full-chain propagation RTT and
        # grows with queueing on all three hops; the cross flow only sees
        # one hop's queue, so its RTT stays strictly below the long flow's.
        assert float(np.max(trace.flows[0].rtt)) > float(np.max(trace.flows[2].rtt))

    def test_simulate_many_handles_topology_scenarios(self):
        config = _parking_lot_config()
        deep = config.with_buffer(4.0)
        batched = simulate_many([config, deep])
        alone = [simulate(config), simulate(deep)]
        for t_batch, t_alone in zip(batched, alone, strict=True):
            assert len(t_batch.links) == 3
            for fa, fb in zip(t_batch.flows, t_alone.flows, strict=True):
                np.testing.assert_allclose(fa.rate, fb.rate, rtol=1e-9, atol=1e-9)


class TestEmulatorMultiHop:
    def test_per_link_traces_and_conservation(self):
        config = _parking_lot_config(duration_s=1.5)
        runner = EmulationRunner(config)
        trace = runner.run()
        assert [link.name for link in trace.links] == ["hop-1", "hop-2", "hop-3"]
        sent = sum(s.sent_count for s in runner.senders.values())
        delivered = sum(s.delivered_count for s in runner.senders.values())
        assert 0 < delivered <= sent
        # Conservation per hop: packets transmitted downstream never exceed
        # what the hop admitted.
        for link in runner.links:
            assert link.transmitted <= link.queue.enqueued

    def test_deterministic_given_seed(self):
        config = _parking_lot_config(duration_s=1.0)
        a = emulate(config)
        b = emulate(config)
        for fa, fb in zip(a.flows, b.flows, strict=True):
            assert np.array_equal(fa.rate, fb.rate)
        for la, lb in zip(a.links, b.links, strict=True):
            assert np.array_equal(la.queue, lb.queue)

    def test_per_link_red_rng_streams_differ(self):
        config = _parking_lot_config(duration_s=1.0, discipline="red")
        runner = EmulationRunner(config)
        rngs = [link.queue._rng.random() for link in runner.links]
        assert len(set(rngs)) == len(rngs)

    def test_closure_scheduler_rejected_on_multi_hop(self):
        with pytest.raises(ValueError, match="delayline"):
            EmulationRunner(_parking_lot_config(), scheduler="closure")

    def test_link_metrics_per_hop(self):
        trace = emulate(_parking_lot_config(duration_s=1.0))
        metrics = link_metrics(trace)
        assert [m.name for m in metrics] == ["hop-1", "hop-2", "hop-3"]
        for m in metrics:
            assert 0.0 <= m.utilization_percent <= 100.0
            assert 0.0 <= m.loss_percent <= 100.0

    def test_report_link_table(self):
        from repro.experiments import report

        trace = emulate(_parking_lot_config(duration_s=0.5))
        table = report.link_table(link_metrics(trace))
        assert "hop-1" in table and "hop-3" in table
        assert "capacity_mbps" in table and "utilization_percent" in table
        rows = report.link_rows(link_metrics(trace))
        assert rows[0]["capacity_mbps"] == pytest.approx(100.0)


class TestUnboundedBuffer:
    def test_infinite_buffer_never_drops(self):
        config = dumbbell_scenario(
            ["reno", "cubic"], buffer_bdp=math.inf, duration_s=2.0
        )
        runner = EmulationRunner(config)
        runner.run()
        assert runner.bottleneck.queue.dropped == 0

    def test_unbounded_buffer_bdp_knob(self):
        config = dumbbell_scenario(["reno"], buffer_bdp=math.inf, duration_s=0.1)
        small = EmulationRunner(config, unbounded_buffer_bdp=10.0)
        large = EmulationRunner(config, unbounded_buffer_bdp=200.0)
        ratio = large.bottleneck.queue.capacity_pkts / small.bottleneck.queue.capacity_pkts
        assert ratio == pytest.approx(20.0, rel=1e-3)
        with pytest.raises(ValueError, match="unbounded_buffer_bdp"):
            EmulationRunner(config, unbounded_buffer_bdp=0.0)

    def test_finite_buffers_unaffected_by_knob(self):
        config = dumbbell_scenario(["reno"], buffer_bdp=2.0, duration_s=0.1)
        a = EmulationRunner(config, unbounded_buffer_bdp=10.0)
        b = EmulationRunner(config, unbounded_buffer_bdp=500.0)
        assert a.bottleneck.queue.capacity_pkts == b.bottleneck.queue.capacity_pkts


class TestTopologySweep:
    @pytest.fixture(autouse=True)
    def _clear_cache(self):
        sweep.clear_cache()
        yield
        sweep.clear_cache()

    def test_scenario_key_is_topology_aware(self):
        dumbbell_cfg = scenarios.aggregate_scenario("BBRv1", 1.0, "droptail")
        lot_cfg = scenarios.parking_lot_scenario("BBRv1", buffer_bdp=1.0)
        assert scenario_key(dumbbell_cfg, "emulation") != scenario_key(
            lot_cfg, "emulation"
        )
        other_hops = scenarios.parking_lot_scenario("BBRv1", hops=4, buffer_bdp=1.0)
        assert scenario_key(lot_cfg, "emulation") != scenario_key(
            other_hops, "emulation"
        )

    def test_parking_lot_point_round_trips_through_store(self, tmp_path):
        path = tmp_path / "store.jsonl"
        kwargs = dict(
            substrate="emulation",
            duration_s=0.5,
            dt=1e-3,
            topology="parking-lot",
            hops=3,
            cross_flows=1,
        )
        first = sweep.run_point("BBRv1", 1.0, "droptail", store=path, **kwargs)
        sweep.clear_cache()
        store = SweepStore(path)
        assert len(store) == 1
        second = sweep.run_point("BBRv1", 1.0, "droptail", store=store, **kwargs)
        assert store.hits == 1
        assert first.metrics == second.metrics
        row = store.rows(topology="parking-lot")[0]
        assert row["hops"] == 3 and row["cross_flows"] == 1

    def test_topology_cache_key_distinct_from_dumbbell(self):
        kwargs = dict(substrate="fluid", duration_s=0.5, dt=1e-3)
        plain = sweep.run_point("BBRv1", 1.0, "droptail", **kwargs)
        lot = sweep.run_point(
            "BBRv1", 1.0, "droptail", topology="parking-lot", **kwargs
        )
        assert plain.metrics != lot.metrics
        # "dumbbell" preset aliases onto the legacy grid point.
        alias = sweep.run_point(
            "BBRv1", 1.0, "droptail", topology="dumbbell", hops=7, **kwargs
        )
        assert alias.metrics == plain.metrics

    def test_short_rtt_rejected_with_topology(self):
        with pytest.raises(ValueError, match="short_rtt"):
            sweep.run_point(
                "BBRv1",
                1.0,
                "droptail",
                substrate="fluid",
                short_rtt=True,
                topology="parking-lot",
                duration_s=0.5,
                dt=1e-3,
            )

    def test_run_sweep_topology_axis(self):
        points = sweep.run_sweep(
            mixes=["BBRv1"],
            buffers_bdp=[1.0, 2.0],
            disciplines=["droptail"],
            substrate="fluid",
            duration_s=0.5,
            dt=1e-3,
            topology="multi-dumbbell",
            hops=2,
            cross_flows=1,
        )
        assert len(points) == 2
        assert all(np.isfinite(p.metrics.utilization_percent) for p in points)

    def test_hop_axis_distinguishes_cache_and_store_keys(self):
        kwargs = dict(
            substrate="fluid", duration_s=0.5, dt=1e-3,
            topology="parking-lot", hops=2,
        )
        plain = sweep.run_point("BBRv1", 1.0, "droptail", **kwargs)
        hetero = sweep.run_point(
            "BBRv1", 1.0, "droptail", hop_capacities=(100.0, 50.0), **kwargs
        )
        assert plain.metrics != hetero.metrics
        cfg_plain = scenarios.topology_scenario(
            "parking-lot", hops=2, duration_s=0.5, dt=1e-3
        )
        cfg_hetero = scenarios.topology_scenario(
            "parking-lot", hops=2, hop_capacities=(100.0, 50.0),
            duration_s=0.5, dt=1e-3,
        )
        assert scenario_key(cfg_plain, "fluid") != scenario_key(cfg_hetero, "fluid")

    def test_hop_axis_round_trips_through_store(self, tmp_path):
        path = tmp_path / "store.jsonl"
        kwargs = dict(
            substrate="fluid",
            duration_s=0.5,
            dt=1e-3,
            topology="parking-lot",
            hops=2,
            cross_flows=1,
            hop_capacities=(100.0, 50.0),
            hop_delays=(0.004, 0.006),
            hop_disciplines=("red", "droptail"),
        )
        first = sweep.run_point("BBRv1", 1.0, "droptail", store=path, **kwargs)
        sweep.clear_cache()
        store = SweepStore(path)
        second = sweep.run_point("BBRv1", 1.0, "droptail", store=store, **kwargs)
        assert store.hits == 1
        assert first.metrics == second.metrics
        row = store.rows(topology="parking-lot")[0]
        assert row["hop_capacities"] == [100.0, 50.0]
        assert row["hop_delays"] == [0.004, 0.006]
        assert row["hop_disciplines"] == ["red", "droptail"]

    def test_run_sweep_heterogeneous_axis(self):
        points = sweep.run_sweep(
            mixes=["BBRv1"],
            buffers_bdp=[1.0],
            disciplines=["droptail"],
            substrate="fluid",
            duration_s=0.5,
            dt=1e-3,
            topology="parking-lot",
            hops=2,
            cross_flows=1,
            hop_capacities=(100.0, 50.0),
        )
        assert len(points) == 1
        assert np.isfinite(points[0].metrics.utilization_percent)

    def test_hop_disciplines_conflict_with_discipline_axis(self):
        # --hop-disciplines fixes every hop; sweeping droptail AND red on
        # top would produce identical runs under two labels.
        with pytest.raises(ValueError, match="single disciplines value"):
            sweep.run_sweep(
                mixes=["BBRv1"],
                buffers_bdp=[1.0],
                disciplines=["droptail", "red"],
                substrate="fluid",
                duration_s=0.5,
                dt=1e-3,
                topology="parking-lot",
                hops=2,
                hop_disciplines=("red", "red"),
            )
        points = sweep.run_sweep(
            mixes=["BBRv1"],
            buffers_bdp=[1.0],
            disciplines=["droptail"],
            substrate="fluid",
            duration_s=0.5,
            dt=1e-3,
            topology="parking-lot",
            hops=2,
            hop_disciplines=("red", "red"),
        )
        assert len(points) == 1
        # Rows are labelled by what actually ran, not the grid slot.
        assert points[0].discipline == "red/red"

    def test_hop_disciplines_label_and_alias(self):
        # The same per-hop scenario requested under different grid labels
        # must alias onto one cached point, labelled by the composite.
        kwargs = dict(
            substrate="fluid", duration_s=0.5, dt=1e-3,
            topology="parking-lot", hops=2,
            hop_disciplines=("red", "droptail"),
        )
        a = sweep.run_point("BBRv1", 1.0, "droptail", **kwargs)
        b = sweep.run_point("BBRv1", 1.0, "red", **kwargs)
        assert a.discipline == b.discipline == "red/droptail"
        assert a is b  # cache-aliased, not recomputed

    def test_run_sweep_rejects_malformed_hop_axis(self):
        with pytest.raises(ValueError, match="one value per hop"):
            sweep.run_sweep(
                mixes=["BBRv1"],
                buffers_bdp=[1.0],
                disciplines=["droptail"],
                substrate="fluid",
                duration_s=0.5,
                dt=1e-3,
                topology="parking-lot",
                hops=3,
                hop_capacities=(100.0, 50.0),
            )
        with pytest.raises(ValueError, match="dumbbell"):
            sweep.run_point(
                "BBRv1", 1.0, "droptail",
                substrate="fluid", duration_s=0.5, dt=1e-3,
                hop_capacities=(100.0, 50.0, 25.0),
            )

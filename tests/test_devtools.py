"""Tests of the ``repro-bbr check`` static-analysis suite.

Three layers:

* fixture mini-repos under ``tests/devtools_fixtures/`` — one seeded
  violation per rule id, each checker pointed at the matching root;
* synthetic cache-key regressions — an unhashed ``ScenarioConfig`` field
  must trip ``CACHE001``, an unprobeable field ``CACHE003``, schema drift
  ``CACHE004``;
* the repo itself — ``repro-bbr check`` must run clean (exit 0) with no
  stale allowlist entries.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro import cli
from repro.config import FlowConfig, LinkConfig, ScenarioConfig
from repro.devtools import Allowlist, Baseline, Finding, run_check
from repro.devtools import cachekey
from repro.devtools.base import CheckContext
from repro.devtools.determinism import DeterminismChecker
from repro.devtools.rng import RngStreamChecker
from repro.devtools.unitcheck import UnitsChecker
from repro.experiments import store

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "devtools_fixtures"


def _rules(checker, fixture: str) -> list[str]:
    findings = checker.run(CheckContext(FIXTURES / fixture))
    return [f.rule for f in findings]


# ---------------------------------------------------------------- fixtures


def test_det001_wall_clock_fixture():
    rules = _rules(DeterminismChecker(), "det001")
    assert rules.count("DET001") == 2
    assert set(rules) == {"DET001"}


def test_det002_ambient_rng_fixture():
    rules = _rules(DeterminismChecker(), "det002")
    assert rules.count("DET002") == 2
    assert set(rules) == {"DET002"}


def test_det003_adhoc_rng_fixture():
    findings = DeterminismChecker().run(CheckContext(FIXTURES / "det003"))
    assert [f.rule for f in findings] == ["DET003"]
    # The blessed factory's own construction is not flagged.
    assert "make_generator" not in findings[0].message
    assert findings[0].snippet == "return random.Random(seed)  # DET003: bypasses derive_rng"


def test_rng001_nonliteral_label_fixture():
    assert "RNG001" in _rules(RngStreamChecker(), "rng001")


def test_rng002_prefix_collision_fixture():
    findings = RngStreamChecker().run(CheckContext(FIXTURES / "rng002"))
    rules = [f.rule for f in findings]
    assert rules.count("RNG002") == 2  # missing prefix + flow:/flow:cross: clash
    messages = " ".join(f.message for f in findings)
    assert "flow:" in messages


def test_rng003_seed_arithmetic_fixture():
    findings = RngStreamChecker().run(CheckContext(FIXTURES / "rng003"))
    assert [f.rule for f in findings] == ["RNG003"]
    assert "arithmetic" in findings[0].message


def test_unit001_missing_suffix_fixture():
    findings = UnitsChecker().run(CheckContext(FIXTURES / "unit001"))
    rules = [f.rule for f in findings]
    # The `capacity` field, the `delay` param and the bare `arrival_rate`
    # field (a 1/s quantity that must carry the _per_s suffix).
    assert rules.count("UNIT001") == 3
    names = " ".join(f.message for f in findings)
    assert "capacity" in names and "delay" in names and "'arrival_rate'" in names
    assert "buffer_bdp" not in names  # suffixed names pass
    assert "arrival_rate_per_s" not in names  # _per_s is a recognised suffix


def test_per_s_suffix_recognised():
    from repro.devtools.unitcheck import UNIT_SUFFIXES, _needs_suffix, _suffix_of

    assert _suffix_of("arrival_rate_per_s") == "_per_s"  # not the shorter "_s"
    assert UNIT_SUFFIXES["_per_s"] != UNIT_SUFFIXES["_s"]  # distinct dimensions
    assert not _needs_suffix("arrival_rate_per_s")
    assert _needs_suffix("arrival_rate")


def test_unit002_mixed_units_fixture():
    findings = UnitsChecker().run(CheckContext(FIXTURES / "unit002"))
    assert [f.rule for f in findings] == ["UNIT002", "UNIT002"]
    assert "seconds" in findings[0].message and "Mbps" in findings[0].message


# ------------------------------------------------- cache-key regressions


def _extended_base():
    return ExtendedScenarioConfig(
        bottleneck=LinkConfig(capacity_mbps=100.0, delay_s=0.010, buffer_bdp=1.0),
        flows=(FlowConfig("bbr1"), FlowConfig("reno", access_delay_s=0.007)),
        duration_s=2.0,
    )


@dataclasses.dataclass(frozen=True)
class ExtendedScenarioConfig(ScenarioConfig):
    """ScenarioConfig plus one synthetic field the key forgot to hash."""

    jitter_budget_s: float = 0.0


def _key_dropping(*dropped: str):
    def key_fn(config, substrate: str) -> str:
        payload = dataclasses.asdict(config)
        for name in dropped:
            payload.pop(name, None)
        return store.stable_hash((substrate, payload))

    return key_fn


def test_cache001_catches_unhashed_scenario_field():
    """The acceptance regression: add a ScenarioConfig field, forget to hash
    it, and the mutation probe must flag it on both substrates."""
    base = _extended_base()
    probe = cachekey.Probe(type(base), base, lambda c: c, lambda c, v: v)
    findings = cachekey.check_scenario_key_coverage(
        key_fn=_key_dropping("jitter_budget_s"), probes=[probe], allowed_unhashed={}
    )
    hits = [f for f in findings if f.rule == "CACHE001" and "jitter_budget_s" in f.message]
    assert len(hits) == len(cachekey.SUBSTRATES)  # one finding per substrate
    assert "alias onto one stored record" in hits[0].message


def test_cache001_clean_when_field_is_hashed():
    base = _extended_base()
    probe = cachekey.Probe(type(base), base, lambda c: c, lambda c, v: v)
    findings = cachekey.check_scenario_key_coverage(
        key_fn=_key_dropping(), probes=[probe], allowed_unhashed={}
    )
    assert not [f for f in findings if "jitter_budget_s" in f.message]


def test_cache001_allowlisted_exclusion_is_quiet():
    base = _extended_base()
    probe = cachekey.Probe(type(base), base, lambda c: c, lambda c, v: v)
    allowed = {
        ("ExtendedScenarioConfig", "jitter_budget_s", s): "test exclusion"
        for s in cachekey.SUBSTRATES
    }
    findings = cachekey.check_scenario_key_coverage(
        key_fn=_key_dropping("jitter_budget_s"), probes=[probe], allowed_unhashed=allowed
    )
    assert not [f for f in findings if "jitter_budget_s" in f.message]


def test_cache002_axis_missing_from_key_and_meta():
    def fake_point(mix, buffer_bdp, shiny, use_cache=True):
        pass

    def fake_key(mix, buffer_bdp):
        pass

    def fake_meta(mix, buffer_bdp):
        pass

    findings = cachekey.check_axis_coverage(
        point_fn=fake_point, sweep_fn=None, key_fn=fake_key, meta_fn=fake_meta
    )
    shiny = [f for f in findings if "'shiny'" in f.message]
    assert [f.rule for f in shiny] == ["CACHE002", "CACHE002"]  # key + meta
    assert not [f for f in findings if "use_cache" in f.message]  # execution param


def test_cache003_unprobeable_field():
    @dataclasses.dataclass(frozen=True)
    class Opaque:
        blob: frozenset = frozenset()

    probe = cachekey.Probe(Opaque, Opaque(), lambda c: c, lambda c, v: v)
    findings = cachekey.check_scenario_key_coverage(
        key_fn=lambda c, s: "constant", probes=[probe], allowed_unhashed={}
    )
    assert [f.rule for f in findings] == ["CACHE003"]
    assert "Opaque.blob" in findings[0].message


def test_cache004_schema_fingerprint(tmp_path):
    fp = tmp_path / "schema_fingerprint.json"
    missing = cachekey.check_schema_fingerprint(path=fp)
    assert [f.rule for f in missing] == ["CACHE004"]

    cachekey.write_schema_fingerprint(path=fp)
    assert cachekey.check_schema_fingerprint(path=fp) == []

    stale_version = cachekey.check_schema_fingerprint(
        path=fp, schema_version=store.SCHEMA_VERSION + 1
    )
    assert [f.rule for f in stale_version] == ["CACHE004"]
    assert "SCHEMA_VERSION" in stale_version[0].message

    drifted = cachekey.check_schema_fingerprint(path=fp, fingerprint="0" * 16)
    assert [f.rule for f in drifted] == ["CACHE004"]
    assert "without a SCHEMA_VERSION bump" in drifted[0].message


def test_committed_fingerprint_matches_current_schema():
    assert cachekey.check_schema_fingerprint() == []


# ----------------------------------------------------- allowlist/baseline


def test_allowlist_requires_justification(tmp_path):
    path = tmp_path / "allowlist.txt"
    path.write_text("DET001 src/foo.py time.time\n")
    with pytest.raises(ValueError, match="justification"):
        Allowlist.load(path)


def test_allowlist_matches_and_tracks_usage(tmp_path):
    path = tmp_path / "allowlist.txt"
    path.write_text(
        "DET001 src/foo.py time.time # timing is display-only here\n"
        "DET002 src/bar.py random.random # never used\n"
    )
    allowlist = Allowlist.load(path)
    finding = Finding(
        rule="DET001",
        path="src/foo.py",
        line=7,
        message="wall-clock call time.time() inside a simulation kernel",
    )
    assert allowlist.suppresses(finding)
    assert not allowlist.suppresses(dataclasses.replace(finding, rule="DET003"))
    unused = allowlist.unused_entries()
    assert [e.rule for e in unused] == ["DET002"]


def test_baseline_round_trip(tmp_path):
    finding = Finding(rule="DET001", path="src/foo.py", line=7, message="msg")
    other = Finding(rule="DET002", path="src/foo.py", line=9, message="other")
    path = tmp_path / "baseline.json"
    Baseline.from_findings([finding]).write(path)
    loaded = Baseline.load(path)
    assert loaded.suppresses(finding)
    # Fingerprints ignore the line number: moved code stays suppressed.
    assert loaded.suppresses(dataclasses.replace(finding, line=99))
    assert not loaded.suppresses(other)


# ------------------------------------------------------------ repo + CLI


def test_repo_runs_clean():
    findings, warnings = run_check(REPO_ROOT)
    assert findings == [], "\n".join(f.render() for f in findings)
    assert warnings == [], "stale allowlist entries:\n" + "\n".join(warnings)


def test_cli_check_exits_zero_on_repo(capsys):
    assert cli.main(["check"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_cli_check_exits_nonzero_on_fixture(capsys):
    assert cli.main(["check", "--root", str(FIXTURES / "det001")]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out


def test_cli_check_json_output(capsys):
    assert cli.main(["check", "--root", str(FIXTURES / "det002"), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 2
    assert {f["rule"] for f in payload["findings"]} == {"DET002"}
    assert all(f["fingerprint"] for f in payload["findings"])


def test_cli_check_baseline_flow(tmp_path, capsys):
    root = str(FIXTURES / "det001")
    baseline = str(tmp_path / "baseline.json")
    assert cli.main(["check", "--root", root, "--write-baseline", baseline]) == 0
    assert cli.main(["check", "--root", root, "--baseline", baseline]) == 0
    capsys.readouterr()
    assert cli.main(["check", "--baseline", str(tmp_path / "missing.json")]) == 2
    assert "not found" in capsys.readouterr().err

"""Unit tests and properties of the unit-conversion helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestMbpsConversion:
    def test_100mbps_is_8333_packets_per_second(self):
        assert units.mbps_to_pps(100.0) == pytest.approx(8333.33, rel=1e-3)

    def test_zero_rate_maps_to_zero(self):
        assert units.mbps_to_pps(0.0) == 0.0
        assert units.pps_to_mbps(0.0) == 0.0

    def test_custom_mss(self):
        # With 1250-byte packets, 10 Mbps is exactly 1000 packets/second.
        assert units.mbps_to_pps(10.0, mss_bytes=1250) == pytest.approx(1000.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            units.mbps_to_pps(-1.0)
        with pytest.raises(ValueError):
            units.pps_to_mbps(-1.0)

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_roundtrip(self, rate_mbps):
        assert units.pps_to_mbps(units.mbps_to_pps(rate_mbps)) == pytest.approx(
            rate_mbps, rel=1e-9, abs=1e-12
        )


class TestBdp:
    def test_100mbps_30ms_bdp(self):
        pps = units.mbps_to_pps(100.0)
        assert units.bdp_packets(pps, 0.030) == pytest.approx(250.0, rel=1e-3)

    def test_buffer_in_bdp_multiples(self):
        pps = units.mbps_to_pps(100.0)
        assert units.buffer_packets(2.0, pps, 0.030) == pytest.approx(500.0, rel=1e-3)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            units.bdp_packets(-1.0, 0.03)
        with pytest.raises(ValueError):
            units.bdp_packets(1000.0, -0.03)
        with pytest.raises(ValueError):
            units.buffer_packets(-1.0, 1000.0, 0.03)

    @given(
        st.floats(min_value=1.0, max_value=1e6),
        st.floats(min_value=1e-4, max_value=10.0),
    )
    def test_bdp_scales_linearly_with_rtt(self, capacity, rtt):
        assert units.bdp_packets(capacity, 2 * rtt) == pytest.approx(
            2 * units.bdp_packets(capacity, rtt), rel=1e-9
        )


class TestVolumeConversion:
    @given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    def test_roundtrip(self, packets):
        assert units.mbit_to_packets(units.packets_to_mbit(packets)) == pytest.approx(
            packets, rel=1e-9, abs=1e-9
        )

    def test_single_packet_is_12_kbit(self):
        assert units.packets_to_mbit(1.0) == pytest.approx(0.012)

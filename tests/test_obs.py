"""Tests of the runtime telemetry layer (``repro.obs``) and its surfaces.

Five concerns:

* the :class:`~repro.obs.Telemetry` registry itself — disabled no-ops,
  counters/gauges/spans, the ``tracing()`` context (span-log JSONL, env
  export to pool workers, state restoration);
* the structured stderr logger and the Chrome trace-event exporter;
* per-point ``runtime`` blocks in stored records (including the batched
  lockstep ``shared=`` amortisation and legacy rows without the block);
* the observability guarantee itself — ``--trace`` must not change any
  store row's scenario key or metric values, on either substrate;
* the CLI surfaces: ``store summary`` (all three backends), ``status``,
  ``trace export --chrome``, ``campaign --trace`` and the ``-v``/``-q``
  log-level flags — plus the OBS001 label-hygiene checker fixture.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

import pytest

from repro import cli
from repro.devtools.base import CheckContext
from repro.devtools.obscheck import ObsLabelChecker
from repro.experiments import sweep
from repro.experiments.store import SweepStore
from repro.experiments.summary import percentile, render_summary, summarize_store
from repro.metrics.aggregate import AggregateMetrics
from repro.obs import ENV_VAR, TELEMETRY, RuntimeCapture, chrome_trace, export_chrome
from repro.obs import log as obs_log
from repro.obs import telemetry as telemetry_module

FIXTURES = Path(__file__).resolve().parent / "devtools_fixtures"

FAST = dict(duration_s=0.5, dt=1e-3)


@pytest.fixture(autouse=True)
def _clean_obs(monkeypatch):
    """Isolate the process-global telemetry/log/cache state per test."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    TELEMETRY.disable()
    TELEMETRY.reset()
    sweep.clear_cache()
    prev_level = obs_log.level()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()
    sweep.clear_cache()
    obs_log.set_level(prev_level)


def _metrics(value: float = 1.0) -> AggregateMetrics:
    return AggregateMetrics(
        jain_fairness=value,
        loss_percent=value * 2,
        buffer_occupancy_percent=value * 3,
        utilization_percent=value * 4,
        jitter_ms=value * 5,
    )


def _read_jsonl(path: Path) -> list[dict]:
    return [json.loads(line) for line in path.read_text().splitlines() if line]


# ---------------------------------------------------------------- registry


class TestTelemetry:
    def test_disabled_is_inert(self):
        TELEMETRY.count("emu.events_popped", 5)
        TELEMETRY.gauge("emu.heap_peak", 3)
        TELEMETRY.gauge_max("emu.heap_peak", 9)
        snap = TELEMETRY.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "spans": {}}
        # The disabled span stub is one shared object — no per-call allocation.
        assert TELEMETRY.span("fluid.integrate") is TELEMETRY.span("emu.run")

    def test_counters_gauges_and_spans(self):
        TELEMETRY.enable()
        TELEMETRY.count("store.hit")
        TELEMETRY.count("store.hit", 2)
        TELEMETRY.gauge("exec.window", 4)
        TELEMETRY.gauge_max("emu.heap_peak", 7)
        TELEMETRY.gauge_max("emu.heap_peak", 3)  # below high-water: ignored
        with TELEMETRY.span("fluid.integrate", flows=2):
            pass
        snap = TELEMETRY.snapshot()
        assert snap["counters"] == {"store.hit": 3}
        assert snap["gauges"] == {"exec.window": 4, "emu.heap_peak": 7}
        assert snap["spans"]["fluid.integrate"]["count"] == 1
        assert snap["spans"]["fluid.integrate"]["total_s"] >= 0.0

    def test_reset_keeps_enabled_state(self):
        TELEMETRY.enable()
        TELEMETRY.count("store.hit")
        TELEMETRY.reset()
        assert TELEMETRY.enabled
        assert TELEMETRY.snapshot()["counters"] == {}

    def test_tracing_writes_spans_and_restores_state(self, tmp_path):
        trace = tmp_path / "spans.jsonl"
        with TELEMETRY.tracing(trace):
            assert TELEMETRY.enabled
            assert os.environ[ENV_VAR] == str(trace)
            with TELEMETRY.span("emu.run", mix="BBRv1"):
                pass
        # Prior state (disabled, no env var) is restored on exit.
        assert not TELEMETRY.enabled
        assert ENV_VAR not in os.environ
        events = _read_jsonl(trace)
        span = next(e for e in events if e["ev"] == "span")
        assert span["name"] == "emu.run"
        assert span["pid"] == os.getpid()
        assert span["dur"] >= 0.0
        assert span["fields"] == {"mix": "BBRv1"}
        # The exit flush appends one counters snapshot for the exporter.
        assert events[-1]["ev"] == "counters"
        assert events[-1]["spans"]["emu.run"]["count"] == 1

    def test_tracing_restores_prior_env_value(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        with TELEMETRY.tracing(tmp_path / "spans.jsonl"):
            assert os.environ[ENV_VAR] != "1"
        assert os.environ[ENV_VAR] == "1"

    def test_env_value_one_enables_counters_only(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        telemetry_module._configure_from_env()
        assert TELEMETRY.enabled
        assert TELEMETRY.trace_path is None

    def test_env_path_enables_span_log(self, monkeypatch, tmp_path):
        trace = tmp_path / "worker-spans.jsonl"
        monkeypatch.setenv(ENV_VAR, str(trace))
        telemetry_module._configure_from_env()
        assert TELEMETRY.enabled
        assert TELEMETRY.trace_path == trace


# ---------------------------------------------------------------- logging


class TestLog:
    def test_info_prints_event_and_fields_to_stderr(self, capsys):
        obs_log.set_level("info")
        obs_log.info("executor.progress", "3/9 points done", failed=1)
        err = capsys.readouterr().err
        assert "3/9 points done" in err
        assert "failed=1" in err

    def test_level_gate(self, capsys):
        obs_log.set_level("warning")
        obs_log.info("executor.progress", "chatter")
        obs_log.warning("campaign.store_missing", "no store configured")
        err = capsys.readouterr().err
        assert "chatter" not in err
        assert "no store configured" in err

    def test_quiet_is_an_error_alias(self, capsys):
        obs_log.set_level("quiet")
        assert obs_log.level() == "quiet"
        obs_log.warning("campaign.failures", "suppressed")
        obs_log.error("campaign.failures", "2 point(s) failed")
        err = capsys.readouterr().err
        assert "suppressed" not in err
        assert "2 point(s) failed" in err

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            obs_log.set_level("loud")

    def test_records_mirror_into_span_log_below_threshold(self, tmp_path, capsys):
        obs_log.set_level("warning")
        trace = tmp_path / "spans.jsonl"
        with TELEMETRY.tracing(trace):
            obs_log.info("executor.progress", "quiet on stderr", done=2)
        assert "quiet on stderr" not in capsys.readouterr().err
        record = next(e for e in _read_jsonl(trace) if e["ev"] == "log")
        assert record["event"] == "executor.progress"
        assert record["level"] == "info"
        assert record["fields"] == {"done": 2}


# ---------------------------------------------------------------- runtime


class TestRuntimeCapture:
    def test_basic_block(self):
        with RuntimeCapture() as capture:
            sum(range(10_000))
        block = capture.block({"steps": 42})
        assert block["wall_s"] >= 0.0
        assert block["cpu_s"] >= 0.0
        assert block["max_rss_kb"] > 0
        assert block["counters"] == {"steps": 42}
        assert "shared" not in block

    def test_shared_divides_wall_and_cpu(self):
        with RuntimeCapture() as capture:
            sum(range(10_000))
        block = capture.block(shared=4)
        assert block["shared"] == 4
        assert block["wall_s"] == round(capture.wall_s / 4, 6)
        assert block["cpu_s"] == round(capture.cpu_s / 4, 6)


# ---------------------------------------------------------------- chrome


class TestChromeExport:
    EVENTS = [
        {"ev": "span", "name": "emu.run", "pid": 7, "ts": 2.0, "dur": 0.25,
         "fields": {"mix": "BBRv1"}},
        {"ev": "log", "level": "info", "event": "executor.progress",
         "msg": "1/1 done", "pid": 7},
        {"ev": "counters", "pid": 7, "counters": {"emu.events_popped": 12},
         "gauges": {}, "spans": {}},
    ]

    def test_chrome_trace_structure(self):
        doc = chrome_trace(self.EVENTS)
        assert doc["displayTimeUnit"] == "ms"
        by_ph = {e["ph"]: e for e in doc["traceEvents"]}
        span = by_ph["X"]
        assert span["name"] == "emu.run"
        assert span["ts"] == pytest.approx(2.0e6)
        assert span["dur"] == pytest.approx(0.25e6)
        assert span["args"] == {"mix": "BBRv1"}
        # Instants and counters are pinned to their pid's earliest span.
        assert by_ph["i"]["ts"] == span["ts"]
        assert by_ph["C"]["name"] == "emu.events_popped"
        assert by_ph["C"]["args"] == {"value": 12}

    def test_export_skips_torn_tail(self, tmp_path):
        span_log = tmp_path / "spans.jsonl"
        lines = [json.dumps(e) for e in self.EVENTS]
        span_log.write_text("\n".join(lines) + '\n{"ev": "span", "na')
        count, out = export_chrome(span_log)
        assert out == tmp_path / "spans.chrome.json"
        assert count == 3
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) == 3


# ---------------------------------------------------------------- devtools


class TestObsLabelChecker:
    def test_obs001_fixture(self):
        findings = ObsLabelChecker().run(CheckContext(FIXTURES / "obs001"))
        assert [f.rule for f in findings] == ["OBS001", "OBS001"]
        messages = " ".join(f.message for f in findings)
        assert "not a string literal" in messages
        assert "'queue_depth'" in messages
        # The literal, namespaced calls in the same fixture are not flagged.
        assert "emu." not in messages


# ---------------------------------------------------------------- store rows


class TestRuntimeInStore:
    def test_fluid_point_stores_runtime_block(self, tmp_path):
        store = SweepStore(tmp_path / "s.jsonl")
        point = sweep.run_point(
            "BBRv1", 1.0, "droptail", substrate="fluid", store=store, **FAST
        )
        assert point.runtime is not None
        assert point.runtime["wall_s"] >= 0.0
        assert point.runtime["counters"]["steps"] > 0
        assert point.runtime["counters"]["flows"] == 10
        record = store.select()[0]
        assert record["runtime"] == point.runtime
        # Non-keyed: the block never participates in point equality.
        assert dataclasses.replace(point, runtime=None) == point

    def test_emulation_point_stores_substrate_counters(self, tmp_path):
        store = SweepStore(tmp_path / "s.jsonl")
        point = sweep.run_point(
            "BBRv1", 1.0, "droptail", substrate="emulation", duration_s=0.5,
            store=store,
        )
        counters = point.runtime["counters"]
        assert counters["events_popped"] > 0
        assert counters["heap_peak"] > 0
        assert counters["pkts_sent"] > 0

    def test_warm_point_has_no_runtime(self, tmp_path):
        store = SweepStore(tmp_path / "s.jsonl")
        sweep.run_point("BBRv1", 1.0, "droptail", substrate="fluid",
                        store=store, **FAST)
        sweep.clear_cache()
        warm = sweep.run_point("BBRv1", 1.0, "droptail", substrate="fluid",
                               store=store, **FAST)
        assert warm.runtime is None

    def test_batched_fluid_sweep_amortises_runtime(self, tmp_path):
        store = SweepStore(tmp_path / "s.jsonl")
        points = sweep.run_sweep(
            mixes=["BBRv1", "BBRv2"], buffers_bdp=[0.5],
            disciplines=["droptail"], substrate="fluid", store=store, **FAST,
        )
        assert len(points) == 2
        for point in points:
            assert point.runtime["shared"] == 2
            assert point.runtime["counters"]["lockstep"] == 2
        for record in store.select():
            assert record["runtime"]["shared"] == 2

    def test_legacy_rows_without_runtime_load_fine(self, tmp_path):
        store = SweepStore(tmp_path / "s.jsonl")
        store.put("legacy", _metrics(), meta={"mix": "BBRv1", "substrate": "fluid"})
        record = store.select()[0]
        assert "runtime" not in record
        summary = summarize_store(store)
        assert summary["rows"] == 1
        assert summary["runtime"] == {}


# ------------------------------------------------------- trace determinism


class TestTraceDeterminism:
    @pytest.mark.parametrize("substrate", ["fluid", "emulation"])
    def test_trace_does_not_change_keys_or_metrics(self, tmp_path, substrate):
        grid = dict(
            mixes=["BBRv1", "BBRv1/CUBIC"] if substrate == "fluid" else ["BBRv1"],
            buffers_bdp=[0.5],
            disciplines=["droptail"],
            substrate=substrate,
            duration_s=0.5,
        )
        plain = SweepStore(tmp_path / "plain.jsonl")
        sweep.run_sweep(store=plain, **grid)
        sweep.clear_cache()
        trace = tmp_path / "spans.jsonl"
        traced = SweepStore(tmp_path / "traced.jsonl")
        sweep.run_sweep(store=traced, trace=trace, **grid)
        # Tracing is pure observability: bit-identical keys and metrics.
        plain_rows = {r["key"]: r["metrics"] for r in plain.select()}
        traced_rows = {r["key"]: r["metrics"] for r in traced.select()}
        assert traced_rows == plain_rows
        assert plain_rows
        # The span log was actually written, and state was restored.
        assert any(e["ev"] == "span" for e in _read_jsonl(trace))
        assert not TELEMETRY.enabled
        assert ENV_VAR not in os.environ


# ---------------------------------------------------------------- summary


class TestSummary:
    def test_percentile(self):
        assert percentile([3.0], 99) == 3.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
        assert percentile([1.0, 2.0, 3.0, 4.0], 0) == 1.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)
        with pytest.raises(ValueError, match="level"):
            percentile([1.0], 101)

    def test_summarize_and_render(self, tmp_path):
        store = SweepStore(tmp_path / "s.jsonl")
        store.put(
            "k1", _metrics(),
            meta={"mix": "BBRv1", "substrate": "fluid", "buffer_bdp": 0.5},
            runtime={"wall_s": 0.5, "cpu_s": 0.4},
        )
        store.put(
            "k2", _metrics(2.0),
            meta={"mix": "BBRv2", "substrate": "fluid", "buffer_bdp": 0.5},
            runtime={"wall_s": 1.5, "cpu_s": 1.4},
        )
        store.put_failure("k3", "boom", meta={"mix": "BBRv2", "buffer_bdp": 1.0})
        summary = summarize_store(store)
        assert summary["rows"] == 2
        assert summary["failures"] == 1
        assert summary["axes"]["mix"] == {"BBRv1": 1, "BBRv2": 1}
        assert summary["axes"]["buffer_bdp"] == {"0.5": 2}
        fluid = summary["runtime"]["fluid"]
        assert fluid["points"] == 2
        assert fluid["wall_s"]["p50"] == 1.0
        assert fluid["wall_s"]["total"] == 2.0
        text = render_summary(summary)
        assert "2 results, 1 failures" in text
        assert "BBRv1" in text
        assert "wall_s" in text


# ---------------------------------------------------------------- CLI


class TestStoreSummaryCli:
    @pytest.mark.parametrize("name,backend", [
        ("s.jsonl", "jsonl"),
        ("s.shards", "sharded"),
        ("s.sqlite", "sqlite"),
    ])
    def test_summary_on_every_backend(self, tmp_path, capsys, name, backend):
        path = tmp_path / name
        store = SweepStore(path)
        assert store.backend == backend
        store.put(
            "k1", _metrics(),
            meta={"mix": "BBRv1", "substrate": "fluid"},
            runtime={"wall_s": 0.25, "cpu_s": 0.2},
        )
        store.put_failure("k2", "boom", meta={"mix": "BBRv2"})
        store.close()
        assert cli.main(["store", "summary", str(path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["backend"] == backend
        assert summary["rows"] == 1
        assert summary["failures"] == 1
        assert summary["runtime"]["fluid"]["wall_s"]["p50"] == 0.25
        assert cli.main(["store", "summary", str(path)]) == 0
        assert "1 results, 1 failures" in capsys.readouterr().out

    def test_missing_store_exits_2_without_creating_it(self, tmp_path, capsys):
        path = tmp_path / "typo.sqlite"
        assert cli.main(["store", "summary", str(path)]) == 2
        assert "not found" in capsys.readouterr().err
        assert not path.exists()


class TestStatusCli:
    GRID = [
        "--substrate", "fluid", "--mixes", "BBRv1", "--buffers", "0.5",
        "--disciplines", "droptail", "--duration", "0.5", "--seeds", "1",
    ]

    def _filled_store(self, tmp_path) -> Path:
        path = tmp_path / "s.jsonl"
        store = SweepStore(path)
        sweep.run_sweep(
            mixes=["BBRv1"], buffers_bdp=[0.5], disciplines=["droptail"],
            substrate="fluid", duration_s=0.5, store=store,
        )
        return path

    def test_complete_grid_exits_0(self, tmp_path, capsys):
        path = self._filled_store(tmp_path)
        assert cli.main(["status", str(path), *self.GRID]) == 0
        out = capsys.readouterr().out
        assert "1 done" in out
        assert "0 remaining" in out

    def test_remaining_points_exit_1(self, tmp_path, capsys):
        path = self._filled_store(tmp_path)
        argv = ["status", str(path), *self.GRID]
        argv[argv.index("BBRv1") + 1 : argv.index("BBRv1") + 1] = ["BBRv2"]
        assert cli.main(argv) == 1
        out = capsys.readouterr().out
        assert "1 done" in out
        assert "1 remaining" in out

    def test_json_output_lists_remaining_coords(self, tmp_path, capsys):
        path = self._filled_store(tmp_path)
        argv = ["status", str(path), *self.GRID, "--json"]
        argv[argv.index("BBRv1") + 1 : argv.index("BBRv1") + 1] = ["BBRv2"]
        assert cli.main(argv) == 1
        status = json.loads(capsys.readouterr().out)
        assert status["done"] == 1
        assert status["remaining"] == 1
        assert [p["mix"] for p in status["remaining_points"]] == ["BBRv2"]

    def test_missing_store_exits_2(self, tmp_path, capsys):
        assert cli.main(["status", str(tmp_path / "nope.jsonl"), *self.GRID]) == 2
        assert "not found" in capsys.readouterr().err

    def test_no_store_at_all_exits_2(self, capsys):
        assert cli.main(["status", *self.GRID]) == 2
        assert "no store" in capsys.readouterr().err


class TestTraceExportCli:
    def test_export_requires_a_format(self, tmp_path, capsys):
        span_log = tmp_path / "spans.jsonl"
        span_log.write_text('{"ev": "span", "name": "emu.run", "pid": 1, '
                            '"ts": 0.0, "dur": 1.0}\n')
        assert cli.main(["trace", "export", str(span_log)]) == 2
        assert "--chrome" in capsys.readouterr().err

    def test_missing_span_log_exits_2(self, tmp_path, capsys):
        assert cli.main(
            ["trace", "export", str(tmp_path / "nope.jsonl"), "--chrome"]
        ) == 2
        assert "not found" in capsys.readouterr().err

    def test_export_chrome_with_output_path(self, tmp_path, capsys):
        span_log = tmp_path / "spans.jsonl"
        span_log.write_text('{"ev": "span", "name": "emu.run", "pid": 1, '
                            '"ts": 0.0, "dur": 1.0}\n')
        out = tmp_path / "flame.json"
        code = cli.main(
            ["trace", "export", str(span_log), "--chrome", "-o", str(out)]
        )
        assert code == 0
        assert "1 trace events" in capsys.readouterr().out
        assert json.loads(out.read_text())["traceEvents"]


class TestCampaignTraceCli:
    def test_traced_campaign_end_to_end(self, tmp_path, capsys):
        store_path = tmp_path / "results.sqlite"
        trace = tmp_path / "spans.jsonl"
        code = cli.main([
            "campaign", "--substrate", "fluid", "--mixes", "BBRv1",
            "--buffers", "0.5", "--seeds", "1", "--duration", "0.5",
            "--store", str(store_path), "--trace", str(trace),
        ])
        assert code == 0
        capsys.readouterr()
        # The traced run persisted runtime blocks alongside the metrics...
        store = SweepStore(store_path)
        record = store.select()[0]
        assert record["runtime"]["wall_s"] >= 0.0
        store.close()
        # ...and the span log converts to a loadable Chrome trace.
        assert cli.main(["trace", "export", str(trace), "--chrome"]) == 0
        doc = json.loads((tmp_path / "spans.chrome.json").read_text())
        assert doc["traceEvents"]

    def test_quiet_and_verbose_flags_set_log_level(self, tmp_path, capsys):
        path = tmp_path / "s.jsonl"
        store = SweepStore(path)
        store.put("k", _metrics(), meta={"mix": "BBRv1"})
        store.close()
        assert cli.main(["--quiet", "store", "summary", str(path)]) == 0
        assert obs_log.level() == "quiet"
        assert cli.main(["-v", "store", "summary", str(path)]) == 0
        assert obs_log.level() == "debug"
        capsys.readouterr()

"""Tests of trace containers, fairness, and aggregate metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import (
    FlowTrace,
    LinkTrace,
    Trace,
    aggregate_metrics,
    buffer_occupancy_percent,
    jain_index,
    jitter_ms,
    loss_percent,
    per_cca_share,
    resample,
    trace_fairness,
    utilization_percent,
)


def make_trace(
    rates: list[float], capacity: float = 1000.0, queue_level: float = 50.0
) -> Trace:
    """Build a small synthetic trace with constant per-flow rates."""
    n_samples = 20
    time = np.linspace(0.0, 1.0, n_samples)
    flows = []
    for i, rate in enumerate(rates):
        flows.append(
            FlowTrace(
                cca="reno" if i % 2 == 0 else "bbr1",
                rate=np.full(n_samples, rate),
                delivery_rate=np.full(n_samples, rate),
                cwnd=np.full(n_samples, 10.0),
                inflight=np.full(n_samples, 5.0),
                rtt=np.full(n_samples, 0.03),
            )
        )
    total = sum(rates)
    links = [
        LinkTrace(
            name="bottleneck",
            capacity_pps=capacity,
            buffer_pkts=100.0,
            queue=np.full(n_samples, queue_level),
            loss_prob=np.full(n_samples, 0.1),
            arrival_rate=np.full(n_samples, total),
            departure_rate=np.full(n_samples, min(total, capacity)),
        )
    ]
    return Trace(time=time, flows=flows, links=links)


class TestJainIndex:
    def test_equal_allocation_is_one(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_user_monopoly(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([-1.0, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_index([])

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=30))
    def test_bounds(self, allocations):
        value = jain_index(allocations)
        assert 1.0 / len(allocations) - 1e-9 <= value <= 1.0 + 1e-9

    @given(
        st.lists(st.floats(min_value=1e-3, max_value=1e6), min_size=2, max_size=20),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_scale_invariance(self, allocations, scale):
        assert jain_index(allocations) == pytest.approx(
            jain_index([scale * a for a in allocations]), rel=1e-6
        )

    def test_denormal_allocation_regression(self):
        # Regression: values**2 underflows to 0 while the sum does not,
        # which used to raise ZeroDivisionError.
        assert jain_index([1.47e-282]) == pytest.approx(1.0)
        assert jain_index([5e-324, 5e-324]) == pytest.approx(1.0)

    def test_huge_allocations_do_not_overflow(self):
        # values**2 == inf for anything above ~1.3e154.
        assert jain_index([1e300, 1e300]) == pytest.approx(1.0)
        assert jain_index([1e308, 0.0]) == pytest.approx(0.5)

    def test_mixed_magnitudes(self):
        # A denormal flow next to a huge one: the tiny flow is starved.
        assert jain_index([1e-320, 1e300]) == pytest.approx(0.5)

    def test_infinite_allocations_take_the_limit(self):
        assert jain_index([np.inf, 1.0]) == pytest.approx(0.5)
        assert jain_index([np.inf, np.inf]) == pytest.approx(1.0)
        assert jain_index([np.inf, np.inf, 0.0, 5.0]) == pytest.approx(0.5)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            jain_index([np.nan, 1.0])

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e308, allow_subnormal=True),
            min_size=1,
            max_size=30,
        )
    )
    def test_bounds_extreme_magnitudes(self, allocations):
        value = jain_index(allocations)
        assert np.isfinite(value)
        assert 1.0 / len(allocations) - 1e-9 <= value <= 1.0 + 1e-9

    @given(
        st.lists(st.floats(min_value=1e-320, max_value=1e-280), min_size=2, max_size=10),
    )
    def test_denormal_lists_match_rescaled(self, allocations):
        # Scaling a denormal allocation into a normal range must not change
        # the index (up to the precision lost by the denormals themselves).
        scaled = [a * 1e290 for a in allocations]
        assert jain_index(allocations) == pytest.approx(jain_index(scaled), rel=1e-3)


class TestTraceMetrics:
    def test_fairness_from_trace(self):
        trace = make_trace([100.0, 100.0, 100.0, 100.0])
        assert trace_fairness(trace) == pytest.approx(1.0)

    def test_unfair_trace(self):
        trace = make_trace([900.0, 10.0])
        assert trace_fairness(trace) < 0.6

    def test_per_cca_share_sums_to_one(self):
        trace = make_trace([300.0, 100.0, 300.0, 100.0])
        shares = per_cca_share(trace)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["reno"] == pytest.approx(0.75)

    def test_tiny_goodput_trace_fairness(self):
        # Denormal goodputs must neither crash nor produce NaN.
        trace = make_trace([1.47e-282, 1.47e-282])
        assert trace_fairness(trace) == pytest.approx(1.0)
        trace = make_trace([1e-320, 2e-320, 4e-320])
        value = trace_fairness(trace)
        assert np.isfinite(value)
        assert 1.0 / 3.0 - 1e-9 <= value <= 1.0 + 1e-9

    def test_huge_goodput_trace_fairness(self):
        trace = make_trace([1e300, 1e300, 1e300, 1e300])
        assert trace_fairness(trace) == pytest.approx(1.0)

    def test_per_cca_share_denormal_goodputs(self):
        shares = per_cca_share(make_trace([1e-320, 1e-320]))
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["reno"] == pytest.approx(0.5)

    def test_per_cca_share_huge_goodputs(self):
        # Totals overflow to inf on purpose: the inf limit must still yield
        # a normalised share vector.
        with np.errstate(over="ignore"):
            shares = per_cca_share(make_trace([1e308, 1e308, 1e308, 1e308]))
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_per_cca_share_all_zero(self):
        shares = per_cca_share(make_trace([0.0, 0.0]))
        assert shares == {"reno": 0.0, "bbr1": 0.0}

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e308, allow_subnormal=True),
            min_size=1,
            max_size=8,
        )
    )
    def test_trace_fairness_extreme_magnitudes(self, rates):
        with np.errstate(over="ignore"):
            value = trace_fairness(make_trace(rates))
        assert np.isfinite(value)
        assert 1.0 / len(rates) - 1e-9 <= value <= 1.0 + 1e-9

    def test_loss_percent(self):
        trace = make_trace([500.0, 500.0])
        assert loss_percent(trace) == pytest.approx(10.0)

    def test_occupancy_percent(self):
        trace = make_trace([500.0], queue_level=25.0)
        assert buffer_occupancy_percent(trace) == pytest.approx(25.0)

    def test_utilization_percent_capped(self):
        trace = make_trace([900.0, 900.0], capacity=1000.0)
        assert utilization_percent(trace) == pytest.approx(100.0)

    def test_constant_rtt_has_zero_jitter(self):
        trace = make_trace([500.0])
        assert jitter_ms(trace) == pytest.approx(0.0, abs=1e-9)

    def test_jitter_positive_for_varying_rtt(self):
        trace = make_trace([500.0])
        trace.flows[0].rtt = 0.03 + 0.005 * np.sin(np.linspace(0, 20, len(trace.time)))
        assert jitter_ms(trace) > 0.0

    def test_aggregate_metrics_bundle(self):
        metrics = aggregate_metrics(make_trace([500.0, 500.0]))
        as_dict = metrics.as_dict()
        assert set(as_dict) == {
            "jain_fairness",
            "loss_percent",
            "buffer_occupancy_percent",
            "utilization_percent",
            "jitter_ms",
            "fct_p50_s",
            "fct_p95_s",
            "fct_p99_s",
            "active_jain_fairness",
            "mean_active_flows",
        }
        assert as_dict["jain_fairness"] == pytest.approx(1.0)
        # Long-lived flows: no completions, so the FCT columns are NaN and
        # the active-set fields degenerate to whole-population values.
        assert np.isnan(as_dict["fct_p50_s"])
        assert as_dict["mean_active_flows"] == pytest.approx(2.0)


class TestTraceContainers:
    def test_mismatched_lengths_rejected(self):
        time = np.linspace(0, 1, 10)
        flow = FlowTrace(
            cca="reno",
            rate=np.zeros(5),
            delivery_rate=np.zeros(5),
            cwnd=np.zeros(5),
            inflight=np.zeros(5),
            rtt=np.zeros(5),
        )
        with pytest.raises(ValueError):
            Trace(time=time, flows=[flow], links=[])

    def test_flowtrace_requires_equal_series(self):
        with pytest.raises(ValueError):
            FlowTrace(
                cca="reno",
                rate=np.zeros(5),
                delivery_rate=np.zeros(4),
                cwnd=np.zeros(5),
                inflight=np.zeros(5),
                rtt=np.zeros(5),
            )

    def test_bottleneck_selection_picks_smallest_capacity(self):
        trace = make_trace([100.0])
        extra_link = LinkTrace(
            name="fast",
            capacity_pps=10_000.0,
            buffer_pkts=100.0,
            queue=np.zeros(len(trace.time)),
            loss_prob=np.zeros(len(trace.time)),
            arrival_rate=np.zeros(len(trace.time)),
            departure_rate=np.zeros(len(trace.time)),
        )
        trace.links.append(extra_link)
        assert trace.bottleneck().name == "bottleneck"

    def test_resample_interpolates(self):
        time = np.array([0.0, 1.0])
        values = np.array([0.0, 10.0])
        out = resample(time, values, np.array([0.5]))
        assert out[0] == pytest.approx(5.0)

    def test_resample_length_mismatch(self):
        with pytest.raises(ValueError):
            resample(np.zeros(3), np.zeros(2), np.zeros(1))

"""Tests of YAML campaign presets and their CLI merge behaviour."""

from __future__ import annotations

import pytest

from repro import cli
from repro.experiments import sweep as sweep_module
from repro.experiments.executor import ExecutorPolicy
from repro.experiments.presets import (
    CampaignPreset,
    PresetError,
    load_preset,
    parse_preset,
    preset_scenario_fields,
)

FULL_PRESET = """
name: paper-grid
substrate: fluid
seeds: [1, 2, 3]
duration_s: 2.0
short_rtt: true
grid:
  mixes: [BBRv1, BBRv2]
  buffers_bdp: [0.5, 1, 4]
  disciplines: [droptail]
topology:
  preset: parking-lot
  hops: 4
  cross_flows: 2
churn:
  arrivals: poisson
  load: 0.6
store:
  path: results/paper.shards
  backend: sharded
  fsync: false
executor:
  workers: 4
  retries: 2
  backoff_s: 0.1
  timeout_s: 120
  on_failure: skip
  heartbeat_s: 30
  retry_failed: false
"""


class TestParsePreset:
    def test_empty_document_gives_defaults(self):
        preset = parse_preset(None)
        assert preset == CampaignPreset()
        assert preset.substrate == "emulation"
        assert preset.seeds == 5
        assert preset.executor == ExecutorPolicy()
        assert preset.retry_failed is True

    def test_full_document_roundtrip(self, tmp_path):
        path = tmp_path / "paper-grid.yaml"
        path.write_text(FULL_PRESET)
        preset = load_preset(path)
        assert preset.name == "paper-grid"
        assert preset.substrate == "fluid"
        assert preset.seeds == [1, 2, 3]
        assert preset.duration_s == 2.0
        assert preset.short_rtt is True
        assert preset.mixes == ["BBRv1", "BBRv2"]
        assert preset.buffers_bdp == [0.5, 1.0, 4.0]
        assert preset.disciplines == ["droptail"]
        assert preset.topology == "parking-lot"
        assert preset.hops == 4
        assert preset.cross_flows == 2
        assert preset.arrivals == "poisson"
        assert preset.load == 0.6
        assert preset.store_path == "results/paper.shards"
        assert preset.store_backend == "sharded"
        assert preset.store_fsync is False
        assert preset.executor == ExecutorPolicy(
            workers=4, retries=2, backoff_s=0.1, timeout_s=120,
            on_failure="skip", heartbeat_s=30,
        )
        assert preset.retry_failed is False

    def test_name_defaults_to_file_stem(self, tmp_path):
        path = tmp_path / "quick-check.yaml"
        path.write_text("substrate: fluid\n")
        assert load_preset(path).name == "quick-check"

    def test_explicit_name_beats_stem(self, tmp_path):
        path = tmp_path / "whatever.yaml"
        path.write_text("name: canonical\n")
        assert load_preset(path).name == "canonical"

    @pytest.mark.parametrize(
        ("document", "match"),
        [
            ("buffers: [1]", "unknown key"),
            ("grid: {mix: [BBRv1]}", "unknown key"),
            ("topology: {hop: 3}", "unknown key"),
            ("churn: {arrival: poisson}", "unknown key"),
            ("store: {file: x.jsonl}", "unknown key"),
            ("executor: {worker: 4}", "unknown key"),
            ("grid: [BBRv1]", "must be a mapping"),
            ("- just\n- a list", "must be a mapping"),
            ("seeds: many", "'seeds' must be an int"),
            ("seeds: true", "'seeds' must be an int"),
            ("grid: {mixes: BBRv1}", "list of strings"),
            ("grid: {buffers_bdp: [a, b]}", "list of numbers"),
            ("executor: {on_failure: explode}", "on_failure must be one of"),
            ("executor: {workers: 0}", "invalid executor policy"),
            ("executor: {retries: -1}", "invalid executor policy"),
        ],
    )
    def test_malformed_documents_rejected(self, tmp_path, document, match):
        path = tmp_path / "bad.yaml"
        path.write_text(document)
        with pytest.raises(PresetError, match=match):
            load_preset(path)

    def test_missing_file_is_preset_error(self, tmp_path):
        with pytest.raises(PresetError, match="cannot read preset file"):
            load_preset(tmp_path / "absent.yaml")

    def test_invalid_yaml_is_preset_error(self, tmp_path):
        path = tmp_path / "bad.yaml"
        path.write_text("grid: [unclosed\n")
        with pytest.raises(PresetError, match="not valid YAML"):
            load_preset(path)

    def test_campaign_kwargs_match_run_campaign_signature(self):
        import inspect

        accepted = set(inspect.signature(sweep_module.run_campaign).parameters)
        assert set(CampaignPreset().campaign_kwargs()) <= accepted

    def test_scenario_fields_enumerated(self):
        fields = preset_scenario_fields()
        assert "substrate" in fields
        assert "duration_s" in fields
        assert "store_path" not in fields
        assert "executor" not in fields


class TestCliMerge:
    """`repro-bbr campaign --preset` merge: explicit flags beat the preset."""

    @pytest.fixture
    def captured(self, monkeypatch):
        calls: dict = {}

        def fake_run_campaign(**kwargs):
            calls.update(kwargs)
            return sweep_module.CampaignResult(points=[], failures=[])

        monkeypatch.setattr(sweep_module, "run_campaign", fake_run_campaign)
        return calls

    def _preset_file(self, tmp_path, body=FULL_PRESET):
        path = tmp_path / "merge-test.yaml"
        path.write_text(body)
        return path

    def test_preset_values_reach_run_campaign(self, tmp_path, captured, capsys):
        cli.main(["campaign", "--preset", str(self._preset_file(tmp_path))])
        capsys.readouterr()
        assert captured["substrate"] == "fluid"
        assert captured["mixes"] == ["BBRv1", "BBRv2"]
        assert captured["buffers_bdp"] == [0.5, 1.0, 4.0]
        assert captured["seeds"] == [1, 2, 3]
        assert captured["duration_s"] == 2.0
        assert captured["topology"] == "parking-lot"
        assert captured["executor"].workers == 4
        assert captured["executor"].on_failure == "skip"
        assert captured["retry_failed"] is False

    def test_explicit_flags_override_preset(self, tmp_path, captured, capsys):
        cli.main(
            [
                "campaign",
                "--preset", str(self._preset_file(tmp_path)),
                "--substrate", "emulation",
                "--duration", "1.0",
                "--workers", "2",
                "--retries", "0",
            ]
        )
        capsys.readouterr()
        assert captured["substrate"] == "emulation"
        assert captured["duration_s"] == 1.0
        assert captured["executor"].workers == 2
        assert captured["executor"].retries == 0
        # Untouched axes still come from the preset.
        assert captured["mixes"] == ["BBRv1", "BBRv2"]
        assert captured["executor"].on_failure == "skip"

    def test_store_flag_overrides_preset_store(self, tmp_path, captured, capsys):
        override = tmp_path / "cli-override.sqlite"
        cli.main(
            [
                "campaign",
                "--preset", str(self._preset_file(tmp_path)),
                "--store", str(override),
            ]
        )
        capsys.readouterr()
        store = captured["store"]
        assert store is not None
        assert store.path == override
        assert store.backend == "sqlite"
        store.close()

    def test_preset_store_used_when_no_flag(self, tmp_path, captured, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        cli.main(["campaign", "--preset", str(self._preset_file(tmp_path))])
        capsys.readouterr()
        store = captured["store"]
        assert store is not None
        assert store.backend == "sharded"
        assert store.path.name == "paper.shards"
        store.close()

    def test_bad_preset_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.yaml"
        path.write_text("unknown_top: 1\n")
        code = cli.main(["campaign", "--preset", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown key" in captured.err

    def test_missing_preset_exits_2(self, tmp_path, capsys):
        code = cli.main(["campaign", "--preset", str(tmp_path / "nope.yaml")])
        captured = capsys.readouterr()
        assert code == 2
        assert "cannot read preset file" in captured.err

    def test_skip_failures_flag_wins_over_preset_raise(self, tmp_path, captured, capsys):
        path = tmp_path / "strict.yaml"
        path.write_text("substrate: fluid\nexecutor: {on_failure: raise}\n")
        cli.main(["campaign", "--preset", str(path), "--skip-failures"])
        capsys.readouterr()
        assert captured["executor"].on_failure == "skip"

"""Tests of the command-line interface."""

from __future__ import annotations

import pytest

from repro import cli


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_trace_defaults(self):
        args = cli.build_parser().parse_args(["trace", "bbr1"])
        assert args.cca == "bbr1"
        assert args.discipline == "droptail"
        assert args.substrate == "fluid"

    def test_sweep_arguments(self):
        args = cli.build_parser().parse_args(
            ["sweep", "--buffers", "1", "4", "--mixes", "BBRv1", "--disciplines", "droptail"]
        )
        assert args.buffers == [1.0, 4.0]
        assert args.mixes == ["BBRv1"]

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["figure", "fig99"])


class TestExecution:
    def test_theorems_command(self, capsys):
        assert cli.main(["theorems", "--flows", "2", "5"]) == 0
        out = capsys.readouterr().out
        assert "thm3_loss_fraction" in out
        assert "True" in out

    def test_trace_command_fluid(self, capsys):
        assert cli.main(["trace", "bbr2", "--duration", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "utilization_percent" in out

    def test_sweep_command_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        code = cli.main(
            [
                "sweep",
                "--buffers",
                "1",
                "--mixes",
                "BBRv1",
                "--disciplines",
                "droptail",
                "--duration",
                "1.0",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        out = capsys.readouterr().out
        assert "jain_fairness" in out

    def test_figure_command(self, capsys):
        code = cli.main(
            [
                "figure",
                "fig09_utilization",
                "--buffers",
                "1",
                "--mixes",
                "BBRv1",
                "--disciplines",
                "droptail",
                "--duration",
                "1.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig09_utilization" in out

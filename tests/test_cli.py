"""Tests of the command-line interface."""

from __future__ import annotations

import pytest

from repro import cli
from repro.experiments import sweep as sweep_module


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_trace_defaults(self):
        args = cli.build_parser().parse_args(["trace", "bbr1"])
        assert args.cca == "bbr1"
        assert args.discipline == "droptail"
        assert args.substrate == "fluid"

    def test_sweep_arguments(self):
        args = cli.build_parser().parse_args(
            ["sweep", "--buffers", "1", "4", "--mixes", "BBRv1", "--disciplines", "droptail"]
        )
        assert args.buffers == [1.0, 4.0]
        assert args.mixes == ["BBRv1"]

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["figure", "fig99"])

    def test_workers_flag_parsed(self):
        args = cli.build_parser().parse_args(["sweep", "--workers", "4"])
        assert args.workers == 4
        args = cli.build_parser().parse_args(["figure", "fig06_fairness", "--workers", "2"])
        assert args.workers == 2

    def test_workers_default_is_none(self):
        assert cli.build_parser().parse_args(["sweep"]).workers is None
        assert cli.build_parser().parse_args(["figure", "fig07_loss"]).workers is None

    def test_seeds_and_store_flags_parsed(self):
        args = cli.build_parser().parse_args(
            ["sweep", "--seeds", "5", "--store", "results.jsonl"]
        )
        assert args.seeds == 5
        assert args.store == "results.jsonl"
        args = cli.build_parser().parse_args(
            ["figure", "fig06_fairness", "--seeds", "3", "--store", "s.jsonl", "--csv", "f.csv"]
        )
        assert args.seeds == 3 and args.store == "s.jsonl" and args.csv == "f.csv"

    def test_campaign_defaults(self):
        args = cli.build_parser().parse_args(["campaign"])
        assert args.substrate == "emulation"
        assert args.seeds == 5
        assert args.buffers == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
        assert args.store is None and args.csv is None and args.per_seed_csv is None

    def test_topology_defaults(self):
        args = cli.build_parser().parse_args(["topology"])
        assert args.preset == "parking-lot"
        assert args.hops == 3
        assert args.cross_flows == 1
        assert args.substrate == "both"

    def test_topology_preset_choices(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["topology", "--preset", "ring"])

    def test_sweep_topology_axis_parsed(self):
        args = cli.build_parser().parse_args(
            ["sweep", "--topology", "parking-lot", "--hops", "4", "--cross-flows", "2"]
        )
        assert args.topology == "parking-lot"
        assert args.hops == 4 and args.cross_flows == 2
        assert cli.build_parser().parse_args(["campaign"]).topology is None

    def test_hop_list_flags_parsed(self):
        for command in (
            ["sweep", "--topology", "parking-lot"],
            ["campaign", "--topology", "parking-lot"],
            ["topology", "--preset", "parking-lot"],
        ):
            args = cli.build_parser().parse_args(
                command
                + [
                    "--hops", "3",
                    "--hop-capacities", "100,50, 25",
                    "--hop-delays", "0.002,0.006,0.002",
                    "--hop-disciplines", "red,droptail,red",
                ]
            )
            assert args.hop_capacities == ("100", "50", "25")
            assert args.hop_delays == ("0.002", "0.006", "0.002")
            assert args.hop_disciplines == ("red", "droptail", "red")

    def test_hop_list_flags_default_none(self):
        args = cli.build_parser().parse_args(["sweep"])
        assert args.hop_capacities is None
        assert args.hop_delays is None
        assert args.hop_disciplines is None


class TestHopAxisValidation:
    """Malformed heterogeneous hop lists must exit non-zero with a clear
    message, not crash deep inside numpy broadcasting."""

    def test_length_mismatch_exits_nonzero(self, capsys):
        code = cli.main(
            ["topology", "--preset", "parking-lot", "--hops", "3",
             "--hop-capacities", "100,50", "--substrate", "fluid"]
        )
        captured = capsys.readouterr()
        assert code != 0
        assert "hop_capacities lists 2 values but hops=3" in captured.err

    def test_nonpositive_capacity_exits_nonzero(self, capsys):
        code = cli.main(
            ["topology", "--preset", "parking-lot", "--hops", "2",
             "--hop-capacities", "100,-5", "--substrate", "fluid"]
        )
        captured = capsys.readouterr()
        assert code != 0
        assert "must be positive" in captured.err

    def test_nonpositive_delay_exits_nonzero(self, capsys):
        code = cli.main(
            ["topology", "--preset", "parking-lot", "--hops", "2",
             "--hop-delays", "0.01,0", "--substrate", "fluid"]
        )
        captured = capsys.readouterr()
        assert code != 0
        assert "must be positive" in captured.err

    def test_non_numeric_exits_nonzero(self, capsys):
        code = cli.main(
            ["topology", "--preset", "parking-lot", "--hops", "2",
             "--hop-capacities", "100,fast", "--substrate", "fluid"]
        )
        captured = capsys.readouterr()
        assert code != 0
        assert "--hop-capacities" in captured.err

    def test_unknown_discipline_exits_nonzero(self, capsys):
        code = cli.main(
            ["topology", "--preset", "parking-lot", "--hops", "2",
             "--hop-disciplines", "red,codel", "--substrate", "fluid"]
        )
        captured = capsys.readouterr()
        assert code != 0
        assert "hop_disciplines" in captured.err

    def test_hop_lists_need_multi_bottleneck_preset(self, capsys):
        code = cli.main(
            ["sweep", "--mixes", "BBRv1", "--buffers", "1",
             "--hop-capacities", "100,50,25"]
        )
        captured = capsys.readouterr()
        assert code != 0
        assert "multi-bottleneck" in captured.err
        code = cli.main(
            ["campaign", "--mixes", "BBRv1", "--buffers", "1",
             "--hop-delays", "0.01,0.01,0.01"]
        )
        captured = capsys.readouterr()
        assert code != 0
        assert "multi-bottleneck" in captured.err

    def test_hop_disciplines_with_discipline_sweep_exits_nonzero(self, capsys):
        code = cli.main(
            ["sweep", "--mixes", "BBRv1", "--buffers", "1",
             "--topology", "parking-lot", "--hops", "2",
             "--hop-disciplines", "red,red"]
        )
        captured = capsys.readouterr()
        assert code != 0
        assert "single disciplines value" in captured.err

    def test_sweep_passes_hop_axis_through(self, monkeypatch, capsys):
        calls = {}

        def fake_run_sweep(*args, **kwargs):
            calls.update(kwargs)
            return []

        monkeypatch.setattr(sweep_module, "run_sweep", fake_run_sweep)
        cli.main(
            ["sweep", "--mixes", "BBRv1", "--topology", "parking-lot",
             "--hops", "2", "--hop-capacities", "100,50",
             "--hop-delays", "0.004,0.006", "--hop-disciplines", "red,red"]
        )
        capsys.readouterr()
        assert calls["hop_capacities"] == (100.0, 50.0)
        assert calls["hop_delays"] == (0.004, 0.006)
        assert calls["hop_disciplines"] == ("red", "red")


class TestWorkersPlumbing:
    """--workers must actually reach run_sweep (it used to be dead code)."""

    def _capture_run_sweep(self, monkeypatch):
        calls = {}

        def fake_run_sweep(*args, **kwargs):
            calls.update(kwargs)
            return []

        monkeypatch.setattr(sweep_module, "run_sweep", fake_run_sweep)
        return calls

    def test_sweep_passes_workers(self, monkeypatch, capsys):
        calls = self._capture_run_sweep(monkeypatch)
        cli.main(["sweep", "--mixes", "BBRv1", "--workers", "3"])
        capsys.readouterr()
        assert calls["workers"] == 3

    def test_figure_passes_workers(self, monkeypatch, capsys):
        calls = self._capture_run_sweep(monkeypatch)
        cli.main(["figure", "fig06_fairness", "--mixes", "BBRv1", "--workers", "5"])
        capsys.readouterr()
        assert calls["workers"] == 5

    def test_sweep_passes_topology_axis(self, monkeypatch, capsys):
        calls = self._capture_run_sweep(monkeypatch)
        cli.main(
            ["sweep", "--mixes", "BBRv1", "--topology", "multi-dumbbell", "--hops", "2"]
        )
        capsys.readouterr()
        assert calls["topology"] == "multi-dumbbell"
        assert calls["hops"] == 2 and calls["cross_flows"] == 1


class TestEmptyResults:
    def test_sweep_with_no_points_exits_nonzero(self, monkeypatch, capsys):
        monkeypatch.setattr(sweep_module, "run_sweep", lambda *a, **k: [])
        code = cli.main(["sweep", "--mixes", "BBRv1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "no points" in captured.err

    def test_theorems_with_no_rows_exits_nonzero(self, monkeypatch, capsys):
        from repro.experiments import figures as figures_module

        monkeypatch.setattr(figures_module, "theorem_table", lambda **k: [])
        code = cli.main(["theorems"])
        captured = capsys.readouterr()
        assert code == 1
        assert "no theorem rows" in captured.err

    def test_figure_with_no_points_exits_nonzero(self, monkeypatch, capsys):
        # Regression: figure used to exit 0 and print nothing on empty data.
        monkeypatch.setattr(sweep_module, "run_sweep", lambda *a, **k: [])
        code = cli.main(["figure", "fig06_fairness", "--mixes", "BBRv1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "no points" in captured.err

    def test_campaign_with_no_points_exits_nonzero(self, monkeypatch, capsys):
        monkeypatch.setattr(
            sweep_module,
            "run_campaign",
            lambda *a, **k: sweep_module.CampaignResult(points=[], failures=[]),
        )
        code = cli.main(["campaign", "--mixes", "BBRv1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "no points" in captured.err


class TestExecution:
    def test_theorems_command(self, capsys):
        assert cli.main(["theorems", "--flows", "2", "5"]) == 0
        out = capsys.readouterr().out
        assert "thm3_loss_fraction" in out
        assert "True" in out

    def test_trace_command_fluid(self, capsys):
        assert cli.main(["trace", "bbr2", "--duration", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "utilization_percent" in out

    def test_sweep_command_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        code = cli.main(
            [
                "sweep",
                "--buffers",
                "1",
                "--mixes",
                "BBRv1",
                "--disciplines",
                "droptail",
                "--duration",
                "1.0",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        out = capsys.readouterr().out
        assert "jain_fairness" in out

    def test_topology_command_both_substrates(self, capsys):
        code = cli.main(
            [
                "topology",
                "--preset",
                "parking-lot",
                "--hops",
                "3",
                "--duration",
                "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Per-link and per-flow tables for both substrates.
        for substrate in ("fluid", "emulation"):
            assert f"[{substrate}] — per-link" in out
            assert f"[{substrate}] — per-flow" in out
        assert "hop-1" in out and "hop-3" in out
        assert "utilization_percent" in out and "throughput_mbps" in out
        assert "hop-1>hop-2>hop-3" in out

    def test_topology_command_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "topo.csv"
        code = cli.main(
            [
                "topology",
                "--preset",
                "multi-dumbbell",
                "--hops",
                "2",
                "--substrate",
                "fluid",
                "--duration",
                "0.5",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        lines = csv_path.read_text().strip().splitlines()
        header = lines[0].split(",")
        assert "kind" in header and "link" in header and "throughput_mbps" in header
        kinds = {line.split(",")[0] for line in lines[1:]}
        assert kinds == {"link", "flow"}

    def test_figure_command(self, capsys):
        code = cli.main(
            [
                "figure",
                "fig09_utilization",
                "--buffers",
                "1",
                "--mixes",
                "BBRv1",
                "--disciplines",
                "droptail",
                "--duration",
                "1.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig09_utilization" in out

    def test_figure_command_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "fig.csv"
        code = cli.main(
            [
                "figure",
                "fig09_utilization",
                "--buffers",
                "1",
                "--mixes",
                "BBRv1",
                "--disciplines",
                "droptail",
                "--duration",
                "1.0",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        content = csv_path.read_text().strip().splitlines()
        assert content[0] == "figure,discipline,mix,buffer_bdp,utilization_percent"
        assert len(content) == 2

    def test_sweep_command_with_seeds_reports_ci(self, tmp_path, capsys):
        sweep_module.clear_cache()
        code = cli.main(
            [
                "sweep",
                "--substrate",
                "emulation",
                "--seeds",
                "2",
                "--store",
                str(tmp_path / "store.jsonl"),
                "--buffers",
                "1",
                "--mixes",
                "BBRv1",
                "--disciplines",
                "droptail",
                "--duration",
                "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "±" in out
        assert "jain_fairness" in out

    def test_campaign_command_runs_and_exports(self, tmp_path, capsys):
        sweep_module.clear_cache()
        store_path = tmp_path / "campaign.jsonl"
        argv = [
            "campaign",
            "--substrate",
            "emulation",
            "--seeds",
            "2",
            "--store",
            str(store_path),
            "--buffers",
            "1",
            "--mixes",
            "BBRv1",
            "--disciplines",
            "droptail",
            "--duration",
            "0.5",
            "--csv",
            str(tmp_path / "summary.csv"),
            "--per-seed-csv",
            str(tmp_path / "per_seed.csv"),
        ]
        assert cli.main(argv) == 0
        out = capsys.readouterr().out
        assert "±" in out
        assert store_path.exists()
        summary = (tmp_path / "summary.csv").read_text().splitlines()
        assert "jain_fairness_mean" in summary[0]
        per_seed = (tmp_path / "per_seed.csv").read_text().splitlines()
        assert len(per_seed) == 3  # header + one row per seed
        # Resume: a second invocation recomputes nothing and still succeeds.
        sweep_module.clear_cache()
        assert cli.main(argv) == 0

    def test_campaign_without_store_warns(self, capsys):
        sweep_module.clear_cache()
        code = cli.main(
            [
                "campaign",
                "--substrate",
                "fluid",
                "--seeds",
                "2",
                "--buffers",
                "1",
                "--mixes",
                "BBRv1",
                "--disciplines",
                "droptail",
                "--duration",
                "1.0",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "not be persisted" in captured.err

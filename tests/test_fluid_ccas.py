"""Unit tests of the per-CCA fluid models (Reno, CUBIC, BBRv1, BBRv2)."""

from __future__ import annotations

import pytest

from repro.config import FluidParams, dumbbell_scenario
from repro.core import bbr1 as bbr1_mod
from repro.core.bbr1 import Bbr1Fluid, Bbr1Params
from repro.core.bbr2 import Bbr2Fluid, Bbr2Params
from repro.core.cubic import CubicFluid, cubic_window
from repro.core.flow import FlowInputs
from repro.core.network import Network
from repro.core.registry import available_ccas, create_model
from repro.core.reno import RenoFluid

CAPACITY_PPS = 8333.3
RTT = 0.0312


def make_network(num_flows: int = 1) -> Network:
    config = dumbbell_scenario(
        ["bbr1"] * num_flows, rtt_range_s=(RTT, RTT), buffer_bdp=1.0
    )
    return Network.dumbbell(config)


def make_inputs(
    tau: float = RTT,
    loss: float = 0.0,
    delivery: float = CAPACITY_PPS,
    rate_delayed: float = CAPACITY_PPS,
    dt: float = 1e-4,
    t: float = 0.1,
    active: bool = True,
) -> FlowInputs:
    return FlowInputs(
        t=t,
        dt=dt,
        tau=tau,
        tau_delayed=tau,
        path_loss=loss,
        delivery_rate=delivery,
        rate_delayed=rate_delayed,
        propagation_rtt=RTT,
        active=active,
    )


def run_steps(model, state, inputs: FlowInputs, steps: int) -> None:
    for _ in range(steps):
        model.step(state, inputs)


class TestRegistry:
    def test_all_ccas_available(self):
        assert set(available_ccas()) == {"reno", "cubic", "bbr1", "bbr2"}

    @pytest.mark.parametrize("name", ["reno", "cubic", "bbr1", "bbr2"])
    def test_create_model(self, name):
        model = create_model(name, FluidParams())
        assert model.name == name

    def test_unknown_cca(self):
        with pytest.raises(ValueError):
            create_model("vegas")

    def test_loss_based_initial_window_forwarded(self):
        model = create_model("reno", FluidParams(loss_based_init_window_pkts=42.0))
        state = model.initial_state(0, 1, make_network(), FluidParams())
        assert state.extra["cwnd"] == pytest.approx(42.0)


class TestReno:
    def test_grows_without_loss(self):
        model = RenoFluid(initial_window_pkts=10.0)
        state = model.initial_state(0, 1, make_network(), None)
        state.rate = 10.0 / RTT
        run_steps(model, state, make_inputs(loss=0.0, rate_delayed=state.rate), 1000)
        assert state.extra["cwnd"] > 10.0

    def test_shrinks_under_loss(self):
        model = RenoFluid(initial_window_pkts=100.0)
        state = model.initial_state(0, 1, make_network(), None)
        state.rate = 100.0 / RTT
        run_steps(model, state, make_inputs(loss=0.1, rate_delayed=state.rate), 1000)
        assert state.extra["cwnd"] < 100.0

    def test_window_never_below_one_packet(self):
        model = RenoFluid(initial_window_pkts=1.0)
        state = model.initial_state(0, 1, make_network(), None)
        state.rate = 1000.0
        run_steps(model, state, make_inputs(loss=1.0, rate_delayed=5000.0), 2000)
        assert state.extra["cwnd"] >= 1.0

    def test_rate_is_window_over_rtt(self):
        model = RenoFluid(initial_window_pkts=50.0)
        state = model.initial_state(0, 1, make_network(), None)
        model.step(state, make_inputs(tau=0.05, rate_delayed=0.0))
        assert state.rate == pytest.approx(state.extra["cwnd"] / 0.05, rel=1e-6)

    def test_inactive_flow_sends_nothing(self):
        model = RenoFluid()
        state = model.initial_state(0, 1, make_network(), None)
        model.step(state, make_inputs(active=False))
        assert state.rate == 0.0

    def test_invalid_initial_window(self):
        with pytest.raises(ValueError):
            RenoFluid(initial_window_pkts=0.5)


class TestCubic:
    def test_window_function_at_inflection(self):
        # At s = K the window equals w_max again.
        w_max = 100.0
        k = (w_max * 0.7 / 0.4) ** (1.0 / 3.0)
        assert cubic_window(k, w_max) == pytest.approx(w_max)

    def test_window_function_monotone_after_inflection(self):
        w_max = 100.0
        k = (w_max * 0.7 / 0.4) ** (1.0 / 3.0)
        assert cubic_window(k + 2.0, w_max) > cubic_window(k + 1.0, w_max)

    def test_concave_growth_before_inflection(self):
        w_max = 100.0
        assert cubic_window(0.0, w_max) < w_max

    def test_grows_without_loss(self):
        model = CubicFluid(initial_window_pkts=10.0)
        state = model.initial_state(0, 1, make_network(), None)
        state.rate = 10.0 / RTT
        for _ in range(2000):
            model.step(state, make_inputs(loss=0.0, rate_delayed=state.rate, dt=5e-3))
        assert state.extra["cwnd"] > 10.0
        assert state.extra["s"] > 1.0

    def test_loss_resets_elapsed_time(self):
        model = CubicFluid(initial_window_pkts=50.0)
        state = model.initial_state(0, 1, make_network(), None)
        state.extra["s"] = 5.0
        state.rate = 50.0 / RTT
        run_steps(model, state, make_inputs(loss=0.5, rate_delayed=5000.0, dt=1e-3), 500)
        assert state.extra["s"] < 5.0

    def test_negative_wmax_rejected(self):
        with pytest.raises(ValueError):
            cubic_window(1.0, -1.0)


class TestBbr1:
    def make_state(self, **params):
        model = Bbr1Fluid(Bbr1Params(**params))
        network = make_network()
        state = model.initial_state(0, 1, network, None)
        return model, state

    def test_initial_estimate_is_capacity(self):
        _, state = self.make_state()
        assert state.extra["x_btl"] == pytest.approx(CAPACITY_PPS, rel=1e-3)

    def test_initial_share_override(self):
        model = Bbr1Fluid(Bbr1Params(initial_btl_share=0.25))
        state = model.initial_state(0, 4, make_network(4), None)
        assert state.extra["x_btl"] == pytest.approx(0.25 * CAPACITY_PPS, rel=1e-2)

    def test_invalid_share_rejected(self):
        model = Bbr1Fluid(Bbr1Params(initial_btl_share=3.0))
        with pytest.raises(ValueError):
            model.initial_state(0, 1, make_network(), None)

    def test_phase_desynchronisation(self):
        model = Bbr1Fluid()
        network = make_network(3)
        phases = [
            model.initial_state(i, 3, network, None).extra["phase"] for i in range(3)
        ]
        assert phases == [0.0, 1.0, 2.0]

    def test_rate_tracks_estimate_without_queue(self):
        model, state = self.make_state()
        inputs = make_inputs(delivery=CAPACITY_PPS)
        run_steps(model, state, inputs, 500)
        assert state.rate == pytest.approx(CAPACITY_PPS, rel=0.3)

    def test_btlbw_adopts_max_delivery_at_period_end(self):
        model, state = self.make_state()
        state.extra["x_btl"] = 0.5 * CAPACITY_PPS
        # One full ProbeBW period is 8 RTTs; a higher delivery rate must be
        # adopted after the rollover.
        steps = int(8 * RTT / 1e-4) + 10
        run_steps(model, state, make_inputs(delivery=0.9 * CAPACITY_PPS), steps)
        assert state.extra["x_btl"] == pytest.approx(0.9 * CAPACITY_PPS, rel=1e-2)

    def test_loss_is_ignored(self):
        model, state = self.make_state()
        lossless = make_inputs(loss=0.0)
        lossy = make_inputs(loss=0.2)
        run_steps(model, state, lossless, 200)
        estimate_before = state.extra["x_btl"]
        run_steps(model, state, lossy, 200)
        assert state.extra["x_btl"] == pytest.approx(estimate_before, rel=1e-6)

    def test_probe_rtt_entered_after_10s_without_new_minimum(self):
        model, state = self.make_state()
        inputs = make_inputs(dt=0.01)
        seen_probe_rtt = False
        for _ in range(1100):  # 11 simulated seconds
            model.step(state, inputs)
            if state.extra["m_prt"] >= 0.5:
                seen_probe_rtt = True
                break
        assert seen_probe_rtt
        assert state.extra["cwnd"] == pytest.approx(bbr1_mod.PROBE_RTT_CWND_PKTS)

    def test_probe_rtt_left_after_200ms(self):
        model, state = self.make_state()
        inputs = make_inputs(dt=0.01)
        run_steps(model, state, inputs, 1005)  # enter ProbeRTT
        run_steps(model, state, inputs, 30)  # 300 ms later it must be over
        assert state.extra["m_prt"] < 0.5

    def test_cwnd_is_twice_estimated_bdp(self):
        model, state = self.make_state()
        model.step(state, make_inputs())
        expected = 2.0 * state.extra["x_btl"] * state.extra["tau_min"]
        assert state.extra["cwnd"] == pytest.approx(expected, rel=1e-6)

    def test_rtprop_only_decreases(self):
        model, state = self.make_state()
        model.step(state, make_inputs(tau=0.05))
        assert state.extra["tau_min"] == pytest.approx(RTT)
        inputs = make_inputs(tau=0.02)
        inputs = FlowInputs(**{**inputs.__dict__, "tau_delayed": 0.02})
        model.step(state, inputs)
        assert state.extra["tau_min"] == pytest.approx(0.02)


class TestBbr2:
    def make_state(self, num_flows: int = 1, **params):
        model = Bbr2Fluid(Bbr2Params(**params))
        network = make_network(num_flows)
        state = model.initial_state(0, num_flows, network, None)
        return model, state

    def test_period_is_wall_clock_limited(self):
        _, state = self.make_state()
        assert state.extra["period_wall_s"] == pytest.approx(2.0)

    def test_period_desynchronisation(self):
        model = Bbr2Fluid()
        network = make_network(4)
        walls = [
            model.initial_state(i, 4, network, None).extra["period_wall_s"]
            for i in range(4)
        ]
        assert walls == pytest.approx([2.0, 2.25, 2.5, 2.75])

    def test_whi_initial_condition(self):
        _, state = self.make_state(whi_init_bdp=3.0)
        bdp = state.extra["x_btl"] * state.extra["tau_min"]
        assert state.extra["w_hi"] == pytest.approx(3.0 * bdp, rel=1e-6)

    def test_cruise_entered_after_probe(self):
        model, state = self.make_state()
        inputs = make_inputs(dt=1e-3)
        for _ in range(3000):
            model.step(state, inputs)
            if state.extra["m_crs"] >= 0.5:
                break
        assert state.extra["m_crs"] >= 0.5

    def test_heavy_loss_triggers_probe_down(self):
        model, state = self.make_state()
        # Advance past the first RTT of the period, then apply >2% loss.
        run_steps(model, state, make_inputs(dt=1e-3), 100)
        run_steps(model, state, make_inputs(loss=0.1, dt=1e-3), 5)
        assert state.extra["m_dwn"] >= 0.5 or state.extra["m_crs"] >= 0.5

    def test_loss_shrinks_w_hi(self):
        model, state = self.make_state()
        run_steps(model, state, make_inputs(dt=1e-3), 100)
        before = state.extra["w_hi"]
        run_steps(model, state, make_inputs(loss=0.1, dt=1e-3), 200)
        assert state.extra["w_hi"] < before

    def test_zero_loss_does_not_shrink_w_lo_in_cruise(self):
        model, state = self.make_state()
        inputs = make_inputs(dt=1e-3)
        for _ in range(3000):
            model.step(state, inputs)
            if state.extra["m_crs"] >= 0.5:
                break
        before = state.extra["w_lo"]
        run_steps(model, state, inputs, 500)
        assert state.extra["w_lo"] == pytest.approx(before, rel=0.05)

    def test_probe_rtt_cwnd_is_half_bdp(self):
        model, state = self.make_state()
        inputs = make_inputs(dt=0.01)
        for _ in range(1100):
            model.step(state, inputs)
            if state.extra["m_prt"] >= 0.5:
                break
        assert state.extra["m_prt"] >= 0.5
        expected = state.extra["x_btl"] * state.extra["tau_min"] / 2.0
        assert state.extra["cwnd"] == pytest.approx(expected, rel=0.05)

    def test_cwnd_never_exceeds_two_bdp(self):
        model, state = self.make_state(whi_init_bdp=10.0)
        run_steps(model, state, make_inputs(dt=1e-3), 500)
        bdp = state.extra["x_btl"] * state.extra["tau_min"]
        assert state.extra["cwnd"] <= 2.0 * bdp * (1.0 + 1e-6)

    def test_inactive_flow_sends_nothing(self):
        model, state = self.make_state()
        model.step(state, make_inputs(active=False))
        assert state.rate == 0.0

"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.config import FluidParams, dumbbell_scenario


@pytest.fixture(autouse=True)
def _no_ambient_store(monkeypatch):
    """Keep tests hermetic: never pick up an operator's REPRO_STORE file."""
    monkeypatch.delenv("REPRO_STORE", raising=False)


@pytest.fixture(scope="session")
def short_fluid_params() -> FluidParams:
    """Coarse but fast integration parameters for integration tests."""
    return FluidParams(dt=2.5e-4)


@pytest.fixture(scope="session")
def single_bbr1_trace():
    """A cached short single-flow BBRv1 fluid trace shared across tests."""
    from repro.core import simulate

    config = dumbbell_scenario(
        ["bbr1"], buffer_bdp=1.0, duration_s=2.0, fluid=FluidParams(dt=2.5e-4)
    )
    return simulate(config)


@pytest.fixture(scope="session")
def single_bbr2_trace():
    """A cached short single-flow BBRv2 fluid trace shared across tests."""
    from repro.core import simulate

    config = dumbbell_scenario(
        ["bbr2"], buffer_bdp=1.0, duration_s=2.0, fluid=FluidParams(dt=2.5e-4)
    )
    return simulate(config)

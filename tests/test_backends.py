"""Tests of the pluggable store backends (jsonl / sharded / sqlite)."""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.experiments.backends import (
    DEFAULT_NUM_SHARDS,
    SHARD_PATTERN,
    atomic_append,
    infer_backend,
    iter_jsonl_records,
    make_backend,
    shard_of,
    split_backend_spec,
)
from repro.experiments.store import SCHEMA_VERSION, SweepStore
from repro.metrics.aggregate import AggregateMetrics

BACKEND_KINDS = ("jsonl", "sharded", "sqlite")


def _metrics(value: float = 1.0) -> AggregateMetrics:
    return AggregateMetrics(
        jain_fairness=value,
        loss_percent=value * 2,
        buffer_occupancy_percent=value * 3,
        utilization_percent=value * 4,
        jitter_ms=value * 5,
    )


def _store_path(tmp_path, kind: str):
    return tmp_path / {"jsonl": "res.jsonl", "sharded": "res.shards", "sqlite": "res.sqlite"}[kind]


@pytest.fixture(params=BACKEND_KINDS)
def kind(request):
    return request.param


@pytest.fixture
def store(tmp_path, kind):
    return SweepStore(_store_path(tmp_path, kind), backend=kind)


class TestRoundtrip:
    def test_put_get_roundtrip(self, store, kind):
        assert store.backend == kind
        store.put("k1", _metrics(1.0), meta={"mix": "BBRv1", "seed": 1})
        assert "k1" in store
        assert len(store) == 1
        assert store.get("k1") == _metrics(1.0)
        assert store.hits == 1 and store.misses == 0
        assert store.get("absent") is None
        assert store.misses == 1

    def test_persistence_across_reopen(self, tmp_path, kind):
        path = _store_path(tmp_path, kind)
        first = SweepStore(path, backend=kind)
        first.put("k1", _metrics(2.0), meta={"mix": "BBRv1"})
        first.close()
        second = SweepStore(path, backend=kind)
        assert second.get("k1") == _metrics(2.0)
        second.close()

    def test_last_write_wins(self, tmp_path, kind):
        path = _store_path(tmp_path, kind)
        store = SweepStore(path, backend=kind)
        store.put("k1", _metrics(1.0))
        store.put("k1", _metrics(9.0))
        assert store.get("k1") == _metrics(9.0)
        assert len(store) == 1
        store.close()
        reopened = SweepStore(path, backend=kind)
        assert reopened.get("k1") == _metrics(9.0)
        assert len(reopened) == 1
        reopened.close()

    def test_stale_schema_records_are_skipped(self, tmp_path, kind, monkeypatch):
        path = _store_path(tmp_path, kind)
        import repro.experiments.store as store_mod

        monkeypatch.setattr(store_mod, "SCHEMA_VERSION", SCHEMA_VERSION - 1)
        old = SweepStore(path, backend=kind)
        old.put("k1", _metrics(1.0))
        old.close()
        monkeypatch.setattr(store_mod, "SCHEMA_VERSION", SCHEMA_VERSION)
        fresh = SweepStore(path, backend=kind)
        assert fresh.get("k1") is None
        assert len(fresh) == 0
        fresh.close()


class TestFailures:
    def test_failure_roundtrip_and_supersede(self, tmp_path, kind):
        path = _store_path(tmp_path, kind)
        store = SweepStore(path, backend=kind)
        store.put_failure("k1", "RuntimeError: boom", meta={"mix": "BBRv1", "seed": 2})
        assert "k1" not in store
        failures = store.failures()
        assert len(failures) == 1
        assert failures[0]["key"] == "k1"
        assert failures[0]["error"] == "RuntimeError: boom"
        assert failures[0]["meta"]["seed"] == 2
        # A successful result supersedes the failure...
        store.put("k1", _metrics(1.0))
        assert store.failures() == []
        assert store.get("k1") == _metrics(1.0)
        store.close()
        # ...including after a reopen replays the log.
        reopened = SweepStore(path, backend=kind)
        assert reopened.failures() == []
        assert reopened.get("k1") == _metrics(1.0)
        reopened.close()

    def test_late_failure_never_shadows_a_result(self, tmp_path, kind):
        # Failure written after the result (interleaved campaigns): the
        # result must win regardless of replay order.
        path = _store_path(tmp_path, kind)
        store = SweepStore(path, backend=kind)
        store.put("k1", _metrics(1.0))
        store.put_failure("k1", "late failure")
        assert store.failures() == []
        assert store.get("k1") == _metrics(1.0)
        store.close()
        reopened = SweepStore(path, backend=kind)
        assert reopened.failures() == []
        assert reopened.get("k1") == _metrics(1.0)
        reopened.close()


class TestSelect:
    def _populate(self, store):
        store.put("k1", _metrics(1.0), meta={"mix": "BBRv1", "seed": 1, "buffer_bdp": 1.0})
        store.put("k2", _metrics(2.0), meta={"mix": "BBRv1", "seed": 2, "buffer_bdp": 1.0})
        store.put(
            "k3",
            _metrics(3.0),
            meta={"mix": "RENO", "seed": 1, "buffer_bdp": 2.0, "topology": "parking-lot"},
        )

    def test_select_filters_on_meta(self, store):
        self._populate(store)
        assert {r["key"] for r in store.select(mix="BBRv1")} == {"k1", "k2"}
        assert {r["key"] for r in store.select(mix="BBRv1", seed=2)} == {"k2"}
        assert store.select(mix="CUBIC") == []

    def test_select_none_matches_missing_field(self, store):
        # topology=None must match records *lacking* the field (dict.get
        # semantics) on every backend, including the SQLite column path.
        self._populate(store)
        assert {r["key"] for r in store.select(topology=None)} == {"k1", "k2"}
        assert {r["key"] for r in store.select(topology="parking-lot")} == {"k3"}

    def test_select_non_column_filter(self, store):
        # buffer_bdp is an indexed column on sqlite; combine it with a
        # filter that is NOT a column to exercise the residual path.
        self._populate(store)
        store.put("k4", _metrics(4.0), meta={"mix": "BBRv1", "seed": 1, "load": 0.5})
        assert {r["key"] for r in store.select(load=0.5)} == {"k4"}
        assert {r["key"] for r in store.select(mix="BBRv1", load=None)} == {"k1", "k2"}

    def test_rows_flatten_meta_and_metrics(self, store):
        self._populate(store)
        rows = store.rows(mix="RENO")
        assert len(rows) == 1
        assert rows[0]["topology"] == "parking-lot"
        assert rows[0]["jain_fairness"] == 3.0


class TestCompact:
    def test_compact_drops_superseded_and_stale(self, tmp_path, kind, monkeypatch):
        path = _store_path(tmp_path, kind)
        import repro.experiments.store as store_mod

        monkeypatch.setattr(store_mod, "SCHEMA_VERSION", SCHEMA_VERSION - 1)
        old = SweepStore(path, backend=kind)
        old.put("old-key", _metrics(1.0))
        old.close()
        monkeypatch.setattr(store_mod, "SCHEMA_VERSION", SCHEMA_VERSION)
        store = SweepStore(path, backend=kind)
        store.put("k1", _metrics(1.0))
        store.put("k1", _metrics(2.0))
        store.put_failure("k2", "boom")
        store.put("k2", _metrics(3.0))
        store.compact()
        store.close()
        reopened = SweepStore(path, backend=kind)
        assert len(reopened) == 2
        assert reopened.get("k1") == _metrics(2.0)
        assert reopened.failures() == []
        reopened.close()
        if kind == "jsonl":
            lines = [json.loads(line) for line in path.read_text().splitlines()]
            assert len(lines) == 2  # one line per surviving record
        elif kind == "sharded":
            lines = [
                record
                for i in range(DEFAULT_NUM_SHARDS)
                for record in iter_jsonl_records(path / SHARD_PATTERN.format(i))
            ]
            assert len(lines) == 2

    def test_compact_keeps_unsuperseded_failures(self, tmp_path, kind):
        path = _store_path(tmp_path, kind)
        store = SweepStore(path, backend=kind)
        store.put_failure("k1", "still broken", meta={"mix": "BBRv1"})
        store.compact()
        store.close()
        reopened = SweepStore(path, backend=kind)
        assert len(reopened.failures()) == 1
        reopened.close()


class TestSharding:
    def test_shard_routing_is_stable(self):
        assert shard_of("some-key") == shard_of("some-key")
        assert 0 <= shard_of("some-key") < DEFAULT_NUM_SHARDS

    def test_records_of_a_key_land_in_one_shard(self, tmp_path):
        store = SweepStore(tmp_path / "res.shards", backend="sharded")
        for i in range(50):
            store.put(f"key-{i}", _metrics(float(i)))
        for i in range(50):
            key = f"key-{i}"
            expected = tmp_path / "res.shards" / SHARD_PATTERN.format(shard_of(key))
            holders = [
                shard
                for j in range(DEFAULT_NUM_SHARDS)
                for shard in [tmp_path / "res.shards" / SHARD_PATTERN.format(j)]
                if any(r["key"] == key for r in iter_jsonl_records(shard))
            ]
            assert holders == [expected]


class TestBackendSelection:
    def test_infer_from_suffix(self, tmp_path):
        assert infer_backend(tmp_path / "r.sqlite") == "sqlite"
        assert infer_backend(tmp_path / "r.db") == "sqlite"
        assert infer_backend(tmp_path / "r.shards") == "sharded"
        assert infer_backend(tmp_path / "r.jsonl") == "jsonl"
        assert infer_backend(tmp_path / "r.anything") == "jsonl"

    def test_infer_existing_directory_is_sharded(self, tmp_path):
        target = tmp_path / "resultsdir"
        target.mkdir()
        assert infer_backend(target) == "sharded"

    def test_backend_prefix_spec(self, tmp_path):
        assert split_backend_spec("sqlite:res.out") == ("sqlite", "res.out")
        assert split_backend_spec("sharded:res") == ("sharded", "res")
        assert split_backend_spec("plain.jsonl") == (None, "plain.jsonl")
        # Windows-style / odd prefixes fall through to a bare path.
        assert split_backend_spec("unknown:res") == (None, "unknown:res")
        store = SweepStore(str(tmp_path / "campaign") + "", backend=None)
        assert store.backend == "jsonl"
        prefixed = SweepStore(f"sqlite:{tmp_path / 'campaign.out'}")
        assert prefixed.backend == "sqlite"
        prefixed.close()

    def test_conflicting_prefix_and_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="conflicts"):
            make_backend(f"sqlite:{tmp_path / 'x'}", SCHEMA_VERSION, backend="jsonl")

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store backend"):
            make_backend(tmp_path / "x.jsonl", SCHEMA_VERSION, backend="mongodb")


class TestCrashSafety:
    """Satellite: crash-safe appends + torn-tail and interleaving regressions."""

    def test_torn_tail_is_tolerated(self, tmp_path, kind):
        if kind == "sqlite":
            pytest.skip("sqlite handles torn writes via WAL, not line parsing")
        path = _store_path(tmp_path, kind)
        store = SweepStore(path, backend=kind)
        store.put("k1", _metrics(1.0))
        store.put("k2", _metrics(2.0))
        store.close()
        # Simulate a crash mid-append: torn partial JSON at the tail.
        victim = path if kind == "jsonl" else next(
            p for p in sorted(path.iterdir()) if p.stat().st_size > 0
        )
        with victim.open("a") as handle:
            handle.write('{"schema": %d, "key": "torn", "metr' % SCHEMA_VERSION)
        reopened = SweepStore(path, backend=kind)
        assert len(reopened) == 2
        assert reopened.get("k1") == _metrics(1.0)
        assert "torn" not in reopened
        # Appending after the torn tail is fine: the torn line is skipped
        # forever, and every subsequent record loads normally because the
        # writer terminates each record with its own newline.
        reopened.put("k3", _metrics(3.0))
        reopened.close()
        final = SweepStore(path, backend=kind)
        assert final.get("k1") == _metrics(1.0)
        assert final.get("k3") == _metrics(3.0)
        final.close()

    def test_single_write_append(self, tmp_path):
        # atomic_append must issue exactly one os.write for the whole record
        # (the POSIX O_APPEND atomicity contract).
        calls: list[int] = []
        real_write = os.write

        def counting_write(fd, data):
            calls.append(len(data))
            return real_write(fd, data)

        line = '{"key": "k", "schema": 1}\n'
        import unittest.mock

        with unittest.mock.patch("os.write", counting_write):
            atomic_append(tmp_path / "t.jsonl", line)
        assert calls == [len(line.encode())]

    def test_interleaved_writer_processes_lose_nothing(self, tmp_path, kind):
        path = _store_path(tmp_path, kind)
        num_writers, per_writer = 4, 25
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(
                target=_writer_main, args=(str(path), kind, w, per_writer)
            )
            for w in range(num_writers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
            assert p.exitcode == 0
        store = SweepStore(path, backend=kind)
        assert len(store) == num_writers * per_writer
        for w in range(num_writers):
            for i in range(per_writer):
                got = store.get(f"w{w}-{i}")
                assert got is not None
                assert got.jain_fairness == float(w * 1000 + i)
        store.close()


def _writer_main(path: str, kind: str, writer: int, count: int) -> None:
    """Worker process: append `count` records under its own key space."""
    store = SweepStore(path, backend=kind)
    for i in range(count):
        store.put(
            f"w{writer}-{i}",
            _metrics(float(writer * 1000 + i)),
            meta={"mix": "BBRv1", "seed": writer},
        )
    store.close()

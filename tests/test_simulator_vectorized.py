"""Equivalence tests: vectorized vs. scalar method-of-steps integration.

The vectorized pipeline (batched history gathers, incidence-matrix link
updates, ``step_all`` CCA groups) must reproduce the scalar reference loop
to within 1e-9 on every recorded series — in practice the two paths execute
the same floating-point operations and agree to the last bit on most
scenarios.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FlowConfig, FluidParams, ScenarioConfig, dumbbell_scenario
from repro.core import FluidSimulator, RenoFluid, simulate, simulate_many

FAST = FluidParams(dt=2.5e-4)

FLOW_SERIES = ("rate", "delivery_rate", "cwnd", "inflight", "rtt")
LINK_SERIES = ("queue", "loss_prob", "arrival_rate", "departure_rate")


def assert_traces_match(a, b, rtol=1e-9, atol=1e-9):
    np.testing.assert_allclose(a.time, b.time, rtol=rtol, atol=atol)
    assert len(a.flows) == len(b.flows)
    for fa, fb in zip(a.flows, b.flows, strict=True):
        assert fa.cca == fb.cca
        for name in FLOW_SERIES:
            np.testing.assert_allclose(
                getattr(fa, name), getattr(fb, name), rtol=rtol, atol=atol,
                err_msg=f"flow series {name!r} diverged",
            )
        assert set(fa.extras) == set(fb.extras)
        for key in fa.extras:
            np.testing.assert_allclose(
                fa.extras[key], fb.extras[key], rtol=rtol, atol=atol,
                err_msg=f"extras {key!r} diverged",
            )
    assert len(a.links) == len(b.links)
    for la, lb in zip(a.links, b.links, strict=True):
        for name in LINK_SERIES:
            np.testing.assert_allclose(
                getattr(la, name), getattr(lb, name), rtol=rtol, atol=atol,
                err_msg=f"link series {name!r} diverged",
            )


def run_both(ccas, duration_s=1.0, **kwargs):
    config = dumbbell_scenario(ccas, duration_s=duration_s, fluid=FAST, **kwargs)
    scalar = simulate(config, vectorized=False)
    vectorized = simulate(config, vectorized=True)
    return scalar, vectorized


class TestScalarVectorizedEquivalence:
    def test_reno_homogeneous(self):
        assert_traces_match(*run_both(["reno"] * 4))

    def test_cubic_homogeneous(self):
        assert_traces_match(*run_both(["cubic"] * 4))

    def test_bbr1_homogeneous(self):
        assert_traces_match(*run_both(["bbr1"] * 4))

    def test_bbr2_homogeneous(self):
        assert_traces_match(*run_both(["bbr2"] * 4))

    def test_mixed_all_ccas(self):
        assert_traces_match(*run_both(["bbr1", "bbr2", "reno", "cubic", "reno"]))

    def test_mixed_bbr_scenario_red(self):
        assert_traces_match(*run_both(["bbr1", "bbr1", "reno", "bbr2"], discipline="red"))

    def test_single_flow(self):
        assert_traces_match(*run_both(["bbr1"]))

    def test_staggered_start_times(self):
        base = dumbbell_scenario(["reno", "bbr1", "cubic"], duration_s=1.5, fluid=FAST)
        flows = (
            base.flows[0],
            FlowConfig(cca="bbr1", access_delay_s=0.006, start_time_s=0.5),
            FlowConfig(cca="cubic", access_delay_s=0.007, start_time_s=0.9),
        )
        config = ScenarioConfig(
            bottleneck=base.bottleneck, flows=flows, duration_s=1.5, fluid=FAST
        )
        scalar = simulate(config, vectorized=False)
        vectorized = simulate(config, vectorized=True)
        assert_traces_match(scalar, vectorized)
        # Late flows must be silent before their start time on both paths.
        early = vectorized.time < 0.45
        assert np.all(vectorized.flows[1].rate[early] == 0.0)


class _UnbatchedReno(RenoFluid):
    """A model without batched support: must take the scalar fallback path."""

    def batch_key(self):
        return None

    def step_all(self, batch, inputs):  # pragma: no cover - must never run
        raise AssertionError("fallback model must not be stepped in batch")


class TestScalarFallback:
    def test_unbatched_model_in_vectorized_run(self):
        config = dumbbell_scenario(["reno", "reno", "bbr1"], duration_s=1.0, fluid=FAST)
        models = {0: _UnbatchedReno()}
        scalar = FluidSimulator(
            config, models={0: _UnbatchedReno()}, vectorized=False
        ).run()
        vectorized = FluidSimulator(config, models=models, vectorized=True).run()
        assert_traces_match(scalar, vectorized)


class TestSimulateMany:
    def test_matches_individual_runs(self):
        configs = [
            dumbbell_scenario(["bbr1"] * 3, duration_s=1.0, fluid=FAST, buffer_bdp=1.0),
            dumbbell_scenario(["reno", "bbr2"], duration_s=1.0, fluid=FAST, buffer_bdp=4.0),
            dumbbell_scenario(["cubic"] * 2, duration_s=1.0, fluid=FAST, discipline="red"),
        ]
        batched = simulate_many(configs)
        assert len(batched) == len(configs)
        for config, trace in zip(configs, batched, strict=True):
            assert_traces_match(simulate(config), trace)

    def test_empty_and_single(self):
        assert simulate_many([]) == []
        config = dumbbell_scenario(["reno"], duration_s=0.5, fluid=FAST)
        [trace] = simulate_many([config])
        assert trace.num_flows == 1

    def test_mismatched_dt_rejected(self):
        a = dumbbell_scenario(["reno"], duration_s=0.5, fluid=FluidParams(dt=2.5e-4))
        b = dumbbell_scenario(["reno"], duration_s=0.5, fluid=FluidParams(dt=1e-4))
        with pytest.raises(ValueError):
            simulate_many([a, b])

    def test_mismatched_duration_rejected(self):
        a = dumbbell_scenario(["reno"], duration_s=0.5, fluid=FAST)
        b = dumbbell_scenario(["reno"], duration_s=1.0, fluid=FAST)
        with pytest.raises(ValueError):
            simulate_many([a, b])

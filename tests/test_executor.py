"""Tests of the resilient campaign executor."""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.experiments.executor import (
    ExecutorPolicy,
    PointFailure,
    PointTimeout,
    ResilientExecutor,
    WorkerCrash,
    call_with_timeout,
)

# Module-level callables so pool workers can pickle them.


def _double(x: int) -> int:
    return 2 * x


def _fail_on_odd(x: int) -> int:
    if x % 2:
        raise ValueError(f"odd input {x}")
    return 2 * x


def _die_on_three(x: int) -> int:
    if x == 3:
        os._exit(17)  # simulate a hard worker crash (segfault/OOM-kill)
    return 2 * x


def _sleep_long(x: int) -> int:  # pragma: no cover - killed by timeout
    time.sleep(60)
    return x


class TestPolicyValidation:
    def test_defaults_are_serial(self):
        policy = ExecutorPolicy()
        assert not policy.pooled
        assert policy.on_failure == "raise"

    def test_pooled_requires_more_than_one_worker(self):
        assert not ExecutorPolicy(workers=1).pooled
        assert ExecutorPolicy(workers=2).pooled

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(workers=0),
            dict(retries=-1),
            dict(backoff_s=-0.1),
            dict(timeout_s=0),
            dict(heartbeat_s=0),
            dict(on_failure="explode"),
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutorPolicy(**kwargs)


class TestSerialExecution:
    def test_all_results_collected(self):
        executor = ResilientExecutor(ExecutorPolicy(), log=lambda _msg: None)
        report = executor.run([1, 2, 3], _double, lambda x: ((x,), {}))
        assert report.ok
        assert report.results == {1: 2, 2: 4, 3: 6}
        assert report.failures == []
        assert all(report.attempts[t] == 1 for t in (1, 2, 3))

    def test_failures_recorded_not_raised(self):
        executor = ResilientExecutor(ExecutorPolicy(), log=lambda _msg: None)
        report = executor.run([1, 2, 3, 4], _fail_on_odd, lambda x: ((x,), {}))
        assert not report.ok
        assert report.results == {2: 4, 4: 8}
        failed = {f.task: f for f in report.failures}
        assert set(failed) == {1, 3}
        assert "ValueError: odd input 1" in failed[1].error
        assert isinstance(failed[1], PointFailure)

    def test_retries_and_attempt_counting(self):
        attempts: dict[int, int] = {}

        def flaky(x: int) -> int:
            attempts[x] = attempts.get(x, 0) + 1
            if attempts[x] < 3:
                raise RuntimeError("transient")
            return x

        policy = ExecutorPolicy(retries=2, backoff_s=0.0)
        report = ResilientExecutor(policy, log=lambda _msg: None).run(
            [7], flaky, lambda x: ((x,), {})
        )
        assert report.ok
        assert report.results == {7: 7}
        assert report.attempts[7] == 3

    def test_retries_exhausted(self):
        policy = ExecutorPolicy(retries=1, backoff_s=0.0)
        report = ResilientExecutor(policy, log=lambda _msg: None).run(
            [1], _fail_on_odd, lambda x: ((x,), {})
        )
        assert not report.ok
        assert report.failures[0].attempts == 2

    def test_on_result_callback_fires_per_point(self):
        seen: list[tuple[int, int]] = []
        executor = ResilientExecutor(ExecutorPolicy(), log=lambda _msg: None)
        executor.run([1, 2], _double, lambda x: ((x,), {}), on_result=lambda t, r: seen.append((t, r)))
        assert sorted(seen) == [(1, 2), (2, 4)]


class TestTimeouts:
    def test_call_with_timeout_passthrough(self):
        assert call_with_timeout(None, _double, (21,), {}) == 42
        assert call_with_timeout(5.0, _double, (21,), {}) == 42

    def test_call_with_timeout_raises(self):
        with pytest.raises(PointTimeout):
            call_with_timeout(0.2, time.sleep, (5,), {})

    def test_previous_alarm_handler_restored(self):
        previous = signal.getsignal(signal.SIGALRM)
        call_with_timeout(1.0, _double, (1,), {})
        assert signal.getsignal(signal.SIGALRM) is previous

    def test_serial_timeout_becomes_failure(self):
        policy = ExecutorPolicy(timeout_s=0.2, backoff_s=0.0)
        report = ResilientExecutor(policy, log=lambda _msg: None).run(
            [1], _sleep_long, lambda x: ((x,), {})
        )
        assert not report.ok
        assert "PointTimeout" in report.failures[0].error

    def test_pooled_timeout_becomes_failure(self):
        policy = ExecutorPolicy(workers=2, timeout_s=0.3, backoff_s=0.0)
        report = ResilientExecutor(policy, log=lambda _msg: None).run(
            [1, 2], _sleep_long, lambda x: ((x,), {})
        )
        assert not report.ok
        assert len(report.failures) == 2
        assert all("PointTimeout" in f.error for f in report.failures)


class TestWorkerCrash:
    def test_crash_is_isolated_and_innocents_complete(self):
        policy = ExecutorPolicy(workers=2, backoff_s=0.0)
        messages: list[str] = []
        report = ResilientExecutor(policy, log=messages.append).run(
            [1, 2, 3, 4, 5], _die_on_three, lambda x: ((x,), {})
        )
        assert not report.ok
        assert report.results == {1: 2, 2: 4, 4: 8, 5: 10}
        assert [f.task for f in report.failures] == [3]
        assert "WorkerCrash" in report.failures[0].error
        # Innocent points implicated by the pool collapse are re-run at no
        # attempt cost; only the guilty task is charged.
        assert all(report.attempts[t] == 1 for t in (1, 2, 4, 5))
        assert any("worker pool died" in m for m in messages)

    def test_crash_failure_is_worker_crash_error(self):
        policy = ExecutorPolicy(workers=2, backoff_s=0.0)
        report = ResilientExecutor(policy, log=lambda _msg: None).run(
            [3], _die_on_three, lambda x: ((x,), {})
        )
        assert not report.ok
        assert "worker process died" in report.failures[0].error
        assert WorkerCrash.__name__ in report.failures[0].error


class TestHeartbeat:
    def test_heartbeat_logs_progress(self):
        messages: list[str] = []
        policy = ExecutorPolicy(heartbeat_s=0.05)

        def slowish(x: int) -> int:
            time.sleep(0.1)
            return x

        report = ResilientExecutor(policy, log=messages.append).run(
            [1, 2, 3], slowish, lambda x: ((x,), {})
        )
        assert report.ok
        beats = [m for m in messages if "campaign heartbeat" in m]
        assert beats, messages
        assert any("/3 points" in m for m in beats)

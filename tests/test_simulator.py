"""Integration tests of the fluid-model simulator (method of steps)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FluidParams, dumbbell_scenario
from repro.core import FluidSimulator, simulate

FAST = FluidParams(dt=2.5e-4)


def run(ccas, **kwargs):
    defaults = dict(buffer_bdp=1.0, duration_s=2.0, fluid=FAST)
    defaults.update(kwargs)
    return simulate(dumbbell_scenario(ccas, **defaults))


class TestTraceStructure:
    def test_time_grid_and_lengths(self, single_bbr1_trace):
        trace = single_bbr1_trace
        assert trace.num_flows == 1
        assert len(trace.links) == 1
        assert len(trace.time) == len(trace.flows[0].rate)
        assert trace.dt == pytest.approx(1e-3, rel=1e-6)
        assert trace.duration == pytest.approx(2.0, abs=2e-3)

    def test_all_series_finite_and_non_negative(self, single_bbr1_trace):
        trace = single_bbr1_trace
        flow = trace.flows[0]
        link = trace.bottleneck()
        for series in (flow.rate, flow.delivery_rate, flow.cwnd, flow.inflight, flow.rtt):
            assert np.all(np.isfinite(series))
            assert np.all(series >= 0)
        assert np.all(link.queue >= 0)
        assert np.all(link.queue <= link.buffer_pkts + 1e-9)
        assert np.all((link.loss_prob >= 0) & (link.loss_prob <= 1))

    def test_extras_recorded_for_bbr(self, single_bbr1_trace, single_bbr2_trace):
        assert "x_btl" in single_bbr1_trace.flows[0].extras
        assert "w_hi" in single_bbr2_trace.flows[0].extras

    def test_substrate_tag(self, single_bbr1_trace):
        assert single_bbr1_trace.substrate == "fluid"

    def test_record_interval_validation(self):
        config = dumbbell_scenario(["bbr1"], fluid=FluidParams(dt=1e-3))
        with pytest.raises(ValueError):
            FluidSimulator(config, record_interval_s=1e-4)


class TestSingleFlowBehaviour:
    def test_bbr1_utilizes_link(self, single_bbr1_trace):
        assert single_bbr1_trace.bottleneck().utilization() > 0.9

    def test_bbr2_utilizes_link_with_small_queue(self, single_bbr2_trace):
        link = single_bbr2_trace.bottleneck()
        assert link.utilization() > 0.9
        assert link.mean_occupancy() < 0.3

    def test_bbr2_causes_less_loss_than_bbr1(self, single_bbr1_trace, single_bbr2_trace):
        assert (
            single_bbr2_trace.bottleneck().loss_fraction()
            <= single_bbr1_trace.bottleneck().loss_fraction() + 1e-9
        )

    def test_reno_window_grows_in_congestion_avoidance(self):
        trace = run(["reno"], duration_s=3.0)
        cwnd = trace.flows[0].cwnd
        assert cwnd[-1] > cwnd[10]

    def test_rtt_includes_queueing_delay(self, single_bbr1_trace):
        trace = single_bbr1_trace
        link = trace.bottleneck()
        rtt = trace.flows[0].rtt
        base = np.min(rtt)
        # Whenever the queue is large, the recorded RTT must exceed the base RTT.
        queued = link.queue > 0.5 * np.max(link.queue) + 1e-9
        if np.any(queued) and np.max(link.queue) > 1.0:
            assert np.all(rtt[queued] > base)

    def test_delivery_never_exceeds_capacity(self, single_bbr1_trace):
        link = single_bbr1_trace.bottleneck()
        assert np.all(single_bbr1_trace.flows[0].delivery_rate <= link.capacity_pps * (1 + 1e-9))


class TestMultiFlowBehaviour:
    def test_flow_start_times_respected(self):
        config = dumbbell_scenario(["bbr1", "bbr1"], duration_s=2.0, fluid=FAST)
        late = config.flows[1].__class__(cca="bbr1", access_delay_s=0.005, start_time_s=1.0)
        config = config.__class__(
            bottleneck=config.bottleneck,
            flows=(config.flows[0], late),
            duration_s=2.0,
            fluid=FAST,
        )
        trace = simulate(config)
        before = trace.time < 0.9
        assert np.all(trace.flows[1].rate[before] == 0.0)
        assert np.any(trace.flows[1].rate[~before] > 0.0)

    def test_red_keeps_queue_smaller_than_droptail_for_bbr1(self):
        droptail = run(["bbr1"] * 4, discipline="droptail", buffer_bdp=2.0, duration_s=3.0)
        red = run(["bbr1"] * 4, discipline="red", buffer_bdp=2.0, duration_s=3.0)
        assert red.bottleneck().mean_occupancy() < droptail.bottleneck().mean_occupancy()

    def test_bbr1_starves_reno_in_shallow_droptail_buffer(self):
        trace = run(["bbr1"] * 3 + ["reno"] * 3, buffer_bdp=1.0, duration_s=4.0)
        bbr_goodput = sum(f.mean_goodput() for f in trace.flows if f.cca == "bbr1")
        reno_goodput = sum(f.mean_goodput() for f in trace.flows if f.cca == "reno")
        assert bbr_goodput > 2.0 * reno_goodput

    def test_aggregate_arrival_matches_flow_rates(self):
        trace = run(["bbr1", "reno"], duration_s=2.0)
        # After the first RTT, the bottleneck arrival rate must track the sum
        # of (delayed) flow sending rates to within a coarse tolerance.
        total = np.sum([f.rate for f in trace.flows], axis=0)
        window = trace.time > 0.5
        ratio = np.mean(trace.bottleneck().arrival_rate[window]) / np.mean(total[window])
        assert ratio == pytest.approx(1.0, rel=0.1)

    def test_bbr1_homogeneous_full_utilization(self):
        trace = run(["bbr1"] * 4, duration_s=3.0, buffer_bdp=2.0)
        assert trace.bottleneck().utilization() > 0.95


class TestTraceOperations:
    def test_after_drops_warmup(self, single_bbr1_trace):
        trimmed = single_bbr1_trace.after(1.0)
        assert trimmed.time[0] >= 1.0
        assert trimmed.num_flows == single_bbr1_trace.num_flows

    def test_after_beyond_end_rejected(self, single_bbr1_trace):
        with pytest.raises(ValueError):
            single_bbr1_trace.after(100.0)

    def test_normalized_rows_keys(self, single_bbr1_trace):
        rows = single_bbr1_trace.normalized_rows()
        assert set(rows) == {"time", "rate_pct", "queue_pct", "loss_pct", "rtt_excess_pct"}
        assert np.all(rows["queue_pct"] <= 100.0 + 1e-6)

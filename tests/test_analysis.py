"""Tests of the theoretical-analysis module (Theorems 1-5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    SingleBottleneck,
    bbr1_deep_buffer_equilibrium,
    bbr1_deep_buffer_max_eigenvalue,
    bbr1_shallow_buffer_eigenvalues,
    bbr1_shallow_buffer_equilibrium,
    bbr1_shallow_buffer_loss_fraction,
    bbr2_fair_equilibrium,
    bbr2_queue_reduction_vs_bbr1,
    check_bbr1_deep_buffer_stability,
    check_bbr1_numerical_stability,
    check_bbr1_shallow_buffer_stability,
    check_bbr2_numerical_stability,
    check_bbr2_stability,
    equilibrium_residual,
    integrate_reduced,
    numerical_jacobian,
)

CAPACITY = 8333.0
DELAY = 0.035

flow_counts = st.integers(min_value=1, max_value=100)
delays = st.floats(min_value=0.001, max_value=0.5)


def make_net(n: int, delay: float = DELAY, buffer_pkts: float = float("inf")) -> SingleBottleneck:
    return SingleBottleneck(CAPACITY, (delay,) * n, buffer_pkts=buffer_pkts)


class TestTheorem1:
    def test_equilibrium_queue_equals_bdp(self):
        eq = bbr1_deep_buffer_equilibrium(make_net(10))
        assert eq.queue_pkts == pytest.approx(DELAY * CAPACITY)

    def test_arbitrary_splits_are_equilibria(self):
        net = make_net(3)
        eq = bbr1_deep_buffer_equilibrium(net, shares=(0.7, 0.2, 0.1))
        assert not eq.fair
        residual = equilibrium_residual(
            "bbr1", net, np.asarray(eq.rates_pps), eq.queue_pkts
        )
        assert residual < 1e-6

    def test_fair_split_is_equilibrium(self):
        net = make_net(5)
        eq = bbr1_deep_buffer_equilibrium(net)
        assert eq.fair
        assert equilibrium_residual("bbr1", net, np.asarray(eq.rates_pps), eq.queue_pkts) < 1e-6

    def test_requires_equal_delays(self):
        net = SingleBottleneck(CAPACITY, (0.02, 0.04))
        with pytest.raises(ValueError):
            bbr1_deep_buffer_equilibrium(net)

    def test_requires_large_enough_buffer(self):
        net = make_net(2, buffer_pkts=10.0)
        with pytest.raises(ValueError):
            bbr1_deep_buffer_equilibrium(net)

    def test_invalid_shares_rejected(self):
        net = make_net(2)
        with pytest.raises(ValueError):
            bbr1_deep_buffer_equilibrium(net, shares=(0.9, 0.9))


class TestTheorem2:
    def test_stable_for_short_and_long_delays(self):
        for delay in (0.01, 0.1, 0.4, 1.0):
            assert check_bbr1_deep_buffer_stability(delay).asymptotically_stable

    def test_closed_form_matches_numpy_eigenvalues(self):
        result = check_bbr1_deep_buffer_stability(DELAY)
        assert max(ev.real for ev in result.eigenvalues) == pytest.approx(
            bbr1_deep_buffer_max_eigenvalue(DELAY), abs=1e-9
        )

    def test_numerical_jacobian_confirms_stability(self):
        assert check_bbr1_numerical_stability(make_net(5)).asymptotically_stable

    @given(delays)
    @settings(max_examples=30)
    def test_max_eigenvalue_always_negative(self, delay):
        assert bbr1_deep_buffer_max_eigenvalue(delay) < 0


class TestTheorem3:
    def test_rate_formula(self):
        eq = bbr1_shallow_buffer_equilibrium(make_net(10, buffer_pkts=50.0))
        assert eq.rates_pps[0] == pytest.approx(5.0 * CAPACITY / 41.0)
        assert eq.fair

    def test_single_flow_has_no_loss(self):
        assert bbr1_shallow_buffer_loss_fraction(1) == 0.0

    def test_loss_approaches_twenty_percent(self):
        assert bbr1_shallow_buffer_loss_fraction(10_000) == pytest.approx(0.2, abs=1e-3)

    def test_loss_matches_equilibrium_excess(self):
        n = 10
        eq = bbr1_shallow_buffer_equilibrium(make_net(n, buffer_pkts=50.0))
        assert eq.loss_fraction(CAPACITY) == pytest.approx(
            bbr1_shallow_buffer_loss_fraction(n), rel=1e-9
        )

    def test_stability_eigenvalues_negative(self):
        repeated, aggregate = bbr1_shallow_buffer_eigenvalues(10)
        assert repeated < 0
        assert aggregate == pytest.approx(-1.0)
        assert check_bbr1_shallow_buffer_stability(10).asymptotically_stable

    @given(flow_counts)
    @settings(max_examples=30)
    def test_aggregate_rate_exceeds_capacity_for_multiple_flows(self, n):
        eq = bbr1_shallow_buffer_equilibrium(make_net(n, buffer_pkts=50.0))
        if n == 1:
            assert eq.aggregate_rate_pps == pytest.approx(CAPACITY)
        else:
            assert eq.aggregate_rate_pps > CAPACITY


class TestTheorems4And5:
    def test_equilibrium_queue_formula(self):
        n = 10
        eq = bbr2_fair_equilibrium(make_net(n))
        assert eq.queue_pkts == pytest.approx((n - 1) / (4 * n + 1) * DELAY * CAPACITY)
        assert eq.fair

    def test_single_flow_has_empty_queue(self):
        eq = bbr2_fair_equilibrium(make_net(1))
        assert eq.queue_pkts == pytest.approx(0.0)

    def test_queue_reduction_at_least_75_percent(self):
        for n in (2, 5, 10, 100, 10_000):
            assert bbr2_queue_reduction_vs_bbr1(n) >= 0.75

    def test_equilibrium_satisfies_conditions(self):
        net = make_net(7)
        eq = bbr2_fair_equilibrium(net)
        assert equilibrium_residual("bbr2", net, np.asarray(eq.rates_pps), eq.queue_pkts) < 1e-6

    def test_stability_closed_form_and_numerical(self):
        assert check_bbr2_stability(10, DELAY).asymptotically_stable
        assert check_bbr2_numerical_stability(make_net(10)).asymptotically_stable

    @given(st.integers(min_value=2, max_value=50), delays)
    @settings(max_examples=30)
    def test_stable_across_parameters(self, n, delay):
        assert check_bbr2_stability(n, delay).asymptotically_stable

    def test_bbr2_queue_always_below_bbr1_queue(self):
        for n in (2, 5, 20):
            net = make_net(n)
            assert (
                bbr2_fair_equilibrium(net).queue_pkts
                < bbr1_deep_buffer_equilibrium(net).queue_pkts
            )


class TestReducedModelConvergence:
    def test_bbr1_converges_to_theorem1_queue(self):
        net = make_net(10)
        x0 = np.full(10, CAPACITY / 10) * np.linspace(0.5, 1.5, 10)
        _, states = integrate_reduced("bbr1", net, x0, queue0=0.0, duration_s=40.0)
        assert states[-1, -1] == pytest.approx(DELAY * CAPACITY, rel=0.02)

    def test_bbr2_converges_to_theorem4_queue(self):
        n = 10
        net = make_net(n)
        x0 = np.full(n, CAPACITY / n) * np.linspace(0.8, 1.2, n)
        _, states = integrate_reduced("bbr2", net, x0, queue0=0.0, duration_s=40.0)
        expected = (n - 1) / (4 * n + 1) * DELAY * CAPACITY
        assert states[-1, -1] == pytest.approx(expected, rel=0.05)

    def test_bbr2_converges_to_fair_rates(self):
        n = 5
        net = make_net(n)
        x0 = np.array([0.3, 0.8, 1.0, 1.4, 1.5]) * CAPACITY / n
        _, states = integrate_reduced("bbr2", net, x0, queue0=0.0, duration_s=200.0)
        final_rates = states[-1, :-1]
        # The slowest eigenvalue of the reduced dynamics is -1/(4N+1), so the
        # initial 5x spread shrinks to within a few percent over 200 s.
        assert np.max(final_rates) / np.min(final_rates) == pytest.approx(1.0, abs=0.05)

    def test_shallow_buffer_forces_fairness_in_bbr1(self):
        # Theorem 3: with a buffer too small for the window to bind, BBRv1
        # flows converge to the perfectly fair 5C/(4N+1) allocation.
        n = 4
        shallow = make_net(n, buffer_pkts=20.0)
        x0 = np.array([0.2, 0.6, 1.2, 2.0]) * CAPACITY / n
        _, states = integrate_reduced("bbr1", shallow, x0, queue0=0.0, duration_s=200.0)
        final = states[-1, :-1]
        assert np.allclose(final, 5 * CAPACITY / (4 * n + 1), rtol=0.05)

    def test_invalid_arguments(self):
        net = make_net(2)
        with pytest.raises(ValueError):
            integrate_reduced("vegas", net, np.ones(2), 0.0)
        with pytest.raises(ValueError):
            integrate_reduced("bbr1", net, np.ones(3), 0.0)
        with pytest.raises(ValueError):
            integrate_reduced("bbr1", net, np.ones(2), 0.0, duration_s=-1.0)


class TestNumericalJacobian:
    def test_matches_closed_form_for_bbr2(self):
        n = 4
        net = make_net(n)
        eq = bbr2_fair_equilibrium(net)
        state = np.concatenate([np.asarray(eq.rates_pps), [eq.queue_pkts]])
        numeric = numerical_jacobian("bbr2", net, state)
        # The reduced model uses the BtlBw estimates as coordinates, so the
        # queue-derivative row is d q_dot / d x_btl_i = delta* (the paper's
        # closed form uses the clamped sending rates, where this row is 1).
        delta_star = (4.0 * n + 1.0) / (5.0 * n)
        np.testing.assert_allclose(numeric[-1, :-1], np.full(n, delta_star), atol=1e-5)
        # Stability is coordinate-independent: the numeric Jacobian must have
        # only eigenvalues with negative real part, like the closed form.
        assert np.max(np.linalg.eigvals(numeric).real) < 0


class TestSingleBottleneckValidation:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            SingleBottleneck(0.0, (0.03,))
        with pytest.raises(ValueError):
            SingleBottleneck(1000.0, ())
        with pytest.raises(ValueError):
            SingleBottleneck(1000.0, (-0.1,))
        with pytest.raises(ValueError):
            SingleBottleneck(1000.0, (0.03,), buffer_pkts=0.0)

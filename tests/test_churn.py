"""Time-varying flow populations: FlowSchedule across both substrates.

Three concerns:

* **backward identity** — attaching no schedule must leave both substrates
  exactly on their historical trajectories: bit-identical fluid traces
  through both integrator pipelines, count-identical emulator runs through
  both schedulers;
* **churn semantics** — finite flows complete and record their FCT, on/off
  sources stop on time, both substrates agree on the materialised workload;
* **emulator hygiene** — departed senders stop occupying the event heap,
  so the live-event peak stays O(active flows + links) under churn.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np
import pytest

from repro.config import FlowSchedule, FluidParams, dumbbell_scenario
from repro.core.simulator import simulate, simulate_many
from repro.emulation.runner import EmulationRunner, emulate
from repro.experiments import scenarios
from repro.metrics import (
    active_flow_counts,
    active_jain_fairness,
    fct_percentile_s,
    flow_completion_times,
    mean_active_flows,
)

FLUID = FluidParams(dt=5e-4)


def _trace_digest(trace) -> str:
    """A bitwise digest of every numeric series of a trace."""
    sha = hashlib.sha256()
    sha.update(np.ascontiguousarray(trace.time).tobytes())
    for flow in trace.flows:
        for series in (flow.rate, flow.delivery_rate, flow.cwnd, flow.inflight, flow.rtt):
            sha.update(np.ascontiguousarray(series).tobytes())
    for link in trace.links:
        for series in (link.queue, link.loss_prob, link.departure_rate):
            sha.update(np.ascontiguousarray(series).tobytes())
    return sha.hexdigest()


class TestBackwardIdentity:
    """Schedule-free configs stay on their historical trajectories."""

    def test_fluid_pipelines_bit_identical_without_schedule(self):
        # Homogeneous mix: scalar and vectorized pipelines are bitwise
        # comparable there (mixed-CCA bit equality is a separate, pre-
        # existing non-goal of the vectorized pipeline).
        config = dumbbell_scenario(
            ["bbr1", "bbr1"], buffer_bdp=1.0, duration_s=1.5, fluid=FLUID
        )
        assert config.schedule is None
        scalar = simulate(config)
        vectorized = simulate(config, vectorized=True)
        assert _trace_digest(scalar) == _trace_digest(vectorized)

    def test_noop_staggered_schedule_matches_scheduleless_fluid(self):
        # An all-flows-at-t0, infinite-size schedule is the schedule-free
        # workload; the masked integrator must reproduce it bit-for-bit.
        base = dumbbell_scenario(
            ["bbr1", "reno"], buffer_bdp=1.0, duration_s=1.5, fluid=FLUID
        )
        noop = dataclasses.replace(
            base,
            schedule=FlowSchedule(arrivals="staggered", arrival_spacing_s=0.0),
        )
        for vectorized in (False, True):
            assert _trace_digest(
                simulate(base, vectorized=vectorized)
            ) == _trace_digest(simulate(noop, vectorized=vectorized))

    def test_emulator_schedulers_count_identical_without_schedule(self):
        config = dumbbell_scenario(["bbr1", "reno"], buffer_bdp=1.0, duration_s=1.5)
        counts = {}
        for scheduler in ("delayline", "closure"):
            runner = EmulationRunner(config, scheduler=scheduler)
            runner.run()
            counts[scheduler] = sorted(
                (fid, s.sent_count, s.delivered_count)
                for fid, s in runner.senders.items()
            )
        assert counts["delayline"] == counts["closure"]

    def test_scheduleless_metrics_have_nan_fct(self):
        trace = simulate(
            dumbbell_scenario(["bbr1"], buffer_bdp=1.0, duration_s=1.0, fluid=FLUID)
        )
        assert flow_completion_times(trace).size == 0
        assert np.isnan(fct_percentile_s(trace, 50))
        # The active-set fields degenerate to whole-population values.
        assert mean_active_flows(trace) == pytest.approx(1.0)
        assert 0.0 < active_jain_fairness(trace) <= 1.0


class TestChurnSemantics:
    def test_finite_flows_complete_and_record_fct(self):
        config = dataclasses.replace(
            dumbbell_scenario(
                ["bbr1", "reno", "cubic", "bbr2"],
                buffer_bdp=1.0,
                duration_s=5.0,
            ),
            schedule=FlowSchedule(
                arrivals="staggered",
                arrival_spacing_s=0.25,
                size_dist="fixed",
                mean_size_packets=200.0,
            ),
        )
        runner = EmulationRunner(config)
        trace = runner.run()
        for i, sender in runner.senders.items():
            assert sender.sent_count >= 200
            assert sender.completed_time_s is not None
        fcts = flow_completion_times(trace)
        assert fcts.size == 4
        assert np.all(fcts > 0)
        starts = [flow.start_time_s for flow in trace.flows]
        assert starts == pytest.approx([0.0, 0.25, 0.5, 0.75])

    def test_onoff_sources_stop_on_time(self):
        config = dataclasses.replace(
            dumbbell_scenario(["bbr1", "bbr1"], buffer_bdp=1.0, duration_s=4.0),
            schedule=FlowSchedule(arrivals="onoff", on_time_s=1.0, off_time_s=1.0),
        )
        trace = emulate(config)
        for flow in trace.flows:
            assert flow.end_time_s == pytest.approx(flow.start_time_s + 1.0)

    def test_substrates_materialise_identical_workload(self):
        config = scenarios.churn_scenario(
            "BBRv1", num_flows=6, arrivals="poisson", load=0.4, duration_s=3.0, seed=7
        )
        fluid = simulate(config)
        emu = emulate(config)
        for f_flow, e_flow in zip(fluid.flows, emu.flows, strict=True):
            assert f_flow.start_time_s == pytest.approx(e_flow.start_time_s)

    def test_fluid_completion_tracks_delivered_volume(self):
        config = dataclasses.replace(
            dumbbell_scenario(["bbr1", "bbr1"], buffer_bdp=1.0, duration_s=5.0, fluid=FLUID),
            schedule=FlowSchedule(
                arrivals="staggered",
                arrival_spacing_s=0.5,
                size_dist="fixed",
                mean_size_packets=300.0,
            ),
        )
        trace = simulate(config)
        assert flow_completion_times(trace).size == 2
        counts = active_flow_counts(trace)
        assert counts.max() <= 2
        assert counts[-1] == 0  # both flows departed before the end

    def test_simulate_many_mixes_churn_and_scheduleless(self):
        churn = scenarios.churn_scenario(
            "BBRv1", num_flows=4, arrivals="poisson", load=0.4, duration_s=2.0, seed=3
        )
        plain = dumbbell_scenario(
            ["bbr1"], buffer_bdp=1.0, duration_s=2.0, fluid=churn.fluid
        )
        batch = simulate_many([churn, plain, churn])
        solo = [simulate(churn), simulate(plain), simulate(churn)]
        for batched, single in zip(batch, solo, strict=True):
            assert _trace_digest(batched) == _trace_digest(single)

    def test_fluid_random_schedule_is_seeded(self):
        a = scenarios.churn_scenario("BBRv1", num_flows=4, arrivals="poisson", seed=1)
        b = scenarios.churn_scenario("BBRv1", num_flows=4, arrivals="poisson", seed=2)
        starts_a = [f.start_time_s for f in simulate(a).flows]
        starts_b = [f.start_time_s for f in simulate(b).flows]
        assert starts_a != starts_b
        # Same seed reproduces the identical workload.
        starts_a2 = [f.start_time_s for f in simulate(a).flows]
        assert starts_a == starts_a2


class TestEmulatorHeapHygiene:
    def test_heap_peak_bounded_by_active_flows(self):
        # 30 short flows churning through a 4-second run: the live-event
        # count must track the *active* population (each live sender holds
        # at most a pacing timer, a watchdog, a stop timer and its two
        # delay lines' timers), not the total flow count, and the heap must
        # drain once every flow has departed.
        num_flows = 30
        config = scenarios.churn_scenario(
            "BBRv1",
            num_flows=num_flows,
            arrivals="poisson",
            load=0.3,
            size_dist="fixed",
            mean_size_packets=150.0,
            duration_s=4.0,
            seed=5,
        )
        runner = EmulationRunner(config)
        for sender in runner.senders.values():
            sender.start()
        peak_live = 0
        peak_active = 0
        for i in range(1, 41):
            runner.events.run(i * 0.1)
            active = sum(
                1
                for s in runner.senders.values()
                if s.start_time_s <= runner.events.now and s.completed_time_s is None
            )
            peak_live = max(peak_live, len(runner.events))
            peak_active = max(peak_active, active)
        # Generous per-flow constant (timers + per-entity delay lines), but
        # strict enough that leaked timers of departed flows would fail.
        links = 2 * len(runner.senders) + 1  # access + return lines + bottleneck
        assert peak_active < num_flows  # churn actually overlapped partially
        assert peak_live <= 6 * peak_active + links
        # After the configured horizon every flow has either completed or
        # been cut off; completed senders must occupy zero heap slots.
        runner.events.run(60.0)
        done = [s for s in runner.senders.values() if s.completed_time_s is not None]
        assert len(done) == num_flows
        assert len(runner.events) == 0

"""Multi-process campaign stress tests: worker crashes, resume, all backends.

These are the service-grade guarantees of the campaign layer: a 4-worker
pool sharing one store survives a hard worker crash mid-grid, completes
the rest of the grid, records the failed point, loses no records, and a
warm re-run recomputes nothing it already has — on every store backend.

The pool uses the ``fork`` start method on Linux, so monkeypatched module
state and environment variables set in the parent are visible inside
workers, which is how the crash is injected.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import sweep
from repro.experiments.executor import ExecutorPolicy
from repro.experiments.store import SweepStore

BACKEND_KINDS = ("jsonl", "sharded", "sqlite")

FAST = dict(duration_s=0.5, dt=1e-3)
MIXES = ["BBRv1", "BBRv2"]
BUFFERS = [0.5, 1.0, 4.0]
GRID_POINTS = len(MIXES) * len(BUFFERS)

CRASH_MIX = "BBRv2"
CRASH_BUFFER = 4.0

_real_run_point = sweep.run_point


def _instrumented_run_point(mix, buffer_bdp, discipline, **kwargs):
    """run_point wrapper: injectable crash + compute accounting.

    Controlled by environment variables (inherited by forked workers):
    ``REPRO_TEST_CRASH_TRIGGER`` — while this file exists, the crash point
    hard-kills its worker process; ``REPRO_TEST_COMPUTE_LOG`` — every
    compute attempt appends one line here.
    """
    trigger = os.environ.get("REPRO_TEST_CRASH_TRIGGER")
    if trigger and os.path.exists(trigger) and mix == CRASH_MIX and buffer_bdp == CRASH_BUFFER:
        os._exit(13)  # hard crash: no exception, no cleanup, pool breaks
    log = os.environ.get("REPRO_TEST_COMPUTE_LOG")
    if log:
        with open(log, "a") as handle:
            handle.write(f"{mix}|{buffer_bdp}|{kwargs.get('seed')}\n")
    return _real_run_point(mix, buffer_bdp, discipline, **kwargs)


def _tripwire_run_point(mix, buffer_bdp, discipline, **kwargs):  # pragma: no cover
    raise AssertionError(
        f"point recomputed on warm run: mix={mix!r} buffer_bdp={buffer_bdp}"
    )


def _computes(log_path) -> list[str]:
    if not log_path.exists():
        return []
    return [line for line in log_path.read_text().splitlines() if line]


@pytest.fixture(autouse=True)
def _clear_cache():
    sweep.clear_cache()
    yield
    sweep.clear_cache()


def _store_path(tmp_path, kind: str):
    return tmp_path / {"jsonl": "c.jsonl", "sharded": "c.shards", "sqlite": "c.sqlite"}[kind]


def _campaign(store, policy, retry_failed=True):
    return sweep.run_campaign(
        mixes=MIXES,
        buffers_bdp=BUFFERS,
        disciplines=["droptail"],
        substrate="fluid",
        seeds=1,
        store=store,
        executor=policy,
        retry_failed=retry_failed,
        **FAST,
    )


@pytest.mark.parametrize("kind", BACKEND_KINDS)
class TestCrashSurvival:
    def test_campaign_survives_worker_crash_and_resumes(
        self, tmp_path, kind, monkeypatch
    ):
        path = _store_path(tmp_path, kind)
        trigger = tmp_path / "crash.trigger"
        trigger.touch()
        compute_log = tmp_path / "computes.log"
        monkeypatch.setenv("REPRO_TEST_CRASH_TRIGGER", str(trigger))
        monkeypatch.setenv("REPRO_TEST_COMPUTE_LOG", str(compute_log))
        monkeypatch.setattr(sweep, "run_point", _instrumented_run_point)
        policy = ExecutorPolicy(workers=4, backoff_s=0.0, on_failure="skip")

        # --- Cold run: one point hard-kills its worker mid-grid. ---
        store = SweepStore(path, backend=kind)
        result = _campaign(store, policy)
        assert not result.ok
        assert len(result.points) == GRID_POINTS - 1
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert (failure.mix, failure.buffer_bdp) == (CRASH_MIX, CRASH_BUFFER)
        assert "worker process died" in failure.error
        assert failure.attempts >= 1

        # Zero lost records: every healthy point landed, the crash is a
        # structured failure row, nothing was torn by the dying worker.
        store.close()
        reloaded = SweepStore(path, backend=kind)
        assert len(reloaded) == GRID_POINTS - 1
        stored_failures = reloaded.failures()
        assert len(stored_failures) == 1
        assert "worker process died" in stored_failures[0]["error"]

        # --- Warm re-run before the fix: failures re-reported, nothing
        # recomputed (retry_failed=False serves recorded failure rows). ---
        sweep.clear_cache()
        monkeypatch.setattr(sweep, "run_point", _tripwire_run_point)
        resumed = _campaign(reloaded, policy, retry_failed=False)
        assert not resumed.ok
        assert len(resumed.points) == GRID_POINTS - 1
        assert len(resumed.failures) == 1
        assert resumed.failures[0].attempts == 0  # reported, not re-attempted

        # --- "Fix the bug" (remove the trigger) and retry: only the one
        # failed point is recomputed, and it supersedes its failure row. ---
        trigger.unlink()
        sweep.clear_cache()
        monkeypatch.setattr(sweep, "run_point", _instrumented_run_point)
        before = len(_computes(compute_log))
        fixed = _campaign(reloaded, policy)
        assert fixed.ok
        assert len(fixed.points) == GRID_POINTS
        assert len(_computes(compute_log)) == before + 1
        assert reloaded.failures() == []
        reloaded.close()

        # --- Fully warm run: every point served from the store, zero
        # computation, correct hit/miss accounting. ---
        sweep.clear_cache()
        monkeypatch.setattr(sweep, "run_point", _tripwire_run_point)
        warm_store = SweepStore(path, backend=kind)
        warm = _campaign(warm_store, policy)
        assert warm.ok
        assert len(warm.points) == GRID_POINTS
        assert warm_store.hits == GRID_POINTS
        assert warm_store.misses == 0
        warm_store.close()

    def test_raise_mode_completes_grid_before_raising(
        self, tmp_path, kind, monkeypatch
    ):
        path = _store_path(tmp_path, kind)
        trigger = tmp_path / "crash.trigger"
        trigger.touch()
        monkeypatch.setenv("REPRO_TEST_CRASH_TRIGGER", str(trigger))
        monkeypatch.setattr(sweep, "run_point", _instrumented_run_point)
        policy = ExecutorPolicy(workers=4, backoff_s=0.0, on_failure="raise")
        store = SweepStore(path, backend=kind)
        with pytest.raises(sweep.SweepPointError) as excinfo:
            _campaign(store, policy)
        assert "worker process died" in str(excinfo.value)
        # The healthy grid still completed and persisted before the raise.
        store.close()
        reloaded = SweepStore(path, backend=kind)
        assert len(reloaded) == GRID_POINTS - 1
        assert len(reloaded.failures()) == 1
        reloaded.close()

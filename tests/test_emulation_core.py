"""Unit tests of the emulator building blocks: events, queues, link, sender."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.emulation.events import EventQueue
from repro.emulation.link import BottleneckLink
from repro.emulation.packet import Packet
from repro.emulation.queues import DropTailQueue, RedQueue, make_queue


class TestEventQueue:
    def test_events_run_in_time_order(self):
        events = EventQueue()
        order = []
        events.schedule(0.2, lambda: order.append("b"))
        events.schedule(0.1, lambda: order.append("a"))
        events.schedule(0.3, lambda: order.append("c"))
        events.run(until=1.0)
        assert order == ["a", "b", "c"]

    def test_ties_run_in_fifo_order(self):
        events = EventQueue()
        order = []
        events.schedule(0.1, lambda: order.append(1))
        events.schedule(0.1, lambda: order.append(2))
        events.run(until=1.0)
        assert order == [1, 2]

    def test_clock_advances_to_until(self):
        events = EventQueue()
        events.run(until=2.5)
        assert events.now == 2.5

    def test_events_beyond_horizon_not_executed(self):
        events = EventQueue()
        fired = []
        events.schedule(5.0, lambda: fired.append(1))
        events.run(until=1.0)
        assert not fired
        assert len(events) == 1

    def test_cannot_schedule_in_past(self):
        events = EventQueue()
        events.run(until=1.0)
        with pytest.raises(ValueError):
            events.schedule_at(0.5, lambda: None)
        with pytest.raises(ValueError):
            events.schedule(-0.1, lambda: None)

    def test_stop_halts_processing(self):
        events = EventQueue()
        fired = []
        events.schedule(0.1, lambda: (fired.append(1), events.stop()))
        events.schedule(0.2, lambda: fired.append(2))
        events.run(until=1.0)
        assert fired == [1]

    def test_callbacks_can_schedule_more_events(self):
        events = EventQueue()
        fired = []

        def chain():
            fired.append(events.now)
            if len(fired) < 3:
                events.schedule(0.1, chain)

        events.schedule(0.1, chain)
        events.run(until=1.0)
        assert len(fired) == 3
        assert fired == pytest.approx([0.1, 0.2, 0.3])


def make_packet(seq: int = 0, flow: int = 0) -> Packet:
    return Packet(flow_id=flow, seq=seq, size_bytes=1500, sent_time=0.0)


class TestDropTailQueue:
    def test_accepts_until_full_then_drops(self):
        queue = DropTailQueue(capacity_pkts=3)
        results = [queue.offer(make_packet(i)) for i in range(5)]
        assert results == [True, True, True, False, False]
        assert queue.dropped == 2
        assert queue.occupancy == 3

    def test_fifo_order(self):
        queue = DropTailQueue(capacity_pkts=10)
        for i in range(5):
            queue.offer(make_packet(i))
        assert [queue.pop().seq for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_pop_empty_returns_none(self):
        assert DropTailQueue(capacity_pkts=1).pop() is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity_pkts=0)

    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=0, max_value=200))
    def test_conservation(self, capacity, arrivals):
        queue = DropTailQueue(capacity_pkts=capacity)
        for i in range(arrivals):
            queue.offer(make_packet(i))
        assert queue.enqueued + queue.dropped == arrivals
        assert queue.occupancy == min(capacity, arrivals)


class TestRedQueue:
    def test_no_drops_when_average_queue_small(self):
        queue = RedQueue(capacity_pkts=100, rng=random.Random(1))
        assert all(queue.offer(make_packet(i)) for i in range(10))

    def test_drop_probability_grows_with_average_queue(self):
        queue = RedQueue(capacity_pkts=100, rng=random.Random(1))
        queue.avg_queue = 10.0
        low = queue.drop_probability()
        queue.avg_queue = 90.0
        assert queue.drop_probability() > low

    def test_full_queue_always_drops(self):
        queue = RedQueue(capacity_pkts=5, rng=random.Random(1))
        for i in range(5):
            queue._accept(make_packet(i))
        assert queue.offer(make_packet(99)) is False

    def test_average_lags_instantaneous_queue(self):
        queue = RedQueue(capacity_pkts=100, rng=random.Random(1))
        for i in range(50):
            queue.offer(make_packet(i))
        assert queue.avg_queue < queue.occupancy

    def test_invalid_parameters(self):
        rng = random.Random(1)
        with pytest.raises(ValueError):
            RedQueue(10, rng, min_threshold_fraction=0.9, max_threshold_fraction=0.5)
        with pytest.raises(ValueError):
            RedQueue(10, rng, max_probability=0.0)
        with pytest.raises(ValueError):
            RedQueue(10, rng, ewma_weight=2.0)

    def test_factory(self):
        rng = random.Random(1)
        assert isinstance(make_queue("droptail", 10, rng), DropTailQueue)
        assert isinstance(make_queue("red", 10, rng), RedQueue)
        with pytest.raises(ValueError):
            make_queue("codel", 10, rng)


class TestBottleneckLink:
    def test_serialises_at_capacity(self):
        events = EventQueue()
        delivered = []
        link = BottleneckLink(
            events=events,
            queue=DropTailQueue(capacity_pkts=100),
            capacity_pps=100.0,
            delay_s=0.0,
            deliver=delivered.append,
        )
        for i in range(10):
            link.on_arrival(make_packet(i))
        events.run(until=1.0)
        # 10 packets at 100 pps take exactly 0.1 s; all must be delivered.
        assert len(delivered) == 10
        assert events.now >= 0.1

    def test_propagation_delay_applied(self):
        events = EventQueue()
        times = []
        link = BottleneckLink(
            events=events,
            queue=DropTailQueue(capacity_pkts=10),
            capacity_pps=1000.0,
            delay_s=0.05,
            deliver=lambda p: times.append(events.now),
        )
        link.on_arrival(make_packet(0))
        events.run(until=1.0)
        assert times[0] == pytest.approx(0.001 + 0.05, abs=1e-9)

    def test_drops_counted_when_queue_full(self):
        events = EventQueue()
        link = BottleneckLink(
            events=events,
            queue=DropTailQueue(capacity_pkts=2),
            capacity_pps=10.0,
            delay_s=0.0,
            deliver=lambda p: None,
        )
        for i in range(10):
            link.on_arrival(make_packet(i))
        assert link.queue.dropped > 0

    def test_invalid_parameters(self):
        events = EventQueue()
        with pytest.raises(ValueError):
            BottleneckLink(events, DropTailQueue(1), capacity_pps=0.0, delay_s=0.0, deliver=lambda p: None)
        with pytest.raises(ValueError):
            BottleneckLink(events, DropTailQueue(1), capacity_pps=10.0, delay_s=-1.0, deliver=lambda p: None)

    def test_transmission_counter(self):
        events = EventQueue()
        link = BottleneckLink(
            events=events,
            queue=DropTailQueue(capacity_pkts=100),
            capacity_pps=1000.0,
            delay_s=0.0,
            deliver=lambda p: None,
        )
        for i in range(5):
            link.on_arrival(make_packet(i))
        events.run(until=1.0)
        assert link.transmitted == 5

"""Command-line interface: run scenarios, sweeps, and figure regenerations.

Examples::

    repro-bbr trace bbr1 --discipline droptail --duration 10
    repro-bbr sweep --substrate fluid --buffers 1 4 7 --mixes BBRv1 BBRv1/RENO
    repro-bbr figure fig06_fairness
    repro-bbr theorems
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .core.simulator import simulate
from .emulation.runner import emulate
from .experiments import figures, report, scenarios, sweep
from .metrics.aggregate import aggregate_metrics


def _add_trace_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser("trace", help="run a single-flow trace-validation scenario")
    parser.add_argument("cca", choices=["reno", "cubic", "bbr1", "bbr2"])
    parser.add_argument("--discipline", choices=list(scenarios.DISCIPLINES), default="droptail")
    parser.add_argument("--duration", type=float, default=10.0)
    parser.add_argument("--substrate", choices=["fluid", "emulation"], default="fluid")
    parser.add_argument("--buffer-bdp", type=float, default=1.0)


def _add_sweep_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser("sweep", help="run the aggregate-validation sweep")
    parser.add_argument("--substrate", choices=["fluid", "emulation"], default="fluid")
    parser.add_argument("--buffers", type=float, nargs="+", default=list(figures.DEFAULT_SWEEP_BUFFERS))
    parser.add_argument("--mixes", nargs="+", default=list(scenarios.CCA_MIXES))
    parser.add_argument("--disciplines", nargs="+", default=list(scenarios.DISCIPLINES))
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--short-rtt", action="store_true")
    parser.add_argument("--csv", type=str, default=None, help="write results to this CSV file")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan uncached sweep points out to N worker processes",
    )


def _add_figure_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser("figure", help="regenerate one aggregate figure")
    parser.add_argument("name", choices=sorted(figures.AGGREGATE_FIGURES))
    parser.add_argument("--substrate", choices=["fluid", "emulation"], default="fluid")
    parser.add_argument("--buffers", type=float, nargs="+", default=list(figures.DEFAULT_SWEEP_BUFFERS))
    parser.add_argument("--mixes", nargs="+", default=None)
    parser.add_argument("--disciplines", nargs="+", default=None)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--short-rtt", action="store_true")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan uncached sweep points out to N worker processes",
    )


def _add_theorem_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser("theorems", help="print the Theorem 1-5 summary table")
    parser.add_argument("--flows", type=int, nargs="+", default=[2, 5, 10, 50])
    parser.add_argument("--delay", type=float, default=0.035)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-bbr",
        description="Reproduction of the IMC 2022 BBR fluid-model paper",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_trace_parser(subparsers)
    _add_sweep_parser(subparsers)
    _add_figure_parser(subparsers)
    _add_theorem_parser(subparsers)
    return parser


def _run_trace(args: argparse.Namespace) -> int:
    # The paper's single-flow trace-validation scenario (Sec. 4.2), matching
    # the help text: 31.2 ms RTT and fair-share initial window for the
    # loss-based CCAs (the fluid models have no slow-start phase).
    config = scenarios.trace_validation_scenario(
        args.cca,
        discipline=args.discipline,
        duration_s=args.duration,
        buffer_bdp=args.buffer_bdp,
    )
    trace = simulate(config) if args.substrate == "fluid" else emulate(config)
    metrics = aggregate_metrics(trace)
    rows = [[key, value] for key, value in metrics.as_dict().items()]
    print(report.format_table(["metric", "value"], rows))
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    points = sweep.run_sweep(
        mixes=args.mixes,
        buffers_bdp=args.buffers,
        disciplines=args.disciplines,
        substrate=args.substrate,
        short_rtt=args.short_rtt,
        duration_s=args.duration,
        workers=args.workers,
    )
    rows = [point.row() for point in points]
    if not rows:
        print(
            "sweep produced no points; check --mixes/--buffers/--disciplines",
            file=sys.stderr,
        )
        return 1
    print(report.format_table(list(rows[0].keys()), [list(r.values()) for r in rows]))
    if args.csv:
        path = report.write_csv(args.csv, rows)
        print(f"wrote {path}")
    return 0


def _run_figure(args: argparse.Namespace) -> int:
    metric = figures.AGGREGATE_FIGURES[args.name]
    data = figures.aggregate_figure(
        metric,
        substrate=args.substrate,
        buffers_bdp=args.buffers,
        mixes=args.mixes,
        disciplines=args.disciplines,
        duration_s=args.duration,
        short_rtt=args.short_rtt,
        workers=args.workers,
    )
    for discipline, by_mix in data.items():
        print(report.series_table(f"{args.name} [{discipline}]", by_mix))
        print()
    return 0


def _run_theorems(args: argparse.Namespace) -> int:
    rows = figures.theorem_table(flow_counts=args.flows, propagation_delay_s=args.delay)
    if not rows:
        print("no theorem rows produced; check --flows", file=sys.stderr)
        return 1
    print(report.format_table(list(rows[0].keys()), [list(r.values()) for r in rows]))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "trace": _run_trace,
        "sweep": _run_sweep,
        "figure": _run_figure,
        "theorems": _run_theorems,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

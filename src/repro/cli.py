"""Command-line interface: run scenarios, sweeps, figures, and campaigns.

Examples::

    repro-bbr trace bbr1 --discipline droptail --duration 10
    repro-bbr sweep --substrate fluid --buffers 1 4 7 --mixes BBRv1 BBRv1/RENO
    repro-bbr sweep --substrate emulation --seeds 5 --store results.jsonl
    repro-bbr figure fig06_fairness --seeds 3 --csv fig06.csv
    repro-bbr campaign --store results.jsonl --seeds 5 --workers 4
    repro-bbr campaign --store results.sqlite --workers 4 --skip-failures --retries 1
    repro-bbr campaign --store sharded:results.shards --heartbeat-s 30
    repro-bbr campaign --preset examples/presets/emulation-grid.yaml
    repro-bbr topology --preset parking-lot --hops 3
    repro-bbr topology --preset parking-lot --hops 3 --hop-capacities 100,50,25
    repro-bbr sweep --topology parking-lot --hops 3 --mixes BBRv1
    repro-bbr sweep --topology parking-lot --hops 3 --hop-delays 0.002,0.02,0.002
    repro-bbr sweep --arrivals poisson --flow-size-dist pareto --load 0.5 --flows 100
    repro-bbr campaign --arrivals poisson --flows 1000 --seeds 3 --store churn.jsonl
    repro-bbr campaign --store results.sqlite --workers 4 --trace spans.jsonl
    repro-bbr trace export spans.jsonl --chrome
    repro-bbr store summary results.sqlite
    repro-bbr status results.sqlite --mixes BBRv1 --seeds 5
    repro-bbr status --preset examples/presets/fluid-quick.yaml
    repro-bbr sweep --substrate analytic --mixes BBRv1 BBRv2 --store results.jsonl
    repro-bbr sweep --prune-analytic --buffers 1 60 80 --mixes BBRv1
    repro-bbr campaign --store shard0.jsonl --shard-index 0 --shard-count 2
    repro-bbr store merge shard0.jsonl shard1.jsonl merged.sqlite
    repro-bbr stability --flow-counts 2 10 --buffers 0.25 1 4 --json
    repro-bbr stability --store results.jsonl --csv phase.csv
    repro-bbr theorems
    repro-bbr check
    repro-bbr check --json
    repro-bbr check --update-schema-fingerprint

``--seeds K`` replicates every sweep point under K scenario seeds and
reports mean ± 95% CI per point; ``--store PATH`` (or the ``REPRO_STORE``
environment variable) persists each completed point immediately, so an
interrupted sweep or campaign resumes without recomputing finished points.
The store backend (single-file JSON lines, sharded JSON lines, or SQLite)
is inferred from the path or forced with ``--backend``/a ``backend:``
prefix.  ``campaign`` adds the service-grade executor policy
(``--retries/--timeout-s/--backoff-s/--heartbeat-s/--skip-failures``):
with ``--skip-failures``, points that exhaust their retries are recorded
as structured failure rows, the rest of the grid completes, and the exit
code is 1; ``--no-retry-failed`` serves those rows from the store on warm
re-runs instead of recomputing them.  ``--preset FILE`` loads the whole
campaign definition from a YAML preset (see
:mod:`repro.experiments.presets`), with explicit flags overriding it.

``--arrivals`` switches every grid point from the paper's long-lived flows
to a churn workload (time-varying flow population):
``staggered``/``poisson``/``onoff`` arrivals, ``--flow-size-dist``
``infinite``/``fixed``/``pareto`` flow sizes, ``--load`` offered load as a
fraction of bottleneck capacity and ``--flows`` flows in the schedule.
Churn runs additionally report flow-completion-time percentiles, the
time-weighted Jain index over the *active* flow set and the mean number of
concurrently active flows.

``topology`` runs one multi-bottleneck scenario (parking lot,
multi-dumbbell, or a one-hop dumbbell) on one or both substrates and
reports per-link utilization/loss/queue plus per-flow throughput;
``--topology PRESET`` on ``sweep``/``campaign`` swaps the whole grid onto
that topology family.  Chains may be heterogeneous:
``--hop-capacities``/``--hop-delays``/``--hop-disciplines`` take one
comma-separated value per hop (validated against ``--hops``).

``--substrate analytic`` swaps every grid point from simulation to the
paper's equilibrium/stability theory (:mod:`repro.analysis`): each point
stores the predicted metrics plus an ``analysis`` block (regime, theorems,
classification, eigenvalues).  ``--prune-analytic`` on ``sweep`` /
``campaign`` runs an analytic pre-pass over the grid and serves points
whose buffer provably never binds from one representative run (the alias
is recorded in the store's meta).  ``--shard-index I --shard-count K``
deterministically partitions any grid into K disjoint slices by stored
scenario key, so shards run on independent machines and their stores
merge back losslessly with ``store merge SRC... DEST`` (last-write-wins
in argument order; results supersede failure rows).  ``stability``
renders the analytic stable/oscillatory phase diagram over a buffer x
RTT x flow-count grid and — given ``--store`` — validates the
predictions against the store's simulation rows, exiting 1 on residuals
beyond the documented thresholds.

``campaign --trace FILE`` appends a JSON-lines telemetry span log (spans,
counters, executor progress — workers included) that ``trace export
--chrome`` converts for chrome://tracing; tracing never changes results.
``store summary PATH`` renders row/failure counts, per-axis marginals and
runtime percentiles of any store backend; ``status STORE`` compares a
campaign grid (flags or ``--preset``) against the store and reports
done/failed/remaining (exit 0 only when complete).  ``-v``/``-q`` (or
``REPRO_LOG_LEVEL``) tune the structured progress logging on stderr.

``check`` runs the domain static-analysis suite (:mod:`repro.devtools`):
determinism of the simulation kernels, ``derive_rng`` stream hygiene,
cache-key completeness by mutation probing, and the unit-suffix
conventions.  It exits 1 on findings (0 clean, 2 on usage errors) and is
a required CI job; deliberate exceptions live in
``src/repro/devtools/allowlist.txt``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from dataclasses import replace
from pathlib import Path

from . import units
from .config import ARRIVAL_PROCESSES, SIZE_DISTRIBUTIONS
from .core.simulator import simulate
from .emulation.runner import emulate
from .experiments import figures, phase, presets, report, scenarios, sweep
from .experiments.backends import BACKENDS
from .experiments.executor import ExecutorPolicy
from .experiments.store import SweepStore, resolve_store
from .experiments.summary import render_summary, summarize_store
from .metrics.aggregate import aggregate_metrics, link_metrics
from .obs import export_chrome
from .obs import log as obs_log

#: CCAs of the single-flow trace-validation scenarios.
TRACE_CCAS = ("reno", "cubic", "bbr1", "bbr2")


def _add_trace_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "trace",
        help="run a single-flow trace-validation scenario, or export a "
        "telemetry span log",
    )
    trace_sub = parser.add_subparsers(dest="trace_command", required=True)
    for cca in TRACE_CCAS:
        sub = trace_sub.add_parser(cca, help=f"run the {cca} trace-validation scenario")
        # ``cca`` is never set by the subparser action itself, so the
        # legacy ``repro-bbr trace bbr1`` surface keeps parsing unchanged.
        sub.set_defaults(cca=cca)
        sub.add_argument("--discipline", choices=list(scenarios.DISCIPLINES), default="droptail")
        sub.add_argument("--duration", type=float, default=10.0)
        sub.add_argument("--substrate", choices=["fluid", "emulation"], default="fluid")
        sub.add_argument("--buffer-bdp", type=float, default=1.0)
    export = trace_sub.add_parser(
        "export",
        help="convert a --trace span log into another format",
    )
    export.add_argument("span_log", metavar="SPANLOG", help="JSON-lines span log written by --trace")
    export.add_argument(
        "--chrome",
        action="store_true",
        help="emit a chrome://tracing / Perfetto trace-event JSON document",
    )
    export.add_argument(
        "-o",
        "--output",
        type=str,
        default=None,
        metavar="FILE",
        help="output path (default: SPANLOG with a .chrome.json suffix)",
    )


def _add_replication_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="K",
        help="replicate every point under K scenario seeds and report mean ± 95%% CI",
    )
    parser.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="PATH",
        help="persistent result store (defaults to $REPRO_STORE); the backend "
        "is inferred from the path unless --backend (or a backend: prefix) "
        "forces it",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="force the store backend (default: inferred from the path)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan uncached sweep points out to N worker processes",
    )


def _add_shard_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shard-index",
        type=int,
        default=None,
        metavar="I",
        help="compute only the I-th of --shard-count deterministic grid "
        "slices (0-based; partitioned by stored scenario key)",
    )
    parser.add_argument(
        "--shard-count",
        type=int,
        default=None,
        metavar="K",
        help="partition the grid into K disjoint slices; disjoint shard "
        "stores merge back with 'repro-bbr store merge'",
    )


def _add_prune_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--prune-analytic",
        action="store_true",
        help="analytic grid pre-pass: serve points whose buffer provably "
        "never binds from one representative run (aliases recorded in "
        "the store meta)",
    )


def _add_logging_flags(parser: argparse.ArgumentParser) -> None:
    """``-v``/``--quiet`` verbosity flags (also honoured before the command)."""
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="log debug-level progress events to stderr",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress progress logging (errors only)",
    )


def _comma_list(text: str) -> tuple[str, ...]:
    """Split a comma-separated CLI list, tolerating stray whitespace."""
    return tuple(item.strip() for item in text.split(",") if item.strip())


def _add_hop_list_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--hop-capacities",
        type=_comma_list,
        default=None,
        metavar="MBPS,...",
        help="per-hop capacities in Mbps (comma list, one value per --hops)",
    )
    parser.add_argument(
        "--hop-delays",
        type=_comma_list,
        default=None,
        metavar="SECONDS,...",
        help="per-hop one-way propagation delays in seconds (comma list)",
    )
    parser.add_argument(
        "--hop-disciplines",
        type=_comma_list,
        default=None,
        metavar="DISC,...",
        help="per-hop queue disciplines (comma list of droptail/red)",
    )


def _parse_hop_axis(args: argparse.Namespace, preset: str | None):
    """Parse/validate the heterogeneous hop flags into normalised tuples.

    Raises :class:`ValueError` with a flag-level message on non-numeric
    entries; length/positivity/discipline validation is delegated to
    :func:`repro.experiments.scenarios.validate_hop_axis`.
    """
    def floats(values: tuple[str, ...] | None, flag: str):
        if values is None:
            return None
        try:
            return tuple(float(v) for v in values)
        except ValueError:
            raise ValueError(
                f"{flag} expects a comma list of numbers, got {','.join(values)!r}"
            ) from None

    return scenarios.validate_hop_axis(
        args.hops,
        floats(args.hop_capacities, "--hop-capacities"),
        floats(args.hop_delays, "--hop-delays"),
        args.hop_disciplines,
        preset=preset or "dumbbell",
    )


def _add_topology_axis_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--topology",
        choices=list(scenarios.TOPOLOGY_PRESETS),
        default=None,
        help="swap every grid point onto a multi-bottleneck topology preset",
    )
    parser.add_argument(
        "--hops",
        type=int,
        default=3,
        help="chain length (parking-lot) or dumbbell count (multi-dumbbell)",
    )
    parser.add_argument(
        "--cross-flows",
        type=int,
        default=1,
        help="cross flows per hop (parking-lot) or spanning flows (multi-dumbbell)",
    )
    _add_hop_list_flags(parser)


def _add_churn_axis_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--arrivals",
        choices=list(ARRIVAL_PROCESSES),
        default=None,
        help="switch every grid point to a churn workload with this arrival process",
    )
    parser.add_argument(
        "--flow-size-dist",
        choices=list(SIZE_DISTRIBUTIONS),
        default=None,
        help="flow-size distribution of the churn workload "
        "(default: pareto; infinite for --arrivals onoff)",
    )
    parser.add_argument(
        "--load",
        type=float,
        default=None,
        metavar="FRACTION",
        help="offered load as a fraction of bottleneck capacity (default: 0.5)",
    )
    parser.add_argument(
        "--flows",
        type=int,
        default=None,
        metavar="N",
        help="number of flows in the churn schedule (default: 100)",
    )


def _add_sweep_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser("sweep", help="run the aggregate-validation sweep")
    parser.add_argument(
        "--substrate", choices=["fluid", "emulation", "analytic"], default="fluid"
    )
    parser.add_argument("--buffers", type=float, nargs="+", default=list(figures.DEFAULT_SWEEP_BUFFERS))
    parser.add_argument("--mixes", nargs="+", default=list(scenarios.CCA_MIXES))
    parser.add_argument("--disciplines", nargs="+", default=list(scenarios.DISCIPLINES))
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--short-rtt", action="store_true")
    parser.add_argument("--csv", type=str, default=None, help="write results to this CSV file")
    _add_replication_flags(parser)
    _add_topology_axis_flags(parser)
    _add_churn_axis_flags(parser)
    _add_prune_flag(parser)
    _add_shard_flags(parser)
    _add_logging_flags(parser)


def _add_figure_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser("figure", help="regenerate one aggregate figure")
    parser.add_argument("name", choices=sorted(figures.AGGREGATE_FIGURES))
    parser.add_argument("--substrate", choices=["fluid", "emulation"], default="fluid")
    parser.add_argument("--buffers", type=float, nargs="+", default=list(figures.DEFAULT_SWEEP_BUFFERS))
    parser.add_argument("--mixes", nargs="+", default=None)
    parser.add_argument("--disciplines", nargs="+", default=None)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--short-rtt", action="store_true")
    parser.add_argument("--csv", type=str, default=None, help="write the figure rows to this CSV file")
    _add_replication_flags(parser)


def _add_campaign_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "campaign",
        help="run (or resume) a seed-replicated sweep over the full grid and export it",
    )
    parser.add_argument(
        "--substrate",
        choices=["fluid", "emulation", "analytic"],
        default="emulation",
    )
    parser.add_argument(
        "--buffers", type=float, nargs="+", default=list(scenarios.BUFFER_SWEEP_BDP)
    )
    parser.add_argument("--mixes", nargs="+", default=list(scenarios.CCA_MIXES))
    parser.add_argument("--disciplines", nargs="+", default=list(scenarios.DISCIPLINES))
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--short-rtt", action="store_true")
    parser.add_argument(
        "--csv", type=str, default=None, help="write the mean/std/CI summary rows to this CSV file"
    )
    parser.add_argument(
        "--per-seed-csv",
        type=str,
        default=None,
        help="write the raw per-seed rows to this CSV file",
    )
    parser.add_argument(
        "--preset",
        type=str,
        default=None,
        metavar="FILE",
        help="load the campaign definition (grid, substrate, seeds, store "
        "backend, executor policy) from this YAML preset; explicitly passed "
        "flags override the preset",
    )
    _add_replication_flags(parser)
    _add_topology_axis_flags(parser)
    _add_churn_axis_flags(parser)
    _add_prune_flag(parser)
    _add_shard_flags(parser)
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retry each failing point up to N times with exponential backoff",
    )
    parser.add_argument(
        "--backoff-s",
        type=float,
        default=None,
        metavar="S",
        help="base backoff between retry rounds in seconds (default: 0.5)",
    )
    parser.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        metavar="S",
        help="per-point wall-clock timeout in seconds (default: none)",
    )
    parser.add_argument(
        "--heartbeat-s",
        type=float,
        default=None,
        metavar="S",
        help="log campaign progress every S seconds",
    )
    parser.add_argument(
        "--skip-failures",
        action="store_true",
        help="record points that exhaust their retries as failure rows and "
        "complete the rest of the grid (exit 1) instead of raising",
    )
    parser.add_argument(
        "--no-retry-failed",
        action="store_true",
        help="serve previously recorded failure rows from the store instead "
        "of recomputing them (warm re-runs recompute nothing)",
    )
    parser.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="FILE",
        help="append a JSON-lines telemetry span log (spans, counters, "
        "executor progress) to FILE; convert it with "
        "'repro-bbr trace export FILE --chrome'",
    )
    _add_logging_flags(parser)
    parser.set_defaults(seeds=5)


def _add_topology_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "topology",
        help="run one multi-bottleneck scenario and report per-link/per-flow results",
    )
    parser.add_argument(
        "--preset", choices=list(scenarios.TOPOLOGY_PRESETS), default="parking-lot"
    )
    parser.add_argument(
        "--hops",
        type=int,
        default=3,
        help="chain length (parking-lot) or dumbbell count (multi-dumbbell)",
    )
    parser.add_argument(
        "--cross-flows",
        type=int,
        default=1,
        help="cross flows per hop (parking-lot) or spanning flows (multi-dumbbell)",
    )
    _add_hop_list_flags(parser)
    parser.add_argument("--mix", choices=sorted(scenarios.CCA_MIXES), default="BBRv1")
    parser.add_argument(
        "--cross-cca",
        choices=["reno", "cubic", "bbr1", "bbr2"],
        default="cubic",
        help="CCA of the cross/spanning flows",
    )
    parser.add_argument(
        "--substrate", choices=["fluid", "emulation", "both"], default="both"
    )
    parser.add_argument("--buffer-bdp", type=float, default=1.0)
    parser.add_argument(
        "--discipline", choices=list(scenarios.DISCIPLINES), default="droptail"
    )
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--csv",
        type=str,
        default=None,
        help="write the per-link and per-flow rows to this CSV file",
    )


def _add_store_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "store",
        help="inspect a persistent result store without running anything",
    )
    store_sub = parser.add_subparsers(dest="store_command", required=True)
    summary = store_sub.add_parser(
        "summary",
        help="row/failure counts, per-axis marginals and runtime percentiles",
    )
    summary.add_argument("path", metavar="STORE", help="store path (any backend)")
    summary.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="force the store backend (default: inferred from the path)",
    )
    summary.add_argument(
        "--json", action="store_true", help="emit the summary as a JSON document"
    )
    merge = store_sub.add_parser(
        "merge",
        help="merge one or more source stores into a destination store "
        "(last-write-wins in argument order; results supersede failures)",
    )
    merge.add_argument(
        "stores",
        nargs="+",
        metavar="SRC... DEST",
        help="source store paths followed by the destination (backends may "
        "differ freely; force one with a backend: prefix)",
    )
    merge.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="force the destination backend (default: inferred from the path)",
    )


def _add_status_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "status",
        help="report done/failed/remaining points of a campaign grid "
        "against its store",
    )
    parser.add_argument(
        "store",
        nargs="?",
        default=None,
        metavar="STORE",
        help="store path (defaults to the --preset's store)",
    )
    parser.add_argument(
        "--preset",
        type=str,
        default=None,
        metavar="FILE",
        help="campaign YAML preset defining the grid (and default store)",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="force the store backend (default: inferred from the path)",
    )
    parser.add_argument(
        "--substrate",
        choices=["fluid", "emulation", "analytic"],
        default="emulation",
    )
    parser.add_argument(
        "--buffers", type=float, nargs="+", default=list(scenarios.BUFFER_SWEEP_BDP)
    )
    parser.add_argument("--mixes", nargs="+", default=list(scenarios.CCA_MIXES))
    parser.add_argument("--disciplines", nargs="+", default=list(scenarios.DISCIPLINES))
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--short-rtt", action="store_true")
    parser.add_argument(
        "--seeds",
        type=int,
        default=5,
        metavar="K",
        help="seed replication of the grid being checked (default: 5)",
    )
    _add_topology_axis_flags(parser)
    _add_churn_axis_flags(parser)
    _add_shard_flags(parser)
    parser.add_argument(
        "--json", action="store_true", help="emit the status as a JSON document"
    )


def _add_stability_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "stability",
        help="analytic stable/oscillatory phase diagram over a buffer x RTT "
        "x flow-count grid, optionally validated against a store",
    )
    parser.add_argument(
        "--versions",
        nargs="+",
        choices=list(phase.DEFAULT_VERSIONS),
        default=list(phase.DEFAULT_VERSIONS),
    )
    parser.add_argument(
        "--flow-counts",
        type=int,
        nargs="+",
        default=list(phase.DEFAULT_FLOW_COUNTS),
        metavar="N",
    )
    parser.add_argument(
        "--rtts-ms",
        type=float,
        nargs="+",
        default=list(phase.DEFAULT_RTTS_MS),
        metavar="MS",
    )
    parser.add_argument(
        "--buffers",
        type=float,
        nargs="+",
        default=list(phase.DEFAULT_BUFFERS_BDP),
        metavar="BDP",
    )
    parser.add_argument("--capacity-mbps", type=float, default=100.0)
    parser.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="PATH",
        help="validate the predictions against this store's simulation rows "
        "(exit 1 when any row disagrees beyond the documented thresholds)",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="force the store backend (default: inferred from the path)",
    )
    parser.add_argument(
        "--substrate",
        choices=["fluid", "emulation"],
        default=None,
        help="restrict validation to one simulation substrate",
    )
    parser.add_argument(
        "--csv",
        type=str,
        default=None,
        help="write the phase-diagram rows to this CSV file",
    )
    parser.add_argument(
        "--validation-csv",
        type=str,
        default=None,
        help="write the prediction-vs-simulation residual rows to this CSV file",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the phase diagram and validation as a JSON document",
    )


def _add_theorem_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser("theorems", help="print the Theorem 1-5 summary table")
    parser.add_argument("--flows", type=int, nargs="+", default=[2, 5, 10, 50])
    parser.add_argument("--delay", type=float, default=0.035)


def _add_check_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "check",
        help="run the domain static-analysis suite (determinism, RNG streams, "
        "cache keys, units)",
    )
    parser.add_argument(
        "--root",
        type=str,
        default=None,
        help="repository root to scan (default: auto-detected from the package)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as a JSON document"
    )
    parser.add_argument(
        "--baseline",
        type=str,
        default=None,
        metavar="PATH",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        type=str,
        default=None,
        metavar="PATH",
        help="write the current findings to a baseline file and exit 0",
    )
    parser.add_argument(
        "--update-schema-fingerprint",
        action="store_true",
        help="regenerate the committed hashed-field-set fingerprint "
        "(run after bumping SCHEMA_VERSION)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-bbr",
        description="Reproduction of the IMC 2022 BBR fluid-model paper",
    )
    _add_logging_flags(parser)
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_trace_parser(subparsers)
    _add_sweep_parser(subparsers)
    _add_figure_parser(subparsers)
    _add_campaign_parser(subparsers)
    _add_topology_parser(subparsers)
    _add_store_parser(subparsers)
    _add_status_parser(subparsers)
    _add_stability_parser(subparsers)
    _add_theorem_parser(subparsers)
    _add_check_parser(subparsers)
    return parser


def _run_trace_export(args: argparse.Namespace) -> int:
    span_log = Path(args.span_log)
    if not span_log.exists():
        print(f"error: span log {args.span_log} not found", file=sys.stderr)
        return 2
    if not args.chrome:
        print(
            "error: select an export format (currently only --chrome)",
            file=sys.stderr,
        )
        return 2
    count, out_path = export_chrome(span_log, args.output)
    print(f"wrote {out_path} ({count} trace events)")
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "export":
        return _run_trace_export(args)
    # The paper's single-flow trace-validation scenario (Sec. 4.2), matching
    # the help text: 31.2 ms RTT and fair-share initial window for the
    # loss-based CCAs (the fluid models have no slow-start phase).
    config = scenarios.trace_validation_scenario(
        args.cca,
        discipline=args.discipline,
        duration_s=args.duration,
        buffer_bdp=args.buffer_bdp,
    )
    trace = simulate(config) if args.substrate == "fluid" else emulate(config)
    metrics = aggregate_metrics(trace)
    rows = [[key, value] for key, value in metrics.as_dict().items()]
    print(report.format_table(["metric", "value"], rows))
    return 0


def _summary_display_rows(points: Sequence[sweep.SummaryPoint]) -> list[dict[str, object]]:
    """Compact mean ± CI table rows for seed-replicated sweep points."""
    rows: list[dict[str, object]] = []
    for point in points:
        row: dict[str, object] = {
            "mix": point.mix,
            "buffer_bdp": point.buffer_bdp,
            "discipline": point.discipline,
            "substrate": point.substrate,
            "seeds": point.summary.num_seeds,
        }
        means = point.summary.mean.as_dict()
        cis = point.summary.ci95.as_dict()
        for name in means:
            row[name] = report.format_mean_ci(means[name], cis[name])
        rows.append(row)
    return rows


def _run_sweep(args: argparse.Namespace) -> int:
    try:
        hop_capacities, hop_delays, hop_disciplines = _parse_hop_axis(
            args, args.topology
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        points = sweep.run_sweep(
            mixes=args.mixes,
            buffers_bdp=args.buffers,
            disciplines=args.disciplines,
            substrate=args.substrate,
            short_rtt=args.short_rtt,
            duration_s=args.duration,
            workers=args.workers,
            seeds=args.seeds,
            store=resolve_store(args.store, backend=args.backend),
            topology=args.topology,
            hops=args.hops,
            cross_flows=args.cross_flows,
            hop_capacities=hop_capacities,
            hop_delays=hop_delays,
            hop_disciplines=hop_disciplines,
            arrivals=args.arrivals,
            flow_size_dist=args.flow_size_dist,
            load=args.load,
            flows=args.flows,
            prune_analytic=args.prune_analytic,
            shard_index=args.shard_index,
            shard_count=args.shard_count,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = [point.row() for point in points]
    if not rows:
        if args.shard_count is not None:
            # An empty shard is a legitimate outcome of hash partitioning
            # on a small grid: this worker simply has nothing to do.
            print(
                f"shard {args.shard_index}/{args.shard_count} contains "
                "no grid points"
            )
            return 0
        print(
            "sweep produced no points; check --mixes/--buffers/--disciplines",
            file=sys.stderr,
        )
        return 1
    display = _summary_display_rows(points) if args.seeds is not None else rows
    print(report.format_table(list(display[0].keys()), [list(r.values()) for r in display]))
    if args.csv:
        path = report.write_csv(args.csv, rows)
        print(f"wrote {path}")
    return 0


def _figure_rows(
    name: str, metric: str, data: dict[str, dict[str, list[tuple[float, ...]]]]
) -> list[dict[str, object]]:
    """Flatten one aggregate figure into CSV-friendly rows."""
    rows: list[dict[str, object]] = []
    for discipline, by_mix in data.items():
        for mix, entries in by_mix.items():
            for entry in entries:
                row: dict[str, object] = {
                    "figure": name,
                    "discipline": discipline,
                    "mix": mix,
                    "buffer_bdp": entry[0],
                }
                if len(entry) >= 3:
                    row[f"{metric}_mean"] = entry[1]
                    row[f"{metric}_ci95"] = entry[2]
                else:
                    row[metric] = entry[1]
                rows.append(row)
    return rows


def _run_figure(args: argparse.Namespace) -> int:
    metric = figures.AGGREGATE_FIGURES[args.name]
    data = figures.aggregate_figure(
        metric,
        substrate=args.substrate,
        buffers_bdp=args.buffers,
        mixes=args.mixes,
        disciplines=args.disciplines,
        duration_s=args.duration,
        short_rtt=args.short_rtt,
        workers=args.workers,
        seeds=args.seeds,
        store=resolve_store(args.store, backend=args.backend),
    )
    rows = _figure_rows(args.name, metric, data)
    if not rows:
        print(
            "figure produced no points; check --mixes/--buffers/--disciplines",
            file=sys.stderr,
        )
        return 1
    for discipline, by_mix in data.items():
        print(report.series_table(f"{args.name} [{discipline}]", by_mix))
        print()
    if args.csv:
        path = report.write_csv(args.csv, rows)
        print(f"wrote {path}")
    return 0


def _apply_campaign_preset(
    args: argparse.Namespace, defaults_argv: Sequence[str] = ("campaign",)
) -> presets.CampaignPreset:
    """Merge a ``--preset`` file into the parsed args (explicit flags win).

    A flag counts as explicitly passed when it appears in the raw argv
    (stashed by :func:`main`) — so ``--substrate emulation`` overrides a
    preset's ``substrate: fluid`` even though emulation is the parser
    default.  Without the argv stash (programmatic callers building their
    own namespace) the merge falls back to diffing against the parser
    defaults, where a flag passed *at* its default lets the preset win.
    ``defaults_argv`` names the subcommand whose parser defaults the diff
    runs against (``status`` shares the campaign grid axes).
    """
    preset = presets.load_preset(args.preset)
    explicit = {
        token[2:].split("=", 1)[0].replace("-", "_")
        for token in getattr(args, "_argv", None) or []
        if token.startswith("--")
    }
    defaults = build_parser().parse_args(list(defaults_argv))
    merges = [
        ("substrate", preset.substrate),
        ("seeds", preset.seeds),
        ("duration", preset.duration_s),
        ("short_rtt", preset.short_rtt),
        ("mixes", preset.mixes),
        ("buffers", preset.buffers_bdp),
        ("disciplines", preset.disciplines),
        ("topology", preset.topology),
        ("hops", preset.hops),
        ("cross_flows", preset.cross_flows),
        ("hop_capacities", preset.hop_capacities),
        ("hop_delays", preset.hop_delays),
        ("hop_disciplines", preset.hop_disciplines),
        ("arrivals", preset.arrivals),
        ("flow_size_dist", preset.flow_size_dist),
        ("load", preset.load),
        ("flows", preset.flows),
    ]
    for flag, value in merges:
        if (
            value is not None
            and flag not in explicit
            and getattr(args, flag) == getattr(defaults, flag)
        ):
            setattr(args, flag, value)
    return preset


def _campaign_policy(
    args: argparse.Namespace, preset: presets.CampaignPreset | None
) -> ExecutorPolicy:
    """The effective executor policy: preset base, explicit flags override."""
    base = preset.executor if preset is not None else ExecutorPolicy()
    return replace(
        base,
        workers=args.workers if args.workers is not None else base.workers,
        retries=args.retries if args.retries is not None else base.retries,
        backoff_s=args.backoff_s if args.backoff_s is not None else base.backoff_s,
        timeout_s=args.timeout_s if args.timeout_s is not None else base.timeout_s,
        on_failure="skip" if args.skip_failures else base.on_failure,
        heartbeat_s=(
            args.heartbeat_s if args.heartbeat_s is not None else base.heartbeat_s
        ),
    )


def _run_campaign(args: argparse.Namespace) -> int:
    preset = None
    if args.preset:
        try:
            preset = _apply_campaign_preset(args)
        except presets.PresetError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        hop_capacities, hop_delays, hop_disciplines = _parse_hop_axis(
            args, args.topology
        )
        policy = _campaign_policy(args, preset)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    retry_failed = not args.no_retry_failed and (
        preset.retry_failed if preset is not None else True
    )
    store_spec = args.store
    backend = args.backend
    fsync = True
    if preset is not None and store_spec is None:
        # An explicit --store replaces the preset's store wholesale: its
        # backend then comes from --backend or path inference, never from
        # the preset (which described a different file).
        store_spec = preset.store_path
        backend = backend if backend is not None else preset.store_backend
        fsync = preset.store_fsync
    store = resolve_store(store_spec, backend=backend, fsync=fsync)
    if store is None:
        obs_log.warning(
            "campaign.store_missing",
            "no --store/REPRO_STORE configured; campaign results will "
            "not be persisted or resumable",
        )
    try:
        result = sweep.run_campaign(
            mixes=args.mixes,
            buffers_bdp=args.buffers,
            disciplines=args.disciplines,
            substrate=args.substrate,
            short_rtt=args.short_rtt,
            duration_s=args.duration,
            seeds=args.seeds,
            store=store,
            topology=args.topology,
            hops=args.hops,
            cross_flows=args.cross_flows,
            hop_capacities=hop_capacities,
            hop_delays=hop_delays,
            hop_disciplines=hop_disciplines,
            arrivals=args.arrivals,
            flow_size_dist=args.flow_size_dist,
            load=args.load,
            flows=args.flows,
            executor=policy,
            retry_failed=retry_failed,
            trace=args.trace,
            prune_analytic=args.prune_analytic,
            shard_index=args.shard_index,
            shard_count=args.shard_count,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except sweep.SweepPointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    points, failures = result.points, result.failures
    rows = [point.row() for point in points]
    if not rows and not failures:
        if args.shard_count is not None:
            # Hash partitioning can leave a worker's slice empty on small
            # grids; that is a completed (trivial) campaign, not an error.
            print(
                f"shard {args.shard_index}/{args.shard_count} contains "
                "no grid points"
            )
            return 0
        print(
            "campaign produced no points; check --mixes/--buffers/--disciplines",
            file=sys.stderr,
        )
        return 1
    if rows:
        display = _summary_display_rows(points)
        print(report.format_table(list(display[0].keys()), [list(r.values()) for r in display]))
    if args.csv and rows:
        path = report.write_csv(args.csv, rows)
        print(f"wrote {path}")
    if args.per_seed_csv:
        arrivals, flow_size_dist, load, flows = sweep.normalize_churn_axis(
            args.arrivals, args.flow_size_dist, args.load, args.flows
        )
        # With hop_disciplines set, every point is labelled (and stored)
        # under the per-hop composite, not the swept discipline value.
        if hop_disciplines is not None:
            export_disciplines = [sweep.hop_discipline_label(hop_disciplines)]
        else:
            export_disciplines = args.disciplines
        if store is not None:
            # The store indexes every per-seed record this campaign just
            # ran (or resumed); restrict it to this campaign's grid since
            # the file may hold other campaigns too.
            wanted = {
                (discipline, mix, float(buffer_bdp))
                for discipline in export_disciplines
                for mix in args.mixes
                for buffer_bdp in args.buffers
            }
            # The topology axis is part of the record identity: a dumbbell
            # campaign must not export parking-lot rows sharing the same
            # (mix, buffer, discipline) coordinates, and a hops=3 campaign
            # must not export hops=4 rows from the same store file.
            topology = None if args.topology in (None, "dumbbell") else args.topology
            # The churn axis is symmetric too: a long-lived-flow campaign
            # (arrivals None, absent from meta) must not export churn rows
            # sharing its (mix, buffer, discipline) coordinates, and a
            # churn campaign only exports its exact workload.
            filters = dict(
                substrate=args.substrate,
                short_rtt=args.short_rtt,
                duration_s=args.duration,
                topology=topology,
                arrivals=arrivals,
            )
            if arrivals is not None:
                filters["flow_size_dist"] = flow_size_dist
                filters["load"] = load
                filters["flows"] = flows
            if topology is not None:
                filters["hops"] = args.hops
                filters["cross_flows"] = args.cross_flows
                # Symmetric on purpose: a homogeneous campaign (filter
                # None) must not export heterogeneous rows that share its
                # (mix, buffer, discipline) coordinates, and vice versa.
                filters["hop_capacities"] = (
                    list(hop_capacities) if hop_capacities is not None else None
                )
                filters["hop_delays"] = (
                    list(hop_delays) if hop_delays is not None else None
                )
                filters["hop_disciplines"] = (
                    list(hop_disciplines) if hop_disciplines is not None else None
                )
            per_seed = [
                row
                for row in store.rows(**filters)
                if (row["discipline"], row["mix"], row["buffer_bdp"]) in wanted
            ]
        else:
            # No store: recover the replicas from the in-process cache.
            per_seed = [
                sweep.run_point(
                    mix,
                    buffer_bdp,
                    discipline,
                    substrate=args.substrate,
                    short_rtt=args.short_rtt,
                    duration_s=args.duration,
                    seed=seed,
                    store=False,
                    topology=args.topology,
                    hops=args.hops,
                    cross_flows=args.cross_flows,
                    hop_capacities=hop_capacities,
                    hop_delays=hop_delays,
                    hop_disciplines=hop_disciplines,
                    arrivals=arrivals,
                    flow_size_dist=flow_size_dist,
                    load=load,
                    flows=flows,
                ).row()
                for discipline in export_disciplines
                for mix in args.mixes
                for buffer_bdp in args.buffers
                for seed in sweep._seed_list(args.seeds)
            ]
        path = report.write_csv(args.per_seed_csv, per_seed)
        print(f"wrote {path}")
    if store is not None:
        print(f"store: {store.path} ({len(store)} points)")
    if failures:
        # The grid completed; report what the executor gave up on and exit
        # nonzero so CI/schedulers notice without losing the finished work.
        failure_rows = [f.row() for f in failures]
        obs_log.error("campaign.failures", f"{len(failures)} point(s) failed:")
        print(
            report.format_table(
                list(failure_rows[0].keys()),
                [list(r.values()) for r in failure_rows],
            ),
            file=sys.stderr,
        )
        return 1
    return 0


def _topology_flow_rows(config, trace, substrate: str) -> list[dict[str, object]]:
    """Per-flow rows of one topology run (throughput, RTT, path)."""
    topo = config.effective_topology()
    rows: list[dict[str, object]] = []
    for i, flow in enumerate(trace.flows):
        rtt = flow.rtt[flow.rtt > 0]
        rows.append(
            {
                "substrate": substrate,
                "flow": f"flow-{i}",
                "cca": flow.cca,
                "path": ">".join(topo.paths[i]),
                "throughput_mbps": units.pps_to_mbps(flow.mean_goodput()),
                "mean_rtt_ms": 1000.0 * float(rtt.mean()) if len(rtt) else 0.0,
            }
        )
    return rows


def _run_topology(args: argparse.Namespace) -> int:
    try:
        hop_capacities, hop_delays, hop_disciplines = _parse_hop_axis(
            args, args.preset
        )
        config = scenarios.topology_scenario(
            args.preset,
            mix=args.mix,
            hops=args.hops,
            cross_flows=args.cross_flows,
            cross_cca=args.cross_cca,
            buffer_bdp=args.buffer_bdp,
            discipline=args.discipline,
            duration_s=args.duration,
            seed=args.seed,
            hop_capacities=hop_capacities,
            hop_delays=hop_delays,
            hop_disciplines=hop_disciplines,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    substrates = ["fluid", "emulation"] if args.substrate == "both" else [args.substrate]
    csv_rows: list[dict[str, object]] = []
    for substrate in substrates:
        trace = simulate(config) if substrate == "fluid" else emulate(config)
        metrics = link_metrics(trace)
        link_rows = [
            {"substrate": substrate, **row} for row in report.link_rows(metrics)
        ]
        flow_rows = _topology_flow_rows(config, trace, substrate)
        print(f"{args.preset} (hops={args.hops}, cross_flows={args.cross_flows}) "
              f"[{substrate}] — per-link")
        print(report.link_table(metrics))
        print()
        print(f"{args.preset} [{substrate}] — per-flow")
        print(report.format_table(list(flow_rows[0].keys()),
                                  [list(r.values()) for r in flow_rows]))
        print()
        for row in link_rows:
            csv_rows.append({"kind": "link", **row})
        for row in flow_rows:
            csv_rows.append({"kind": "flow", **row})
    if args.csv:
        # One file, two row kinds: normalise to the union of the columns.
        fields: list[str] = []
        for row in csv_rows:
            for name in row:
                if name not in fields:
                    fields.append(name)
        normalised = [{name: row.get(name, "") for name in fields} for row in csv_rows]
        path = report.write_csv(args.csv, normalised)
        print(f"wrote {path}")
    return 0


def _open_existing_store(spec: str, backend: str | None) -> SweepStore:
    """Open a store for read-only introspection; refuse to create one.

    Opening a missing path would silently create an empty store (SQLite
    even writes a file), which turns a typo into "0 results".
    """
    raw = spec
    for prefix in BACKENDS:
        if raw.startswith(f"{prefix}:"):
            raw = raw[len(prefix) + 1 :]
            break
    if not Path(raw).exists():
        raise FileNotFoundError(f"store {raw} not found")
    return SweepStore(spec, backend=backend)


def _strip_backend_prefix(spec: str) -> str:
    for prefix in BACKENDS:
        if spec.startswith(f"{prefix}:"):
            return spec[len(prefix) + 1 :]
    return spec


def _run_store_merge(args: argparse.Namespace) -> int:
    if len(args.stores) < 2:
        print(
            "error: store merge needs at least one SRC and a DEST",
            file=sys.stderr,
        )
        return 2
    *sources, dest = args.stores
    dest_path = Path(_strip_backend_prefix(dest)).resolve()
    for spec in sources:
        if Path(_strip_backend_prefix(spec)).resolve() == dest_path:
            print(
                f"error: destination {dest} is also a merge source",
                file=sys.stderr,
            )
            return 2
    dest_store = SweepStore(dest, backend=args.backend)
    try:
        for spec in sources:
            try:
                src_store = _open_existing_store(spec, None)
            except FileNotFoundError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            try:
                results, failures = dest_store.merge_from(src_store)
            finally:
                src_store.close()
            print(f"merged {spec}: {results} result(s), {failures} failure(s)")
        print(
            f"store: {dest_store.path} ({len(dest_store)} points, "
            f"{len(dest_store.failures())} open failures)"
        )
    finally:
        dest_store.close()
    return 0


def _run_store(args: argparse.Namespace) -> int:
    if args.store_command == "merge":
        return _run_store_merge(args)
    try:
        store = _open_existing_store(args.path, args.backend)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        summary = summarize_store(store)
    finally:
        store.close()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_summary(summary))
    return 0


def _run_status(args: argparse.Namespace) -> int:
    preset = None
    if args.preset:
        try:
            preset = _apply_campaign_preset(args, defaults_argv=("status",))
        except presets.PresetError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    store_spec = args.store
    backend = args.backend
    if preset is not None and store_spec is None:
        store_spec = preset.store_path
        backend = backend if backend is not None else preset.store_backend
    if store_spec is None:
        print(
            "error: no store to check; pass STORE or a --preset naming one",
            file=sys.stderr,
        )
        return 2
    try:
        hop_capacities, hop_delays, hop_disciplines = _parse_hop_axis(
            args, args.topology
        )
        grid = sweep.grid_point_keys(
            mixes=args.mixes,
            buffers_bdp=args.buffers,
            disciplines=args.disciplines,
            substrate=args.substrate,
            short_rtt=args.short_rtt,
            duration_s=args.duration,
            seeds=args.seeds,
            topology=args.topology,
            hops=args.hops,
            cross_flows=args.cross_flows,
            hop_capacities=hop_capacities,
            hop_delays=hop_delays,
            hop_disciplines=hop_disciplines,
            arrivals=args.arrivals,
            flow_size_dist=args.flow_size_dist,
            load=args.load,
            flows=args.flows,
            shard_index=args.shard_index,
            shard_count=args.shard_count,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        store = _open_existing_store(store_spec, backend)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        failed_keys = {record["key"] for record in store.failures()}
        done: list[dict] = []
        failed: list[dict] = []
        remaining: list[dict] = []
        for coords, key in grid:
            if key in store:
                done.append(coords)
            elif key in failed_keys:
                failed.append(coords)
            else:
                remaining.append(coords)
        store_path = str(store.path)
    finally:
        store.close()
    if args.json:
        print(
            json.dumps(
                {
                    "store": store_path,
                    "grid": len(grid),
                    "done": len(done),
                    "failed": len(failed),
                    "remaining": len(remaining),
                    "failed_points": failed,
                    "remaining_points": remaining,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            f"store {store_path}: {len(grid)} grid point(s) — "
            f"{len(done)} done, {len(failed)} failed, {len(remaining)} remaining"
        )
        for title, coords_list in (("failed", failed), ("remaining", remaining)):
            # Keep the text report readable for huge grids; --json has it all.
            if coords_list and len(coords_list) <= 20:
                print(f"\n{title}:")
                print(
                    report.format_table(
                        list(coords_list[0].keys()),
                        [list(c.values()) for c in coords_list],
                    )
                )
    # Scripting-friendly: 0 only when the grid is fully computed.
    return 0 if not failed and not remaining else 1


def _detect_repo_root() -> str:
    """The repository root containing this installed/served package.

    With the repo's ``src`` layout, the package lives at
    ``<root>/src/repro``; fall back to the current directory when the
    package is imported from elsewhere (e.g. an installed wheel).
    """
    package_dir = Path(__file__).resolve().parent
    candidate = package_dir.parent.parent
    if (candidate / "src" / "repro").is_dir():
        return str(candidate)
    return "."


def _run_check(args: argparse.Namespace) -> int:
    from . import devtools
    from .devtools.cachekey import write_schema_fingerprint

    if args.update_schema_fingerprint:
        payload = write_schema_fingerprint()
        print(
            f"wrote schema fingerprint for SCHEMA_VERSION "
            f"{payload['schema_version']}: {payload['fingerprint'][:16]}..."
        )
        return 0
    root = args.root if args.root is not None else _detect_repo_root()
    baseline = None
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"error: baseline file {args.baseline} not found", file=sys.stderr)
            return 2
        baseline = devtools.Baseline.load(baseline_path)
    findings, warnings = devtools.run_check(root, baseline=baseline)
    if args.write_baseline:
        devtools.Baseline.from_findings(findings).write(Path(args.write_baseline))
        print(f"wrote baseline with {len(findings)} finding(s) to {args.write_baseline}")
        return 0
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if args.json:
        print(
            json.dumps(
                {
                    "findings": [f.as_dict() for f in findings],
                    "count": len(findings),
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        summary = (
            "no findings"
            if not findings
            else f"{len(findings)} finding(s) across "
            f"{len({f.path for f in findings})} file(s)"
        )
        print(f"repro-bbr check: {summary}")
    return 1 if findings else 0


def _run_stability(args: argparse.Namespace) -> int:
    try:
        rows = phase.phase_grid(
            versions=args.versions,
            flow_counts=args.flow_counts,
            rtts_ms=args.rtts_ms,
            buffers_bdp=args.buffers,
            capacity_mbps=args.capacity_mbps,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    validation: list[dict] = []
    if args.store:
        try:
            store = _open_existing_store(args.store, args.backend)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            validation = phase.validate_against_store(
                store, substrate=args.substrate
            )
        finally:
            store.close()
    disagreements = [row for row in validation if not row["agrees"]]
    if args.json:
        print(
            json.dumps(
                phase.json_safe(
                    {
                        "phase": rows,
                        "validation": validation,
                        "thresholds": dict(phase.DEFAULT_THRESHOLDS),
                        "disagreements": len(disagreements),
                    }
                ),
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(report.format_table(list(rows[0].keys()), [list(r.values()) for r in rows]))
        if validation:
            limits = ", ".join(
                f"|{metric}| <= {limit}"
                for metric, limit in phase.DEFAULT_THRESHOLDS.items()
            )
            print()
            print(f"validation against store rows (residual thresholds: {limits}):")
            print(
                report.format_table(
                    list(validation[0].keys()),
                    [list(r.values()) for r in validation],
                )
            )
    if args.csv:
        path = report.write_csv(args.csv, rows)
        print(f"wrote {path}")
    if args.validation_csv and validation:
        path = report.write_csv(args.validation_csv, validation)
        print(f"wrote {path}")
    if args.store and not validation:
        print(
            "no validatable simulation rows in the store (needs pure-BBR "
            "droptail dumbbell records)",
            file=sys.stderr,
        )
    if disagreements:
        obs_log.error(
            "stability.disagreements",
            f"{len(disagreements)} store row(s) disagree with the analytic "
            "prediction beyond the documented thresholds",
        )
        return 1
    return 0


def _run_theorems(args: argparse.Namespace) -> int:
    rows = figures.theorem_table(flow_counts=args.flows, propagation_delay_s=args.delay)
    if not rows:
        print("no theorem rows produced; check --flows", file=sys.stderr)
        return 1
    print(report.format_table(list(rows[0].keys()), [list(r.values()) for r in rows]))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    raw = list(argv) if argv is not None else sys.argv[1:]
    args = build_parser().parse_args(raw)
    args._argv = raw  # lets --preset merging see which flags were passed
    if getattr(args, "quiet", False):
        obs_log.set_level("quiet")
    elif getattr(args, "verbose", False):
        obs_log.set_level("debug")
    handlers = {
        "trace": _run_trace,
        "sweep": _run_sweep,
        "figure": _run_figure,
        "campaign": _run_campaign,
        "topology": _run_topology,
        "store": _run_store,
        "status": _run_status,
        "stability": _run_stability,
        "theorems": _run_theorems,
        "check": _run_check,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""Theoretical analysis: reduced models, equilibria, and Lyapunov stability."""

from .equilibrium import (
    Equilibrium,
    bbr1_deep_buffer_equilibrium,
    bbr1_shallow_buffer_equilibrium,
    bbr1_shallow_buffer_loss_fraction,
    bbr2_fair_equilibrium,
    bbr2_queue_reduction_vs_bbr1,
    equilibrium_residual,
)
from .reduced import (
    SingleBottleneck,
    bbr1_reduced_rhs,
    bbr2_reduced_rhs,
    integrate_reduced,
)
from .stability import (
    StabilityResult,
    bbr1_deep_buffer_jacobian,
    bbr1_deep_buffer_max_eigenvalue,
    bbr1_shallow_buffer_eigenvalues,
    bbr1_shallow_buffer_jacobian,
    bbr2_jacobian,
    check_bbr1_deep_buffer_stability,
    check_bbr1_numerical_stability,
    check_bbr1_shallow_buffer_stability,
    check_bbr2_numerical_stability,
    check_bbr2_stability,
    numerical_jacobian,
)

__all__ = [
    "Equilibrium",
    "bbr1_deep_buffer_equilibrium",
    "bbr1_shallow_buffer_equilibrium",
    "bbr1_shallow_buffer_loss_fraction",
    "bbr2_fair_equilibrium",
    "bbr2_queue_reduction_vs_bbr1",
    "equilibrium_residual",
    "SingleBottleneck",
    "bbr1_reduced_rhs",
    "bbr2_reduced_rhs",
    "integrate_reduced",
    "StabilityResult",
    "bbr1_deep_buffer_jacobian",
    "bbr1_deep_buffer_max_eigenvalue",
    "bbr1_shallow_buffer_eigenvalues",
    "bbr1_shallow_buffer_jacobian",
    "bbr2_jacobian",
    "check_bbr1_deep_buffer_stability",
    "check_bbr1_numerical_stability",
    "check_bbr1_shallow_buffer_stability",
    "check_bbr2_numerical_stability",
    "check_bbr2_stability",
    "numerical_jacobian",
]

"""Theoretical analysis: reduced models, equilibria, and Lyapunov stability.

The campaign-facing surface lives in :mod:`.adapter`: builders
(:func:`reference_network`) and adapters (:func:`from_scenario`,
:func:`analyze_scenario`) replace bare :class:`SingleBottleneck`
construction, dispatch to the Theorem 1-5 closed forms where their
hypotheses hold, and fall back to the reduced models numerically
(including mixed BBRv1/BBRv2 populations) everywhere else.
"""

from .adapter import (
    ANALYZABLE_CCAS,
    AnalyticPoint,
    UnsupportedScenarioError,
    analyze_network,
    analyze_scenario,
    buffer_never_binds,
    classify_stability,
    from_scenario,
    mixed_reduced_rhs,
    reference_network,
)
from .equilibrium import (
    Equilibrium,
    bbr1_deep_buffer_equilibrium,
    bbr1_shallow_buffer_equilibrium,
    bbr1_shallow_buffer_loss_fraction,
    bbr2_fair_equilibrium,
    bbr2_queue_reduction_vs_bbr1,
    equilibrium_residual,
)
from .reduced import (
    SingleBottleneck,
    bbr1_reduced_rhs,
    bbr2_reduced_rhs,
    integrate_reduced,
)
from .stability import (
    StabilityResult,
    bbr1_deep_buffer_jacobian,
    bbr1_deep_buffer_max_eigenvalue,
    bbr1_shallow_buffer_eigenvalues,
    bbr1_shallow_buffer_jacobian,
    bbr2_jacobian,
    check_bbr1_deep_buffer_stability,
    check_bbr1_numerical_stability,
    check_bbr1_shallow_buffer_stability,
    check_bbr2_numerical_stability,
    check_bbr2_stability,
    numerical_jacobian,
)

__all__ = [
    "ANALYZABLE_CCAS",
    "AnalyticPoint",
    "UnsupportedScenarioError",
    "analyze_network",
    "analyze_scenario",
    "buffer_never_binds",
    "classify_stability",
    "from_scenario",
    "mixed_reduced_rhs",
    "reference_network",
    "Equilibrium",
    "bbr1_deep_buffer_equilibrium",
    "bbr1_shallow_buffer_equilibrium",
    "bbr1_shallow_buffer_loss_fraction",
    "bbr2_fair_equilibrium",
    "bbr2_queue_reduction_vs_bbr1",
    "equilibrium_residual",
    "SingleBottleneck",
    "bbr1_reduced_rhs",
    "bbr2_reduced_rhs",
    "integrate_reduced",
    "StabilityResult",
    "bbr1_deep_buffer_jacobian",
    "bbr1_deep_buffer_max_eigenvalue",
    "bbr1_shallow_buffer_eigenvalues",
    "bbr1_shallow_buffer_jacobian",
    "bbr2_jacobian",
    "check_bbr1_deep_buffer_stability",
    "check_bbr1_numerical_stability",
    "check_bbr1_shallow_buffer_stability",
    "check_bbr2_numerical_stability",
    "check_bbr2_stability",
    "numerical_jacobian",
]

"""Reduced fluid models used for the theoretical analysis (Sections 5.1.1, 5.2.1).

For stability analysis the paper condenses the full fluid models into small
autonomous ODE systems:

* **BBRv1** (Eq. 33-34): the ProbeRTT state is dropped (``tau_min = d_i``),
  the maximum delivery-rate measurement is replaced by its closed form, and
  the periodic BtlBw adoption becomes a continuous assimilation
  ``d x_btl/dt = x_max - x_btl``.  The congestion-window constraint enters
  through ``Delta_i = 2 d_i / (d_i + sum_l q_l / C_l)``.
* **BBRv2** (Eq. 36-38): probing pulses at ``5/4`` of the estimate, cruising
  background traffic at the estimate, with the inflight-derived constraint
  ``delta_i = d_i / (d_i + sum_l q_l / C_l)`` (note ``delta_i = Delta_i / 2``).

These reduced models are used in two ways: numerically (integration with
scipy to demonstrate convergence to the equilibria of Theorems 1-5) and
analytically (Jacobians in :mod:`repro.analysis.stability`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp


@dataclass(frozen=True)
class SingleBottleneck:
    """A single-bottleneck network for the reduced models.

    Attributes:
        capacity_pps: bottleneck capacity ``C``.
        propagation_delays_s: per-flow propagation RTT ``d_i`` (the analysis
            theorems assume a queue only at the bottleneck, in which case the
            equilibria require equal delays; heterogeneous values are allowed
            for numerical exploration).
        buffer_pkts: bottleneck buffer size (``inf`` = non-limiting).
    """

    capacity_pps: float
    propagation_delays_s: tuple[float, ...]
    buffer_pkts: float = float("inf")

    def __post_init__(self) -> None:
        if self.capacity_pps <= 0:
            raise ValueError("capacity must be positive")
        if not self.propagation_delays_s:
            raise ValueError("at least one flow is required")
        if any(d <= 0 for d in self.propagation_delays_s):
            raise ValueError("propagation delays must be positive")
        if self.buffer_pkts <= 0:
            raise ValueError("buffer must be positive")

    @property
    def num_flows(self) -> int:
        return len(self.propagation_delays_s)


def bbr1_delta(delays: np.ndarray, queue: float, capacity: float) -> np.ndarray:
    """BBRv1 congestion-window factor ``Delta_i = 2 d_i / (d_i + q / C)`` (Eq. 33)."""
    return 2.0 * delays / (delays + queue / capacity)


def bbr2_delta(delays: np.ndarray, queue: float, capacity: float) -> np.ndarray:
    """BBRv2 inflight factor ``delta_i = d_i / (d_i + q / C)`` (Eq. 36)."""
    return delays / (delays + queue / capacity)


def bbr1_xmax(x_btl: np.ndarray, delta: np.ndarray, queue: float, capacity: float) -> np.ndarray:
    """Maximum delivery-rate measurement of BBRv1 (Eq. 33)."""
    probe = np.minimum(1.25, delta) * x_btl
    background = np.minimum(1.0, delta) * x_btl
    if queue > 0:
        total_others = np.sum(background) - background
        return probe * capacity / (probe + total_others)
    return probe


def bbr2_xmax(x_btl: np.ndarray, delta: np.ndarray, queue: float, capacity: float) -> np.ndarray:
    """Maximum delivery-rate measurement of BBRv2 (Eq. 38)."""
    probe = 1.25 * np.minimum(1.0, delta) * x_btl
    background = np.minimum(1.0, delta) * x_btl
    if queue > 0:
        total_others = np.sum(background) - background
        return probe * capacity / (probe + total_others)
    return probe


def bbr1_reduced_rhs(t: float, state: np.ndarray, net: SingleBottleneck) -> np.ndarray:
    """Right-hand side of the reduced BBRv1 dynamics.

    State layout: ``[x_btl_1, ..., x_btl_N, q]``.
    """
    delays = np.asarray(net.propagation_delays_s)
    n = net.num_flows
    x_btl = np.maximum(state[:n], 1e-9)
    queue = float(np.clip(state[n], 0.0, net.buffer_pkts))
    delta = bbr1_delta(delays, queue, net.capacity_pps)
    x_max = bbr1_xmax(x_btl, delta, queue, net.capacity_pps)
    dx = x_max - x_btl  # Eq. (34)
    arrival = float(np.sum(np.minimum(1.0, delta) * x_btl))
    dq = arrival - net.capacity_pps
    if queue <= 0 and dq < 0:
        dq = 0.0
    if queue >= net.buffer_pkts and dq > 0:
        dq = 0.0
    return np.concatenate([dx, [dq]])


def bbr2_reduced_rhs(t: float, state: np.ndarray, net: SingleBottleneck) -> np.ndarray:
    """Right-hand side of the reduced BBRv2 dynamics (same state layout)."""
    delays = np.asarray(net.propagation_delays_s)
    n = net.num_flows
    x_btl = np.maximum(state[:n], 1e-9)
    queue = float(np.clip(state[n], 0.0, net.buffer_pkts))
    delta = bbr2_delta(delays, queue, net.capacity_pps)
    x_max = bbr2_xmax(x_btl, delta, queue, net.capacity_pps)
    dx = x_max - x_btl
    arrival = float(np.sum(np.minimum(1.0, delta) * x_btl))
    dq = arrival - net.capacity_pps
    if queue <= 0 and dq < 0:
        dq = 0.0
    if queue >= net.buffer_pkts and dq > 0:
        dq = 0.0
    return np.concatenate([dx, [dq]])


def integrate_reduced(
    version: str,
    net: SingleBottleneck,
    x_btl0: np.ndarray,
    queue0: float,
    duration_s: float = 60.0,
    max_step: float = 0.05,
) -> tuple[np.ndarray, np.ndarray]:
    """Integrate a reduced model and return ``(time, states)``.

    ``states`` has shape ``(len(time), N + 1)`` with the queue as last column.
    """
    if version not in ("bbr1", "bbr2"):
        raise ValueError("version must be 'bbr1' or 'bbr2'")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    x_btl0 = np.asarray(x_btl0, dtype=float)
    if x_btl0.shape != (net.num_flows,):
        raise ValueError("x_btl0 must have one entry per flow")
    rhs = bbr1_reduced_rhs if version == "bbr1" else bbr2_reduced_rhs
    solution = solve_ivp(
        rhs,
        (0.0, duration_s),
        np.concatenate([x_btl0, [queue0]]),
        args=(net,),
        max_step=max_step,
        dense_output=False,
        rtol=1e-8,
        atol=1e-8,
    )
    return solution.t, solution.y.T

"""Scenario adapters: run the paper's equilibrium/stability theory at campaign scale.

The seed analysis modules (:mod:`.equilibrium`, :mod:`.reduced`,
:mod:`.stability`) speak :class:`SingleBottleneck` — a bare capacity plus
per-flow propagation delays.  This module is the bridge between that
theory surface and the campaign machinery:

* :func:`reference_network` / :func:`from_scenario` build
  :class:`SingleBottleneck` models from paper units and from full
  :class:`~repro.config.ScenarioConfig` objects (including explicit
  multi-link topologies, which are projected onto their reference
  bottleneck with exact per-flow path RTTs — the single-queue
  approximation of the paper's analysis).
* :func:`analyze_network` / :func:`analyze_scenario` dispatch to the
  closed forms of Theorems 1-5 where they apply (pure-BBR population,
  equal delays, buffer regime inside a theorem's hypotheses) and fall
  back to the reduced models numerically everywhere else: integrate to
  (quasi-)steady state, polish with a root solve, and take a
  finite-difference Jacobian at the equilibrium — including mixed
  BBRv1+BBRv2 populations via :func:`mixed_reduced_rhs`.
* :func:`classify_stability` turns a :class:`StabilityResult` into the
  phase-diagram label ``stable`` / ``oscillatory`` / ``unstable``.  A
  trajectory that never settles (no hyperbolic equilibrium — e.g. BBRv1
  with heterogeneous RTTs, where Theorem 1's equilibrium condition
  ``d_i = q/C`` cannot hold for every flow at once) is reported as
  ``oscillatory`` with the tail-mean state as the operating point.
* :func:`buffer_never_binds` is the certificate behind the campaign
  pruner (``--prune-analytic``): for pure-BBRv1 droptail dumbbells the
  window constraint bounds the queue by
  ``2 C sum_i d_i + (2N - 1) C d_max`` for all time, so any buffer with
  :data:`PRUNE_HEADROOM` over that supremum provably never influences
  the dynamics and the point aliases a smaller-buffer twin.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp
from scipy.optimize import root

from .. import units
from ..config import ScenarioConfig
from ..metrics.aggregate import AggregateMetrics
from .equilibrium import (
    bbr1_deep_buffer_equilibrium,
    bbr1_shallow_buffer_equilibrium,
    bbr1_shallow_buffer_loss_fraction,
    bbr2_fair_equilibrium,
)
from .reduced import SingleBottleneck, bbr1_delta, bbr2_delta
from .stability import (
    StabilityResult,
    check_bbr1_deep_buffer_stability,
    check_bbr1_shallow_buffer_stability,
    check_bbr2_stability,
)

#: CCAs covered by the reduced models (and hence the analytic substrate).
ANALYZABLE_CCAS = ("bbr1", "bbr2")

#: Theorem 3's hypothesis is that the window never binds, i.e.
#: ``Delta_i >= 5/4`` even at a full buffer: ``2d/(d + B/C) >= 5/4`` iff
#: ``B <= (3/5) d C``.  Between this bound and Theorem 1's ``B >= d C``
#: neither closed form applies and the adapter falls back numerically.
SHALLOW_BUFFER_BOUND = 3.0 / 5.0

#: Prune certificate headroom: aggregate BBRv1 inflight is bounded by
#: Headroom factor applied on top of the provable queue supremum
#: ``2 C sum_i d_i + (2N - 1) C d_max`` in :func:`buffer_never_binds`;
#: 1.25x keeps the smooth drop-tail gate's ``(q/B)^20`` tail far below
#: metric precision at the certified threshold.
PRUNE_HEADROOM = 1.25

#: Integration chunk (model seconds) of the numerical fallback.  The
#: reduced models' assimilation gain is one, but the rate-split modes can
#: be as slow as ``tau = 4N + 1`` (Theorems 3/5), so the fallback keeps
#: integrating in chunks until the tail settles, up to
#: ``NUMERICAL_MAX_CHUNKS`` chunks.
NUMERICAL_HORIZON_S = 50.0
NUMERICAL_MAX_CHUNKS = 4

#: Tail of the trajectory treated as the (quasi-)steady state.
TAIL_FRACTION = 0.3

#: Maximum capacity-normalised tail excursion still accepted as "settled".
SETTLE_TOLERANCE = 1e-3


class UnsupportedScenarioError(ValueError):
    """The scenario has no reduced-model representation (non-BBR CCAs, churn)."""


def reference_network(
    num_flows: int,
    rtt_s: float = 0.035,
    capacity_mbps: float = 100.0,
    buffer_bdp: float = math.inf,
) -> SingleBottleneck:
    """Equal-RTT single-bottleneck builder in paper units.

    ``buffer_bdp`` is a multiple of the bottleneck BDP (``C * rtt``), as
    everywhere else in the repo; ``inf`` means non-limiting.
    """
    if num_flows < 1:
        raise ValueError("at least one flow is required")
    if rtt_s <= 0:
        raise ValueError("rtt must be positive")
    capacity_pps = units.mbps_to_pps(capacity_mbps)
    buffer_pkts = (
        math.inf if math.isinf(buffer_bdp) else buffer_bdp * capacity_pps * rtt_s
    )
    return SingleBottleneck(
        capacity_pps=capacity_pps,
        propagation_delays_s=(rtt_s,) * num_flows,
        buffer_pkts=buffer_pkts,
    )


def from_scenario(config: ScenarioConfig) -> tuple[SingleBottleneck, tuple[str, ...]]:
    """Project a :class:`ScenarioConfig` onto the analysis model.

    Returns ``(net, ccas)``: the single-bottleneck reduction (reference-link
    capacity and buffer, exact per-flow propagation RTTs — for explicit
    topologies the full path RTT, so multi-hop scenarios become the paper's
    single-queue approximation at their reference bottleneck) plus the
    per-flow CCA names.  Scenarios with a :class:`~repro.config.FlowSchedule`
    are rejected: a churning population has no steady-state reduced model.
    """
    if config.schedule is not None:
        raise UnsupportedScenarioError(
            "time-varying workloads (FlowSchedule) have no steady-state "
            "reduced model; the analytic substrate covers static populations"
        )
    net = SingleBottleneck(
        capacity_pps=config.bottleneck.capacity_pps,
        propagation_delays_s=tuple(
            config.rtt_s(i) for i in range(config.num_flows)
        ),
        buffer_pkts=config.buffer_packets(),
    )
    return net, tuple(flow.cca for flow in config.flows)


def classify_stability(
    result: StabilityResult,
    oscillation_tolerance: float = 1e-6,
    zero_tolerance: float = 1e-6,
) -> str:
    """Phase-diagram label of an indirect-Lyapunov result.

    ``unstable`` if some eigenvalue has a meaningfully positive real part,
    ``oscillatory`` if the equilibrium is attracting but approached through
    a complex pair (damped oscillation), ``stable`` for a pure node.
    Eigenvalues inside the ``zero_tolerance`` band around the imaginary
    axis are treated as *neutral* directions rather than instabilities:
    BBRv1's deep-buffer equilibria form a continuum (Theorem 1 — any rate
    split summing to the capacity), so Jacobians taken on the full state
    space necessarily carry exact zero modes along the family.
    """
    scale = max(1.0, max(abs(ev) for ev in result.eigenvalues))
    if any(ev.real > zero_tolerance * scale for ev in result.eigenvalues):
        return "unstable"
    if any(abs(ev.imag) > oscillation_tolerance * scale for ev in result.eigenvalues):
        return "oscillatory"
    return "stable"


@dataclass(frozen=True)
class AnalyticPoint:
    """Equilibrium prediction + stability classification for one scenario.

    ``rates_pps`` are the per-flow *arrival* rates at the bottleneck
    (``min(1, delta_i) x_btl_i`` — what the queue and the loss actually
    see), so they sum to at most ``C/(1 - loss_fraction)``.
    ``classification`` is ``stable`` / ``oscillatory`` / ``unstable``;
    when the reduced model never settles (no hyperbolic equilibrium) the
    label is ``oscillatory``, ``max_real_part`` is NaN and the rates and
    queue report the tail-mean operating point of the trajectory.
    """

    version: str  # "bbr1" | "bbr2" | "mixed"
    regime: str  # "deep-buffer" | "shallow-buffer" | "fair" | "reduced-model"
    method: str  # "closed-form" | "numerical"
    theorems: str  # e.g. "1+2"; "" for the numerical fallback
    capacity_pps: float
    buffer_pkts: float
    rates_pps: tuple[float, ...]
    queue_pkts: float
    loss_fraction: float
    classification: str
    max_real_part: float
    eigenvalues: tuple[complex, ...] = ()

    @property
    def aggregate_rate_pps(self) -> float:
        return float(sum(self.rates_pps))

    def metrics(self) -> AggregateMetrics:
        """The predicted sweep-store metric row (churn columns stay NaN).

        Jitter is identically zero: these are steady-state predictions.
        """
        rates = np.asarray(self.rates_pps)
        total = float(np.sum(rates))
        jain = 1.0
        if total > 0 and len(rates) > 0:
            jain = float(total**2 / (len(rates) * np.sum(rates**2)))
        delivered = min(total, self.capacity_pps)
        occupancy = 0.0
        if math.isfinite(self.buffer_pkts) and self.buffer_pkts > 0:
            occupancy = min(100.0, 100.0 * self.queue_pkts / self.buffer_pkts)
        return AggregateMetrics(
            jain_fairness=jain,
            loss_percent=100.0 * self.loss_fraction,
            buffer_occupancy_percent=occupancy,
            utilization_percent=min(100.0, 100.0 * delivered / self.capacity_pps),
            jitter_ms=0.0,
        )

    def as_meta(self) -> dict:
        """JSON-safe analysis block stored next to the metric row."""
        return {
            "version": self.version,
            "regime": self.regime,
            "method": self.method,
            "theorems": self.theorems,
            "classification": self.classification,
            "max_real_part": (
                None if math.isnan(self.max_real_part) else self.max_real_part
            ),
            "queue_pkts": self.queue_pkts,
            "loss_fraction": self.loss_fraction,
            "aggregate_rate_pps": self.aggregate_rate_pps,
            "rates_pps": [float(r) for r in self.rates_pps],
            "eigenvalues": [[ev.real, ev.imag] for ev in self.eigenvalues],
        }


def mixed_reduced_rhs(
    t: float, state: np.ndarray, net: SingleBottleneck, versions: tuple[str, ...]
) -> np.ndarray:
    """Reduced dynamics of a mixed BBRv1/BBRv2 population (one queue).

    Per-flow window factors follow each flow's own version (Eq. 33 vs.
    Eq. 36-38) while all flows share the bottleneck's proportional
    delivery; for a homogeneous population this reduces exactly to
    :func:`~repro.analysis.reduced.bbr1_reduced_rhs` /
    :func:`~repro.analysis.reduced.bbr2_reduced_rhs`.
    State layout: ``[x_btl_1, ..., x_btl_N, q]``.
    """
    delays = np.asarray(net.propagation_delays_s)
    n = net.num_flows
    x_btl = np.maximum(state[:n], 1e-9)
    queue = float(np.clip(state[n], 0.0, net.buffer_pkts))
    capacity = net.capacity_pps
    is_v1 = np.array([v == "bbr1" for v in versions])
    delta = np.where(
        is_v1,
        bbr1_delta(delays, queue, capacity),
        bbr2_delta(delays, queue, capacity),
    )
    background = np.minimum(1.0, delta) * x_btl
    probe = np.where(
        is_v1, np.minimum(1.25, delta) * x_btl, 1.25 * background
    )
    if queue > 0:
        total_others = np.sum(background) - background
        x_max = probe * capacity / (probe + total_others)
    else:
        x_max = probe
    dx = x_max - x_btl
    dq = float(np.sum(background)) - capacity
    if queue <= 0 and dq < 0:
        dq = 0.0
    if queue >= net.buffer_pkts and dq > 0:
        dq = 0.0
    return np.concatenate([dx, [dq]])


def _arrival_rates(
    versions: tuple[str, ...], net: SingleBottleneck, x_btl: np.ndarray, queue: float
) -> np.ndarray:
    """Per-flow bottleneck arrival rates ``min(1, delta_i) x_btl_i``."""
    delays = np.asarray(net.propagation_delays_s)
    is_v1 = np.array([v == "bbr1" for v in versions])
    delta = np.where(
        is_v1,
        bbr1_delta(delays, queue, net.capacity_pps),
        bbr2_delta(delays, queue, net.capacity_pps),
    )
    return np.minimum(1.0, delta) * np.asarray(x_btl)


def _loss_fraction(arrival_pps: float, capacity_pps: float) -> float:
    # The relative tolerance absorbs float rounding in rate splits that sum
    # to the capacity exactly (e.g. ten rates of C/10).
    if arrival_pps <= capacity_pps * (1.0 + 1e-12):
        return 0.0
    return 1.0 - capacity_pps / arrival_pps


def _point(
    *,
    version: str,
    regime: str,
    method: str,
    theorems: str,
    net: SingleBottleneck,
    arrival: np.ndarray,
    queue: float,
    stability: StabilityResult | None,
) -> AnalyticPoint:
    total = float(np.sum(arrival))
    if stability is None:
        classification, max_real, eigenvalues = "oscillatory", math.nan, ()
    else:
        classification = classify_stability(stability)
        max_real = stability.max_real_part
        eigenvalues = stability.eigenvalues
    return AnalyticPoint(
        version=version,
        regime=regime,
        method=method,
        theorems=theorems,
        capacity_pps=net.capacity_pps,
        buffer_pkts=net.buffer_pkts,
        rates_pps=tuple(float(r) for r in arrival),
        queue_pkts=float(queue),
        loss_fraction=_loss_fraction(total, net.capacity_pps),
        classification=classification,
        max_real_part=max_real,
        eigenvalues=eigenvalues,
    )


def analyze_network(ccas: tuple[str, ...], net: SingleBottleneck) -> AnalyticPoint:
    """Equilibrium + stability of a BBR population on a single bottleneck.

    Dispatches to the closed forms of Theorems 1-5 whenever their
    hypotheses hold (homogeneous version, equal delays, buffer inside the
    theorem's regime) and to the numerical reduced-model fallback
    otherwise.  ``ccas`` must name one analyzable CCA per flow.
    """
    ccas = tuple(ccas)
    if len(ccas) != net.num_flows:
        raise ValueError(
            f"{len(ccas)} CCAs for {net.num_flows} flows; one per flow is required"
        )
    unsupported = sorted(set(ccas) - set(ANALYZABLE_CCAS))
    if unsupported:
        raise UnsupportedScenarioError(
            f"no reduced model for CCAs {unsupported}; the analytic substrate "
            f"covers populations of {ANALYZABLE_CCAS}"
        )
    delays = np.asarray(net.propagation_delays_s)
    equal_delays = bool(np.allclose(delays, delays[0]))
    versions = set(ccas)
    n = net.num_flows
    capacity = net.capacity_pps
    if equal_delays and versions == {"bbr1"}:
        d = float(delays[0])
        q_deep = d * capacity
        if net.buffer_pkts >= q_deep:
            equilibrium = bbr1_deep_buffer_equilibrium(net)
            # Delta_i = 1 at the Theorem 1 equilibrium: arrival == clamped rate.
            return _point(
                version="bbr1",
                regime="deep-buffer",
                method="closed-form",
                theorems="1+2",
                net=net,
                arrival=np.asarray(equilibrium.rates_pps),
                queue=equilibrium.queue_pkts,
                stability=check_bbr1_deep_buffer_stability(d),
            )
        if net.buffer_pkts <= SHALLOW_BUFFER_BOUND * q_deep:
            equilibrium = bbr1_shallow_buffer_equilibrium(net)
            # Delta_i >= 5/4 everywhere in this regime: arrival == x_btl,
            # and the excess over capacity is lost (Theorem 3).
            point = _point(
                version="bbr1",
                regime="shallow-buffer",
                method="closed-form",
                theorems="3",
                net=net,
                arrival=np.asarray(equilibrium.rates_pps),
                queue=float(net.buffer_pkts),
                stability=check_bbr1_shallow_buffer_stability(n),
            )
            # The closed-form loss is exactly (N-1)/(5N); assert-by-use.
            assert abs(
                point.loss_fraction - bbr1_shallow_buffer_loss_fraction(n)
            ) < 1e-12
            return point
        # Between (3/5) d C and d C neither Theorem 1 nor Theorem 3 applies.
    if equal_delays and versions == {"bbr2"}:
        d = float(delays[0])
        q_star = (n - 1.0) / (4.0 * n + 1.0) * d * capacity
        if net.buffer_pkts >= q_star:
            equilibrium = bbr2_fair_equilibrium(net)
            # Clamped arrival rate is delta* x_btl_i = C/N per flow.
            return _point(
                version="bbr2",
                regime="fair",
                method="closed-form",
                theorems="4+5",
                net=net,
                arrival=np.full(n, capacity / n),
                queue=equilibrium.queue_pkts,
                stability=check_bbr2_stability(n, d),
            )
    return _analyze_numerical(ccas, net)


def analyze_scenario(config: ScenarioConfig) -> AnalyticPoint:
    """:func:`from_scenario` + :func:`analyze_network` in one step."""
    net, ccas = from_scenario(config)
    return analyze_network(ccas, net)


def _subspace_jacobian(
    rhs: Callable[[np.ndarray], np.ndarray], state: np.ndarray, epsilon: float
) -> np.ndarray:
    size = state.size
    jacobian = np.zeros((size, size))
    for j in range(size):
        plus, minus = state.copy(), state.copy()
        plus[j] += epsilon
        minus[j] -= epsilon
        jacobian[:, j] = (rhs(plus) - rhs(minus)) / (2.0 * epsilon)
    return jacobian


def _analyze_numerical(ccas: tuple[str, ...], net: SingleBottleneck) -> AnalyticPoint:
    """Numerical fallback: integrate, polish with a root solve, classify.

    Covers mixed BBRv1/BBRv2 populations, heterogeneous RTTs, and buffer
    regimes between the theorems' hypotheses.  When the trajectory never
    settles (e.g. heterogeneous-RTT BBRv1, whose Theorem 1 equilibrium
    condition cannot hold for all flows at once), the point is classified
    ``oscillatory`` and reports the tail-mean operating state.
    """
    version = "mixed" if len(set(ccas)) > 1 else next(iter(set(ccas)))
    n = net.num_flows
    capacity = net.capacity_pps
    state0 = np.concatenate([np.full(n, capacity / n), [0.0]])
    tail_mean = state0
    tail_dev = math.inf
    for _ in range(NUMERICAL_MAX_CHUNKS):
        solution = solve_ivp(
            mixed_reduced_rhs,
            (0.0, NUMERICAL_HORIZON_S),
            state0,
            args=(net, ccas),
            max_step=0.05,
            rtol=1e-6,
            atol=1e-6 * capacity,
        )
        times, states = solution.t, solution.y.T
        tail = states[times >= (1.0 - TAIL_FRACTION) * times[-1]]
        tail_mean = tail.mean(axis=0)
        tail_mean[n] = float(np.clip(tail_mean[n], 0.0, net.buffer_pkts))
        tail_dev = float(np.max(tail.max(axis=0) - tail.min(axis=0)) / capacity)
        if tail_dev < SETTLE_TOLERANCE:
            break
        state0 = states[-1]

    def full_rhs(state: np.ndarray) -> np.ndarray:
        return mixed_reduced_rhs(0.0, state, net, ccas)

    stability: StabilityResult | None = None
    state_eq = tail_mean
    if tail_dev < SETTLE_TOLERANCE:
        queue_eq = float(tail_mean[n])
        epsilon = 1e-6 * max(1.0, float(np.max(np.abs(tail_mean))))
        pinned_full = (
            math.isfinite(net.buffer_pkts)
            and queue_eq >= net.buffer_pkts * (1.0 - 1e-6)
        )
        pinned_empty = queue_eq <= epsilon
        if pinned_full or pinned_empty:
            # Boundary equilibrium: the queue is pinned (full or empty), so
            # — exactly as in the Theorem 3 proof — stability is decided on
            # the rate subsystem with the queue held at the boundary.
            q_pin = net.buffer_pkts if pinned_full else 0.0

            def rate_rhs(x_btl: np.ndarray) -> np.ndarray:
                return full_rhs(np.concatenate([x_btl, [q_pin]]))[:n]

            solved = root(rate_rhs, tail_mean[:n])
            if solved.success and (
                float(np.max(np.abs(rate_rhs(solved.x)))) < 1e-6 * capacity
            ):
                state_eq = np.concatenate([solved.x, [q_pin]])
                stability = StabilityResult.from_jacobian(
                    _subspace_jacobian(rate_rhs, solved.x, epsilon)
                )
        else:
            solved = root(full_rhs, tail_mean)
            if solved.success and (
                float(np.max(np.abs(full_rhs(solved.x)))) < 1e-6 * capacity
            ):
                state_eq = np.asarray(solved.x)
                stability = StabilityResult.from_jacobian(
                    _subspace_jacobian(full_rhs, state_eq, epsilon)
                )
    queue = float(np.clip(state_eq[n], 0.0, net.buffer_pkts))
    arrival = _arrival_rates(ccas, net, np.maximum(state_eq[:n], 0.0), queue)
    return _point(
        version=version,
        regime="reduced-model",
        method="numerical",
        theorems="",
        net=net,
        arrival=arrival,
        queue=queue,
        stability=stability,
    )


def buffer_never_binds(config: ScenarioConfig) -> bool:
    """Certificate that the buffer size cannot influence the dynamics.

    True only for schedule-free, pure-BBRv1, droptail dumbbells whose
    buffer clears the provable queue supremum.  Each BBRv1 flow's
    congestion window is ``2 * BtlBw_i * RTprop_i`` with ``BtlBw_i <= C``
    (the max filter tracks the delivery rate, which a single bottleneck
    caps at ``C``) and ``RTprop_i <= d_i`` (the min filter is seeded at
    the propagation RTT), so the aggregate sending rate is at most
    ``sum_i cwnd_i / tau_i``.  Whenever the queue has exceeded
    ``2 C sum_i d_i`` over a full ``d_max`` window, every delayed arrival
    term is below its fair share and the queue drains; within one such
    window the queue can climb by at most ``(2N - 1) C d_max``.  Hence

        ``q(t) <= 2 C sum_i d_i + (2N - 1) C d_max``

    for all time, and any buffer at least :data:`PRUNE_HEADROOM` times
    that bound is provably never reached: the trajectory is identical for
    every larger buffer (up to the smooth drop-tail gate's ``(q/B)^20``
    tail, < 1e-10 at the certified threshold) and only the occupancy
    normalisation changes.  Everything outside the certificate (RED, any
    other CCA, churn, multi-link topologies, ``literal_xmax`` numerics —
    whose BtlBw filter tracks the *sending* rate and is not bounded by
    ``C``) conservatively returns False.
    """
    if config.schedule is not None:
        return False
    if any(flow.cca != "bbr1" for flow in config.flows):
        return False
    if config.fluid.literal_xmax:
        return False
    if config.topology is not None and len(config.topology.links) > 1:
        return False
    topology = config.effective_topology()
    if any(link.discipline != "droptail" for link in topology.links):
        return False
    buffer_pkts = config.buffer_packets()
    if math.isinf(buffer_pkts):
        return True
    rtts = [config.rtt_s(i) for i in range(config.num_flows)]
    capacity = config.bottleneck.capacity_pps
    queue_sup = capacity * (2.0 * sum(rtts) + (2 * len(rtts) - 1) * max(rtts))
    return buffer_pkts >= PRUNE_HEADROOM * queue_sup

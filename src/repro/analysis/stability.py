"""Stability analysis via the indirect Lyapunov method (Theorems 2, 3, 5).

A hyperbolic equilibrium of a nonlinear dynamic system is locally
asymptotically stable iff every eigenvalue of the Jacobian of the dynamics,
evaluated at the equilibrium, has a negative real part.  This module
provides both the paper's closed-form Jacobians (Appendix D) and numerical
Jacobians of the reduced models, so the analytical results can be
cross-checked against finite differences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .equilibrium import bbr1_deep_buffer_equilibrium, bbr2_fair_equilibrium
from .reduced import SingleBottleneck, bbr1_reduced_rhs, bbr2_reduced_rhs


@dataclass(frozen=True)
class StabilityResult:
    """Outcome of an indirect-Lyapunov stability check."""

    eigenvalues: tuple[complex, ...]
    asymptotically_stable: bool
    max_real_part: float

    @classmethod
    def from_jacobian(cls, jacobian: np.ndarray, tolerance: float = 1e-9) -> StabilityResult:
        eigenvalues = np.linalg.eigvals(jacobian)
        max_real = float(np.max(eigenvalues.real))
        return cls(
            eigenvalues=tuple(complex(v) for v in eigenvalues),
            asymptotically_stable=bool(max_real < -tolerance),
            max_real_part=max_real,
        )


# --------------------------------------------------------------------------- #
# Closed-form Jacobians from the paper's proofs
# --------------------------------------------------------------------------- #


def bbr1_deep_buffer_jacobian(propagation_delay_s: float) -> np.ndarray:
    """Jacobian of the aggregate BBRv1 dynamics at the Theorem 1 equilibrium.

    The proof of Theorem 2 (Appendix D.2) reduces the deep-buffer dynamics to
    the two aggregate state variables ``(y, q)`` (arrival rate and queue) and
    obtains, at the equilibrium ``y = C``, ``q = d C``::

        J = [[-1/(2d) - 1,  -1/(2d)],
             [      1     ,     0  ]]
    """
    d = propagation_delay_s
    if d <= 0:
        raise ValueError("propagation delay must be positive")
    return np.array([[-1.0 / (2.0 * d) - 1.0, -1.0 / (2.0 * d)], [1.0, 0.0]])


def bbr1_deep_buffer_max_eigenvalue(propagation_delay_s: float) -> float:
    """Closed-form maximum eigenvalue from the proof of Theorem 2 (Eq. 49)."""
    d = propagation_delay_s
    if d <= 0:
        raise ValueError("propagation delay must be positive")
    if d <= 0.5:
        return -1.0
    return -1.0 / (2.0 * d)


def bbr1_shallow_buffer_jacobian(num_flows: int) -> np.ndarray:
    """Jacobian of the shallow-buffer BBRv1 dynamics at the Theorem 3 equilibrium.

    Diagonal entries ``-5/(4N+1)`` and off-diagonal entries ``-4/(4N+1)``
    (Appendix D.3).
    """
    if num_flows < 1:
        raise ValueError("at least one flow is required")
    n = num_flows
    diag = -5.0 / (4.0 * n + 1.0)
    off = -4.0 / (4.0 * n + 1.0)
    jacobian = np.full((n, n), off)
    np.fill_diagonal(jacobian, diag)
    return jacobian


def bbr1_shallow_buffer_eigenvalues(num_flows: int) -> tuple[float, float]:
    """The two distinct eigenvalues of the Theorem 3 Jacobian.

    ``J_ii - J_ij = -1/(4N+1)`` (multiplicity N-1) and
    ``J_ii + (N-1) J_ij = -(4N+1)/(4N+1) = -1`` — wait, substituting gives
    ``-(5 + 4(N-1))/(4N+1) = -1`` exactly.  Both are negative for every N.
    """
    n = num_flows
    if n < 1:
        raise ValueError("at least one flow is required")
    repeated = -5.0 / (4.0 * n + 1.0) + 4.0 / (4.0 * n + 1.0)
    aggregate = -5.0 / (4.0 * n + 1.0) - (n - 1.0) * 4.0 / (4.0 * n + 1.0)
    return repeated, aggregate


def bbr2_jacobian(num_flows: int, propagation_delay_s: float) -> np.ndarray:
    """Jacobian of the reduced BBRv2 dynamics at the Theorem 4 equilibrium.

    Entries follow Appendix D.5 (Eq. 65-67): states are the N clamped sending
    rates followed by the bottleneck queue.
    """
    if num_flows < 1:
        raise ValueError("at least one flow is required")
    d = propagation_delay_s
    if d <= 0:
        raise ValueError("propagation delay must be positive")
    n = num_flows
    j_ii = -(4.0 * n + 1.0) / (5.0 * n**2 * d) - 5.0 / (4.0 * n + 1.0)
    j_ij = -(4.0 * n + 1.0) / (5.0 * n**2 * d) - 4.0 / (4.0 * n + 1.0)
    j_iq = -(4.0 * n + 1.0) / (5.0 * n**2 * d)
    jacobian = np.zeros((n + 1, n + 1))
    jacobian[:n, :n] = j_ij
    np.fill_diagonal(jacobian[:n, :n], j_ii)
    jacobian[:n, n] = j_iq
    jacobian[n, :n] = 1.0
    jacobian[n, n] = 0.0
    return jacobian


# --------------------------------------------------------------------------- #
# Numerical Jacobians of the reduced models
# --------------------------------------------------------------------------- #


def numerical_jacobian(
    version: str,
    net: SingleBottleneck,
    state: np.ndarray,
    epsilon: float | None = None,
) -> np.ndarray:
    """Central-difference Jacobian of a reduced model at a given state."""
    rhs = bbr1_reduced_rhs if version == "bbr1" else bbr2_reduced_rhs
    state = np.asarray(state, dtype=float)
    n = state.size
    if epsilon is None:
        epsilon = 1e-6 * max(1.0, float(np.max(np.abs(state))))
    jacobian = np.zeros((n, n))
    for j in range(n):
        plus = state.copy()
        minus = state.copy()
        plus[j] += epsilon
        minus[j] -= epsilon
        jacobian[:, j] = (rhs(0.0, plus, net) - rhs(0.0, minus, net)) / (2.0 * epsilon)
    return jacobian


def check_bbr1_deep_buffer_stability(propagation_delay_s: float) -> StabilityResult:
    """Theorem 2: the BBRv1 deep-buffer equilibrium is asymptotically stable."""
    return StabilityResult.from_jacobian(bbr1_deep_buffer_jacobian(propagation_delay_s))


def check_bbr1_shallow_buffer_stability(num_flows: int) -> StabilityResult:
    """Theorem 3 (stability part): the shallow-buffer equilibrium is stable."""
    return StabilityResult.from_jacobian(bbr1_shallow_buffer_jacobian(num_flows))


def check_bbr2_stability(num_flows: int, propagation_delay_s: float) -> StabilityResult:
    """Theorem 5: the fair BBRv2 equilibrium is asymptotically stable."""
    return StabilityResult.from_jacobian(bbr2_jacobian(num_flows, propagation_delay_s))


def bbr1_aggregate_rhs(state: np.ndarray, propagation_delay_s: float, capacity_pps: float) -> np.ndarray:
    """Aggregate deep-buffer BBRv1 dynamics of the Theorem 2 proof (Eq. 45-46).

    State is ``(y, q)``: the aggregate arrival rate at the bottleneck and the
    bottleneck queue.  Time is measured in units where the assimilation gain
    of Eq. (34) is one, exactly as in the proof.
    """
    y, q = float(state[0]), float(state[1])
    d = propagation_delay_s
    c = capacity_pps
    if d <= 0 or c <= 0:
        raise ValueError("delay and capacity must be positive")
    tau = d + q / c
    delta = 2.0 * d / tau
    dy = -(y**2) / (c * tau) + (1.0 / tau - 1.0) * y + delta * c
    dq = y - c
    return np.array([dy, dq])


def check_bbr1_numerical_stability(net: SingleBottleneck) -> StabilityResult:
    """Numerical cross-check of Theorem 2 on the aggregate (y, q) dynamics.

    The deep-buffer equilibria of Theorem 1 form a continuum (any rate split
    summing to the capacity), so the per-flow Jacobian necessarily has zero
    eigenvalues along the family.  Theorem 2 therefore argues stability of
    the *aggregate* arrival-rate/queue dynamics; this helper evaluates their
    finite-difference Jacobian at ``(C, d C)`` and checks its eigenvalues.
    """
    delays = np.asarray(net.propagation_delays_s)
    if not np.allclose(delays, delays[0]):
        raise ValueError("the aggregate check requires equal propagation delays")
    d = float(delays[0])
    c = net.capacity_pps
    # The normalised proof dynamics are independent of the absolute capacity,
    # so evaluate them in units of the capacity for good conditioning.
    equilibrium = np.array([1.0, d])
    epsilon = 1e-7

    def rhs(state: np.ndarray) -> np.ndarray:
        return bbr1_aggregate_rhs(np.array([state[0] * c, state[1] * c]), d, c) / c

    jacobian = np.zeros((2, 2))
    for j in range(2):
        plus = equilibrium.copy()
        minus = equilibrium.copy()
        plus[j] += epsilon
        minus[j] -= epsilon
        jacobian[:, j] = (rhs(plus) - rhs(minus)) / (2.0 * epsilon)
    return StabilityResult.from_jacobian(jacobian)


def check_bbr2_numerical_stability(net: SingleBottleneck) -> StabilityResult:
    """Numerical cross-check of Theorem 5 on the reduced BBRv2 model."""
    equilibrium = bbr2_fair_equilibrium(net)
    state = np.concatenate([np.asarray(equilibrium.rates_pps), [equilibrium.queue_pkts]])
    return StabilityResult.from_jacobian(numerical_jacobian("bbr2", net, state))

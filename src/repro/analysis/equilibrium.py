"""Closed-form equilibria of the reduced BBR models (Theorems 1, 3, 4).

* **Theorem 1** (BBRv1, deep buffer): the senders are in equilibrium iff the
  queuing delay equals the propagation delay for every sender,
  ``d_i = sum_l q_l / C_l``.  With a queue only at the bottleneck this means
  ``q* = d * C`` and the rate split across senders is *arbitrary* (as long
  as it sums to ``C``) — BBRv1's deep-buffer equilibria can be arbitrarily
  unfair.
* **Theorem 3** (BBRv1, shallow buffer, ``Delta_i >= 5/4``): the unique
  equilibrium is perfectly fair with ``x_btl_i = 5 C / (4 N + 1)``, so the
  aggregate rate exceeds the capacity by ``(N - 1) / (4 N + 1)`` and the
  excess is lost (up to 20 % for large N).
* **Theorem 4** (BBRv2): a perfectly fair equilibrium exists where
  ``(N - 1) / (4 N + 1) * d_i = sum_l q_l / C_l``; at the bottleneck this is
  ``q* = (N - 1) / (4 N + 1) * d * C`` — at least 75 % less queuing than
  BBRv1's deep-buffer equilibrium.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .reduced import SingleBottleneck, bbr1_delta, bbr1_xmax, bbr2_delta, bbr2_xmax


@dataclass(frozen=True)
class Equilibrium:
    """An equilibrium point of a reduced model."""

    version: str
    rates_pps: tuple[float, ...]
    queue_pkts: float
    fair: bool
    description: str

    @property
    def aggregate_rate_pps(self) -> float:
        return float(sum(self.rates_pps))

    def loss_fraction(self, capacity_pps: float) -> float:
        """Steady-state loss fraction implied by the equilibrium rates."""
        if self.aggregate_rate_pps <= capacity_pps:
            return 0.0
        return 1.0 - capacity_pps / self.aggregate_rate_pps


def bbr1_deep_buffer_equilibrium(
    net: SingleBottleneck, shares: tuple[float, ...] | None = None
) -> Equilibrium:
    """Theorem 1: a BBRv1 equilibrium with a non-limiting bottleneck buffer.

    ``shares`` chooses one member of the equilibrium family (it only has to
    sum to one); the default is the fair split.  The queue settles where the
    queuing delay equals the (common) propagation delay.
    """
    delays = np.asarray(net.propagation_delays_s)
    if not np.allclose(delays, delays[0]):
        raise ValueError(
            "Theorem 1 equilibria with a queue only at the bottleneck require "
            "equal propagation delays"
        )
    n = net.num_flows
    if shares is None:
        shares = tuple(1.0 / n for _ in range(n))
    if len(shares) != n:
        raise ValueError("one share per flow is required")
    if abs(sum(shares) - 1.0) > 1e-9 or any(s < 0 for s in shares):
        raise ValueError("shares must be non-negative and sum to one")
    queue = float(delays[0] * net.capacity_pps)
    if queue > net.buffer_pkts:
        raise ValueError(
            "buffer too small for the Theorem 1 equilibrium; use the shallow-"
            "buffer equilibrium of Theorem 3 instead"
        )
    # At the equilibrium Delta_i = 1, so the window-clamped rates equal the
    # BtlBw estimates themselves and they must sum to the capacity.
    rates = tuple(s * net.capacity_pps for s in shares)
    return Equilibrium(
        version="bbr1",
        rates_pps=rates,
        queue_pkts=queue,
        fair=bool(np.allclose(shares, shares[0])),
        description="Theorem 1: q* = d C, Delta_i = 1, arbitrary rate split",
    )


def bbr1_shallow_buffer_equilibrium(net: SingleBottleneck) -> Equilibrium:
    """Theorem 3: the unique (fair) BBRv1 equilibrium when the window never binds."""
    n = net.num_flows
    rate = 5.0 * net.capacity_pps / (4.0 * n + 1.0)
    return Equilibrium(
        version="bbr1",
        rates_pps=tuple(rate for _ in range(n)),
        queue_pkts=float(net.buffer_pkts) if np.isfinite(net.buffer_pkts) else 0.0,
        fair=True,
        description="Theorem 3: x_btl_i = 5C/(4N+1), buffer full, loss = (N-1)/(4N+1)",
    )


def bbr1_shallow_buffer_loss_fraction(num_flows: int) -> float:
    """Steady-state loss fraction of Theorem 3.

    The aggregate equilibrium rate is ``5 N C / (4 N + 1)``, so the fraction
    of traffic lost is ``(N - 1) / (5 N)`` — approaching 20 % for large N,
    exactly the "20 % for N -> inf" the paper reports.
    """
    if num_flows < 1:
        raise ValueError("at least one flow is required")
    return (num_flows - 1.0) / (5.0 * num_flows)


def bbr2_fair_equilibrium(net: SingleBottleneck) -> Equilibrium:
    """Theorem 4: the perfectly fair BBRv2 equilibrium.

    At the bottleneck-only-queue scenario the equilibrium queue is
    ``q* = (N - 1) / (4 N + 1) * d * C`` and every flow's (window-clamped)
    rate is ``C / N``.
    """
    delays = np.asarray(net.propagation_delays_s)
    if not np.allclose(delays, delays[0]):
        raise ValueError(
            "the Theorem 4 equilibrium with a queue only at the bottleneck "
            "requires equal propagation delays"
        )
    n = net.num_flows
    queue = (n - 1.0) / (4.0 * n + 1.0) * float(delays[0]) * net.capacity_pps
    if queue > net.buffer_pkts:
        raise ValueError("buffer too small for the Theorem 4 equilibrium")
    # delta* = (4N+1)/(5N); x_btl_i = C/N / delta* ; clamped rate = C/N.
    delta_star = (4.0 * n + 1.0) / (5.0 * n)
    rates = tuple(net.capacity_pps / n / delta_star for _ in range(n))
    return Equilibrium(
        version="bbr2",
        rates_pps=rates,
        queue_pkts=queue,
        fair=True,
        description="Theorem 4: q* = (N-1)/(4N+1) d C, x_btl_i = C/(N delta*)",
    )


def bbr2_queue_reduction_vs_bbr1(num_flows: int) -> float:
    """Relative queue reduction of BBRv2 vs. BBRv1 at equilibrium (Sec. 5.2.2).

    ``1 - (N-1)/(4N+1)`` — at least 75 % for ``N -> inf``.
    """
    if num_flows < 1:
        raise ValueError("at least one flow is required")
    return 1.0 - (num_flows - 1.0) / (4.0 * num_flows + 1.0)


def equilibrium_residual(version: str, net: SingleBottleneck, rates: np.ndarray, queue: float) -> float:
    """Norm of the equilibrium conditions (Definition 1) at a candidate point.

    Returns the maximum absolute violation of (a) the aggregate-rate
    condition ``sum min(1, Delta_i) x_btl_i = C`` and (b) the fixed-point
    condition ``x_btl_i = x_max_i``.  Zero (up to numerics) means the point
    is an equilibrium.
    """
    delays = np.asarray(net.propagation_delays_s)
    rates = np.asarray(rates, dtype=float)
    if version == "bbr1":
        delta = bbr1_delta(delays, queue, net.capacity_pps)
        x_max = bbr1_xmax(rates, delta, queue, net.capacity_pps)
    elif version == "bbr2":
        delta = bbr2_delta(delays, queue, net.capacity_pps)
        x_max = bbr2_xmax(rates, delta, queue, net.capacity_pps)
    else:
        raise ValueError("version must be 'bbr1' or 'bbr2'")
    aggregate = float(np.sum(np.minimum(1.0, delta) * rates))
    residual_rate = abs(aggregate - net.capacity_pps) / net.capacity_pps
    residual_fp = float(np.max(np.abs(x_max - rates)) / net.capacity_pps)
    return max(residual_rate, residual_fp)

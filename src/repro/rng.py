"""Seed-derived RNG streams shared by the config and emulation layers.

:func:`derive_rng` is the single blessed way to construct a random
generator anywhere in the package (enforced by the ``DET003`` static
check): hashing a ``(scenario seed, stream label)`` pair gives every
consumer — per-flow emulator randomness, per-link queue randomness, the
:class:`~repro.config.FlowSchedule` materialisation — an independent,
deterministic stream, which is the prerequisite for uncorrelated
multi-seed replication in the campaign layer.

The function historically lived in :mod:`repro.emulation.runner`; it moved
here so that :mod:`repro.config` (which materialises flow schedules) can
use it without importing the emulator.  The runner re-exports it, so
``from repro.emulation.runner import derive_rng`` keeps working.
"""

from __future__ import annotations

import hashlib
import random


def derive_rng(seed: int, stream: str) -> random.Random:
    """Derive an independent, collision-free RNG stream from a scenario seed.

    The old affine derivation ``seed + 17 * (i + 1)`` aliased across
    scenarios (seed 1 / flow 1 and seed 18 / flow 0 shared a stream), which
    would silently correlate multi-seed replicas.  Hashing the (seed,
    stream-label) pair instead gives every (scenario seed, stream) its own
    generator, deterministically across platforms and processes.
    """
    digest = hashlib.sha256(f"repro:{seed}:{stream}".encode()).digest()
    return random.Random(int.from_bytes(digest[:16], "big"))

"""Domain-invariant static analysis for the reproduction codebase.

Generic linters know nothing about the invariants this repo's fidelity
rests on: deterministic simulation kernels, named RNG streams derived via
:func:`repro.emulation.runner.derive_rng`, and scenario cache keys that
must cover *every* semantics-bearing knob.  The same invariant violations
were fixed by hand twice (PR 3's ``_cache_key`` seed aliasing, PR 5's
per-hop-discipline keying + ``SCHEMA_VERSION`` bump); this package encodes
them as machine-checked rules, surfaced as ``repro-bbr check`` and enforced
in CI.

Four checkers ship today (see each module for the rule ids):

* :mod:`.determinism` — no wall-clock or ambient-entropy calls inside the
  simulation kernels (``DET0xx``),
* :mod:`.rng` — ``derive_rng`` stream-label hygiene: literal, prefix-unique
  labels, no arithmetic on the seed (``RNG0xx``),
* :mod:`.cachekey` — cache-key completeness by *mutation probing*: every
  config field and sweep-axis parameter must change the stored key, and
  the hashed-field set may not drift without a ``SCHEMA_VERSION`` bump
  (``CACHE0xx``),
* :mod:`.unitcheck` — the ``_s``/``_mbps``/``_packets``/``_bdp`` suffix
  conventions of :mod:`repro.units` at config-layer signatures
  (``UNIT0xx``).

Deliberate exceptions live in the committed ``allowlist.txt`` next to this
file (one justified entry per suppression); one-off environments can layer
a findings *baseline* on top (``--baseline``/``--write-baseline``).

The shared framework (:mod:`.base`, :mod:`.findings`) is the seed for later
passes — a numba-compilability readiness checker for the ROADMAP's
compiled-kernel item is the named next lever.
"""

from __future__ import annotations

from .base import CheckContext, Checker, SourceFile
from .findings import Allowlist, Baseline, Finding
from .run import default_checkers, run_check

__all__ = [
    "Allowlist",
    "Baseline",
    "CheckContext",
    "Checker",
    "default_checkers",
    "Finding",
    "SourceFile",
    "run_check",
]

"""Telemetry-label hygiene: literal, dot-namespaced span/counter names.

The telemetry registry (:mod:`repro.obs`) aggregates counters and spans by
label and the summary/trace tooling groups on the literal label text, so
the label set must be statically auditable — the same guarantee
:mod:`repro.devtools.rng` enforces for RNG stream labels, and checked with
the same literal-prefix machinery:

* ``OBS001`` — a ``TELEMETRY.span/count/gauge/gauge_max`` label that is
  not a string literal (or f-string), or whose literal prefix lacks a
  dotted namespace (``"emu.events_popped"``, ``"store.append"``, ...).
  Dynamic labels would make the span vocabulary unauditable and could
  explode the registry cardinality; a missing namespace makes unrelated
  subsystems collide in summaries.
"""

from __future__ import annotations

import ast

from .base import Checker, SourceFile
from .findings import Finding
from .rng import _label_prefix

#: Receiver names treated as the process-local telemetry registry.
TELEMETRY_RECEIVERS = {"TELEMETRY", "telemetry", "obs", "_obs"}

#: Registry methods whose first argument is an aggregation label.
LABELLED_METHODS = {"span", "count", "gauge", "gauge_max"}


def _label_arg(node: ast.Call) -> ast.expr | None:
    if node.args:
        return node.args[0]
    for kw in node.keywords:
        if kw.arg == "label":
            return kw.value
    return None


class ObsLabelChecker(Checker):
    name = "obs-labels"
    scope = ("src",)

    def check_file(self, src: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in LABELLED_METHODS:
                continue
            receiver = func.value
            if not (isinstance(receiver, ast.Name) and receiver.id in TELEMETRY_RECEIVERS):
                continue
            label = _label_arg(node)
            if label is None:
                continue
            prefix = _label_prefix(label)
            if prefix is None:
                findings.append(
                    self.finding(
                        src,
                        node,
                        "OBS001",
                        f"telemetry label of {receiver.id}.{func.attr}() is not "
                        "a string literal or f-string",
                        hint=(
                            "use a literal label so the span/counter vocabulary "
                            "is statically auditable and bounded"
                        ),
                    )
                )
            elif "." not in prefix or prefix.startswith("."):
                findings.append(
                    self.finding(
                        src,
                        node,
                        "OBS001",
                        f"telemetry label {prefix!r} lacks a stable dotted "
                        "namespace prefix",
                        hint=(
                            "namespace labels as '<subsystem>.<name>' (e.g. "
                            "'emu.events_popped') so summaries group by "
                            "subsystem without collisions"
                        ),
                    )
                )
        return findings

"""Finding objects, the committed allowlist, and findings baselines.

A :class:`Finding` pins one rule violation to a ``file:line`` with a fix
hint.  Two suppression layers exist, with different intents:

* the **allowlist** (``allowlist.txt`` next to this module) is the
  *committed* record of deliberate exceptions — every entry carries a
  one-line justification and is matched structurally (rule id + path +
  needle), so it survives line-number churn;
* a **baseline** is a JSON snapshot of finding fingerprints used to adopt
  the checker on a codebase with pre-existing findings (``--write-baseline``
  then ``--baseline``): compared findings are suppressed, new ones fail.

Fingerprints deliberately exclude the line number: moving code around must
not invalidate a baseline, only genuinely new findings should.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any


@dataclass(frozen=True)
class Finding:
    """One rule violation: rule id, location, message, and a fix hint."""

    rule: str
    path: str
    line: int
    message: str
    hint: str = ""
    snippet: str = ""

    def fingerprint(self) -> str:
        """Stable identity for baselines: rule + path + message (no line)."""
        payload = f"{self.rule}|{self.path}|{self.message}"
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def render(self) -> str:
        """One-line human rendering (``path:line: RULE message [hint]``)."""
        text = f"{self.path}:{self.line}: {self.rule} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }


@dataclass(frozen=True)
class AllowlistEntry:
    """One committed exception: rule + path suffix + message/snippet needle."""

    rule: str
    path: str
    needle: str
    justification: str
    lineno: int

    def matches(self, finding: Finding) -> bool:
        if self.rule != finding.rule:
            return False
        if not finding.path.endswith(self.path):
            return False
        return self.needle in finding.message or (
            bool(finding.snippet) and self.needle in finding.snippet
        )


class Allowlist:
    """Parsed ``allowlist.txt``: suppress findings, track unused entries.

    Line format (whitespace-separated, ``#`` starts the justification)::

        RULE-ID  path/suffix.py  needle with spaces  # why this is deliberate

    The needle is matched as a substring of the finding's message or source
    snippet, so entries are stable across line-number churn.  Every entry
    must carry a justification; an unused entry is reported so the file
    cannot silently rot.
    """

    def __init__(self, entries: list[AllowlistEntry], path: Path | None = None) -> None:
        self.entries = entries
        self.path = path
        self._used: set[AllowlistEntry] = set()

    @classmethod
    def load(cls, path: Path) -> Allowlist:
        entries: list[AllowlistEntry] = []
        if not path.exists():
            return cls(entries, path)
        for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            body, _, justification = line.partition("#")
            parts = body.split(maxsplit=2)
            if len(parts) != 3 or not justification.strip():
                raise ValueError(
                    f"{path}:{lineno}: malformed allowlist entry; expected "
                    "'RULE path needle  # justification'"
                )
            rule, entry_path, needle = parts
            entries.append(
                AllowlistEntry(
                    rule=rule,
                    path=entry_path,
                    needle=needle.strip(),
                    justification=justification.strip(),
                    lineno=lineno,
                )
            )
        return cls(entries, path)

    def suppresses(self, finding: Finding) -> bool:
        for entry in self.entries:
            if entry.matches(finding):
                self._used.add(entry)
                return True
        return False

    def unused_entries(self) -> list[AllowlistEntry]:
        """Entries that suppressed nothing in the last run (stale excuses)."""
        return [e for e in self.entries if e not in self._used]


@dataclass
class Baseline:
    """A JSON snapshot of accepted finding fingerprints."""

    fingerprints: set[str] = field(default_factory=set)

    @classmethod
    def load(cls, path: Path) -> Baseline:
        data = json.loads(path.read_text())
        return cls(fingerprints=set(data.get("findings", [])))

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> Baseline:
        return cls(fingerprints={f.fingerprint() for f in findings})

    def write(self, path: Path) -> None:
        payload = {"findings": sorted(self.fingerprints)}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def suppresses(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.fingerprints

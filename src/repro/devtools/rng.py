"""RNG-stream hygiene: ``derive_rng`` labels must be literal and non-colliding.

``derive_rng(seed, stream)`` hashes the (scenario seed, stream label) pair
into an independent generator.  That guarantee holds only if

* the label is a *literal* at the call site (a string constant or an
  f-string), so the set of streams is statically auditable, and
* distinct call sites use labels that cannot collide — i.e. each site owns
  a unique literal prefix ("flow:", "link:", ...), and
* neither argument folds the seed in by integer arithmetic.  The pre-PR-3
  derivation ``seed + 17 * (i + 1)`` aliased (seed 1, flow 1) with
  (seed 18, flow 0), silently correlating multi-seed replicas — exactly
  the bug class this rule machine-checks.

Rules:

* ``RNG001`` — the stream label is not a string literal / f-string.
* ``RNG002`` — colliding labels: an f-string label without a literal
  prefix, or two distinct call sites whose prefixes overlap (equal, or one
  a prefix of the other), so two (seed, entity) pairs could hash alike.
* ``RNG003`` — the seed (or a label placeholder) is built by arithmetic
  involving the seed.
"""

from __future__ import annotations

import ast

from .base import Checker, CheckContext, SourceFile
from .findings import Finding

#: The blessed RNG-factory function name.
FACTORY = "derive_rng"


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _stream_arg(node: ast.Call) -> ast.expr | None:
    if len(node.args) >= 2:
        return node.args[1]
    for kw in node.keywords:
        if kw.arg == "stream":
            return kw.value
    return None


def _seed_arg(node: ast.Call) -> ast.expr | None:
    if node.args:
        return node.args[0]
    for kw in node.keywords:
        if kw.arg == "seed":
            return kw.value
    return None


def _mentions_seed(node: ast.expr) -> bool:
    return any(
        isinstance(sub, ast.Name) and "seed" in sub.id.lower()
        for sub in ast.walk(node)
    )


def _has_seed_arithmetic(node: ast.expr) -> bool:
    """True if the expression computes arithmetic on something seed-like."""
    return any(
        isinstance(sub, ast.BinOp) and _mentions_seed(sub)
        for sub in ast.walk(node)
    )


def _label_prefix(node: ast.expr) -> str | None:
    """The literal prefix of a stream label, or None if non-literal.

    A plain string constant is its own prefix; an f-string's prefix is the
    literal text before the first placeholder ("" when it starts with one).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        prefix = ""
        for part in node.values:
            if isinstance(part, ast.Constant) and isinstance(part.value, str):
                prefix += part.value
            else:
                break
        return prefix
    return None


class RngStreamChecker(Checker):
    name = "rng-streams"
    scope = ("src",)

    def run(self, context: CheckContext) -> list[Finding]:
        findings: list[Finding] = []
        # (prefix, is_fstring) per call site, for the cross-file collision check.
        sites: list[tuple[str, bool, SourceFile, ast.Call]] = []
        for src in context.iter_sources(self.scope):
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.Call) or _call_name(node) != FACTORY:
                    continue
                seed = _seed_arg(node)
                stream = _stream_arg(node)
                if seed is not None and _has_seed_arithmetic(seed):
                    findings.append(
                        self.finding(
                            src,
                            node,
                            "RNG003",
                            "seed argument of derive_rng is built by arithmetic "
                            "on the seed",
                            hint=(
                                "pass the scenario seed verbatim; encode the "
                                "entity in the stream label instead (the pre-PR-3 "
                                "'seed + 17*(i+1)' derivation aliased streams "
                                "across seeds)"
                            ),
                        )
                    )
                if stream is None:
                    continue
                if _has_seed_arithmetic(stream):
                    findings.append(
                        self.finding(
                            src,
                            node,
                            "RNG003",
                            "stream label of derive_rng embeds arithmetic on the "
                            "seed",
                            hint="the label must identify the entity, not re-mix the seed",
                        )
                    )
                prefix = _label_prefix(stream)
                if prefix is None:
                    findings.append(
                        self.finding(
                            src,
                            node,
                            "RNG001",
                            "stream label of derive_rng is not a literal string "
                            "or f-string",
                            hint=(
                                "use a literal label (e.g. f\"flow:{i}\") so the "
                                "set of RNG streams is statically auditable"
                            ),
                        )
                    )
                    continue
                is_fstring = isinstance(stream, ast.JoinedStr)
                if is_fstring and not prefix:
                    findings.append(
                        self.finding(
                            src,
                            node,
                            "RNG002",
                            "f-string stream label lacks a literal prefix",
                            hint=(
                                "start the label with a unique literal namespace "
                                "(e.g. f\"flow:{i}\") so call sites cannot collide"
                            ),
                        )
                    )
                    continue
                sites.append((prefix, is_fstring, src, node))
        findings.extend(self._collisions(sites))
        return findings

    def _collisions(
        self, sites: list[tuple[str, bool, SourceFile, ast.Call]]
    ) -> list[Finding]:
        findings: list[Finding] = []
        for i, (prefix_a, fstr_a, src_a, node_a) in enumerate(sites):
            for prefix_b, fstr_b, src_b, node_b in sites[i + 1 :]:
                # Two templated sites collide when either prefix extends the
                # other; a templated site also collides with a plain literal
                # it prefixes (f"flow:{i}" vs "flow:0").  Two distinct plain
                # literals never collide unless equal.
                if fstr_a or fstr_b:
                    clash = prefix_a.startswith(prefix_b) or prefix_b.startswith(prefix_a)
                else:
                    clash = prefix_a == prefix_b
                if not clash:
                    continue
                findings.append(
                    self.finding(
                        src_b,
                        node_b,
                        "RNG002",
                        f"stream-label prefix {prefix_b!r} can collide with "
                        f"{prefix_a!r} ({src_a.relpath}:{node_a.lineno})",
                        hint=(
                            "give every derive_rng call site its own literal "
                            "prefix so (seed, entity) pairs map to distinct "
                            "streams"
                        ),
                    )
                )
        return findings

"""Run all domain checkers and apply the allowlist/baseline layers."""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

from .base import CheckContext, Checker
from .cachekey import CacheKeyChecker
from .determinism import DeterminismChecker
from .findings import Allowlist, Baseline, Finding
from .obscheck import ObsLabelChecker
from .rng import RngStreamChecker
from .unitcheck import UnitsChecker

#: Committed allowlist of deliberate exceptions (next to this module).
ALLOWLIST_FILE = Path(__file__).with_name("allowlist.txt")


def default_checkers() -> list[Checker]:
    """Fresh instances of every shipped checker (order = report order)."""
    return [
        DeterminismChecker(),
        RngStreamChecker(),
        ObsLabelChecker(),
        CacheKeyChecker(),  # type: ignore[list-item]
        UnitsChecker(),
    ]


def run_check(
    root: Path | str,
    checkers: Sequence[Checker] | None = None,
    allowlist: Allowlist | None = None,
    baseline: Baseline | None = None,
) -> tuple[list[Finding], list[str]]:
    """Run the checkers over a repo and return (findings, warnings).

    ``allowlist`` defaults to the committed ``allowlist.txt``; suppressed
    findings are dropped, and stale (unused) allowlist entries come back as
    warnings so the committed excuses cannot rot silently.  ``baseline``
    additionally suppresses previously accepted finding fingerprints.
    """
    context = CheckContext(Path(root))
    if allowlist is None:
        allowlist = Allowlist.load(ALLOWLIST_FILE)
    findings: list[Finding] = []
    for checker in checkers if checkers is not None else default_checkers():
        findings.extend(checker.run(context))
    findings = [f for f in findings if not allowlist.suppresses(f)]
    if baseline is not None:
        findings = [f for f in findings if not baseline.suppresses(f)]
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    warnings = [
        f"unused allowlist entry ({allowlist.path}:{entry.lineno}): "
        f"{entry.rule} {entry.path} {entry.needle!r} — {entry.justification}"
        for entry in allowlist.unused_entries()
    ]
    return findings, warnings

"""Determinism checker: no wall-clock or ambient entropy in sim kernels.

The fluid integrator, the packet emulator and the analysis layer must be
bit-reproducible given a :class:`~repro.config.ScenarioConfig`: the stored
campaign results are content-addressed by the scenario alone, so a kernel
that consults the wall clock or an unseeded RNG silently corrupts every
cached point it contributes to.

Rules:

* ``DET001`` — a call to a wall-clock/process-time source (``time.time``,
  ``time.perf_counter``, ``datetime.now``, ...) inside the kernel dirs.
  Timing belongs in benchmarks, never in simulation state.
* ``DET002`` — a call to a module-level ``random.*`` function or anything
  under ``numpy.random``: ambient global-state randomness.  All randomness
  must flow through ``derive_rng(seed, stream)``.
* ``DET003`` — construction of a ``random.Random``/``SystemRandom``
  instance outside ``derive_rng`` itself: ad-hoc generators bypass the
  (seed, stream-label) hashing that keeps multi-seed replicas uncorrelated.
"""

from __future__ import annotations

import ast

from .base import Checker, SourceFile
from .findings import Finding

#: Directories whose code must be deterministic (the simulation kernels),
#: plus the telemetry layer: ``repro/obs`` may *measure* with the monotonic
#: clock (never the wall clock), but every such call site must carry a
#: committed allowlist justification — new clock use there is flagged.
KERNEL_DIRS = (
    "src/repro/core",
    "src/repro/emulation",
    "src/repro/analysis",
    "src/repro/obs",
)

#: Wall-clock / process-time sources (resolved dotted names).
CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Module-level functions of :mod:`random` (ambient global-state RNG).
RANDOM_MODULE_FUNCS = {
    "seed", "random", "uniform", "randint", "randrange", "getrandbits",
    "choice", "choices", "shuffle", "sample", "triangular", "betavariate",
    "binomialvariate", "expovariate", "gammavariate", "gauss",
    "lognormvariate", "normalvariate", "paretovariate", "vonmisesvariate",
    "weibullvariate", "randbytes",
}

#: RNG constructors that must only appear inside ``derive_rng``.
RNG_CONSTRUCTORS = {"random.Random", "random.SystemRandom"}

#: Functions allowed to construct generators (the single blessed factory).
RNG_FACTORY_FUNCS = {"derive_rng"}


class DeterminismChecker(Checker):
    name = "determinism"
    scope = KERNEL_DIRS

    def check_file(self, src: SourceFile) -> list[Finding]:
        resolver = self.imports_of(src)
        findings: list[Finding] = []
        # Map call nodes to their enclosing function names so the blessed
        # RNG factory can construct generators without tripping DET003.
        enclosing: dict[int, str] = {}
        for func in ast.walk(src.tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(func):
                    if isinstance(inner, ast.Call):
                        enclosing.setdefault(id(inner), func.name)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolver.resolve(node.func)
            if dotted is None:
                continue
            if dotted in CLOCK_CALLS:
                findings.append(
                    self.finding(
                        src,
                        node,
                        "DET001",
                        f"wall-clock call {dotted}() inside a simulation kernel",
                        hint=(
                            "simulation state must depend only on the scenario "
                            "config; measure timing in benchmarks/ instead"
                        ),
                    )
                )
            elif dotted.startswith("numpy.random.") or dotted == "numpy.random":
                findings.append(
                    self.finding(
                        src,
                        node,
                        "DET002",
                        f"numpy global RNG call {dotted}() inside a simulation kernel",
                        hint="derive randomness via derive_rng(seed, stream) instead",
                    )
                )
            elif dotted.startswith("random.") and dotted.split(".", 1)[1] in RANDOM_MODULE_FUNCS:
                findings.append(
                    self.finding(
                        src,
                        node,
                        "DET002",
                        f"module-level {dotted}() uses the ambient global RNG",
                        hint="derive randomness via derive_rng(seed, stream) instead",
                    )
                )
            elif dotted in RNG_CONSTRUCTORS:
                if enclosing.get(id(node)) in RNG_FACTORY_FUNCS:
                    continue
                findings.append(
                    self.finding(
                        src,
                        node,
                        "DET003",
                        f"ad-hoc RNG construction {dotted}(...) outside derive_rng",
                        hint=(
                            "inject a generator from derive_rng(seed, stream) so "
                            "every (seed, entity) pair gets a collision-free stream"
                        ),
                    )
                )
        return findings

"""Cache-key completeness: every knob must reach the stored scenario key.

A single unhashed config field corrupts an entire stored campaign: two
semantically different scenarios alias onto one record and the store serves
one's metrics for the other.  This was fixed by hand twice (PR 3: seed and
sampling parameters missing from ``sweep._cache_key``; PR 5: per-hop
disciplines keyed under the wrong label).  This checker machine-checks the
invariant three ways:

* ``CACHE001`` — **mutation probing**: for every dataclass field of the
  config layer (:class:`~repro.config.ScenarioConfig` and everything it
  nests), build a mutated scenario and require
  :func:`~repro.experiments.store.scenario_key` to change.  Intentionally
  excluded (field, substrate) pairs live in :data:`ALLOWED_UNHASHED`, each
  with a justification.
* ``CACHE002`` — **axis coverage**: every scenario-shaping parameter of
  ``run_point``/``run_sweep`` must appear in ``sweep._cache_key`` *and*
  ``sweep._store_meta`` (execution-only parameters such as ``workers`` are
  allowlisted in :data:`EXECUTION_PARAMS`).
* ``CACHE003`` — a config field the probe generator cannot mutate: the
  probe table must grow with the config layer, so new fields cannot dodge
  the check by being unprobeable.
* ``CACHE004`` — **schema drift**: the hashed-field set (config fields +
  key/meta parameters + campaign-preset fields) is fingerprinted into the
  committed ``schema_fingerprint.json``; any drift without a matching
  ``SCHEMA_VERSION`` bump (and fingerprint regeneration via ``repro-bbr
  check --update-schema-fingerprint``) is flagged.
* ``CACHE005`` — **preset coverage**: every
  :class:`~repro.experiments.presets.CampaignPreset` field must either be
  a declared execution-machinery field
  (:data:`~repro.experiments.presets.PRESET_EXECUTION_FIELDS`) or reach
  ``sweep._cache_key`` under its (aliased) parameter name — a preset knob
  that steers the scenario but not the key would alias different
  campaigns onto shared store records.

All entry points take the functions/classes under test as parameters so the
test suite can probe synthetic configs and deliberately broken key
functions (see ``tests/test_devtools.py``).
"""

from __future__ import annotations

import dataclasses
import inspect
import json
from collections.abc import Callable, Iterator, Mapping, Sequence
from pathlib import Path
from typing import Any

from ..config import (
    FlowConfig,
    FlowSchedule,
    FluidParams,
    LinkConfig,
    ScenarioConfig,
    TopologyConfig,
)
from ..experiments import presets as presets_mod
from ..experiments import store as store_mod
from ..experiments import sweep as sweep_mod
from ..topology import parking_lot
from .base import CheckContext
from .findings import Finding

#: (class name, field name, substrate) triples deliberately excluded from
#: the stored scenario key, each with its committed justification.  Keep
#: this list short and honest: every entry is a place where two different
#: configs intentionally share one stored record.
ALLOWED_UNHASHED: dict[tuple[str, str, str], str] = {
    # The fluid model is deterministic and — without a random flow schedule
    # — never consumes the seed: seed replicas of a schedule-free fluid
    # point alias onto one computation and one stored record on purpose
    # (PR 3's documented design).  scenario_key keeps the seed hashed when
    # the schedule draws random arrivals/sizes (FlowSchedule.uses_seed).
    ("ScenarioConfig", "seed", "fluid"): (
        "fluid substrate is deterministic; seed replicas of schedule-free "
        "points deliberately share one stored record"
    ),
    # The analytic substrate computes equilibria symbolically/numerically
    # from the scenario alone and never draws randomness at all; it shares
    # the fluid substrate's seed normalisation so seed replicas of a
    # schedule-free analytic point resolve to one stored prediction.
    ("ScenarioConfig", "seed", "analytic"): (
        "analytic substrate is deterministic; seed replicas of schedule-free "
        "points deliberately share one stored record"
    ),
}

#: ``run_point``/``run_sweep`` parameters that steer *execution*, not the
#: scenario semantics, and therefore must not be hashed.
EXECUTION_PARAMS: dict[str, str] = {
    "use_cache": "cache bypass switch; no effect on results",
    "store": "which store file to persist into; no effect on results",
    "seeds": "replication axis — expands into per-seed points keyed by 'seed'",
    "workers": "process-pool width; no effect on results",
    "executor": (
        "executor policy (pool width, retries, backoff, timeouts, heartbeat, "
        "on_failure); retries recompute the same scenario, so no effect on "
        "results"
    ),
    "retry_failed": (
        "resume behaviour for recorded failure rows (recompute vs re-report); "
        "never changes what a successful point computes"
    ),
    "trace": (
        "telemetry span-log destination (repro.obs); pure observability — "
        "scenario keys and metric values are bit-identical with tracing on "
        "or off"
    ),
    "prune_analytic": (
        "grid pre-pass that serves provably-identical points from an "
        "analytically certified twin; pruned rows are stored under their "
        "own unchanged scenario keys with a 'pruned' provenance block, so "
        "the stored results are the same with pruning on or off"
    ),
    "shard_index": (
        "which slice of the grid this worker computes; sharding partitions "
        "the task list by stored scenario key without changing any key or "
        "any result"
    ),
    "shard_count": (
        "how many slices the grid is partitioned into; execution placement "
        "only — disjoint shards merge back into one store via "
        "'repro-bbr store merge'"
    ),
}

#: Plural grid axes of ``run_sweep`` and the per-point parameter each
#: expands into (the grid is keyed point-by-point).
SWEEP_AXIS_ALIASES: dict[str, str] = {
    "mixes": "mix",
    "buffers_bdp": "buffer_bdp",
    "disciplines": "discipline",
}

SUBSTRATES = ("fluid", "emulation", "analytic")

#: Committed fingerprint of the hashed-field set (next to this module).
FINGERPRINT_FILE = Path(__file__).with_name("schema_fingerprint.json")

#: The config dataclasses whose fields feed the scenario hash.
CONFIG_CLASSES: tuple[type, ...] = (
    ScenarioConfig,
    TopologyConfig,
    LinkConfig,
    FlowConfig,
    FluidParams,
    FlowSchedule,
)


def _dumbbell_base() -> ScenarioConfig:
    return ScenarioConfig(
        bottleneck=LinkConfig(capacity_mbps=100.0, delay_s=0.010, buffer_bdp=1.0),
        flows=(FlowConfig("bbr1"), FlowConfig("reno", access_delay_s=0.007)),
        duration_s=2.0,
    )


def _churn_base() -> ScenarioConfig:
    return dataclasses.replace(
        _dumbbell_base(),
        schedule=FlowSchedule(
            arrivals="poisson",
            arrival_rate_per_s=5.0,
            size_dist="pareto",
            max_size_packets=100.0,
        ),
    )


def _topology_base() -> ScenarioConfig:
    topo = parking_lot(hops=2, cross_flows=0, long_flows=2)
    return ScenarioConfig(
        bottleneck=None,
        flows=(FlowConfig("bbr1"), FlowConfig("cubic", access_delay_s=0.007)),
        duration_s=2.0,
        topology=topo,
    )


def _other(value: str, options: Sequence[str]) -> str:
    for option in options:
        if option != value:
            return option
    raise ValueError(f"no alternative to {value!r} in {options}")


def _generic_mutants(value: Any) -> Iterator[Any]:
    """Type-driven candidate replacement values for an unknown field."""
    if isinstance(value, bool):
        yield not value
    elif isinstance(value, int):
        yield value + 1
    elif isinstance(value, float):
        yield value * 2.0 + 0.125
        yield value / 2.0 + 1e-6
    elif isinstance(value, str):
        yield value + "-mut"
        yield "mut"
    elif value is None:
        yield 1.0
        yield 1
        yield "mut"
    elif isinstance(value, tuple) and value:
        yield value + (value[-1],)
        yield value[:-1]


# Per-field mutators that the generic type probe cannot derive (validator
# constraints, cross-field invariants).  Keyed by (class name, field name);
# each takes the current field value and returns a mutated one.
_FIELD_MUTATORS: dict[tuple[str, str], Callable[[Any], Any]] = {
    ("ScenarioConfig", "bottleneck"): lambda link: dataclasses.replace(
        link, capacity_mbps=link.capacity_mbps * 2.0
    ),
    ("ScenarioConfig", "flows"): lambda flows: (
        dataclasses.replace(flows[0], cca=_other(flows[0].cca, ("bbr1", "reno", "cubic"))),
    ) + tuple(flows[1:]),
    ("ScenarioConfig", "fluid"): lambda fluid: dataclasses.replace(
        fluid, dt=fluid.dt * 2.0
    ),
    ("ScenarioConfig", "topology"): lambda topo: (
        # On the legacy dumbbell base the field is None: mutate by attaching
        # an explicit two-hop topology (paths sized for the two-flow base).
        parking_lot(hops=2, cross_flows=0, long_flows=2)
        if topo is None
        else topo.with_buffer(topo.links[0].buffer_bdp * 2.0)
    ),
    ("ScenarioConfig", "schedule"): lambda sched: (
        # The dumbbell base carries no schedule: mutate by attaching one
        # (seed-free, so the fluid seed exclusion stays exercised).
        FlowSchedule(arrivals="staggered", arrival_spacing_s=0.25)
        if sched is None
        else dataclasses.replace(sched, arrival_spacing_s=sched.arrival_spacing_s + 0.25)
    ),
    ("FlowSchedule", "arrivals"): lambda arrivals: _other(
        arrivals, ("staggered", "poisson")
    ),
    ("FlowSchedule", "size_dist"): lambda dist: _other(dist, ("infinite", "pareto")),
    ("LinkConfig", "discipline"): lambda disc: _other(disc, ("droptail", "red")),
    ("LinkConfig", "name"): lambda name: name + "-renamed",
    ("FlowConfig", "cca"): lambda cca: _other(cca, ("bbr1", "reno", "cubic")),
    ("FluidParams", "whi_init_bdp"): lambda whi: 1.5 if whi is None else whi * 2.0,
    ("TopologyConfig", "links"): lambda links: (
        dataclasses.replace(links[0], capacity_mbps=links[0].capacity_mbps * 2.0),
    ) + tuple(links[1:]),
    ("TopologyConfig", "paths"): lambda paths: ((paths[0][0],),) + tuple(paths[1:]),
    ("TopologyConfig", "reference"): lambda ref: _other(ref, ("hop-1", "hop-2")),
}


@dataclasses.dataclass(frozen=True)
class Probe:
    """One nested dataclass instance reachable from a scenario config."""

    cls: type
    base: ScenarioConfig
    get: Callable[[ScenarioConfig], Any]
    set: Callable[[ScenarioConfig, Any], ScenarioConfig]


def default_probes(
    dumbbell: ScenarioConfig | None = None,
    topology: ScenarioConfig | None = None,
    churn: ScenarioConfig | None = None,
) -> list[Probe]:
    """The probe set covering every config dataclass the scenario key hashes."""
    dumbbell = dumbbell if dumbbell is not None else _dumbbell_base()
    topology = topology if topology is not None else _topology_base()
    churn = churn if churn is not None else _churn_base()
    return [
        Probe(type(dumbbell), dumbbell, lambda c: c, lambda c, v: v),
        Probe(
            LinkConfig,
            dumbbell,
            lambda c: c.bottleneck,
            lambda c, v: dataclasses.replace(c, bottleneck=v),
        ),
        Probe(
            FlowConfig,
            dumbbell,
            lambda c: c.flows[0],
            lambda c, v: dataclasses.replace(c, flows=(v,) + tuple(c.flows[1:])),
        ),
        Probe(
            FluidParams,
            dumbbell,
            lambda c: c.fluid,
            lambda c, v: dataclasses.replace(c, fluid=v),
        ),
        Probe(
            TopologyConfig,
            topology,
            lambda c: c.topology,
            lambda c, v: dataclasses.replace(c, topology=v),
        ),
        Probe(
            FlowSchedule,
            churn,
            lambda c: c.schedule,
            lambda c, v: dataclasses.replace(c, schedule=v),
        ),
    ]


def _key_location(key_fn: Callable[..., Any]) -> tuple[str, int]:
    try:
        path = inspect.getsourcefile(key_fn) or "<unknown>"
        line = inspect.getsourcelines(key_fn)[1]
    except (OSError, TypeError):
        return "<unknown>", 1
    return path, line


def _relpath(path: str, root: Path | None) -> str:
    if root is None:
        return path
    try:
        return Path(path).resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path


def check_scenario_key_coverage(
    key_fn: Callable[..., str] = store_mod.scenario_key,
    probes: Sequence[Probe] | None = None,
    allowed_unhashed: Mapping[tuple[str, str, str], str] = ALLOWED_UNHASHED,
    root: Path | None = None,
) -> list[Finding]:
    """Mutation-probe every config field against the stored scenario key."""
    findings: list[Finding] = []
    path, line = _key_location(key_fn)
    path = _relpath(path, root)
    for probe in probes if probes is not None else default_probes():
        target = probe.get(probe.base)
        if target is None or not dataclasses.is_dataclass(target):
            continue
        for field in dataclasses.fields(target):
            current = getattr(target, field.name)
            mutator = _FIELD_MUTATORS.get((probe.cls.__name__, field.name))
            mutated_config: ScenarioConfig | None = None
            if mutator is not None:
                try:
                    candidates: list[Any] = [mutator(current)]
                except (ValueError, TypeError, AttributeError, KeyError):
                    candidates = []
            else:
                candidates = list(_generic_mutants(current))
            for candidate in candidates:
                try:
                    mutated = dataclasses.replace(target, **{field.name: candidate})
                    mutated_config = probe.set(probe.base, mutated)
                except (ValueError, TypeError, AttributeError, KeyError):
                    continue
                break
            if mutated_config is None:
                findings.append(
                    Finding(
                        rule="CACHE003",
                        path=path,
                        line=line,
                        message=(
                            f"no probe can mutate {probe.cls.__name__}."
                            f"{field.name}; the cache-key probe table must "
                            "cover every config field"
                        ),
                        hint=(
                            "add a mutator for the field to "
                            "repro.devtools.cachekey._FIELD_MUTATORS"
                        ),
                    )
                )
                continue
            for substrate in SUBSTRATES:
                justification = allowed_unhashed.get(
                    (probe.cls.__name__, field.name, substrate)
                )
                if justification is not None:
                    continue
                if key_fn(probe.base, substrate) == key_fn(mutated_config, substrate):
                    findings.append(
                        Finding(
                            rule="CACHE001",
                            path=path,
                            line=line,
                            message=(
                                f"{probe.cls.__name__}.{field.name} does not "
                                f"change the stored scenario key on the "
                                f"{substrate} substrate: two different "
                                "scenarios would alias onto one stored record"
                            ),
                            hint=(
                                "hash the field in scenario_key (bumping "
                                "SCHEMA_VERSION) or record the exclusion in "
                                "ALLOWED_UNHASHED with a justification"
                            ),
                        )
                    )
    return findings


def _scenario_params(fn: Callable[..., Any], aliases: Mapping[str, str]) -> list[str]:
    out = []
    for name in inspect.signature(fn).parameters:
        if name in EXECUTION_PARAMS:
            continue
        out.append(aliases.get(name, name))
    return out


def check_axis_coverage(
    point_fn: Callable[..., Any] = sweep_mod.run_point,
    sweep_fn: Callable[..., Any] | None = sweep_mod.run_sweep,
    key_fn: Callable[..., tuple] = sweep_mod._cache_key,
    meta_fn: Callable[..., dict] | None = sweep_mod._store_meta,
    aliases: Mapping[str, str] = SWEEP_AXIS_ALIASES,
    root: Path | None = None,
) -> list[Finding]:
    """Every scenario-shaping sweep parameter must reach the cache key/meta."""
    findings: list[Finding] = []
    key_params = set(inspect.signature(key_fn).parameters)
    meta_params = set(inspect.signature(meta_fn).parameters) if meta_fn else None
    path, line = _key_location(key_fn)
    path = _relpath(path, root)
    sources: list[tuple[str, Callable[..., Any]]] = [(point_fn.__name__, point_fn)]
    if sweep_fn is not None:
        sources.append((sweep_fn.__name__, sweep_fn))
    for fn_name, fn in sources:
        for param in _scenario_params(fn, aliases):
            if param not in key_params:
                findings.append(
                    Finding(
                        rule="CACHE002",
                        path=path,
                        line=line,
                        message=(
                            f"{fn_name}() parameter {param!r} is missing from "
                            f"{key_fn.__name__}(): points differing only in it "
                            "would alias onto one in-process cache slot"
                        ),
                        hint=(
                            "thread the parameter through the cache key, or add "
                            "it to EXECUTION_PARAMS with a justification if it "
                            "cannot affect results"
                        ),
                    )
                )
            if meta_params is not None and param not in meta_params:
                findings.append(
                    Finding(
                        rule="CACHE002",
                        path=path,
                        line=line,
                        message=(
                            f"{fn_name}() parameter {param!r} is missing from "
                            f"{meta_fn.__name__}(): stored rows could not be "
                            "filtered or exported by it"
                        ),
                        hint="thread the parameter through the store meta",
                    )
                )
    return findings


def check_preset_coverage(
    preset_cls: type = presets_mod.CampaignPreset,
    key_fn: Callable[..., tuple] = sweep_mod._cache_key,
    execution_fields: frozenset[str] = presets_mod.PRESET_EXECUTION_FIELDS,
    aliases: Mapping[str, str] = SWEEP_AXIS_ALIASES,
    root: Path | None = None,
) -> list[Finding]:
    """Every scenario-shaping campaign-preset field must reach the cache key."""
    findings: list[Finding] = []
    key_params = set(inspect.signature(key_fn).parameters)
    path, line = _key_location(preset_cls)
    path = _relpath(path, root)
    for field in dataclasses.fields(preset_cls):
        if field.name in execution_fields:
            continue
        param = aliases.get(field.name, field.name)
        if param not in key_params:
            findings.append(
                Finding(
                    rule="CACHE005",
                    path=path,
                    line=line,
                    message=(
                        f"{preset_cls.__name__}.{field.name} does not map onto a "
                        f"{key_fn.__name__}() parameter: a preset declaring it "
                        "would run scenarios the store cannot tell apart"
                    ),
                    hint=(
                        "thread the field through the cache key (adding an "
                        "alias to SWEEP_AXIS_ALIASES if the names differ), or "
                        "declare it in PRESET_EXECUTION_FIELDS if it only "
                        "steers execution machinery"
                    ),
                )
            )
    return findings


def hashed_field_fingerprint(
    config_classes: Sequence[type] = CONFIG_CLASSES,
    key_fn: Callable[..., tuple] = sweep_mod._cache_key,
    meta_fn: Callable[..., dict] = sweep_mod._store_meta,
    preset_cls: type = presets_mod.CampaignPreset,
) -> str:
    """Stable fingerprint of the hashed-field set (classes + key params)."""
    payload = {
        "config_fields": {
            cls.__name__: sorted(f.name for f in dataclasses.fields(cls))
            for cls in config_classes
        },
        "cache_key_params": list(inspect.signature(key_fn).parameters),
        "store_meta_params": list(inspect.signature(meta_fn).parameters),
        # Preset fields ride along so a renamed/added campaign-preset knob
        # is surfaced as schema drift (CACHE004) and consciously reviewed,
        # exactly like a new config field.
        "preset_fields": sorted(f.name for f in dataclasses.fields(preset_cls)),
    }
    return store_mod.stable_hash(payload)


def write_schema_fingerprint(path: Path = FINGERPRINT_FILE) -> dict[str, Any]:
    """Regenerate the committed fingerprint for the current SCHEMA_VERSION."""
    payload = {
        "schema_version": store_mod.SCHEMA_VERSION,
        "fingerprint": hashed_field_fingerprint(),
        "comment": (
            "Regenerate with 'repro-bbr check --update-schema-fingerprint' "
            "after bumping SCHEMA_VERSION in repro/experiments/store.py."
        ),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def check_schema_fingerprint(
    path: Path = FINGERPRINT_FILE,
    schema_version: int | None = None,
    fingerprint: str | None = None,
    root: Path | None = None,
) -> list[Finding]:
    """Flag hashed-field-set drift that lacks a ``SCHEMA_VERSION`` bump."""
    schema_version = (
        schema_version if schema_version is not None else store_mod.SCHEMA_VERSION
    )
    fingerprint = fingerprint if fingerprint is not None else hashed_field_fingerprint()
    relpath = _relpath(str(path), root)
    if not path.exists():
        return [
            Finding(
                rule="CACHE004",
                path=relpath,
                line=1,
                message="no committed schema fingerprint for the hashed-field set",
                hint="run 'repro-bbr check --update-schema-fingerprint' and commit the file",
            )
        ]
    recorded = json.loads(path.read_text())
    if recorded.get("schema_version") != schema_version:
        return [
            Finding(
                rule="CACHE004",
                path=relpath,
                line=1,
                message=(
                    f"SCHEMA_VERSION is {schema_version} but the committed "
                    f"fingerprint records version {recorded.get('schema_version')}"
                ),
                hint=(
                    "after bumping SCHEMA_VERSION, regenerate the fingerprint "
                    "with 'repro-bbr check --update-schema-fingerprint'"
                ),
            )
        ]
    if recorded.get("fingerprint") != fingerprint:
        return [
            Finding(
                rule="CACHE004",
                path=relpath,
                line=1,
                message=(
                    "the hashed-field set changed (config fields or cache-key "
                    "parameters) without a SCHEMA_VERSION bump: stored results "
                    "from the old schema would be served for new scenarios"
                ),
                hint=(
                    "bump SCHEMA_VERSION in repro/experiments/store.py, then "
                    "run 'repro-bbr check --update-schema-fingerprint'"
                ),
            )
        ]
    return []


class CacheKeyChecker:
    """Bundles the cache-key checks (CACHE001-005) behind the Checker interface."""

    name = "cache-keys"

    def run(self, context: CheckContext) -> list[Finding]:
        findings = check_scenario_key_coverage(root=context.root)
        findings += check_axis_coverage(root=context.root)
        findings += check_preset_coverage(root=context.root)
        findings += check_schema_fingerprint(root=context.root)
        return findings

"""Units discipline: the ``_s``/``_mbps``/``_packets``/``_bdp`` conventions.

The whole library works in packet units (:mod:`repro.units`): rates in
packets/s or Mbps, volumes in packets, time in seconds, buffers in BDP
multiples.  The convention that keeps the two substrates comparable is that
every unit-bearing name *says* its unit as a suffix.  This checker enforces
it at the config-layer surface — function signatures and dataclass fields
of ``config.py``, ``topology.py`` and ``experiments/scenarios.py`` — and
flags arithmetic that mixes differently-suffixed names.

Rules:

* ``UNIT001`` — a signature parameter / dataclass field whose name carries
  a unit-bearing stem (``delay``, ``capacity``, ``duration``, ``rtt``, ...)
  but no canonical unit suffix.
* ``UNIT002`` — addition/subtraction/comparison between two names with
  *different* canonical unit suffixes (seconds + Mbps never type-checks in
  the physical sense; multiplication/division legitimately changes units
  and is not flagged).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .base import Checker, SourceFile
from .findings import Finding

#: Files whose public surface must follow the suffix conventions.
UNIT_SCOPE = (
    "src/repro/config.py",
    "src/repro/topology.py",
    "src/repro/experiments/scenarios.py",
)

#: Canonical unit suffixes (from repro/units.py) and the dimension each
#: one denotes.  ``_pkts`` and ``_packets`` are the same dimension.
UNIT_SUFFIXES: dict[str, str] = {
    "_per_s": "1/s",
    "_s": "seconds",
    "_ms": "milliseconds",
    "_bps": "bits/s",
    "_mbps": "Mbps",
    "_pps": "packets/s",
    "_packets": "packets",
    "_pkts": "packets",
    "_bdp": "BDP multiples",
    "_bytes": "bytes",
    "_mbit": "megabits",
}

#: Name stems that imply a physical unit and therefore demand a suffix.
UNIT_STEMS = (
    "delay",
    "rtt",
    "duration",
    "interval",
    "capacit",  # capacity/capacities
    "bandwidth",
    "timeout",
    "latency",
    "throughput",
    "goodput",
    # Arrival/departure rates (FlowSchedule): "1/s" names must say so via
    # the ``_per_s`` suffix (``arrival_rate_per_s``), not a bare ``rate``.
    "rate",
)

#: Names exempted despite carrying a stem (documented conventions).
STEM_EXEMPT = {
    # "dt" is the integrator's classic symbol for the step in seconds; the
    # fluid-model equations read better with the textbook name.
    "dt",
}


def _suffix_of(name: str) -> str | None:
    """The canonical unit suffix of a name, or None."""
    for suffix in sorted(UNIT_SUFFIXES, key=len, reverse=True):
        if name.endswith(suffix):
            return suffix
    return None


def _needs_suffix(name: str) -> bool:
    if name in STEM_EXEMPT or _suffix_of(name) is not None:
        return False
    return any(stem in name for stem in UNIT_STEMS)


def _terminal_name(node: ast.expr) -> str | None:
    """The identifier a Name/Attribute/simple-Call expression denotes."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        # A call like ``path_delay_s(i)`` carries its unit in the callee name.
        return _terminal_name(node.func)
    return None


def _is_bool_annotation(annotation: ast.expr | None) -> bool:
    return isinstance(annotation, ast.Name) and annotation.id == "bool"


def _annotated_params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.arg]:
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg in ("self", "cls"):
            continue
        # Boolean flags (e.g. ``short_rtt``) select a variant; they do not
        # carry a physical quantity, so the suffix rule does not apply.
        if _is_bool_annotation(arg.annotation):
            continue
        yield arg


class UnitsChecker(Checker):
    name = "units"
    scope = UNIT_SCOPE

    def check_file(self, src: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for arg in _annotated_params(node):
                    if _needs_suffix(arg.arg):
                        findings.append(
                            self.finding(
                                src,
                                arg,
                                "UNIT001",
                                f"parameter {arg.arg!r} of {node.name}() carries "
                                "a unit-bearing name without a unit suffix",
                                hint=(
                                    "suffix the name with its unit "
                                    "(_s/_mbps/_pps/_packets/_bdp, see "
                                    "repro/units.py) or allowlist it with a "
                                    "justification"
                                ),
                            )
                        )
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if (
                        isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)
                        and _needs_suffix(stmt.target.id)
                    ):
                        findings.append(
                            self.finding(
                                src,
                                stmt,
                                "UNIT001",
                                f"field {stmt.target.id!r} of {node.name} "
                                "carries a unit-bearing name without a unit "
                                "suffix",
                                hint="suffix the field with its unit (see repro/units.py)",
                            )
                        )
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                findings.extend(self._mixed_units(src, node, node.left, node.right))
            elif isinstance(node, ast.Compare) and len(node.comparators) == 1:
                findings.extend(
                    self._mixed_units(src, node, node.left, node.comparators[0])
                )
        return findings

    def _mixed_units(
        self, src: SourceFile, node: ast.AST, left: ast.expr, right: ast.expr
    ) -> list[Finding]:
        name_l, name_r = _terminal_name(left), _terminal_name(right)
        if name_l is None or name_r is None:
            return []
        suffix_l, suffix_r = _suffix_of(name_l), _suffix_of(name_r)
        if suffix_l is None or suffix_r is None:
            return []
        if UNIT_SUFFIXES[suffix_l] == UNIT_SUFFIXES[suffix_r]:
            return []
        return [
            self.finding(
                src,
                node,
                "UNIT002",
                f"arithmetic mixes units: {name_l!r} ({UNIT_SUFFIXES[suffix_l]}) "
                f"vs {name_r!r} ({UNIT_SUFFIXES[suffix_r]})",
                hint="convert one operand via repro.units before combining",
            )
        ]

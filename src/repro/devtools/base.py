"""Shared visitor infrastructure for the domain checkers.

Every checker consumes a :class:`CheckContext`: the repo root plus lazily
parsed :class:`SourceFile` objects (text, line table, ``ast`` tree), so a
file is read and parsed once no matter how many checkers visit it.
Checkers are plain objects with a ``name`` and a ``run(context)`` method
returning :class:`~repro.devtools.findings.Finding` lists; AST-based ones
subclass :class:`Checker` and get import-alias resolution helpers for free.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding

#: Directories never scanned (generated artifacts, VCS internals).
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", ".ruff_cache", ".mypy_cache"}


@dataclass
class SourceFile:
    """One parsed python source file."""

    path: Path
    relpath: str
    text: str
    tree: ast.Module

    _lines: list[str] | None = field(default=None, repr=False)

    @property
    def lines(self) -> list[str]:
        if self._lines is None:
            self._lines = self.text.splitlines()
        return self._lines

    def line_at(self, lineno: int) -> str:
        """The stripped source line at a 1-based line number."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class CheckContext:
    """Repo root plus a parse cache shared by all checkers in one run."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self._cache: dict[Path, SourceFile] = {}

    def source(self, path: Path) -> SourceFile:
        """Read and parse one file (cached)."""
        path = path.resolve()
        cached = self._cache.get(path)
        if cached is not None:
            return cached
        text = path.read_text()
        tree = ast.parse(text, filename=str(path))
        try:
            relpath = path.relative_to(self.root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        src = SourceFile(path=path, relpath=relpath, text=text, tree=tree)
        self._cache[path] = src
        return src

    def iter_sources(self, subdirs: Iterable[str]) -> Iterator[SourceFile]:
        """Parsed sources of every ``.py`` file under the given repo subdirs."""
        for subdir in subdirs:
            base = self.root / subdir
            if base.is_file():
                yield self.source(base)
                continue
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*.py")):
                if SKIP_DIRS.intersection(path.parts):
                    continue
                yield self.source(path)


class ImportResolver(ast.NodeVisitor):
    """Tracks import aliases so dotted call names resolve to real modules.

    ``import numpy as np`` + ``np.random.default_rng()`` resolves to
    ``numpy.random.default_rng``; ``from time import perf_counter`` +
    ``perf_counter()`` resolves to ``time.perf_counter``.
    """

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports resolve inside the package, not stdlib
        for alias in node.names:
            self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Resolve a Name/Attribute chain to a dotted module path, or None."""
        parts: list[str] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        base = self.aliases.get(cur.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


class Checker:
    """Base class: iterate files of ``scope`` subdirs, visit each tree."""

    #: Rule-id prefix, e.g. "DET"; subclasses set a descriptive name.
    name = "checker"
    #: Repo-relative directories (or files) this checker scans.
    scope: tuple[str, ...] = ("src",)

    def run(self, context: CheckContext) -> list[Finding]:
        findings: list[Finding] = []
        for src in context.iter_sources(self.scope):
            findings.extend(self.check_file(src))
        return findings

    def check_file(self, src: SourceFile) -> list[Finding]:  # pragma: no cover
        raise NotImplementedError

    @staticmethod
    def imports_of(src: SourceFile) -> ImportResolver:
        resolver = ImportResolver()
        resolver.visit(src.tree)
        return resolver

    @staticmethod
    def finding(
        src: SourceFile, node: ast.AST, rule: str, message: str, hint: str = ""
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            rule=rule,
            path=src.relpath,
            line=lineno,
            message=message,
            hint=hint,
            snippet=src.line_at(lineno),
        )

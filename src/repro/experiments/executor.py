"""Resilient execution of campaign grids: retry, timeout, crash isolation.

``run_sweep`` used to inline a :class:`~concurrent.futures.ProcessPoolExecutor`
that died with the first worker failure after draining.  This module owns
that machinery as a :class:`ResilientExecutor` driven by a declarative
:class:`ExecutorPolicy`:

* **per-point retry with backoff** — a failing point is retried up to
  ``retries`` times, with ``backoff_s * 2**(attempt-1)`` sleeps between
  rounds;
* **per-point timeout** — enforced *inside* the worker via ``SIGALRM``
  (so a runaway integration is actually interrupted, not just abandoned),
  surfacing as a retryable :class:`PointTimeout`;
* **skip-on-worker-crash** — a worker process that dies (segfault,
  ``os._exit``, OOM kill) breaks the whole pool, implicating every
  in-flight task.  Submission is windowed (at most ``workers`` outstanding
  futures), so at most ``workers`` tasks are implicated; those are re-run
  one at a time in single-worker pools, which pins the crash on the
  guilty task without charging innocent cohabitants an attempt.  With
  ``on_failure="skip"`` the executor completes the rest of the grid and
  reports the failures; with ``"raise"`` (the legacy contract) it still
  drains every task — persisting completed work — before the caller
  re-raises the first failure;
* **heartbeat progress logging** — a daemon thread snapshots a structured
  :class:`ProgressEvent` (done/failed/total plus retries, timeouts, worker
  crashes, in-flight window and queue depth) every ``heartbeat_s`` seconds,
  renders it through the shared :mod:`repro.obs.log` logger, and mirrors
  the counters into :data:`repro.obs.TELEMETRY` (``exec.*`` labels).

The executor is deliberately generic: it runs ``call(*args, **kwargs)``
per task and reports an :class:`ExecutionReport`; the sweep layer maps
tasks to grid coordinates, persists results as they land via the
``on_result`` callback, and records failures as structured store rows.
"""

from __future__ import annotations

import dataclasses
import signal
import threading
import time
from collections.abc import Callable, Hashable, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from ..obs import TELEMETRY
from ..obs import log as obs_log

ON_FAILURE_MODES = ("raise", "skip")


class PointTimeout(RuntimeError):
    """A point exceeded the policy's per-point timeout (retryable)."""


class WorkerCrash(RuntimeError):
    """A worker process died while computing a point (retryable)."""


@dataclasses.dataclass(frozen=True)
class ExecutorPolicy:
    """Declarative execution policy of a campaign run.

    ``workers=None``/``1`` runs points serially in-process (a crashing
    point then takes the campaign with it — only a process pool can
    survive hard crashes).  ``on_failure="raise"`` preserves the legacy
    contract (drain everything, then the caller raises on the first
    failure); ``"skip"`` completes the grid and reports failures so the
    campaign can exit nonzero *after* finishing everything computable.
    """

    workers: int | None = None
    retries: int = 0
    backoff_s: float = 0.5
    timeout_s: float | None = None
    on_failure: str = "raise"
    heartbeat_s: float | None = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be at least 1 (or None for serial)")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be non-negative")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.on_failure not in ON_FAILURE_MODES:
            raise ValueError(
                f"on_failure must be one of {ON_FAILURE_MODES}, got {self.on_failure!r}"
            )
        if self.heartbeat_s is not None and self.heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive (or None)")

    @property
    def pooled(self) -> bool:
        """Whether points run in a process pool (workers > 1)."""
        return self.workers is not None and self.workers > 1


@dataclasses.dataclass(frozen=True)
class PointFailure:
    """One task the executor gave up on after exhausting its retries."""

    task: Any
    error: str
    attempts: int


@dataclasses.dataclass
class ExecutionReport:
    """Outcome of one :meth:`ResilientExecutor.run`."""

    results: dict[Hashable, Any] = dataclasses.field(default_factory=dict)
    failures: list[PointFailure] = dataclasses.field(default_factory=list)
    attempts: dict[Hashable, int] = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures


def call_with_timeout(
    timeout_s: float | None,
    call: Callable[..., Any],
    args: tuple,
    kwargs: dict[str, Any],
) -> Any:
    """Run ``call`` under a ``SIGALRM`` deadline (worker-side enforcement).

    Module-level so process pools can pickle it.  Platforms without
    ``SIGALRM`` (and non-main threads) fall back to running untimed — the
    executor then still retries on real failures, it just cannot interrupt
    a hang.
    """
    if (
        timeout_s is None
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return call(*args, **kwargs)

    def _expired(signum: int, frame: Any) -> None:
        raise PointTimeout(f"point exceeded the per-point timeout of {timeout_s:g}s")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return call(*args, **kwargs)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclasses.dataclass(frozen=True)
class ProgressEvent:
    """Structured snapshot of a running grid — the heartbeat's payload.

    The legacy one-line heartbeat text is now a pure rendering of this
    event (:meth:`render`), so any consumer — the stderr logger, the
    telemetry span log, a future TUI — sees the same numbers.
    """

    done: int
    failed: int
    total: int
    elapsed_s: float
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    inflight: int = 0
    queued: int = 0

    def render(self) -> str:
        text = (
            f"campaign heartbeat: {self.done}/{self.total} points done"
            f" ({self.failed} failed), {self.elapsed_s:.0f}s elapsed"
        )
        extras = []
        if self.inflight:
            extras.append(f"{self.inflight} in flight")
        if self.queued:
            extras.append(f"{self.queued} queued")
        if self.retries:
            extras.append(f"{self.retries} retries")
        if self.timeouts:
            extras.append(f"{self.timeouts} timeouts")
        if self.crashes:
            extras.append(f"{self.crashes} worker crashes")
        if extras:
            text += ", " + ", ".join(extras)
        return text


class _Heartbeat:
    """Progress bookkeeping plus a daemon thread that reports it.

    All executor paths (serial, pooled, isolation re-runs) feed the same
    counters; the beat thread snapshots them as a :class:`ProgressEvent`,
    logs its rendering, writes the event to the telemetry span log when
    tracing, and mirrors the counts into ``exec.*`` telemetry labels.
    """

    def __init__(
        self,
        interval_s: float | None,
        total: int,
        log: Callable[[str], None],
    ) -> None:
        self._interval_s = interval_s
        self._total = total
        self._log = log
        self._done = 0
        self._failed = 0
        self._retries = 0
        self._timeouts = 0
        self._crashes = 0
        self._inflight = 0
        self._queued = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at = time.monotonic()

    def __enter__(self) -> _Heartbeat:
        if self._interval_s is not None:
            self._thread = threading.Thread(target=self._beat, daemon=True)
            self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
        self._publish_telemetry()

    def advance(self, failed: bool = False) -> None:
        with self._lock:
            self._done += 1
            if failed:
                self._failed += 1

    def note_retry(self) -> None:
        with self._lock:
            self._retries += 1
        TELEMETRY.count("exec.retries")

    def note_timeout(self) -> None:
        with self._lock:
            self._timeouts += 1
        TELEMETRY.count("exec.timeouts")

    def note_crash(self) -> None:
        with self._lock:
            self._crashes += 1
        TELEMETRY.count("exec.worker_crashes")

    def set_window(self, inflight: int, queued: int) -> None:
        """Record the pooled submission window (in-flight futures, queue depth)."""
        with self._lock:
            self._inflight = inflight
            self._queued = queued
        TELEMETRY.gauge("exec.inflight", inflight)
        TELEMETRY.gauge("exec.queue_depth", queued)

    def snapshot(self) -> ProgressEvent:
        with self._lock:
            return ProgressEvent(
                done=self._done,
                failed=self._failed,
                total=self._total,
                elapsed_s=time.monotonic() - self._started_at,
                retries=self._retries,
                timeouts=self._timeouts,
                crashes=self._crashes,
                inflight=self._inflight,
                queued=self._queued,
            )

    def _publish_telemetry(self) -> None:
        if not TELEMETRY.enabled:
            return
        event = self.snapshot()
        TELEMETRY.count("exec.points_done", event.done)
        TELEMETRY.count("exec.points_failed", event.failed)
        if TELEMETRY.trace_path is not None:
            TELEMETRY.write_event(
                {"ev": "progress", "final": True, **dataclasses.asdict(event)}
            )

    def _beat(self) -> None:
        while not self._stop.wait(self._interval_s):
            event = self.snapshot()
            self._log(event.render())
            if TELEMETRY.enabled and TELEMETRY.trace_path is not None:
                TELEMETRY.write_event({"ev": "progress", **dataclasses.asdict(event)})


def _default_log(message: str) -> None:
    obs_log.info("executor.progress", message)


class ResilientExecutor:
    """Runs a task grid to completion under an :class:`ExecutorPolicy`."""

    def __init__(
        self,
        policy: ExecutorPolicy | None = None,
        log: Callable[[str], None] = _default_log,
    ) -> None:
        self.policy = policy if policy is not None else ExecutorPolicy()
        self._log = log

    def run(
        self,
        tasks: Sequence[Hashable],
        call: Callable[..., Any],
        task_args: Callable[[Any], tuple[tuple, dict[str, Any]]],
        on_result: Callable[[Any, Any], None] | None = None,
        describe: Callable[[Any], str] = repr,
    ) -> ExecutionReport:
        """Execute every task, retrying per policy; never loses a result.

        ``call`` must be a module-level callable (process pools pickle it);
        ``task_args`` maps a task to its ``(args, kwargs)``.  ``on_result``
        fires in the parent as each point lands — the sweep layer persists
        results there, so completed work survives any later failure.
        """
        policy = self.policy
        report = ExecutionReport(attempts=dict.fromkeys(tasks, 0))
        pending: list[Any] = list(tasks)
        round_index = 0
        with _Heartbeat(policy.heartbeat_s, len(tasks), self._log) as heartbeat:
            while pending:
                if round_index > 0:
                    delay = policy.backoff_s * (2 ** (round_index - 1))
                    if delay > 0:
                        time.sleep(delay)
                failed_round: list[tuple[Any, BaseException]] = []

                def landed(task: Any, result: Any) -> None:
                    report.results[task] = result
                    heartbeat.advance()
                    if on_result is not None:
                        on_result(task, result)

                deferred: list[Any] = []
                if policy.pooled:
                    crashed, deferred = self._run_pooled(
                        pending, call, task_args, landed, failed_round, report,
                        heartbeat,
                    )
                    # Workers that died broke the whole pool; re-run the
                    # implicated window one task per single-worker pool to
                    # pin the crash on the guilty task.
                    if crashed:
                        self._log(
                            f"worker pool died; re-running {len(crashed)} "
                            "implicated point(s) in isolation"
                        )
                    for task in crashed:
                        self._run_isolated(
                            task, call, task_args, landed, failed_round, report,
                            heartbeat,
                        )
                else:
                    for task in pending:
                        report.attempts[task] += 1
                        args, kwargs = task_args(task)
                        try:
                            result = call_with_timeout(
                                policy.timeout_s, call, args, kwargs
                            )
                        except Exception as exc:
                            failed_round.append((task, exc))
                            continue
                        landed(task, result)

                # Tasks the broken pool never started are re-run next
                # round at no attempt cost.
                pending = deferred
                for task, exc in failed_round:
                    if isinstance(exc, PointTimeout):
                        heartbeat.note_timeout()
                    if report.attempts[task] <= policy.retries:
                        heartbeat.note_retry()
                        self._log(
                            f"point {describe(task)} failed "
                            f"(attempt {report.attempts[task]}/"
                            f"{policy.retries + 1}): {exc}; retrying"
                        )
                        pending.append(task)
                    else:
                        heartbeat.advance(failed=True)
                        report.failures.append(
                            PointFailure(
                                task=task,
                                error=f"{type(exc).__name__}: {exc}",
                                attempts=report.attempts[task],
                            )
                        )
                        self._log(
                            f"point {describe(task)} failed permanently "
                            f"after {report.attempts[task]} attempt(s): {exc}"
                        )
                round_index += 1
        return report

    def _run_pooled(
        self,
        tasks: Sequence[Any],
        call: Callable[..., Any],
        task_args: Callable[[Any], tuple[tuple, dict[str, Any]]],
        landed: Callable[[Any, Any], None],
        failed_round: list[tuple[Any, BaseException]],
        report: ExecutionReport,
        heartbeat: _Heartbeat,
    ) -> tuple[list[Any], list[Any]]:
        """One pool round with windowed submission.

        At most ``workers`` futures are outstanding, so a dying worker
        (which breaks the pool and fails *every* outstanding future with
        :class:`BrokenProcessPool`) implicates a bounded window.  Returns
        ``(crashed, deferred)``: the implicated window goes to isolation
        rather than being charged an attempt, and tasks the broken pool
        never started are deferred to the next round at no cost.
        """
        policy = self.policy
        queue = list(tasks)
        crashed: list[Any] = []
        pool = ProcessPoolExecutor(max_workers=policy.workers)
        broken = False
        try:
            futures: dict[Future, Any] = {}

            def submit_next() -> None:
                task = queue.pop(0)
                args, kwargs = task_args(task)
                report.attempts[task] += 1
                futures[
                    pool.submit(call_with_timeout, policy.timeout_s, call, args, kwargs)
                ] = task

            while queue and len(futures) < (policy.workers or 1):
                submit_next()
            while futures:
                heartbeat.set_window(len(futures), len(queue))
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    task = futures.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        broken = True
                        # Not necessarily this task's fault: re-judge it
                        # in isolation without charging the attempt.
                        report.attempts[task] -= 1
                        crashed.append(task)
                        continue
                    except Exception as exc:
                        failed_round.append((task, exc))
                        continue
                    landed(task, result)
                while queue and not broken and len(futures) < (policy.workers or 1):
                    submit_next()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        heartbeat.set_window(0, len(queue))
        return crashed, queue

    def _run_isolated(
        self,
        task: Any,
        call: Callable[..., Any],
        task_args: Callable[[Any], tuple[tuple, dict[str, Any]]],
        landed: Callable[[Any, Any], None],
        failed_round: list[tuple[Any, BaseException]],
        report: ExecutionReport,
        heartbeat: _Heartbeat,
    ) -> None:
        """Re-run one crash-implicated task alone in a 1-worker pool."""
        args, kwargs = task_args(task)
        report.attempts[task] += 1
        with ProcessPoolExecutor(max_workers=1) as pool:
            future = pool.submit(
                call_with_timeout, self.policy.timeout_s, call, args, kwargs
            )
            try:
                result = future.result()
            except BrokenProcessPool:
                heartbeat.note_crash()
                failed_round.append(
                    (task, WorkerCrash("worker process died computing this point"))
                )
                return
            except Exception as exc:
                failed_round.append((task, exc))
                return
        landed(task, result)

"""Pluggable storage backends for the campaign result store.

:class:`~repro.experiments.store.SweepStore` fronts one of three
:class:`StoreBackend` implementations, all persisting the same
self-describing records (content-addressed ``key``, ``schema``,
``metrics``, ``meta``; failure records additionally carry ``kind:
"failure"`` and ``error``):

* :class:`JsonlBackend` — the legacy single-file JSON-lines store, kept
  bit-compatible with files written before the backend split.  Appends are
  crash-safe under concurrent writers: each record is serialised to one
  line and written with a single ``O_APPEND`` :func:`os.write` (plus an
  optional fsync), so two appenders can never interleave *within* a
  record — at worst a crash leaves one torn tail line, which the loader
  tolerates.
* :class:`ShardedJsonlBackend` — a directory of JSON-lines shards.  Keys
  are hash-routed to a fixed shard, so a given key always lands in the
  same file and last-write-wins stays well-defined under N concurrent
  writer processes (each append is the same atomic ``O_APPEND`` write;
  writers on different keys mostly touch different shards, so appender
  contention spreads out).  :meth:`compact` rewrites every shard with only
  the surviving records (last write wins; stale-schema rows and superseded
  failures dropped).
* :class:`SqliteBackend` — a SQLite database in WAL mode with a busy
  timeout, safe for concurrent writer processes.  ``put`` is an UPSERT on
  the key; the common sweep axes (mix, buffer, discipline, substrate,
  seed, topology, arrivals, ...) are extracted from ``meta`` into indexed
  columns, so :meth:`select` answers axis queries with an index scan
  instead of re-parsing every stored record.

All three share one query API — ``select(**axis_filters)`` returning full
records whose ``meta`` matches every filter (``filter=None`` matches
records lacking the field) — which backs ``SweepStore.rows()``, the
campaign per-seed CSV export, and the figure pipeline.

Compaction (`compact()`) assumes no concurrent writers; run it between
campaigns, not during one.
"""

from __future__ import annotations

import json
import os
import sqlite3
from abc import ABC, abstractmethod
from collections.abc import Iterator, Mapping
from hashlib import sha256
from pathlib import Path
from typing import Any

from ..obs import TELEMETRY

#: ``kind`` of a failure record; result records carry no ``kind`` field so
#: the single-file backend stays bit-compatible with pre-backend stores.
FAILURE_KIND = "failure"

#: Shard-file count of the sharded backend (shard of a key = sha256 mod N).
DEFAULT_NUM_SHARDS = 16

#: Filename pattern of the sharded backend's shard files.
SHARD_PATTERN = "shard-{:02d}.jsonl"


def encode_record(record: Mapping[str, Any]) -> str:
    """Serialise one record to its canonical JSON line (sorted keys)."""
    return json.dumps(record, sort_keys=True) + "\n"


def atomic_append(path: Path, line: str, fsync: bool = True) -> None:
    """Append one record line with a single ``O_APPEND`` write.

    A single :func:`os.write` on an ``O_APPEND`` descriptor is atomic with
    respect to other appenders on POSIX regular files, so concurrent
    writers cannot interleave within a record.  A crash mid-write leaves
    at most one torn tail line, which :func:`iter_jsonl_records` skips.
    ``fsync=False`` trades durability of the last few records for append
    throughput (the OS still orders the appends).
    """
    data = line.encode()
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        written = os.write(fd, data)
        while written < len(data):  # pragma: no cover - signals/ENOSPC only
            written += os.write(fd, data[written:])
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)


def _heal_torn_tail(path: Path) -> None:
    """Terminate an unterminated last line left by a crashed writer.

    A writer that died mid-:func:`atomic_append` leaves a partial record
    with no trailing newline.  Readers skip the undecodable line, but a
    later append would glue its record onto the fragment and lose it.
    Appending a bare newline at load time fences the torn fragment into
    its own (skipped) line so subsequent appends start fresh.
    """
    try:
        size = path.stat().st_size
    except OSError:
        return
    if size == 0:
        return
    with path.open("rb") as handle:
        handle.seek(-1, os.SEEK_END)
        if handle.read(1) != b"\n":
            atomic_append(path, "\n", fsync=False)
            TELEMETRY.count("store.torn_tail_heals")


def iter_jsonl_records(path: Path) -> Iterator[dict[str, Any]]:
    """Yield parsed records from one JSON-lines file, skipping torn lines."""
    if not path.exists():
        return
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # tolerate a torn tail line from a crashed writer
            if isinstance(record, dict):
                yield record


def shard_of(key: str, num_shards: int = DEFAULT_NUM_SHARDS) -> int:
    """Stable shard index of a key (platform-independent, unsalted)."""
    return int.from_bytes(sha256(key.encode()).digest()[:4], "big") % num_shards


def _matches(meta: Mapping[str, Any], filters: Mapping[str, Any]) -> bool:
    return all(meta.get(name) == value for name, value in filters.items())


class StoreBackend(ABC):
    """Persistence strategy behind :class:`~repro.experiments.store.SweepStore`.

    A backend stores two record families keyed by the content-addressed
    scenario key: *results* (completed points) and *failures* (points the
    executor gave up on, with the offending axis combo and error).  A
    result write supersedes any recorded failure under the same key.
    Only records of the current ``schema_version`` are served.
    """

    #: Short name used by the CLI/preset ``backend`` selector.
    kind: str

    def __init__(self, path: Path, schema_version: int) -> None:
        self.path = Path(path)
        self.schema_version = schema_version

    @abstractmethod
    def get(self, key: str) -> dict[str, Any] | None:
        """The current-schema result record under ``key`` (or ``None``)."""

    @abstractmethod
    def put(self, record: Mapping[str, Any]) -> None:
        """Persist one result record immediately (clears any failure)."""

    @abstractmethod
    def put_failure(self, record: Mapping[str, Any]) -> None:
        """Persist one failure record (superseded by a later result)."""

    @abstractmethod
    def records(self) -> Iterator[dict[str, Any]]:
        """Iterate over all current-schema result records."""

    @abstractmethod
    def failures(self) -> list[dict[str, Any]]:
        """All current-schema failure records not superseded by a result."""

    @abstractmethod
    def select(self, **filters: Any) -> list[dict[str, Any]]:
        """Result records whose ``meta`` matches every filter."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of current-schema result records."""

    @abstractmethod
    def __contains__(self, key: str) -> bool:
        """Whether a current-schema result record exists under ``key``."""

    @abstractmethod
    def compact(self) -> None:
        """Drop stale/superseded records from disk (requires no writers)."""

    def close(self) -> None:
        """Release any held resources (no-op for file backends)."""


class _IndexedJsonlBackend(StoreBackend):
    """Shared in-memory index + record routing of the JSON-lines backends."""

    def __init__(self, path: Path, schema_version: int, fsync: bool = True) -> None:
        super().__init__(path, schema_version)
        self.fsync = fsync
        self._index: dict[str, dict[str, Any]] = {}
        self._failures: dict[str, dict[str, Any]] = {}
        self._load()

    @abstractmethod
    def _files(self) -> list[Path]:
        """The JSON-lines files holding this store, in load order."""

    @abstractmethod
    def _file_for(self, key: str) -> Path:
        """The file new records under ``key`` are appended to."""

    def _load(self) -> None:
        for path in self._files():
            _heal_torn_tail(path)
            for record in iter_jsonl_records(path):
                self._apply(record)

    def _apply(self, record: dict[str, Any]) -> None:
        """Replay one persisted record into the in-memory index."""
        if record.get("schema") != self.schema_version:
            return
        key = record.get("key")
        if not isinstance(key, str):
            return
        if record.get("kind") == FAILURE_KIND:
            # A failure never shadows a completed result for the same key
            # (a late failure line can appear after the result that
            # superseded an earlier one when two campaigns interleave).
            if key not in self._index:
                self._failures[key] = record
        else:
            # A completed result supersedes any recorded failure.
            self._index[key] = record
            self._failures.pop(key, None)

    def _append(self, record: Mapping[str, Any]) -> None:
        path = self._file_for(record["key"])
        path.parent.mkdir(parents=True, exist_ok=True)
        with TELEMETRY.span("store.append", backend=self.kind):
            atomic_append(path, encode_record(record), fsync=self.fsync)

    def get(self, key: str) -> dict[str, Any] | None:
        return self._index.get(key)

    def put(self, record: Mapping[str, Any]) -> None:
        record = dict(record)
        self._append(record)
        self._index[record["key"]] = record
        self._failures.pop(record["key"], None)

    def put_failure(self, record: Mapping[str, Any]) -> None:
        record = dict(record)
        self._append(record)
        if record["key"] not in self._index:
            self._failures[record["key"]] = record

    def records(self) -> Iterator[dict[str, Any]]:
        return iter(self._index.values())

    def failures(self) -> list[dict[str, Any]]:
        return list(self._failures.values())

    def select(self, **filters: Any) -> list[dict[str, Any]]:
        with TELEMETRY.span("store.select", backend=self.kind):
            return [
                record
                for record in self._index.values()
                if _matches(record.get("meta", {}), filters)
            ]

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def _survivors_for(self, path: Path) -> list[dict[str, Any]]:
        """The current records that belong in one file after compaction."""
        return [
            record
            for source in (self._index, self._failures)
            for record in source.values()
            if self._file_for(record["key"]) == path
        ]

    def compact(self) -> None:
        for path in self._files():
            survivors = self._survivors_for(path)
            tmp = path.with_suffix(path.suffix + ".compact")
            with tmp.open("w") as handle:
                for record in survivors:
                    handle.write(encode_record(record))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)


class JsonlBackend(_IndexedJsonlBackend):
    """The legacy single-file JSON-lines store (bit-compatible)."""

    kind = "jsonl"

    def _files(self) -> list[Path]:
        return [self.path]

    def _file_for(self, key: str) -> Path:
        return self.path

    def compact(self) -> None:
        if self.path.exists() or self._index or self._failures:
            super().compact()


class ShardedJsonlBackend(_IndexedJsonlBackend):
    """A directory of JSON-lines shards with hash-routed keys.

    ``path`` is a directory holding ``shard-XX.jsonl`` files.  A key's
    records always land in the same shard, so last-write-wins ordering is
    the append order of that one file even with many writer processes.
    """

    kind = "sharded"

    def __init__(
        self,
        path: Path,
        schema_version: int,
        fsync: bool = True,
        num_shards: int = DEFAULT_NUM_SHARDS,
    ) -> None:
        self.num_shards = num_shards
        super().__init__(path, schema_version, fsync=fsync)

    def _files(self) -> list[Path]:
        return [self.path / SHARD_PATTERN.format(i) for i in range(self.num_shards)]

    def _file_for(self, key: str) -> Path:
        return self.path / SHARD_PATTERN.format(shard_of(key, self.num_shards))

    def compact(self) -> None:
        if self.path.exists():
            super().compact()


#: ``meta`` fields extracted into indexed SQLite columns.  Everything else
#: (per-hop lists, churn extras, sampling params) stays queryable through
#: the JSON ``meta`` blob via the Python fallback filter.
SQLITE_AXIS_COLUMNS: dict[str, str] = {
    "mix": "TEXT",
    "buffer_bdp": "REAL",
    "discipline": "TEXT",
    "substrate": "TEXT",
    "seed": "INTEGER",
    "short_rtt": "INTEGER",
    "duration_s": "REAL",
    "topology": "TEXT",
    "arrivals": "TEXT",
}


class SqliteBackend(StoreBackend):
    """SQLite store: WAL mode, UPSERT on key, indexed axis columns."""

    kind = "sqlite"

    def __init__(self, path: Path, schema_version: int, fsync: bool = True) -> None:
        super().__init__(path, schema_version)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path, timeout=30.0, isolation_level=None)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA busy_timeout=30000")
        # NORMAL still syncs the WAL at checkpoints; FULL syncs every commit
        # (the analogue of the JSON-lines backends' per-record fsync).
        self._conn.execute(f"PRAGMA synchronous={'FULL' if fsync else 'NORMAL'}")
        self._create_tables()

    def _create_tables(self) -> None:
        columns = ", ".join(
            f"{name} {sqltype}" for name, sqltype in SQLITE_AXIS_COLUMNS.items()
        )
        self._conn.execute(
            f"""CREATE TABLE IF NOT EXISTS results (
                key TEXT PRIMARY KEY,
                schema INTEGER NOT NULL,
                metrics TEXT NOT NULL,
                meta TEXT NOT NULL,
                runtime TEXT,
                {columns}
            )"""
        )
        # Databases created before the runtime block existed lack the
        # nullable column; add it in place so old rows load unchanged
        # (their runtime stays NULL — no SCHEMA_VERSION bump needed).
        existing = {
            row["name"] for row in self._conn.execute("PRAGMA table_info(results)")
        }
        if "runtime" not in existing:
            self._conn.execute("ALTER TABLE results ADD COLUMN runtime TEXT")
        self._conn.execute(
            """CREATE TABLE IF NOT EXISTS failures (
                key TEXT PRIMARY KEY,
                schema INTEGER NOT NULL,
                error TEXT NOT NULL,
                meta TEXT NOT NULL
            )"""
        )
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_results_axes ON results "
            "(schema, substrate, mix, discipline, buffer_bdp, seed)"
        )
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_results_topology ON results (topology)"
        )
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_results_arrivals ON results (arrivals)"
        )

    @staticmethod
    def _column_value(value: Any) -> Any:
        if isinstance(value, bool):
            return int(value)
        return value

    def _row_to_record(self, row: sqlite3.Row) -> dict[str, Any]:
        record = {
            "schema": row["schema"],
            "key": row["key"],
            "metrics": json.loads(row["metrics"]),
            "meta": json.loads(row["meta"]),
        }
        if row["runtime"] is not None:
            record["runtime"] = json.loads(row["runtime"])
        return record

    def get(self, key: str) -> dict[str, Any] | None:
        row = self._conn.execute(
            "SELECT * FROM results WHERE key = ? AND schema = ?",
            (key, self.schema_version),
        ).fetchone()
        return None if row is None else self._row_to_record(row)

    def put(self, record: Mapping[str, Any]) -> None:
        meta = record.get("meta", {})
        runtime = record.get("runtime")
        axis_names = list(SQLITE_AXIS_COLUMNS)
        columns = ["key", "schema", "metrics", "meta", "runtime", *axis_names]
        values = [
            record["key"],
            record["schema"],
            json.dumps(record["metrics"], sort_keys=True),
            json.dumps(meta, sort_keys=True),
            None if runtime is None else json.dumps(runtime, sort_keys=True),
            *(self._column_value(meta.get(name)) for name in axis_names),
        ]
        assignments = ", ".join(f"{c} = excluded.{c}" for c in columns if c != "key")
        with TELEMETRY.span("store.append", backend=self.kind):
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    f"INSERT INTO results ({', '.join(columns)}) "
                    f"VALUES ({', '.join('?' for _ in columns)}) "
                    f"ON CONFLICT(key) DO UPDATE SET {assignments}",
                    values,
                )
                self._conn.execute(
                    "DELETE FROM failures WHERE key = ?", (record["key"],)
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def put_failure(self, record: Mapping[str, Any]) -> None:
        self._conn.execute(
            "INSERT INTO failures (key, schema, error, meta) VALUES (?, ?, ?, ?) "
            "ON CONFLICT(key) DO UPDATE SET "
            "schema = excluded.schema, error = excluded.error, meta = excluded.meta",
            (
                record["key"],
                record["schema"],
                record.get("error", ""),
                json.dumps(record.get("meta", {}), sort_keys=True),
            ),
        )

    def records(self) -> Iterator[dict[str, Any]]:
        rows = self._conn.execute(
            "SELECT * FROM results WHERE schema = ? ORDER BY rowid",
            (self.schema_version,),
        )
        return (self._row_to_record(row) for row in rows)

    def failures(self) -> list[dict[str, Any]]:
        rows = self._conn.execute(
            "SELECT * FROM failures WHERE schema = ? "
            "AND key NOT IN (SELECT key FROM results WHERE schema = ?)",
            (self.schema_version, self.schema_version),
        )
        return [
            {
                "schema": row["schema"],
                "key": row["key"],
                "kind": FAILURE_KIND,
                "error": row["error"],
                "meta": json.loads(row["meta"]),
            }
            for row in rows
        ]

    def select(self, **filters: Any) -> list[dict[str, Any]]:
        clauses = ["schema = ?"]
        params: list[Any] = [self.schema_version]
        residual: dict[str, Any] = {}
        for name, value in filters.items():
            if name not in SQLITE_AXIS_COLUMNS:
                residual[name] = value
            elif value is None:
                # ``meta`` lacking the field and ``meta[field] is None``
                # both land as NULL columns, matching dict.get semantics.
                clauses.append(f"{name} IS NULL")
            else:
                clauses.append(f"{name} = ?")
                params.append(self._column_value(value))
        with TELEMETRY.span("store.select", backend=self.kind):
            rows = self._conn.execute(
                f"SELECT * FROM results WHERE {' AND '.join(clauses)} ORDER BY rowid",
                params,
            )
            records = (self._row_to_record(row) for row in rows)
            if not residual:
                return list(records)
            return [r for r in records if _matches(r.get("meta", {}), residual)]

    def __len__(self) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM results WHERE schema = ?", (self.schema_version,)
        ).fetchone()
        return int(row[0])

    def __contains__(self, key: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM results WHERE key = ? AND schema = ?",
            (key, self.schema_version),
        ).fetchone()
        return row is not None

    def compact(self) -> None:
        self._conn.execute("DELETE FROM results WHERE schema != ?", (self.schema_version,))
        self._conn.execute("DELETE FROM failures WHERE schema != ?", (self.schema_version,))
        self._conn.execute(
            "DELETE FROM failures WHERE key IN "
            "(SELECT key FROM results WHERE schema = ?)",
            (self.schema_version,),
        )
        self._conn.execute("VACUUM")

    def close(self) -> None:
        self._conn.close()


BACKENDS: dict[str, type[StoreBackend]] = {
    backend.kind: backend
    for backend in (JsonlBackend, ShardedJsonlBackend, SqliteBackend)
}

#: Path suffixes implying the SQLite backend.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def split_backend_spec(spec: str) -> tuple[str | None, str]:
    """Split an explicit ``backend:path`` store spec (``"sqlite:res.db"``)."""
    head, sep, tail = spec.partition(":")
    if sep and head in BACKENDS:
        return head, tail
    return None, spec


def infer_backend(path: Path) -> str:
    """Pick a backend from a bare path (suffix / directory heuristics)."""
    if path.suffix in SQLITE_SUFFIXES:
        return "sqlite"
    if path.suffix == ".shards" or path.is_dir():
        return "sharded"
    return "jsonl"


def make_backend(
    path: str | Path,
    schema_version: int,
    backend: str | None = None,
    fsync: bool = True,
) -> StoreBackend:
    """Build the backend for a store path.

    ``backend`` forces a kind (``"jsonl"``/``"sharded"``/``"sqlite"``);
    string paths may carry the same prefix (``"sqlite:results.db"``,
    usable via ``--store`` and ``REPRO_STORE``).  Bare paths infer from
    the suffix: ``.sqlite``/``.sqlite3``/``.db`` → SQLite, ``.shards`` or
    an existing directory → sharded, anything else → the legacy
    single-file JSON-lines store.
    """
    if isinstance(path, str):
        prefix, path = split_backend_spec(path)
        if prefix is not None:
            if backend is not None and backend != prefix:
                raise ValueError(
                    f"store spec {prefix}:{path} conflicts with backend={backend!r}"
                )
            backend = prefix
    path = Path(path)
    kind = backend if backend is not None else infer_backend(path)
    if kind not in BACKENDS:
        raise ValueError(
            f"unknown store backend {kind!r}; expected one of {sorted(BACKENDS)}"
        )
    return BACKENDS[kind](path, schema_version, fsync=fsync)

"""Phase diagrams and prediction-vs-simulation residuals.

The report layer of the analytic campaign substrate: :func:`phase_grid`
computes stable/oscillatory phase diagrams over buffer x RTT x flow-count
grids straight from the equilibrium/stability theory
(:mod:`repro.analysis`), and :func:`validate_against_store` joins those
predictions against simulation rows persisted by ``run_sweep`` /
``simulate_many`` campaigns (pulled via ``SweepStore.select()``), emitting
residual columns per metric.  ``repro-bbr stability`` builds its table,
CSV and JSON output on these functions.

The analytic predictions are *equilibrium* statements while the
simulation metrics are 5-second time averages that include the start-up
transient, so agreement is judged against documented thresholds
(:data:`DEFAULT_THRESHOLDS`) rather than exact equality; see
``tests/test_analytic_campaign.py`` for the measured residuals that the
defaults are derived from.
"""

from __future__ import annotations

import csv
import io
import math
from collections.abc import Iterable, Mapping, Sequence

from .. import units
from ..analysis import analyze_network, analyze_scenario, reference_network
from . import scenarios
from .store import SweepStore

#: Pure CCA mixes whose store rows a phase diagram can be validated
#: against (mixed-population rows have no single "version" axis).
MIX_VERSIONS = {"BBRv1": "bbr1", "BBRv2": "bbr2"}

#: Default phase-diagram axes: the paper's two BBR versions over a
#: buffer x RTT x flow-count grid spanning the shallow-to-deep regimes.
DEFAULT_VERSIONS = ("bbr1", "bbr2")
DEFAULT_FLOW_COUNTS = (2, 4, 10)
DEFAULT_RTTS_MS = (20.0, 35.0, 50.0)
DEFAULT_BUFFERS_BDP = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)

#: Documented agreement thresholds (absolute, in each metric's own unit —
#: percentage points) for :func:`agreement`.  The simulation averages
#: include the start-up transient (queue overshoot, estimator warm-up)
#: that the equilibrium predictions deliberately exclude, which dominates
#: the residuals; the values are calibrated against measured fluid
#: residuals on the BBRv1 deep-buffer and BBRv2 regimes in
#: ``tests/test_analytic_campaign.py``.
DEFAULT_THRESHOLDS: Mapping[str, float] = {
    "utilization_percent": 10.0,
    "loss_percent": 5.0,
    "buffer_occupancy_percent": 25.0,
}

#: The metric columns compared by :func:`validate_against_store`.
RESIDUAL_METRICS = tuple(DEFAULT_THRESHOLDS)


def phase_row(
    version: str,
    num_flows: int,
    rtt_ms: float,
    buffer_bdp: float,
    capacity_mbps: float = 100.0,
) -> dict:
    """One phase-diagram cell: equilibrium + stability of a reference network."""
    rtt_s = rtt_ms / 1e3
    net = reference_network(
        num_flows, rtt_s=rtt_s, capacity_mbps=capacity_mbps, buffer_bdp=buffer_bdp
    )
    point = analyze_network((version,) * num_flows, net)
    bdp_pkts = units.bdp_packets(point.capacity_pps, rtt_s)
    return {
        "version": version,
        "flows": num_flows,
        "rtt_ms": rtt_ms,
        "buffer_bdp": buffer_bdp,
        "regime": point.regime,
        "method": point.method,
        "theorems": point.theorems,
        "classification": point.classification,
        "max_re_lambda": point.max_real_part,
        "queue_bdp": point.queue_pkts / bdp_pkts,
        "loss_fraction": point.loss_fraction,
        "aggregate_rate_mbps": units.pps_to_mbps(point.aggregate_rate_pps),
    }


def phase_grid(
    versions: Sequence[str] = DEFAULT_VERSIONS,
    flow_counts: Sequence[int] = DEFAULT_FLOW_COUNTS,
    rtts_ms: Sequence[float] = DEFAULT_RTTS_MS,
    buffers_bdp: Sequence[float] = DEFAULT_BUFFERS_BDP,
    capacity_mbps: float = 100.0,
) -> list[dict]:
    """The full phase diagram over a version x flows x RTT x buffer grid."""
    return [
        phase_row(version, num_flows, rtt_ms, buffer_bdp, capacity_mbps)
        for version in versions
        for num_flows in flow_counts
        for rtt_ms in rtts_ms
        for buffer_bdp in buffers_bdp
    ]


def rows_csv(rows: Iterable[Mapping]) -> str:
    """Render dict rows as CSV text (header from the first row's keys)."""
    rows = list(rows)
    if not rows:
        return ""
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return out.getvalue()


def json_safe(value):
    """Recursively replace NaN/inf floats with None for strict JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, Mapping):
        return {key: json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    return value


def validate_against_store(store: SweepStore, substrate: str | None = None) -> list[dict]:
    """Join analytic predictions against the store's simulation rows.

    Selects every schedule-free, droptail, dumbbell simulation record
    whose mix is a pure BBR version (see :data:`MIX_VERSIONS`), recomputes
    the analytic prediction for its exact scenario, and emits one residual
    row per record: the store coordinates, the predicted classification /
    regime, and ``predicted_* / measured_* / residual_*`` columns for each
    metric in :data:`RESIDUAL_METRICS`.  ``substrate`` restricts to one
    simulation substrate; analytic rows are never validated against
    themselves.
    """
    out: list[dict] = []
    predictions: dict[tuple, object] = {}
    for record in store.select():
        meta = record.get("meta", {})
        mix = meta.get("mix")
        if mix not in MIX_VERSIONS:
            continue
        row_substrate = meta.get("substrate")
        if row_substrate == "analytic":
            continue
        if substrate is not None and row_substrate != substrate:
            continue
        if meta.get("discipline") != "droptail":
            continue
        if meta.get("topology") is not None or meta.get("arrivals") is not None:
            continue
        # The equilibrium depends only on the network, not on the run
        # length, the integrator step or the seed: memoise per network.
        memo_key = (mix, meta["buffer_bdp"], bool(meta.get("short_rtt")))
        point = predictions.get(memo_key)
        if point is None:
            config = scenarios.aggregate_scenario(
                mix,
                buffer_bdp=meta["buffer_bdp"],
                discipline="droptail",
                short_rtt=bool(meta.get("short_rtt")),
                duration_s=meta.get("duration_s", 5.0),
                dt=meta.get("dt", scenarios.SWEEP_DT),
                whi_init_bdp=meta.get("whi_init_bdp"),
                seed=int(meta.get("seed", 1)),
            )
            point = predictions[memo_key] = analyze_scenario(config)
        predicted = point.metrics().as_dict()
        measured = record["metrics"]
        row = {
            "mix": mix,
            "version": MIX_VERSIONS[mix],
            "buffer_bdp": meta["buffer_bdp"],
            "substrate": row_substrate,
            "seed": meta.get("seed", 1),
            "regime": point.regime,
            "classification": point.classification,
            "max_re_lambda": point.max_real_part,
        }
        for metric in RESIDUAL_METRICS:
            row[f"predicted_{metric}"] = predicted[metric]
            row[f"measured_{metric}"] = measured[metric]
            row[f"residual_{metric}"] = predicted[metric] - measured[metric]
        row["agrees"] = agreement(row)
        out.append(row)
    return out


def agreement(
    residual_row: Mapping, thresholds: Mapping[str, float] = DEFAULT_THRESHOLDS
) -> bool:
    """Whether every residual column is within its documented threshold."""
    return all(
        abs(residual_row[f"residual_{metric}"]) <= limit
        for metric, limit in thresholds.items()
    )

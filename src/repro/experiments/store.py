"""Persistent, content-addressed store for sweep/campaign results.

The paper's aggregate figures (Figs. 6-10, 13-17) average many randomized
runs; recomputing every sweep point inside every process made multi-seed
campaigns impractical.  This module persists each completed point to disk
the moment it finishes, keyed by a *stable content hash* of everything that
determines its result:

* the full :class:`~repro.config.ScenarioConfig` (topology, flows, fluid
  parameters, duration, **seed**),
* the substrate (``"fluid"`` or ``"emulation"``) and its sampling
  parameters (``record_interval_s`` and ``scheduler`` for the emulator),
* and :data:`SCHEMA_VERSION`, bumped whenever the simulation code changes
  in a way that invalidates stored results.

The store is an append-only JSON-lines file: one self-describing record per
point, last-write-wins on key collisions, so interrupted or crashed sweeps
resume without recomputing finished points and ``--workers N`` process
pools share completed work across restarts.  Select a store with the
``REPRO_STORE`` environment variable or the ``--store PATH`` CLI flag::

    REPRO_STORE=results.jsonl repro-bbr sweep --substrate emulation --seeds 5
    repro-bbr campaign --store results.jsonl --seeds 5
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from collections.abc import Iterator, Mapping
from typing import Any

from ..config import ScenarioConfig
from ..metrics.aggregate import AggregateMetrics

#: Bump when simulator/emulator semantics change enough that previously
#: stored results are no longer comparable with freshly computed ones.
#: v2: the topology subsystem — ``ScenarioConfig`` grew ``topology`` (and
#: ``LinkConfig`` a ``name``), so every scenario hash changed; keys are now
#: topology-aware (a parking-lot point and a dumbbell point never collide).
#: v3: the fluid model attenuates multi-hop arrivals by upstream
#: loss/capacity and picks the effective (survival-scaled) bottleneck for
#: Eq. 17, so every multi-hop fluid result changed; v2 rows are skipped on
#: load rather than served stale.
#: v4: time-varying flow populations — ``ScenarioConfig`` grew a
#: ``schedule`` (:class:`~repro.config.FlowSchedule`), so every scenario
#: hash changed, and ``AggregateMetrics`` grew the churn columns (FCT
#: percentiles, active-set fairness, mean active flows); v3 rows are
#: skipped on load rather than served without the new columns.
SCHEMA_VERSION = 4

#: Environment variable naming the default store file.
ENV_VAR = "REPRO_STORE"


def stable_hash(obj: Any) -> str:
    """A stable content hash of a JSON-serialisable object.

    Dictionaries are key-sorted and floats serialised by ``repr`` via
    ``json.dumps``, so the digest is reproducible across processes and
    platforms (unlike ``hash()``, which is salted per process).
    """
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def scenario_key(
    config: ScenarioConfig,
    substrate: str,
    record_interval_s: float = 0.01,
    scheduler: str = "delayline",
) -> str:
    """Content-addressed key of one (scenario, substrate, sampling) point.

    The full scenario configuration — including the seed and every fluid
    parameter — is hashed together with the substrate, the emulator's
    sampling parameters and :data:`SCHEMA_VERSION`.  The fluid model is
    deterministic and does not consume the seed (or the emulator's sampling
    parameters) *unless* the flow schedule draws random arrivals or sizes,
    so for seed-free scenarios those are excluded from fluid keys: seed
    replicas of such a fluid point all resolve to one stored record.
    """
    scenario = dataclasses.asdict(config)
    payload = {
        "schema": SCHEMA_VERSION,
        "scenario": scenario,
        "substrate": substrate,
    }
    if substrate == "emulation":
        payload["record_interval_s"] = record_interval_s
        payload["scheduler"] = scheduler
    elif config.schedule is None or not config.schedule.uses_seed:
        scenario.pop("seed", None)
    return stable_hash(payload)


class SweepStore:
    """An append-only JSON-lines store of computed sweep points.

    Each record carries the content-addressed ``key``, the stored
    :class:`~repro.metrics.aggregate.AggregateMetrics`, and a ``meta``
    mapping of human-readable coordinates (mix, buffer, discipline, seed,
    ...) so per-seed rows are recoverable without re-deriving hashes.
    ``put`` appends and flushes immediately — every completed point survives
    a crash of the surrounding sweep.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._index: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # tolerate a torn tail line from a crashed writer
                if record.get("schema") != SCHEMA_VERSION:
                    continue
                key = record.get("key")
                if isinstance(key, str):
                    self._index[key] = record

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def get(self, key: str) -> AggregateMetrics | None:
        """Fetch stored metrics by key, counting hits/misses."""
        record = self._index.get(key)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return AggregateMetrics(**record["metrics"])

    def put(
        self,
        key: str,
        metrics: AggregateMetrics,
        meta: Mapping[str, Any] | None = None,
    ) -> None:
        """Persist one completed point immediately (append + flush)."""
        record = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "metrics": metrics.as_dict(),
            "meta": dict(meta) if meta else {},
        }
        self._index[key] = record
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def records(self) -> Iterator[dict[str, Any]]:
        """Iterate over all stored records (e.g. to export per-seed rows)."""
        return iter(self._index.values())

    def rows(self, **filters: Any) -> list[dict[str, Any]]:
        """Flatten stored records into CSV-friendly rows.

        ``filters`` restrict on ``meta`` fields, e.g.
        ``store.rows(mix="BBRv1", discipline="droptail")``.
        """
        out = []
        for record in self._index.values():
            meta = record.get("meta", {})
            if any(meta.get(name) != value for name, value in filters.items()):
                continue
            row = dict(meta)
            row.update(record["metrics"])
            out.append(row)
        return out


def resolve_store(
    store: SweepStore | str | Path | bool | None,
) -> SweepStore | None:
    """Coerce a store argument into a :class:`SweepStore` (or ``None``).

    ``None`` falls back to the ``REPRO_STORE`` environment variable; when
    that is unset too, persistence is disabled.  ``False`` disables the
    store outright, ignoring the environment — used for process-pool
    workers, whose results the parent persists centrally.
    """
    if store is False:
        return None
    if isinstance(store, SweepStore):
        return store
    if store is not None and store is not True:
        return SweepStore(store)
    env = os.environ.get(ENV_VAR)
    return SweepStore(env) if env else None

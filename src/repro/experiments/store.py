"""Persistent, content-addressed store for sweep/campaign results.

The paper's aggregate figures (Figs. 6-10, 13-17) average many randomized
runs; recomputing every sweep point inside every process made multi-seed
campaigns impractical.  This module persists each completed point to disk
the moment it finishes, keyed by a *stable content hash* of everything that
determines its result:

* the full :class:`~repro.config.ScenarioConfig` (topology, flows, fluid
  parameters, duration, **seed**),
* the substrate (``"fluid"`` or ``"emulation"``) and its sampling
  parameters (``record_interval_s`` and ``scheduler`` for the emulator),
* and :data:`SCHEMA_VERSION`, bumped whenever the simulation code changes
  in a way that invalidates stored results.

Persistence is delegated to a pluggable :class:`StoreBackend`
(:mod:`repro.experiments.backends`): the legacy single-file JSON-lines
store (bit-compatible with files written before the backend split), a
sharded JSON-lines store (hash-routed keys, one shard per key class, safe
concurrent appenders, ``compact()``), and a SQLite store (WAL mode, UPSERT
on key, indexed axis columns answering ``select(**axis_filters)`` without
full scans).  Every record is self-describing and last-write-wins on key
collisions, so interrupted or crashed sweeps resume without recomputing
finished points and ``--workers N`` process pools share completed work
across restarts.  Failed points are recorded as structured *failure* rows
(axis combo + error) that a later successful run supersedes.

Select a store with the ``REPRO_STORE`` environment variable or the
``--store PATH`` CLI flag; the backend is inferred from the path (or
forced with a ``backend:`` prefix / the ``--backend`` flag)::

    REPRO_STORE=results.jsonl repro-bbr sweep --substrate emulation --seeds 5
    repro-bbr campaign --store results.sqlite --seeds 5
    repro-bbr campaign --store sharded:results.shards --workers 8
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from collections.abc import Iterator, Mapping
from typing import Any

from ..config import ScenarioConfig
from ..metrics.aggregate import AggregateMetrics
from ..obs import TELEMETRY
from .backends import make_backend

#: Bump when simulator/emulator semantics change enough that previously
#: stored results are no longer comparable with freshly computed ones.
#: v2: the topology subsystem — ``ScenarioConfig`` grew ``topology`` (and
#: ``LinkConfig`` a ``name``), so every scenario hash changed; keys are now
#: topology-aware (a parking-lot point and a dumbbell point never collide).
#: v3: the fluid model attenuates multi-hop arrivals by upstream
#: loss/capacity and picks the effective (survival-scaled) bottleneck for
#: Eq. 17, so every multi-hop fluid result changed; v2 rows are skipped on
#: load rather than served stale.
#: v4: time-varying flow populations — ``ScenarioConfig`` grew a
#: ``schedule`` (:class:`~repro.config.FlowSchedule`), so every scenario
#: hash changed, and ``AggregateMetrics`` grew the churn columns (FCT
#: percentiles, active-set fairness, mean active flows); v3 rows are
#: skipped on load rather than served without the new columns.
#: (The PR-8 backend split changed *where* records live, not what they
#: mean: v4 rows written by the single-file store load unchanged.)
SCHEMA_VERSION = 4

#: Environment variable naming the default store file.
ENV_VAR = "REPRO_STORE"


def stable_hash(obj: Any) -> str:
    """A stable content hash of a JSON-serialisable object.

    Dictionaries are key-sorted and floats serialised by ``repr`` via
    ``json.dumps``, so the digest is reproducible across processes and
    platforms (unlike ``hash()``, which is salted per process).
    """
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def scenario_key(
    config: ScenarioConfig,
    substrate: str,
    record_interval_s: float = 0.01,
    scheduler: str = "delayline",
) -> str:
    """Content-addressed key of one (scenario, substrate, sampling) point.

    The full scenario configuration — including the seed and every fluid
    parameter — is hashed together with the substrate, the emulator's
    sampling parameters and :data:`SCHEMA_VERSION`.  The fluid model is
    deterministic and does not consume the seed (or the emulator's sampling
    parameters) *unless* the flow schedule draws random arrivals or sizes,
    so for seed-free scenarios those are excluded from fluid keys: seed
    replicas of such a fluid point all resolve to one stored record.
    """
    scenario = dataclasses.asdict(config)
    payload = {
        "schema": SCHEMA_VERSION,
        "scenario": scenario,
        "substrate": substrate,
    }
    if substrate == "emulation":
        payload["record_interval_s"] = record_interval_s
        payload["scheduler"] = scheduler
    elif config.schedule is None or not config.schedule.uses_seed:
        scenario.pop("seed", None)
    return stable_hash(payload)


class SweepStore:
    """A persistent store of computed sweep points over a pluggable backend.

    Each record carries the content-addressed ``key``, the stored
    :class:`~repro.metrics.aggregate.AggregateMetrics`, and a ``meta``
    mapping of human-readable coordinates (mix, buffer, discipline, seed,
    ...) so per-seed rows are recoverable without re-deriving hashes.
    ``put`` persists immediately — every completed point survives a crash
    of the surrounding sweep — and is safe under concurrent writer
    processes on all backends.  ``put_failure`` records a point the
    executor gave up on (axis combo + error); a later successful ``put``
    under the same key supersedes it.

    ``backend`` selects the storage strategy (``"jsonl"``/``"sharded"``/
    ``"sqlite"``; default inferred from the path — see
    :func:`repro.experiments.backends.make_backend`); ``fsync=False``
    trades tail durability for append throughput.
    """

    def __init__(
        self,
        path: str | Path,
        backend: str | None = None,
        fsync: bool = True,
    ) -> None:
        self._backend = make_backend(path, SCHEMA_VERSION, backend=backend, fsync=fsync)
        self.path = self._backend.path
        self.hits = 0
        self.misses = 0

    @property
    def backend(self) -> str:
        """The storage backend kind (``jsonl``/``sharded``/``sqlite``)."""
        return self._backend.kind

    def __len__(self) -> int:
        return len(self._backend)

    def __contains__(self, key: str) -> bool:
        return key in self._backend

    def get(self, key: str) -> AggregateMetrics | None:
        """Fetch stored metrics by key, counting hits/misses."""
        record = self._backend.get(key)
        if record is None:
            self.misses += 1
            TELEMETRY.count("store.miss")
            return None
        self.hits += 1
        TELEMETRY.count("store.hit")
        return AggregateMetrics(**record["metrics"])

    def put(
        self,
        key: str,
        metrics: AggregateMetrics,
        meta: Mapping[str, Any] | None = None,
        runtime: Mapping[str, Any] | None = None,
    ) -> None:
        """Persist one completed point immediately.

        ``runtime`` is the optional per-point execution-metadata block
        (wall s, CPU s, peak RSS, substrate counters — see
        :class:`repro.obs.RuntimeCapture`).  It is *non-keyed*: it never
        participates in :func:`scenario_key`, so it neither invalidates
        old rows (no :data:`SCHEMA_VERSION` bump) nor makes two runs of
        one scenario distinct.
        """
        record: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "metrics": metrics.as_dict(),
            "meta": dict(meta) if meta else {},
        }
        if runtime:
            record["runtime"] = dict(runtime)
        self._backend.put(record)

    def put_failure(
        self,
        key: str,
        error: str,
        meta: Mapping[str, Any] | None = None,
    ) -> None:
        """Record one failed point (offending axis combo + error string)."""
        self._backend.put_failure(
            {
                "schema": SCHEMA_VERSION,
                "key": key,
                "kind": "failure",
                "error": error,
                "meta": dict(meta) if meta else {},
            }
        )

    def records(self) -> Iterator[dict[str, Any]]:
        """Iterate over all stored records (e.g. to export per-seed rows)."""
        return self._backend.records()

    def failures(self) -> list[dict[str, Any]]:
        """Failure records not yet superseded by a successful result."""
        return self._backend.failures()

    def select(self, **filters: Any) -> list[dict[str, Any]]:
        """Full result records whose ``meta`` matches every filter.

        On the SQLite backend, filters naming indexed axis columns (mix,
        buffer, discipline, substrate, seed, topology, arrivals, ...) are
        answered by an index scan; remaining filters apply to the decoded
        ``meta``.  ``filter=None`` matches records lacking the field.
        """
        return self._backend.select(**filters)

    def rows(self, **filters: Any) -> list[dict[str, Any]]:
        """Flatten stored records into CSV-friendly rows.

        ``filters`` restrict on ``meta`` fields, e.g.
        ``store.rows(mix="BBRv1", discipline="droptail")``.
        """
        out = []
        for record in self.select(**filters):
            row = dict(record.get("meta", {}))
            row.update(record["metrics"])
            out.append(row)
        return out

    def merge_from(self, source: SweepStore) -> tuple[int, int]:
        """Merge another store's records into this one (last-write-wins).

        Replays the source's result records and its not-yet-superseded
        failure rows through this store's backend, so the backends' own
        key semantics apply: a result overwrites any earlier result *or*
        failure under the same key, while a merged failure never shadows
        an existing result.  Merging N stores in CLI order is therefore
        the multi-store generalisation of ``compact()``'s single-store
        last-write-wins.  Backends may differ freely between the two
        stores.  Returns ``(results, failures)`` counts merged.

        Requires exclusive access to the destination (no concurrent
        campaign writers), like :meth:`compact`.
        """
        merged_results = 0
        merged_failures = 0
        with TELEMETRY.span("store.merge", backend=self.backend):
            for record in source.records():
                self._backend.put(dict(record))
                merged_results += 1
            for record in source.failures():
                self._backend.put_failure(dict(record))
                merged_failures += 1
        return merged_results, merged_failures

    def compact(self) -> None:
        """Drop stale-schema and superseded records from disk.

        Requires exclusive access (no concurrent campaign writers).
        """
        self._backend.compact()

    def close(self) -> None:
        """Release backend resources (SQLite connection)."""
        self._backend.close()


def resolve_store(
    store: SweepStore | str | Path | bool | None,
    backend: str | None = None,
    fsync: bool = True,
) -> SweepStore | None:
    """Coerce a store argument into a :class:`SweepStore` (or ``None``).

    ``None`` falls back to the ``REPRO_STORE`` environment variable; when
    that is unset too, persistence is disabled.  ``False`` disables the
    store outright, ignoring the environment — used for process-pool
    workers, whose results the parent persists centrally.  ``backend``
    forces the storage backend for path-like arguments (paths may also
    carry a ``jsonl:``/``sharded:``/``sqlite:`` prefix); ``fsync`` is
    forwarded to newly opened stores.
    """
    if store is False:
        return None
    if isinstance(store, SweepStore):
        return store
    if store is not None and store is not True:
        return SweepStore(store, backend=backend, fsync=fsync)
    env = os.environ.get(ENV_VAR)
    return SweepStore(env, backend=backend, fsync=fsync) if env else None

"""Reproduction harness: canonical scenarios, sweeps, and per-figure regeneration."""

from . import figures, report, scenarios, sweep
from .scenarios import (
    BUFFER_SWEEP_BDP,
    CCA_MIXES,
    DISCIPLINES,
    TOPOLOGY_PRESETS,
    aggregate_scenario,
    competition_scenario,
    multi_dumbbell_scenario,
    parking_lot_scenario,
    topology_scenario,
    trace_validation_scenario,
)
from .sweep import SweepPoint, run_point, run_sweep, series

__all__ = [
    "figures",
    "report",
    "scenarios",
    "sweep",
    "BUFFER_SWEEP_BDP",
    "CCA_MIXES",
    "DISCIPLINES",
    "TOPOLOGY_PRESETS",
    "aggregate_scenario",
    "competition_scenario",
    "multi_dumbbell_scenario",
    "parking_lot_scenario",
    "topology_scenario",
    "trace_validation_scenario",
    "SweepPoint",
    "run_point",
    "run_sweep",
    "series",
]

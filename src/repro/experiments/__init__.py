"""Reproduction harness: canonical scenarios, sweeps, and per-figure regeneration."""

from . import backends, executor, figures, presets, report, scenarios, sweep
from .executor import ExecutorPolicy
from .presets import CampaignPreset, load_preset
from .scenarios import (
    BUFFER_SWEEP_BDP,
    CCA_MIXES,
    DISCIPLINES,
    TOPOLOGY_PRESETS,
    aggregate_scenario,
    competition_scenario,
    multi_dumbbell_scenario,
    parking_lot_scenario,
    topology_scenario,
    trace_validation_scenario,
)
from .sweep import (
    CampaignFailure,
    CampaignResult,
    SweepPoint,
    run_campaign,
    run_point,
    run_sweep,
    series,
)

__all__ = [
    "backends",
    "executor",
    "figures",
    "presets",
    "report",
    "scenarios",
    "sweep",
    "CampaignFailure",
    "CampaignPreset",
    "CampaignResult",
    "ExecutorPolicy",
    "load_preset",
    "run_campaign",
    "BUFFER_SWEEP_BDP",
    "CCA_MIXES",
    "DISCIPLINES",
    "TOPOLOGY_PRESETS",
    "aggregate_scenario",
    "competition_scenario",
    "multi_dumbbell_scenario",
    "parking_lot_scenario",
    "topology_scenario",
    "trace_validation_scenario",
    "SweepPoint",
    "run_point",
    "run_sweep",
    "series",
]

"""Canonical scenarios of the paper's evaluation (Section 4.1).

Two families of scenarios are used throughout the paper:

* **Trace validation** (Figs. 1, 2, 4, 5, 11, 12): a single sender (or one
  sender per CCA) on a 100 Mbps bottleneck with 10 ms propagation delay, a
  5.6 ms access link and a 1 BDP buffer.
* **Aggregate validation** (Figs. 6-10 and 13-17): N = 10 senders, 100 Mbps,
  bottleneck delay 10 ms (5 ms for the short-RTT appendix), total RTTs spread
  over 30-40 ms (10-20 ms), buffer sizes swept from 1 to 7 BDP, drop-tail and
  RED queueing, and seven CCA mixes (four homogeneous, three heterogeneous
  pairings with five senders each).
"""

from __future__ import annotations

from ..config import FluidParams, ScenarioConfig, dumbbell_scenario

#: The seven CCA mixes of Figs. 6-10 (keys are the paper's legend labels).
CCA_MIXES: dict[str, tuple[str, ...]] = {
    "BBRv1": ("bbr1",) * 10,
    "BBRv1/BBRv2": ("bbr1",) * 5 + ("bbr2",) * 5,
    "BBRv1/CUBIC": ("bbr1",) * 5 + ("cubic",) * 5,
    "BBRv1/RENO": ("bbr1",) * 5 + ("reno",) * 5,
    "BBRv2": ("bbr2",) * 10,
    "BBRv2/CUBIC": ("bbr2",) * 5 + ("cubic",) * 5,
    "BBRv2/RENO": ("bbr2",) * 5 + ("reno",) * 5,
}

#: Buffer sizes (in BDP) swept by the aggregate validation figures.
BUFFER_SWEEP_BDP: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0)

#: Queue disciplines compared throughout the evaluation.
DISCIPLINES: tuple[str, ...] = ("droptail", "red")

#: Default integration step used for the aggregate sweeps (coarser than the
#: trace-validation default; the aggregate metrics are insensitive to it).
SWEEP_DT: float = 2.5e-4


def trace_validation_scenario(
    cca: str,
    discipline: str = "droptail",
    duration_s: float = 30.0,
    buffer_bdp: float = 1.0,
    dt: float = 1e-4,
) -> ScenarioConfig:
    """Single-flow trace-validation scenario of Section 4.2 (Figs. 4, 5, 11, 12).

    One sender, 100 Mbps bottleneck with 10 ms delay, 5.6 ms access link
    (i.e. a 31.2 ms propagation RTT) and a 1 BDP drop-tail or RED buffer.
    As in the aggregate scenarios, the loss-based initial window is set to
    the BDP: the fluid models have no slow-start phase (Insight 9), so the
    flow starts in the state slow start would leave behind — otherwise a
    short trace spends most of its duration on CUBIC/Reno window regrowth
    that the real protocol performs in a few hundred milliseconds.
    """
    rtt_s = 0.0312
    bdp_pkts = 100.0e6 / (1500 * 8) * rtt_s
    return dumbbell_scenario(
        [cca],
        capacity_mbps=100.0,
        bottleneck_delay_s=0.010,
        rtt_range_s=(rtt_s, rtt_s),
        buffer_bdp=buffer_bdp,
        discipline=discipline,
        duration_s=duration_s,
        fluid=FluidParams(dt=dt, loss_based_init_window_pkts=max(10.0, bdp_pkts)),
    )


def competition_scenario(
    ccas: tuple[str, str] = ("reno", "bbr1"),
    discipline: str = "droptail",
    duration_s: float = 10.0,
    buffer_bdp: float = 1.0,
    dt: float = 1e-4,
) -> ScenarioConfig:
    """Two-flow competition scenario of Fig. 1 (one Reno flow vs. one BBRv1 flow)."""
    return dumbbell_scenario(
        list(ccas),
        capacity_mbps=100.0,
        bottleneck_delay_s=0.010,
        rtt_range_s=(0.030, 0.034),
        buffer_bdp=buffer_bdp,
        discipline=discipline,
        duration_s=duration_s,
        fluid=FluidParams(dt=dt),
    )


def aggregate_scenario(
    mix: str,
    buffer_bdp: float,
    discipline: str,
    short_rtt: bool = False,
    duration_s: float = 5.0,
    dt: float = SWEEP_DT,
    whi_init_bdp: float | None = None,
    seed: int = 1,
) -> ScenarioConfig:
    """Aggregate-validation scenario of Section 4.3 (Figs. 6-10) / Appendix C.

    ``mix`` is one of the :data:`CCA_MIXES` keys.  ``short_rtt`` selects the
    Appendix C variant (5 ms bottleneck delay, 10-20 ms RTTs).  The per-flow
    loss-based initial window is set to the fair-share BDP so that the
    (unmodelled) slow-start phase does not dominate the 5-second average.
    ``seed`` feeds the packet emulator's randomness (queue RNG and per-flow
    CCA streams); multi-seed campaigns replicate each point across seeds
    (the paper averages repeated randomized mininet runs the same way).
    """
    if mix not in CCA_MIXES:
        raise ValueError(f"unknown CCA mix {mix!r}; expected one of {sorted(CCA_MIXES)}")
    ccas = CCA_MIXES[mix]
    bottleneck_delay = 0.005 if short_rtt else 0.010
    rtt_range = (0.010, 0.020) if short_rtt else (0.030, 0.040)
    mean_rtt = sum(rtt_range) / 2.0
    fair_share_pkts = 100.0e6 / (1500 * 8) * mean_rtt / len(ccas)
    fluid = FluidParams(
        dt=dt,
        loss_based_init_window_pkts=max(10.0, fair_share_pkts),
        whi_init_bdp=whi_init_bdp,
    )
    return dumbbell_scenario(
        ccas,
        capacity_mbps=100.0,
        bottleneck_delay_s=bottleneck_delay,
        rtt_range_s=rtt_range,
        buffer_bdp=buffer_bdp,
        discipline=discipline,
        duration_s=duration_s,
        fluid=fluid,
        seed=seed,
    )

"""Canonical scenarios of the paper's evaluation (Section 4.1).

Two families of scenarios are used throughout the paper:

* **Trace validation** (Figs. 1, 2, 4, 5, 11, 12): a single sender (or one
  sender per CCA) on a 100 Mbps bottleneck with 10 ms propagation delay, a
  5.6 ms access link and a 1 BDP buffer.
* **Aggregate validation** (Figs. 6-10 and 13-17): N = 10 senders, 100 Mbps,
  bottleneck delay 10 ms (5 ms for the short-RTT appendix), total RTTs spread
  over 30-40 ms (10-20 ms), buffer sizes swept from 1 to 7 BDP, drop-tail and
  RED queueing, and seven CCA mixes (four homogeneous, three heterogeneous
  pairings with five senders each).

Beyond the paper, the **topology family** (:func:`parking_lot_scenario`,
:func:`multi_dumbbell_scenario`, dispatched by :func:`topology_scenario`)
runs the same CCA mixes over the multi-bottleneck topologies the paper
lists as future work, on both substrates.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from .. import topology as topology_builders
from ..config import (
    ARRIVAL_PROCESSES,
    QUEUE_DISCIPLINES,
    SIZE_DISTRIBUTIONS,
    FlowConfig,
    FlowSchedule,
    FluidParams,
    ScenarioConfig,
    dumbbell_scenario,
    spread_access_delays,
)

#: The seven CCA mixes of Figs. 6-10 (keys are the paper's legend labels).
CCA_MIXES: dict[str, tuple[str, ...]] = {
    "BBRv1": ("bbr1",) * 10,
    "BBRv1/BBRv2": ("bbr1",) * 5 + ("bbr2",) * 5,
    "BBRv1/CUBIC": ("bbr1",) * 5 + ("cubic",) * 5,
    "BBRv1/RENO": ("bbr1",) * 5 + ("reno",) * 5,
    "BBRv2": ("bbr2",) * 10,
    "BBRv2/CUBIC": ("bbr2",) * 5 + ("cubic",) * 5,
    "BBRv2/RENO": ("bbr2",) * 5 + ("reno",) * 5,
}

#: Buffer sizes (in BDP) swept by the aggregate validation figures.
BUFFER_SWEEP_BDP: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0)

#: Queue disciplines compared throughout the evaluation.
DISCIPLINES: tuple[str, ...] = ("droptail", "red")

#: Default integration step used for the aggregate sweeps (coarser than the
#: trace-validation default; the aggregate metrics are insensitive to it).
SWEEP_DT: float = 2.5e-4


def trace_validation_scenario(
    cca: str,
    discipline: str = "droptail",
    duration_s: float = 30.0,
    buffer_bdp: float = 1.0,
    dt: float = 1e-4,
) -> ScenarioConfig:
    """Single-flow trace-validation scenario of Section 4.2 (Figs. 4, 5, 11, 12).

    One sender, 100 Mbps bottleneck with 10 ms delay, 5.6 ms access link
    (i.e. a 31.2 ms propagation RTT) and a 1 BDP drop-tail or RED buffer.
    As in the aggregate scenarios, the loss-based initial window is set to
    the BDP: the fluid models have no slow-start phase (Insight 9), so the
    flow starts in the state slow start would leave behind — otherwise a
    short trace spends most of its duration on CUBIC/Reno window regrowth
    that the real protocol performs in a few hundred milliseconds.
    """
    rtt_s = 0.0312
    bdp_pkts = 100.0e6 / (1500 * 8) * rtt_s
    return dumbbell_scenario(
        [cca],
        capacity_mbps=100.0,
        bottleneck_delay_s=0.010,
        rtt_range_s=(rtt_s, rtt_s),
        buffer_bdp=buffer_bdp,
        discipline=discipline,
        duration_s=duration_s,
        fluid=FluidParams(dt=dt, loss_based_init_window_pkts=max(10.0, bdp_pkts)),
    )


def competition_scenario(
    ccas: tuple[str, str] = ("reno", "bbr1"),
    discipline: str = "droptail",
    duration_s: float = 10.0,
    buffer_bdp: float = 1.0,
    dt: float = 1e-4,
) -> ScenarioConfig:
    """Two-flow competition scenario of Fig. 1 (one Reno flow vs. one BBRv1 flow)."""
    return dumbbell_scenario(
        list(ccas),
        capacity_mbps=100.0,
        bottleneck_delay_s=0.010,
        rtt_range_s=(0.030, 0.034),
        buffer_bdp=buffer_bdp,
        discipline=discipline,
        duration_s=duration_s,
        fluid=FluidParams(dt=dt),
    )


def aggregate_scenario(
    mix: str,
    buffer_bdp: float,
    discipline: str,
    short_rtt: bool = False,
    duration_s: float = 5.0,
    dt: float = SWEEP_DT,
    whi_init_bdp: float | None = None,
    seed: int = 1,
) -> ScenarioConfig:
    """Aggregate-validation scenario of Section 4.3 (Figs. 6-10) / Appendix C.

    ``mix`` is one of the :data:`CCA_MIXES` keys.  ``short_rtt`` selects the
    Appendix C variant (5 ms bottleneck delay, 10-20 ms RTTs).  The per-flow
    loss-based initial window is set to the fair-share BDP so that the
    (unmodelled) slow-start phase does not dominate the 5-second average.
    ``seed`` feeds the packet emulator's randomness (queue RNG and per-flow
    CCA streams); multi-seed campaigns replicate each point across seeds
    (the paper averages repeated randomized mininet runs the same way).
    """
    if mix not in CCA_MIXES:
        raise ValueError(f"unknown CCA mix {mix!r}; expected one of {sorted(CCA_MIXES)}")
    ccas = CCA_MIXES[mix]
    bottleneck_delay = 0.005 if short_rtt else 0.010
    rtt_range_s = (0.010, 0.020) if short_rtt else (0.030, 0.040)
    mean_rtt = sum(rtt_range_s) / 2.0
    fair_share_pkts = 100.0e6 / (1500 * 8) * mean_rtt / len(ccas)
    fluid = FluidParams(
        dt=dt,
        loss_based_init_window_pkts=max(10.0, fair_share_pkts),
        whi_init_bdp=whi_init_bdp,
    )
    return dumbbell_scenario(
        ccas,
        capacity_mbps=100.0,
        bottleneck_delay_s=bottleneck_delay,
        rtt_range_s=rtt_range_s,
        buffer_bdp=buffer_bdp,
        discipline=discipline,
        duration_s=duration_s,
        fluid=fluid,
        seed=seed,
    )


def churn_scenario(
    mix: str,
    num_flows: int = 100,
    arrivals: str = "poisson",
    load: float = 0.5,
    size_dist: str = "pareto",
    mean_size_packets: float = 1000.0,
    pareto_shape: float = 1.5,
    min_size_packets: float = 10.0,
    max_size_packets: float | None = None,
    onoff_period_s: float = 2.0,
    buffer_bdp: float = 1.0,
    discipline: str = "droptail",
    short_rtt: bool = False,
    duration_s: float = 30.0,
    dt: float = SWEEP_DT,
    whi_init_bdp: float | None = None,
    seed: int = 1,
) -> ScenarioConfig:
    """A dumbbell scenario with a time-varying flow population (churn).

    The :data:`CCA_MIXES` pattern ``mix`` is repeated round-robin across
    ``num_flows`` flows, and a :class:`~repro.config.FlowSchedule` drives
    their lifetimes:

    * ``arrivals="poisson"``/``"staggered"``: flows arrive at the rate that
      offers ``load`` of the bottleneck capacity — ``lambda = load * C /
      E[size]`` flows per second (Poisson draws exponential inter-arrivals;
      staggered spaces them deterministically at ``1/lambda``).
    * ``arrivals="onoff"``: each source cycles through an
      ``onoff_period_s``-second period with duty cycle ``load`` (on for
      ``load * period``), phases spread evenly across sources.

    ``size_dist`` picks the flow sizes: ``"pareto"`` is the heavy-tailed
    mice-and-elephants workload (bounded Pareto on ``[min_size_packets,
    max_size_packets]``; the bound defaults to ``100 * mean_size_packets``),
    ``"fixed"`` sends exactly ``mean_size_packets``, ``"infinite"`` keeps
    flows long-lived (the natural choice for on/off sources).
    ``mean_size_packets`` anchors the offered-load arithmetic in every
    case.  Everything else (capacity, RTT spread, buffers, fair-share
    initial window) matches :func:`aggregate_scenario`.
    """
    if mix not in CCA_MIXES:
        raise ValueError(f"unknown CCA mix {mix!r}; expected one of {sorted(CCA_MIXES)}")
    if num_flows < 1:
        raise ValueError("num_flows must be positive")
    if arrivals not in ARRIVAL_PROCESSES:
        raise ValueError(
            f"unknown arrival process {arrivals!r}; expected one of {ARRIVAL_PROCESSES}"
        )
    if size_dist not in SIZE_DISTRIBUTIONS:
        raise ValueError(
            f"unknown size distribution {size_dist!r}; "
            f"expected one of {SIZE_DISTRIBUTIONS}"
        )
    if load <= 0:
        raise ValueError("load must be positive")
    if arrivals == "onoff" and load >= 1.0:
        raise ValueError("on/off sources need a duty cycle load < 1")
    if mean_size_packets < 1:
        raise ValueError("mean_size_packets must be at least one packet")
    pattern = CCA_MIXES[mix]
    ccas = [pattern[i % len(pattern)] for i in range(num_flows)]
    size_kwargs: dict = {"size_dist": size_dist}
    if size_dist == "fixed":
        size_kwargs["mean_size_packets"] = mean_size_packets
    elif size_dist == "pareto":
        size_kwargs.update(
            pareto_shape=pareto_shape,
            min_size_packets=min_size_packets,
            max_size_packets=(
                max_size_packets
                if max_size_packets is not None
                else 100.0 * mean_size_packets
            ),
        )
    if arrivals == "onoff":
        schedule = FlowSchedule(
            arrivals="onoff",
            on_time_s=load * onoff_period_s,
            off_time_s=(1.0 - load) * onoff_period_s,
            **size_kwargs,
        )
    else:
        # Offered load: lambda * E[size] = load * C, with E[size] taken from
        # the actual size distribution (mean_size_packets anchors "infinite",
        # whose flows never complete but still arrive at the nominal rate).
        capacity_pps = 100.0e6 / (1500 * 8)
        probe = FlowSchedule(arrivals="staggered", **size_kwargs)
        mean_size = (
            mean_size_packets
            if size_dist == "infinite"
            else probe.mean_flow_size_packets()
        )
        arrival_rate = load * capacity_pps / mean_size
        if arrivals == "poisson":
            schedule = FlowSchedule(
                arrivals="poisson", arrival_rate_per_s=arrival_rate, **size_kwargs
            )
        else:
            schedule = FlowSchedule(
                arrivals="staggered",
                arrival_spacing_s=1.0 / arrival_rate,
                **size_kwargs,
            )
    bottleneck_delay = 0.005 if short_rtt else 0.010
    rtt_range_s = (0.010, 0.020) if short_rtt else (0.030, 0.040)
    config = dumbbell_scenario(
        ccas,
        capacity_mbps=100.0,
        bottleneck_delay_s=bottleneck_delay,
        rtt_range_s=rtt_range_s,
        buffer_bdp=buffer_bdp,
        discipline=discipline,
        duration_s=duration_s,
        fluid=_sweep_fluid(num_flows, rtt_range_s, dt, whi_init_bdp),
        seed=seed,
    )
    return dataclasses.replace(config, schedule=schedule)


#: Topology presets accepted by :func:`topology_scenario`, the sweep's
#: topology axis and the ``repro-bbr topology`` CLI command.
TOPOLOGY_PRESETS = topology_builders.TOPOLOGY_PRESETS


def _sweep_fluid(
    num_flows: int,
    rtt_range_s: tuple[float, float],
    dt: float,
    whi_init_bdp: float | None,
    capacity_mbps: float = 100.0,
) -> FluidParams:
    """Fluid numerics matching :func:`aggregate_scenario` (fair-share window)."""
    mean_rtt = sum(rtt_range_s) / 2.0
    fair_share_pkts = capacity_mbps * 1e6 / (1500 * 8) * mean_rtt / num_flows
    return FluidParams(
        dt=dt,
        loss_based_init_window_pkts=max(10.0, fair_share_pkts),
        whi_init_bdp=whi_init_bdp,
    )


def parking_lot_scenario(
    mix: str = "BBRv1",
    hops: int = 3,
    cross_flows: int = 1,
    cross_cca: str = "cubic",
    capacity_mbps: float | Sequence[float] = 100.0,
    path_delay_s: float = 0.010,
    hop_delays_s: Sequence[float] | None = None,
    rtt_range_s: tuple[float, float] = (0.030, 0.040),
    buffer_bdp: float = 1.0,
    discipline: str | Sequence[str] = "droptail",
    duration_s: float = 5.0,
    dt: float = SWEEP_DT,
    whi_init_bdp: float | None = None,
    seed: int = 1,
) -> ScenarioConfig:
    """Parking-lot scenario: a ``hops``-link chain with per-hop cross traffic.

    The :data:`CCA_MIXES` entry ``mix`` supplies the *long* flows, which
    traverse every hop; each hop additionally carries ``cross_flows``
    single-hop ``cross_cca`` flows.  ``path_delay_s`` is the total one-way
    propagation delay of the chain (split evenly across hops), so long-flow
    RTTs cover the same 30-40 ms range as the paper's dumbbell scenarios
    and results are comparable hop-count to hop-count.  Buffers are
    ``buffer_bdp`` reference-BDP multiples at every hop.

    The chain may be heterogeneous: ``capacity_mbps`` and ``discipline``
    accept per-hop sequences, and ``hop_delays_s`` replaces the even
    ``path_delay_s`` split with explicit per-hop delays.  The fair-share
    initial window and the reference BDP follow the smallest-capacity hop.
    """
    if mix not in CCA_MIXES:
        raise ValueError(f"unknown CCA mix {mix!r}; expected one of {sorted(CCA_MIXES)}")
    if hops < 1:
        raise ValueError("hops must be positive")
    long_ccas = CCA_MIXES[mix]
    if hop_delays_s is None:
        hop_delays = [path_delay_s / hops] * hops
        path_delay = path_delay_s
    else:
        hop_delays = [float(d) for d in hop_delays_s]
        path_delay = sum(hop_delays)
    topo = topology_builders.parking_lot(
        hops,
        cross_flows=cross_flows,
        long_flows=len(long_ccas),
        capacity_mbps=capacity_mbps,
        hop_delay_s=hop_delays,
        buffer_bdp=buffer_bdp,
        discipline=discipline,
    )
    # Long flows spread their RTTs over the paper's range given the full
    # chain delay; each hop's cross flows spread over the same range given
    # that hop's delay.
    flows = [
        FlowConfig(cca=cca, access_delay_s=delay)
        for cca, delay in zip(
            long_ccas,
            spread_access_delays(len(long_ccas), rtt_range_s, path_delay),
            strict=True,
        )
    ]
    if cross_flows:
        for h in range(hops):
            cross_delays = spread_access_delays(cross_flows, rtt_range_s, hop_delays[h])
            flows.extend(
                FlowConfig(cca=cross_cca, access_delay_s=delay) for delay in cross_delays
            )
    reference_mbps = topo.reference_link.capacity_mbps
    return ScenarioConfig(
        bottleneck=None,
        flows=tuple(flows),
        duration_s=duration_s,
        fluid=_sweep_fluid(len(flows), rtt_range_s, dt, whi_init_bdp, reference_mbps),
        seed=seed,
        topology=topo,
    )


def multi_dumbbell_scenario(
    mix: str = "BBRv1",
    dumbbells: int = 2,
    span_flows: int = 1,
    span_cca: str = "cubic",
    capacity_mbps: float | Sequence[float] = 100.0,
    bottleneck_delay_s: float | Sequence[float] = 0.010,
    rtt_range_s: tuple[float, float] = (0.030, 0.040),
    buffer_bdp: float = 1.0,
    discipline: str | Sequence[str] = "droptail",
    duration_s: float = 5.0,
    dt: float = SWEEP_DT,
    whi_init_bdp: float | None = None,
    seed: int = 1,
) -> ScenarioConfig:
    """Multi-dumbbell scenario: disjoint bottlenecks coupled by spanning flows.

    The :data:`CCA_MIXES` entry ``mix`` is dealt round-robin across the
    ``dumbbells`` bottlenecks (so heterogeneous mixes stay heterogeneous on
    every dumbbell); ``span_flows`` additional ``span_cca`` flows traverse
    every bottleneck in series, carrying congestion from one dumbbell into
    the next.  ``capacity_mbps``, ``bottleneck_delay_s`` and ``discipline``
    accept per-dumbbell sequences for heterogeneous grids; the fair-share
    initial window and the reference BDP follow the smallest capacity.
    """
    if mix not in CCA_MIXES:
        raise ValueError(f"unknown CCA mix {mix!r}; expected one of {sorted(CCA_MIXES)}")
    if dumbbells < 1:
        raise ValueError("dumbbells must be positive")
    ccas = CCA_MIXES[mix]
    local_ccas = [list(ccas[j::dumbbells]) for j in range(dumbbells)]
    if isinstance(bottleneck_delay_s, (int, float)):
        delays_per = [float(bottleneck_delay_s)] * dumbbells
        span_path_delay = float(bottleneck_delay_s) * dumbbells
    else:
        delays_per = [float(d) for d in bottleneck_delay_s]
        span_path_delay = sum(delays_per)
    topo = topology_builders.multi_dumbbell(
        dumbbells,
        flows_per_dumbbell=[len(group) for group in local_ccas],
        span_flows=span_flows,
        capacity_mbps=capacity_mbps,
        delay_s=delays_per,
        buffer_bdp=buffer_bdp,
        discipline=discipline,
    )
    flows: list[FlowConfig] = []
    for j, group in enumerate(local_ccas):
        if not group:
            # More dumbbells than mix flows: the surplus dumbbells carry
            # only spanning traffic (the builder permits 0 local flows).
            continue
        delays = spread_access_delays(len(group), rtt_range_s, delays_per[j])
        flows.extend(
            FlowConfig(cca=cca, access_delay_s=delay)
            for cca, delay in zip(group, delays, strict=True)
        )
    if span_flows:
        # A spanning flow's propagation floor is the whole chain of
        # bottlenecks; keep the requested RTT spread but shift the range up
        # when the floor exceeds it (e.g. 4+ dumbbells at 10 ms each).
        low, high = rtt_range_s
        floor = 2.0 * span_path_delay
        if low < floor:
            low, high = floor, floor + (high - low)
        span_delays = spread_access_delays(span_flows, (low, high), span_path_delay)
        flows.extend(
            FlowConfig(cca=span_cca, access_delay_s=delay) for delay in span_delays
        )
    return ScenarioConfig(
        bottleneck=None,
        flows=tuple(flows),
        duration_s=duration_s,
        fluid=_sweep_fluid(
            len(flows), rtt_range_s, dt, whi_init_bdp,
            topo.reference_link.capacity_mbps,
        ),
        seed=seed,
        topology=topo,
    )


def validate_hop_axis(
    hops: int,
    hop_capacities: Sequence[float] | None = None,
    hop_delays: Sequence[float] | None = None,
    hop_disciplines: Sequence[str] | None = None,
    preset: str | None = None,
) -> tuple[tuple[float, ...] | None, tuple[float, ...] | None, tuple[str, ...] | None]:
    """Validate heterogeneous per-hop axis values against the hop count.

    Returns the normalised ``(capacities, delays, disciplines)`` tuples (or
    ``None`` where unset).  Raises a clear :class:`ValueError` on a length
    mismatch, a non-positive capacity/delay, an unknown discipline, or a
    per-hop list combined with the one-link ``"dumbbell"`` preset — before
    any deep numpy machinery can trip over the malformed shape.
    """
    axes = (
        ("hop_capacities", hop_capacities),
        ("hop_delays", hop_delays),
        ("hop_disciplines", hop_disciplines),
    )
    if preset == "dumbbell":
        for name, values in axes:
            if values is not None:
                raise ValueError(
                    f"{name} only applies to multi-bottleneck presets "
                    f"({', '.join(p for p in TOPOLOGY_PRESETS if p != 'dumbbell')}), "
                    "not to the one-link dumbbell"
                )
    for name, values in axes:
        if values is not None and len(values) != hops:
            raise ValueError(
                f"{name} lists {len(values)} values but hops={hops}; "
                "provide exactly one value per hop"
            )
    capacities = delays = None
    if hop_capacities is not None:
        capacities = tuple(float(c) for c in hop_capacities)
        if any(c <= 0 for c in capacities):
            raise ValueError(f"hop_capacities must be positive, got {capacities}")
    if hop_delays is not None:
        delays = tuple(float(d) for d in hop_delays)
        if any(d <= 0 for d in delays):
            raise ValueError(f"hop_delays must be positive, got {delays}")
    disciplines = None
    if hop_disciplines is not None:
        disciplines = tuple(str(d) for d in hop_disciplines)
        unknown = [d for d in disciplines if d not in QUEUE_DISCIPLINES]
        if unknown:
            raise ValueError(
                f"unknown hop_disciplines {unknown}; expected one of {QUEUE_DISCIPLINES}"
            )
    return capacities, delays, disciplines


def topology_scenario(
    preset: str,
    mix: str = "BBRv1",
    hops: int = 3,
    cross_flows: int = 1,
    cross_cca: str = "cubic",
    buffer_bdp: float = 1.0,
    discipline: str = "droptail",
    duration_s: float = 5.0,
    dt: float = SWEEP_DT,
    whi_init_bdp: float | None = None,
    seed: int = 1,
    hop_capacities: Sequence[float] | None = None,
    hop_delays: Sequence[float] | None = None,
    hop_disciplines: Sequence[str] | None = None,
) -> ScenarioConfig:
    """Build a scenario from a topology preset name (the sweep/CLI axis).

    ``hops`` is the chain length for ``"parking-lot"`` and the dumbbell
    count for ``"multi-dumbbell"``; ``cross_flows`` is the per-hop cross
    traffic for the former and the spanning-flow count for the latter.
    ``"dumbbell"`` ignores both and reproduces :func:`aggregate_scenario`.

    ``hop_capacities`` (Mbps), ``hop_delays`` (seconds) and
    ``hop_disciplines`` open the heterogeneous axis: one value per hop /
    dumbbell, validated up front (see :func:`validate_hop_axis`).
    """
    hop_capacities, hop_delays, hop_disciplines = validate_hop_axis(
        hops, hop_capacities, hop_delays, hop_disciplines, preset=preset
    )
    if preset == "dumbbell":
        return aggregate_scenario(
            mix,
            buffer_bdp=buffer_bdp,
            discipline=discipline,
            duration_s=duration_s,
            dt=dt,
            whi_init_bdp=whi_init_bdp,
            seed=seed,
        )
    if preset == "parking-lot":
        return parking_lot_scenario(
            mix,
            hops=hops,
            cross_flows=cross_flows,
            cross_cca=cross_cca,
            capacity_mbps=hop_capacities if hop_capacities is not None else 100.0,
            hop_delays_s=hop_delays,
            buffer_bdp=buffer_bdp,
            discipline=hop_disciplines if hop_disciplines is not None else discipline,
            duration_s=duration_s,
            dt=dt,
            whi_init_bdp=whi_init_bdp,
            seed=seed,
        )
    if preset == "multi-dumbbell":
        return multi_dumbbell_scenario(
            mix,
            dumbbells=hops,
            span_flows=cross_flows,
            span_cca=cross_cca,
            capacity_mbps=hop_capacities if hop_capacities is not None else 100.0,
            bottleneck_delay_s=hop_delays if hop_delays is not None else 0.010,
            buffer_bdp=buffer_bdp,
            discipline=hop_disciplines if hop_disciplines is not None else discipline,
            duration_s=duration_s,
            dt=dt,
            whi_init_bdp=whi_init_bdp,
            seed=seed,
        )
    raise ValueError(
        f"unknown topology preset {preset!r}; expected one of {TOPOLOGY_PRESETS}"
    )

"""Store introspection: counts, axis marginals and runtime percentiles.

A million-point campaign store must be inspectable without writing Python:
``repro-bbr store summary PATH`` renders — for any of the three backends,
through the uniform :meth:`~repro.experiments.store.SweepStore.select`
surface — the result/failure counts, the marginal distribution of every
grid axis (how many rows per mix, per buffer, per discipline, ...), and
percentiles of the per-point ``runtime`` block (wall/CPU seconds) grouped
by substrate.  ``repro-bbr status`` combines the same store view with a
grid definition to report done/failed/remaining.

Everything here is read-only and derives from stored records; rows written
before the runtime block existed simply do not contribute to the runtime
percentiles (the ``points`` count shows the coverage).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from .report import format_table
from .store import SweepStore

#: Grid axes whose marginal row counts the summary reports (in this order).
SUMMARY_AXES = (
    "substrate",
    "mix",
    "discipline",
    "buffer_bdp",
    "seed",
    "topology",
    "arrivals",
    "scheduler",
)

#: Runtime-block fields summarised as percentiles.
RUNTIME_FIELDS = ("wall_s", "cpu_s")

#: Reported percentile levels.
PERCENTILES = (50, 90, 99)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) by linear interpolation.

    Deterministic and dependency-free (matches numpy's default "linear"
    method); raises on an empty sample.
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0 <= q <= 100:
        raise ValueError("percentile level must be in [0, 100]")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _axis_marginals(records: list[dict[str, Any]]) -> dict[str, dict[str, int]]:
    """Row counts per (axis, value), for every axis present in any meta."""
    marginals: dict[str, dict[str, int]] = {}
    for record in records:
        meta = record.get("meta") or {}
        for axis in SUMMARY_AXES:
            if axis not in meta:
                continue
            counts = marginals.setdefault(axis, {})
            value = str(meta[axis])
            counts[value] = counts.get(value, 0) + 1
    return marginals


def _runtime_summary(records: list[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """Runtime-block percentiles grouped by substrate."""
    samples: dict[str, dict[str, list[float]]] = {}
    for record in records:
        runtime = record.get("runtime")
        if not runtime:
            continue
        substrate = str((record.get("meta") or {}).get("substrate", "unknown"))
        buckets = samples.setdefault(substrate, {f: [] for f in RUNTIME_FIELDS})
        for fld in RUNTIME_FIELDS:
            value = runtime.get(fld)
            if value is not None:
                buckets[fld].append(float(value))
    out: dict[str, dict[str, Any]] = {}
    for substrate in sorted(samples):
        buckets = samples[substrate]
        entry: dict[str, Any] = {"points": max(len(v) for v in buckets.values())}
        for fld in RUNTIME_FIELDS:
            values = buckets[fld]
            if not values:
                continue
            entry[fld] = {
                **{f"p{q}": percentile(values, q) for q in PERCENTILES},
                "total": sum(values),
            }
        out[substrate] = entry
    return out


def summarize_store(store: SweepStore) -> dict[str, Any]:
    """One JSON-friendly summary of a result store.

    Keys: ``path``/``backend``, ``rows`` (result records), ``failures``
    (failure records not superseded by a success), ``axes`` (per-axis
    marginal row counts) and ``runtime`` (per-substrate wall/CPU-second
    percentiles of the stored runtime blocks).
    """
    records = store.select()
    failures = store.failures()
    return {
        "path": str(store.path),
        "backend": store.backend,
        "rows": len(records),
        "failures": len(failures),
        "axes": _axis_marginals(records),
        "runtime": _runtime_summary(records),
    }


def render_summary(summary: dict[str, Any]) -> str:
    """Render :func:`summarize_store` output as aligned text tables."""
    lines = [
        f"store {summary['path']} ({summary['backend']}): "
        f"{summary['rows']} results, {summary['failures']} failures"
    ]
    axes = summary.get("axes") or {}
    axis_rows = [
        [axis, value, count]
        for axis in SUMMARY_AXES
        if axis in axes
        for value, count in sorted(axes[axis].items())
    ]
    if axis_rows:
        lines.append("")
        lines.append(format_table(["axis", "value", "rows"], axis_rows))
    runtime = summary.get("runtime") or {}
    runtime_rows = []
    for substrate, entry in runtime.items():
        for fld in RUNTIME_FIELDS:
            stats = entry.get(fld)
            if not stats:
                continue
            runtime_rows.append(
                [
                    substrate,
                    fld,
                    entry["points"],
                    stats["p50"],
                    stats["p90"],
                    stats["p99"],
                    stats["total"],
                ]
            )
    if runtime_rows:
        lines.append("")
        lines.append(
            format_table(
                ["substrate", "metric", "points", "p50", "p90", "p99", "total"],
                runtime_rows,
            )
        )
    return "\n".join(lines)

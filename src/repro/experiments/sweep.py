"""Parameter-sweep engine for the aggregate-validation figures (Figs. 6-10, 13-17).

A sweep runs every combination of CCA mix, buffer size and queue discipline
on a chosen substrate ("fluid" or "emulation"), computes the aggregate
metrics of :mod:`repro.metrics.aggregate`, and returns tidy rows.  Because
the five aggregate figures of the paper all derive from the *same* runs,
sweep results are cached in-process keyed by their configuration.

The grid is embarrassingly parallel and is exploited two ways:

* on the fluid substrate, all uncached points of a sweep are integrated in
  lockstep through :func:`repro.core.simulator.simulate_many`, which stacks
  the independent scenarios into one batched system (the big win on a
  single core), and
* ``workers=N`` opts into a :class:`~concurrent.futures.ProcessPoolExecutor`
  that fans uncached points out to worker processes (useful on multi-core
  machines and for the emulation substrate, whose points cannot be
  batched).  The in-process cache is consulted before any dispatch.  The
  CLI exposes this as ``repro-bbr sweep --workers N`` and
  ``repro-bbr figure <name> --workers N``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable

from ..core.simulator import simulate, simulate_many
from ..emulation.runner import emulate
from ..metrics.aggregate import AggregateMetrics, aggregate_metrics
from . import scenarios

SUBSTRATES = ("fluid", "emulation")

#: Upper bound on how many scenarios are stacked into one batched
#: integration (bounds the working-set memory of the recording buffers).
BATCH_CHUNK = 64


@dataclass(frozen=True)
class SweepPoint:
    """One (mix, buffer, discipline, substrate) result of a sweep."""

    mix: str
    buffer_bdp: float
    discipline: str
    substrate: str
    metrics: AggregateMetrics

    def row(self) -> dict[str, float | str]:
        """Flatten into a CSV-friendly dictionary."""
        out: dict[str, float | str] = {
            "mix": self.mix,
            "buffer_bdp": self.buffer_bdp,
            "discipline": self.discipline,
            "substrate": self.substrate,
        }
        out.update(self.metrics.as_dict())
        return out


_CACHE: dict[tuple, SweepPoint] = {}


def clear_cache() -> None:
    """Drop all cached sweep points (mainly for tests)."""
    _CACHE.clear()


def _cache_key(
    mix: str,
    buffer_bdp: float,
    discipline: str,
    substrate: str,
    short_rtt: bool,
    duration_s: float,
    dt: float,
    whi_init_bdp: float | None,
) -> tuple:
    return (mix, buffer_bdp, discipline, substrate, short_rtt, duration_s, dt, whi_init_bdp)


def run_point(
    mix: str,
    buffer_bdp: float,
    discipline: str,
    substrate: str = "fluid",
    short_rtt: bool = False,
    duration_s: float = 5.0,
    dt: float = scenarios.SWEEP_DT,
    whi_init_bdp: float | None = None,
    use_cache: bool = True,
) -> SweepPoint:
    """Run (or fetch from cache) a single sweep point."""
    if substrate not in SUBSTRATES:
        raise ValueError(f"unknown substrate {substrate!r}")
    key = _cache_key(
        mix, buffer_bdp, discipline, substrate, short_rtt, duration_s, dt, whi_init_bdp
    )
    if use_cache and key in _CACHE:
        return _CACHE[key]
    config = scenarios.aggregate_scenario(
        mix,
        buffer_bdp=buffer_bdp,
        discipline=discipline,
        short_rtt=short_rtt,
        duration_s=duration_s,
        dt=dt,
        whi_init_bdp=whi_init_bdp,
    )
    trace = simulate(config) if substrate == "fluid" else emulate(config)
    point = SweepPoint(
        mix=mix,
        buffer_bdp=buffer_bdp,
        discipline=discipline,
        substrate=substrate,
        metrics=aggregate_metrics(trace),
    )
    if use_cache:
        _CACHE[key] = point
    return point


def run_sweep(
    mixes: Iterable[str] | None = None,
    buffers_bdp: Iterable[float] | None = None,
    disciplines: Iterable[str] | None = None,
    substrate: str = "fluid",
    short_rtt: bool = False,
    duration_s: float = 5.0,
    dt: float = scenarios.SWEEP_DT,
    whi_init_bdp: float | None = None,
    workers: int | None = None,
) -> list[SweepPoint]:
    """Run the full (or a reduced) aggregate-validation sweep.

    ``workers=N`` (N > 1) dispatches uncached points to a process pool;
    otherwise fluid sweeps run batched in-process via
    :func:`~repro.core.simulator.simulate_many` and emulation sweeps run
    serially.  Cached points are never re-dispatched.
    """
    if substrate not in SUBSTRATES:
        raise ValueError(f"unknown substrate {substrate!r}")
    mixes = list(mixes) if mixes is not None else list(scenarios.CCA_MIXES)
    buffers = list(buffers_bdp) if buffers_bdp is not None else list(scenarios.BUFFER_SWEEP_BDP)
    disciplines = list(disciplines) if disciplines is not None else list(scenarios.DISCIPLINES)
    combos = [
        (discipline, mix, buffer_bdp)
        for discipline in disciplines
        for mix in mixes
        for buffer_bdp in buffers
    ]

    results: dict[tuple, SweepPoint] = {}
    pending: list[tuple] = []
    for combo in combos:
        discipline, mix, buffer_bdp = combo
        key = _cache_key(
            mix, buffer_bdp, discipline, substrate, short_rtt, duration_s, dt, whi_init_bdp
        )
        if key in _CACHE:
            results[combo] = _CACHE[key]
        else:
            pending.append(combo)

    if pending and workers is not None and workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            for combo in pending:
                discipline, mix, buffer_bdp = combo
                futures[
                    pool.submit(
                        run_point,
                        mix,
                        buffer_bdp,
                        discipline,
                        substrate=substrate,
                        short_rtt=short_rtt,
                        duration_s=duration_s,
                        dt=dt,
                        whi_init_bdp=whi_init_bdp,
                        use_cache=False,
                    )
                ] = combo
            for future, combo in futures.items():
                results[combo] = future.result()
    elif pending and substrate == "fluid":
        for chunk_start in range(0, len(pending), BATCH_CHUNK):
            chunk = pending[chunk_start : chunk_start + BATCH_CHUNK]
            configs = [
                scenarios.aggregate_scenario(
                    mix,
                    buffer_bdp=buffer_bdp,
                    discipline=discipline,
                    short_rtt=short_rtt,
                    duration_s=duration_s,
                    dt=dt,
                    whi_init_bdp=whi_init_bdp,
                )
                for discipline, mix, buffer_bdp in chunk
            ]
            for combo, trace in zip(chunk, simulate_many(configs)):
                discipline, mix, buffer_bdp = combo
                results[combo] = SweepPoint(
                    mix=mix,
                    buffer_bdp=buffer_bdp,
                    discipline=discipline,
                    substrate=substrate,
                    metrics=aggregate_metrics(trace),
                )
    else:
        for combo in pending:
            discipline, mix, buffer_bdp = combo
            results[combo] = run_point(
                mix,
                buffer_bdp,
                discipline,
                substrate=substrate,
                short_rtt=short_rtt,
                duration_s=duration_s,
                dt=dt,
                whi_init_bdp=whi_init_bdp,
                use_cache=False,
            )

    for combo, point in results.items():
        discipline, mix, buffer_bdp = combo
        key = _cache_key(
            mix, buffer_bdp, discipline, substrate, short_rtt, duration_s, dt, whi_init_bdp
        )
        _CACHE[key] = point
    return [results[combo] for combo in combos]


def series(
    points: Iterable[SweepPoint], metric: str, mix: str, discipline: str
) -> list[tuple[float, float]]:
    """Extract one figure line: (buffer, metric value) for a mix and discipline."""
    rows = [
        (p.buffer_bdp, float(p.metrics.as_dict()[metric]))
        for p in points
        if p.mix == mix and p.discipline == discipline
    ]
    return sorted(rows)

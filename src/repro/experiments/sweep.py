"""Parameter-sweep engine for the aggregate-validation figures (Figs. 6-10, 13-17).

A sweep runs every combination of CCA mix, buffer size and queue discipline
on a chosen substrate ("fluid" or "emulation"), computes the aggregate
metrics of :mod:`repro.metrics.aggregate`, and returns tidy rows.  Because
the five aggregate figures of the paper all derive from the *same* runs,
sweep results are cached at two levels:

* an in-process cache keyed by the full point configuration (including the
  scenario seed and the emulator's sampling parameters), and
* an optional persistent :class:`~repro.experiments.store.SweepStore`
  (``store=`` argument, ``--store PATH`` flag or ``REPRO_STORE`` env var):
  every point is persisted the moment it completes, so interrupted sweeps
  resume without recomputing finished points and results are shared across
  processes and ``--workers N`` pools.

The paper's aggregate figures average repeated randomized runs; the
``seeds`` axis replicates each point under K scenario seeds and aggregates
the per-seed :class:`~repro.metrics.aggregate.AggregateMetrics` into a
:class:`~repro.metrics.aggregate.MetricsSummary` (mean/std/95% CI)::

    # single-seed points (back-compatible)
    points = run_sweep(substrate="emulation")
    # 5-seed replication with a persistent store
    summaries = run_sweep(substrate="emulation", seeds=5, store="results.jsonl")

The grid is embarrassingly parallel and is exploited two ways:

* on the fluid substrate, all uncached points of a sweep are integrated in
  lockstep through :func:`repro.core.simulator.simulate_many`, which stacks
  the independent scenarios into one batched system (the big win on a
  single core), and
* ``workers=N`` opts into a :class:`~concurrent.futures.ProcessPoolExecutor`
  that fans uncached points out to worker processes (useful on multi-core
  machines and for the emulation substrate, whose points cannot be
  batched).  Results are collected with ``as_completed`` and persisted one
  by one, so a single failing point no longer discards every completed
  result; worker exceptions are re-raised as :class:`SweepPointError`
  naming the failing (mix, buffer, discipline, seed) combination.  The CLI
  exposes all of this as ``repro-bbr sweep/figure/campaign`` with
  ``--workers N``, ``--seeds K`` and ``--store PATH``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from collections.abc import Iterable, Sequence

from ..config import ARRIVAL_PROCESSES, SIZE_DISTRIBUTIONS
from ..core.simulator import FluidSimulator, simulate_many
from ..emulation.runner import EmulationRunner
from ..metrics.aggregate import (
    AggregateMetrics,
    MetricsSummary,
    aggregate_metrics,
    summarize_metrics,
)
from ..obs import TELEMETRY, RuntimeCapture
from . import scenarios
from .backends import shard_of
from .executor import ExecutorPolicy, PointFailure, ResilientExecutor
from .store import SweepStore, resolve_store, scenario_key

#: ``"analytic"`` runs no simulation at all: each grid point is handed to
#: :func:`repro.analysis.analyze_scenario`, and the equilibrium prediction
#: (rates/queue/loss mapped onto the same :class:`AggregateMetrics` columns)
#: plus the stability classification land in the cache/store like any other
#: substrate's rows (the substrate name is part of every key, so analytic
#: rows never alias simulation rows).
SUBSTRATES = ("fluid", "emulation", "analytic")

#: Upper bound on how many scenarios are stacked into one batched
#: integration (bounds the working-set memory of the recording buffers).
BATCH_CHUNK = 64

#: Default emulator sampling parameters (mirrors ``EmulationRunner``).
DEFAULT_RECORD_INTERVAL_S = 0.01
DEFAULT_SCHEDULER = "delayline"


class SweepPointError(RuntimeError):
    """A sweep point failed; carries the failing grid coordinates."""

    def __init__(
        self,
        mix: str,
        buffer_bdp: float,
        discipline: str,
        seed: int,
        error: str | None = None,
    ) -> None:
        message = (
            f"sweep point failed: mix={mix!r}, buffer_bdp={buffer_bdp}, "
            f"discipline={discipline!r}, seed={seed}"
        )
        if error:
            message += f": {error}"
        super().__init__(message)
        self.mix = mix
        self.buffer_bdp = buffer_bdp
        self.discipline = discipline
        self.seed = seed
        self.error = error


@dataclass(frozen=True)
class SweepPoint:
    """One (mix, buffer, discipline, substrate, seed) result of a sweep."""

    mix: str
    buffer_bdp: float
    discipline: str
    substrate: str
    metrics: AggregateMetrics
    seed: int = 1
    #: Non-keyed execution metadata of the run that computed this point
    #: (wall/CPU seconds, peak RSS, substrate counters); ``None`` when the
    #: point was served from a cache or store.  Excluded from equality so
    #: identical results compare equal regardless of where they ran.
    runtime: dict | None = field(default=None, compare=False, repr=False)
    #: Analysis block of an analytic-substrate point (equilibrium regime,
    #: stability classification, max Re lambda, eigenvalues); ``None`` on
    #: the simulation substrates and for store-served rows.  Persisted in
    #: the store meta under ``"analysis"``; excluded from equality like
    #: ``runtime``.
    analysis: dict | None = field(default=None, compare=False, repr=False)

    def row(self) -> dict[str, float | str]:
        """Flatten into a CSV-friendly dictionary."""
        out: dict[str, float | str] = {
            "mix": self.mix,
            "buffer_bdp": self.buffer_bdp,
            "discipline": self.discipline,
            "substrate": self.substrate,
            "seed": self.seed,
        }
        out.update(self.metrics.as_dict())
        return out


@dataclass(frozen=True)
class SummaryPoint:
    """One sweep point replicated across seeds, with mean/std/95% CI."""

    mix: str
    buffer_bdp: float
    discipline: str
    substrate: str
    summary: MetricsSummary
    seeds: tuple[int, ...]

    @property
    def metrics(self) -> AggregateMetrics:
        """The per-seed mean (lets summary points flow through :func:`series`)."""
        return self.summary.mean

    def row(self) -> dict[str, float | str]:
        """Flatten into a CSV-friendly dictionary of mean/std/CI columns."""
        out: dict[str, float | str] = {
            "mix": self.mix,
            "buffer_bdp": self.buffer_bdp,
            "discipline": self.discipline,
            "substrate": self.substrate,
        }
        out.update(self.summary.as_dict())
        return out


@dataclass(frozen=True)
class CampaignFailure:
    """One grid point the executor gave up on (axis combo + error)."""

    mix: str
    buffer_bdp: float
    discipline: str
    substrate: str
    seed: int
    error: str
    attempts: int

    def row(self) -> dict[str, float | str | int]:
        """Flatten into a CSV-friendly dictionary."""
        return {
            "mix": self.mix,
            "buffer_bdp": self.buffer_bdp,
            "discipline": self.discipline,
            "substrate": self.substrate,
            "seed": self.seed,
            "error": self.error,
            "attempts": self.attempts,
        }


@dataclass(frozen=True)
class CampaignResult:
    """The outcome of a campaign grid: completed points + reported failures."""

    points: list[SweepPoint] | list[SummaryPoint]
    failures: list[CampaignFailure]

    @property
    def ok(self) -> bool:
        """True when every grid point completed."""
        return not self.failures


_CACHE: dict[tuple, SweepPoint] = {}


def clear_cache() -> None:
    """Drop all cached sweep points (mainly for tests)."""
    _CACHE.clear()


def _hop_tuple(values: Sequence | None) -> tuple | None:
    """Normalise a per-hop axis value into a hashable tuple (or ``None``)."""
    return None if values is None else tuple(values)


#: Defaults of the churn axis once ``arrivals`` switches it on (kept in one
#: place so the cache key, the store meta and the scenario always agree).
DEFAULT_CHURN_SIZE_DIST = "pareto"
DEFAULT_CHURN_ONOFF_SIZE_DIST = "infinite"
DEFAULT_CHURN_LOAD = 0.5
DEFAULT_CHURN_FLOWS = 100


def normalize_churn_axis(
    arrivals: str | None,
    flow_size_dist: str | None,
    load: float | None,
    flows: int | None,
) -> tuple[str | None, str | None, float | None, int | None]:
    """Validate and default the churn axis (``--arrivals/--flow-size-dist/...``).

    ``arrivals=None`` is the legacy long-lived-flow grid: the other three
    values are meaningless there and must be unset (so a stray ``--load``
    cannot silently do nothing).  With ``arrivals`` set, unset values are
    resolved to their defaults — on/off sources default to long-lived
    (``"infinite"``) sizes, arrival processes to the heavy-tailed bounded
    Pareto — so points alias identically whether the caller spelled the
    default out or not.
    """
    if arrivals is None:
        extras = {
            "flow_size_dist": flow_size_dist,
            "load": load,
            "flows": flows,
        }
        set_extras = [name for name, value in extras.items() if value is not None]
        if set_extras:
            raise ValueError(
                f"{', '.join(set_extras)} require(s) an arrival process; "
                "set arrivals (--arrivals) to enable the churn axis"
            )
        return None, None, None, None
    if arrivals not in ARRIVAL_PROCESSES:
        raise ValueError(
            f"unknown arrival process {arrivals!r}; expected one of {ARRIVAL_PROCESSES}"
        )
    if flow_size_dist is None:
        flow_size_dist = (
            DEFAULT_CHURN_ONOFF_SIZE_DIST if arrivals == "onoff" else DEFAULT_CHURN_SIZE_DIST
        )
    if flow_size_dist not in SIZE_DISTRIBUTIONS:
        raise ValueError(
            f"unknown size distribution {flow_size_dist!r}; "
            f"expected one of {SIZE_DISTRIBUTIONS}"
        )
    load = DEFAULT_CHURN_LOAD if load is None else float(load)
    if load <= 0:
        raise ValueError("load must be positive")
    flows = DEFAULT_CHURN_FLOWS if flows is None else int(flows)
    if flows < 1:
        raise ValueError("flows must be positive")
    return arrivals, flow_size_dist, load, flows


def hop_discipline_label(hop_disciplines: Sequence[str]) -> str:
    """The discipline label of a point whose hops carry explicit disciplines.

    With ``hop_disciplines`` set, the scenario ignores the swept
    ``discipline`` value, so rows/meta/cache keys carry the per-hop
    composite (e.g. ``"red/droptail/red"``) instead of a misleading grid
    label — identical scenarios alias onto one cached/stored point no
    matter which grid label they were requested under.
    """
    return "/".join(hop_disciplines)


def _cache_key(
    mix: str,
    buffer_bdp: float,
    discipline: str,
    substrate: str,
    short_rtt: bool,
    duration_s: float,
    dt: float,
    whi_init_bdp: float | None,
    seed: int,
    record_interval_s: float,
    scheduler: str,
    topology: str | None = None,
    hops: int = 3,
    cross_flows: int = 1,
    hop_capacities: Sequence[float] | None = None,
    hop_delays: Sequence[float] | None = None,
    hop_disciplines: Sequence[str] | None = None,
    arrivals: str | None = None,
    flow_size_dist: str | None = None,
    load: float | None = None,
    flows: int | None = None,
) -> tuple:
    # The seed and the emulator's sampling parameters are part of the key:
    # omitting them aliased points that differ only in seed (or in
    # record_interval_s/scheduler) onto one cache slot.  The fluid model is
    # deterministic, so fluid points *should* alias across the sampling
    # parameters — and across seeds, EXCEPT when a flow schedule draws
    # random arrivals/sizes: materialisation then consumes the seed on both
    # substrates, so fluid seed replicas are genuinely distinct points.
    # The analytic substrate is deterministic in exactly the same sense
    # (and rejects schedules outright), so it shares the normalisation.
    if substrate in ("fluid", "analytic"):
        if not (arrivals == "poisson" or flow_size_dist == "pareto"):
            seed = 1
        record_interval_s = DEFAULT_RECORD_INTERVAL_S
        scheduler = DEFAULT_SCHEDULER
    # The "dumbbell" preset *is* the legacy grid, and hops/cross_flows and
    # the heterogeneous per-hop lists are meaningless without a
    # multi-bottleneck preset: normalise so identical scenarios share one
    # cache slot.
    if topology in (None, "dumbbell"):
        topology = None
        hops = 0
        cross_flows = 0
        hop_capacities = hop_delays = hop_disciplines = None
    return (
        mix,
        buffer_bdp,
        discipline,
        substrate,
        short_rtt,
        duration_s,
        dt,
        whi_init_bdp,
        seed,
        record_interval_s,
        scheduler,
        topology,
        hops,
        cross_flows,
        _hop_tuple(hop_capacities),
        _hop_tuple(hop_delays),
        _hop_tuple(hop_disciplines),
        arrivals,
        flow_size_dist,
        load,
        flows,
    )


def _seed_list(seeds: int | Sequence[int]) -> list[int]:
    """Normalise the seeds axis: an int K means seeds 1..K."""
    if isinstance(seeds, bool):
        raise ValueError("seeds must be an int count or a sequence of seeds")
    if isinstance(seeds, int):
        if seeds < 1:
            raise ValueError("seed count must be at least 1")
        return list(range(1, seeds + 1))
    out = [int(s) for s in seeds]
    if not out:
        raise ValueError("at least one seed is required")
    if len(set(out)) != len(out):
        raise ValueError("seeds must be distinct")
    return out


def validate_shard(
    shard_index: int | None, shard_count: int | None
) -> tuple[int | None, int | None]:
    """Validate the deterministic grid-partitioning axis.

    Both values must be set together; ``shard_index`` must lie in
    ``[0, shard_count)``.  Returns the normalised pair (``(None, None)``
    when sharding is off).
    """
    if (shard_index is None) != (shard_count is None):
        raise ValueError("shard_index and shard_count must be set together")
    if shard_count is None:
        return None, None
    shard_index, shard_count = int(shard_index), int(shard_count)
    if shard_count < 1:
        raise ValueError("shard_count must be at least 1")
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard_index must be in [0, shard_count): got index {shard_index} "
            f"with {shard_count} shard(s)"
        )
    return shard_index, shard_count


def _point_config(
    mix: str,
    buffer_bdp: float,
    discipline: str,
    short_rtt: bool,
    duration_s: float,
    dt: float,
    whi_init_bdp: float | None,
    seed: int,
    topology: str | None = None,
    hops: int = 3,
    cross_flows: int = 1,
    hop_capacities: Sequence[float] | None = None,
    hop_delays: Sequence[float] | None = None,
    hop_disciplines: Sequence[str] | None = None,
    arrivals: str | None = None,
    flow_size_dist: str | None = None,
    load: float | None = None,
    flows: int | None = None,
):
    if arrivals is not None:
        if topology not in (None, "dumbbell"):
            raise ValueError(
                "the churn axis (arrivals/flow_size_dist/load/flows) is only "
                "defined for the dumbbell grid, not for multi-bottleneck "
                "topology presets"
            )
        assert flow_size_dist is not None and load is not None and flows is not None
        return scenarios.churn_scenario(
            mix,
            num_flows=flows,
            arrivals=arrivals,
            load=load,
            size_dist=flow_size_dist,
            buffer_bdp=buffer_bdp,
            discipline=discipline,
            short_rtt=short_rtt,
            duration_s=duration_s,
            dt=dt,
            whi_init_bdp=whi_init_bdp,
            seed=seed,
        )
    if topology not in (None, "dumbbell"):
        if short_rtt:
            raise ValueError("short_rtt is only defined for the dumbbell grid")
        return scenarios.topology_scenario(
            topology,
            mix=mix,
            hops=hops,
            cross_flows=cross_flows,
            buffer_bdp=buffer_bdp,
            discipline=discipline,
            duration_s=duration_s,
            dt=dt,
            whi_init_bdp=whi_init_bdp,
            seed=seed,
            hop_capacities=hop_capacities,
            hop_delays=hop_delays,
            hop_disciplines=hop_disciplines,
        )
    if hop_capacities is not None or hop_delays is not None or hop_disciplines is not None:
        # Dumbbell / legacy grid: per-hop lists have nothing to apply to.
        scenarios.validate_hop_axis(
            hops, hop_capacities, hop_delays, hop_disciplines, preset="dumbbell"
        )
    return scenarios.aggregate_scenario(
        mix,
        buffer_bdp=buffer_bdp,
        discipline=discipline,
        short_rtt=short_rtt,
        duration_s=duration_s,
        dt=dt,
        whi_init_bdp=whi_init_bdp,
        seed=seed,
    )


def _store_meta(
    mix: str,
    buffer_bdp: float,
    discipline: str,
    substrate: str,
    short_rtt: bool,
    duration_s: float,
    dt: float,
    whi_init_bdp: float | None,
    seed: int,
    record_interval_s: float,
    scheduler: str,
    topology: str | None = None,
    hops: int = 3,
    cross_flows: int = 1,
    hop_capacities: Sequence[float] | None = None,
    hop_delays: Sequence[float] | None = None,
    hop_disciplines: Sequence[str] | None = None,
    arrivals: str | None = None,
    flow_size_dist: str | None = None,
    load: float | None = None,
    flows: int | None = None,
) -> dict:
    meta = {
        "mix": mix,
        "buffer_bdp": buffer_bdp,
        "discipline": discipline,
        "substrate": substrate,
        "short_rtt": short_rtt,
        "duration_s": duration_s,
        "dt": dt,
        "whi_init_bdp": whi_init_bdp,
        "seed": seed,
    }
    if topology not in (None, "dumbbell"):
        meta["topology"] = topology
        meta["hops"] = hops
        meta["cross_flows"] = cross_flows
        if hop_capacities is not None:
            meta["hop_capacities"] = list(hop_capacities)
        if hop_delays is not None:
            meta["hop_delays"] = list(hop_delays)
        if hop_disciplines is not None:
            meta["hop_disciplines"] = list(hop_disciplines)
    if arrivals is not None:
        meta["arrivals"] = arrivals
        meta["flow_size_dist"] = flow_size_dist
        meta["load"] = load
        meta["flows"] = flows
    if substrate == "emulation":
        meta["record_interval_s"] = record_interval_s
        meta["scheduler"] = scheduler
    return meta


def run_point(
    mix: str,
    buffer_bdp: float,
    discipline: str,
    substrate: str = "fluid",
    short_rtt: bool = False,
    duration_s: float = 5.0,
    dt: float = scenarios.SWEEP_DT,
    whi_init_bdp: float | None = None,
    seed: int = 1,
    seeds: int | Sequence[int] | None = None,
    record_interval_s: float = DEFAULT_RECORD_INTERVAL_S,
    scheduler: str = DEFAULT_SCHEDULER,
    use_cache: bool = True,
    store: SweepStore | str | bool | None = None,
    topology: str | None = None,
    hops: int = 3,
    cross_flows: int = 1,
    hop_capacities: Sequence[float] | None = None,
    hop_delays: Sequence[float] | None = None,
    hop_disciplines: Sequence[str] | None = None,
    arrivals: str | None = None,
    flow_size_dist: str | None = None,
    load: float | None = None,
    flows: int | None = None,
) -> SweepPoint | SummaryPoint:
    """Run (or fetch from cache/store) a single sweep point.

    With ``seeds`` set (an int K or an explicit seed sequence) the point is
    replicated across seeds and a :class:`SummaryPoint` with mean/std/CI is
    returned; each per-seed replica is individually cached and persisted
    (fluid replicas alias onto one computation — the fluid model never
    consumes the seed).  ``store=False`` disables persistence outright,
    ignoring ``REPRO_STORE``.

    ``topology`` selects a multi-bottleneck preset ("parking-lot" or
    "multi-dumbbell"; ``None``/"dumbbell" is the legacy grid) with ``hops``
    chain links / dumbbells and ``cross_flows`` per-hop cross / spanning
    flows (see :func:`~repro.experiments.scenarios.topology_scenario`).
    ``hop_capacities``/``hop_delays``/``hop_disciplines`` make the chain
    heterogeneous (one value per hop, validated up front); they are part of
    the cache key and the store meta.

    ``arrivals`` switches the point to a churn workload (see
    :func:`~repro.experiments.scenarios.churn_scenario`): the flow
    population becomes time-varying with ``flows`` flows arriving by the
    named process at offered load ``load``, drawing ``flow_size_dist``
    sizes.  Random schedules (poisson arrivals or pareto sizes) consume the
    scenario seed on *both* substrates, so fluid seed replicas are then
    genuinely distinct runs.
    """
    if substrate not in SUBSTRATES:
        raise ValueError(f"unknown substrate {substrate!r}")
    arrivals, flow_size_dist, load, flows = normalize_churn_axis(
        arrivals, flow_size_dist, load, flows
    )
    if substrate == "analytic" and arrivals is not None:
        raise ValueError(
            "the analytic substrate predicts steady states; churn workloads "
            "(arrivals/flow_size_dist/load/flows) have no equilibrium to analyze"
        )
    # ``topology=None`` is the legacy dumbbell grid, where per-hop lists
    # have nothing to apply to — validate them under the same rule.
    hop_capacities, hop_delays, hop_disciplines = scenarios.validate_hop_axis(
        hops, hop_capacities, hop_delays, hop_disciplines,
        preset=topology or "dumbbell",
    )
    if hop_disciplines is not None:
        # The per-hop list overrides the scalar discipline; label the point
        # (and key/persist it) by what actually ran.
        discipline = hop_discipline_label(hop_disciplines)
    store = resolve_store(store)
    if seeds is not None:
        seed_list = _seed_list(seeds)
        replicas = [
            run_point(
                mix,
                buffer_bdp,
                discipline,
                substrate=substrate,
                short_rtt=short_rtt,
                duration_s=duration_s,
                dt=dt,
                whi_init_bdp=whi_init_bdp,
                seed=s,
                record_interval_s=record_interval_s,
                scheduler=scheduler,
                use_cache=use_cache,
                store=store,
                topology=topology,
                hops=hops,
                cross_flows=cross_flows,
                hop_capacities=hop_capacities,
                hop_delays=hop_delays,
                hop_disciplines=hop_disciplines,
                arrivals=arrivals,
                flow_size_dist=flow_size_dist,
                load=load,
                flows=flows,
            )
            for s in seed_list
        ]
        return SummaryPoint(
            mix=mix,
            buffer_bdp=buffer_bdp,
            discipline=discipline,
            substrate=substrate,
            summary=summarize_metrics([p.metrics for p in replicas]),
            seeds=tuple(seed_list),
        )
    key = _cache_key(
        mix, buffer_bdp, discipline, substrate, short_rtt, duration_s, dt,
        whi_init_bdp, seed, record_interval_s, scheduler, topology, hops, cross_flows,
        hop_capacities, hop_delays, hop_disciplines,
        arrivals, flow_size_dist, load, flows,
    )
    if use_cache and key in _CACHE:
        return _CACHE[key]
    config = _point_config(
        mix, buffer_bdp, discipline, short_rtt, duration_s, dt, whi_init_bdp, seed,
        topology, hops, cross_flows, hop_capacities, hop_delays, hop_disciplines,
        arrivals, flow_size_dist, load, flows,
    )
    metrics = None
    runtime: dict | None = None
    analysis_block: dict | None = None
    if store is not None:
        skey = scenario_key(config, substrate, record_interval_s, scheduler)
        metrics = store.get(skey)
    if metrics is None:
        with RuntimeCapture() as rt:
            if substrate == "analytic":
                # Lazy import: the analysis layer pulls in scipy, which the
                # simulation substrates never need.
                from .. import analysis as _analysis

                prediction = _analysis.analyze_scenario(config)
                metrics = prediction.metrics()
                analysis_block = prediction.as_meta()
                counters = {"flows": config.num_flows}
            else:
                if substrate == "fluid":
                    sim = FluidSimulator(config)
                    trace = sim.run()
                    counters = dict(sim.runtime)
                else:
                    runner = EmulationRunner(
                        config, record_interval_s=record_interval_s, scheduler=scheduler
                    )
                    trace = runner.run()
                    counters = runner.runtime_counters()
                metrics = aggregate_metrics(trace)
        runtime = rt.block(counters)
        if store is not None:
            meta = _store_meta(
                mix, buffer_bdp, discipline, substrate, short_rtt, duration_s,
                dt, whi_init_bdp, seed, record_interval_s, scheduler,
                topology, hops, cross_flows,
                hop_capacities, hop_delays, hop_disciplines,
                arrivals, flow_size_dist, load, flows,
            )
            if analysis_block is not None:
                meta["analysis"] = analysis_block
            store.put(skey, metrics, meta=meta, runtime=runtime)
    point = SweepPoint(
        mix=mix,
        buffer_bdp=buffer_bdp,
        discipline=discipline,
        substrate=substrate,
        metrics=metrics,
        seed=seed,
        runtime=runtime,
        analysis=analysis_block,
    )
    if use_cache:
        _CACHE[key] = point
    return point


def _run_grid(
    mixes: Iterable[str] | None = None,
    buffers_bdp: Iterable[float] | None = None,
    disciplines: Iterable[str] | None = None,
    substrate: str = "fluid",
    short_rtt: bool = False,
    duration_s: float = 5.0,
    dt: float = scenarios.SWEEP_DT,
    whi_init_bdp: float | None = None,
    workers: int | None = None,
    seeds: int | Sequence[int] | None = None,
    record_interval_s: float = DEFAULT_RECORD_INTERVAL_S,
    scheduler: str = DEFAULT_SCHEDULER,
    store: SweepStore | str | bool | None = None,
    topology: str | None = None,
    hops: int = 3,
    cross_flows: int = 1,
    hop_capacities: Sequence[float] | None = None,
    hop_delays: Sequence[float] | None = None,
    hop_disciplines: Sequence[str] | None = None,
    arrivals: str | None = None,
    flow_size_dist: str | None = None,
    load: float | None = None,
    flows: int | None = None,
    executor: ExecutorPolicy | None = None,
    retry_failed: bool = True,
    trace: str | Path | None = None,
    prune_analytic: bool = False,
    shard_index: int | None = None,
    shard_count: int | None = None,
) -> tuple[list[SweepPoint] | list[SummaryPoint], list[CampaignFailure]]:
    """Shared grid engine behind :func:`run_sweep` and :func:`run_campaign`.

    Returns ``(points, failures)``; in the default ``on_failure="raise"``
    policy a non-empty failure list raises :class:`SweepPointError` instead
    of returning, after the rest of the grid has completed and persisted.
    """
    if trace is not None:
        # Re-enter with telemetry routed to the span log for the whole grid
        # (workers self-enable via the env var the context manager sets).
        # ``locals()`` is snapshotted before any other name is bound, so it
        # holds exactly this function's parameters.
        params = dict(locals())
        params["trace"] = None
        with TELEMETRY.tracing(trace):
            return _run_grid(**params)
    if substrate not in SUBSTRATES:
        raise ValueError(f"unknown substrate {substrate!r}")
    arrivals, flow_size_dist, load, flows = normalize_churn_axis(
        arrivals, flow_size_dist, load, flows
    )
    hop_capacities, hop_delays, hop_disciplines = scenarios.validate_hop_axis(
        hops, hop_capacities, hop_delays, hop_disciplines,
        preset=topology or "dumbbell",
    )
    shard_index, shard_count = validate_shard(shard_index, shard_count)
    if prune_analytic and substrate == "emulation":
        raise ValueError(
            "prune_analytic applies to the fluid and analytic substrates; the "
            "trajectory-equivalence certificate is proven for the reduced "
            "fluid model, not the packet emulator"
        )
    store = resolve_store(store)
    mixes = list(mixes) if mixes is not None else list(scenarios.CCA_MIXES)
    buffers = list(buffers_bdp) if buffers_bdp is not None else list(scenarios.BUFFER_SWEEP_BDP)
    disciplines = list(disciplines) if disciplines is not None else list(scenarios.DISCIPLINES)
    if hop_disciplines is not None:
        # The per-hop list fixes every hop's discipline, so sweeping the
        # discipline axis would label identical runs droptail *and* red.
        if len(disciplines) > 1:
            raise ValueError(
                "hop_disciplines fixes every hop's queue discipline; restrict "
                "the sweep to a single disciplines value (e.g. --disciplines "
                "droptail) instead of sweeping the discipline axis"
            )
        # Label the grid's single discipline slot by what actually runs.
        disciplines = [hop_discipline_label(hop_disciplines)]
    seed_list = _seed_list(seeds) if seeds is not None else [1]
    combos = [
        (discipline, mix, buffer_bdp)
        for discipline in disciplines
        for mix in mixes
        for buffer_bdp in buffers
    ]
    tasks = [combo + (seed,) for combo in combos for seed in seed_list]

    def task_key(task: tuple) -> tuple:
        discipline, mix, buffer_bdp, seed = task
        return _cache_key(
            mix, buffer_bdp, discipline, substrate, short_rtt, duration_s, dt,
            whi_init_bdp, seed, record_interval_s, scheduler,
            topology, hops, cross_flows,
            hop_capacities, hop_delays, hop_disciplines,
            arrivals, flow_size_dist, load, flows,
        )

    def task_config(task: tuple):
        discipline, mix, buffer_bdp, seed = task
        return _point_config(
            mix, buffer_bdp, discipline, short_rtt, duration_s, dt,
            whi_init_bdp, seed, topology, hops, cross_flows,
            hop_capacities, hop_delays, hop_disciplines,
            arrivals, flow_size_dist, load, flows,
        )

    def point_key(task: tuple) -> str:
        return scenario_key(task_config(task), substrate, record_interval_s, scheduler)

    if shard_count is not None:
        # Deterministic grid partitioning: this process takes only the
        # points whose scenario key hashes into its shard, so K hosts can
        # split one grid and ``store merge`` reassembles the result set.
        tasks = [
            task for task in tasks
            if shard_of(point_key(task), shard_count) == shard_index
        ]

    results: dict[tuple, SweepPoint] = {}
    pending: list[tuple] = []
    pending_keys: set[tuple] = set()
    duplicates: list[tuple] = []
    for task in tasks:
        key = task_key(task)
        if key in _CACHE:
            results[task] = _CACHE[key]
            continue
        if key in pending_keys:
            # Same cache key as an already-pending task (fluid seed
            # replicas alias deliberately): compute once, share the result.
            duplicates.append(task)
            continue
        if store is not None:
            discipline, mix, buffer_bdp, seed = task
            config = _point_config(
                mix, buffer_bdp, discipline, short_rtt, duration_s, dt,
                whi_init_bdp, seed, topology, hops, cross_flows,
                hop_capacities, hop_delays, hop_disciplines,
                arrivals, flow_size_dist, load, flows,
            )
            metrics = store.get(scenario_key(config, substrate, record_interval_s, scheduler))
            if metrics is not None:
                point = SweepPoint(
                    mix=mix,
                    buffer_bdp=buffer_bdp,
                    discipline=discipline,
                    substrate=substrate,
                    metrics=metrics,
                    seed=seed,
                )
                results[task] = _CACHE[key] = point
                continue
        pending.append(task)
        pending_keys.add(key)

    # Analytic pre-pass pruner: group the pending points whose buffer
    # provably never binds (see :func:`repro.analysis.buffer_never_binds`).
    # Within a group the trajectory — and hence every metric except the
    # occupancy normalisation — is independent of the buffer size, so one
    # member (the *primary*) is computed and the rest become aliases,
    # materialised from the primary's result after the dispatch below.
    alias_of: dict[tuple, tuple] = {}
    if prune_analytic and pending:
        from .. import analysis as _analysis

        def _certificate(task: tuple) -> str | None:
            config = task_config(task)
            if not _analysis.buffer_never_binds(config):
                return None
            # All group members share the scenario up to the buffer size;
            # key the group by the buffer-free scenario.
            return scenario_key(
                config.with_buffer(float("inf")), substrate, record_interval_s, scheduler
            )

        certified: dict[str, list[tuple]] = {}
        kept: list[tuple] = []
        for task in pending:
            signature = _certificate(task)
            if signature is None:
                kept.append(task)
            else:
                certified.setdefault(signature, []).append(task)
        # A point already resolved (cache/store) with the same certificate
        # can serve as the group's primary without computing anything.
        # (Infinite-buffer rows are excluded: their occupancy column cannot
        # be rescaled onto a finite alias.)
        resolved: dict[str, tuple] = {}
        for task in results:
            if math.isinf(task[2]):
                continue
            signature = _certificate(task)
            if signature is not None and signature not in resolved:
                resolved[signature] = task
        for signature, group in certified.items():
            primary = resolved.get(signature)
            if primary is None:
                # Prefer the smallest finite buffer: its occupancy column
                # rescales to every larger alias without extrapolation.
                primary = min(group, key=lambda t: (math.isinf(t[2]), t[2]))
                kept.append(primary)
            for task in group:
                if task != primary:
                    alias_of[task] = primary
        pending = kept

    def persist(task: tuple, point: SweepPoint, extra_meta: dict | None = None) -> None:
        """Land one computed point: in-process cache + persistent store."""
        results[task] = _CACHE[task_key(task)] = point
        if store is not None:
            discipline, mix, buffer_bdp, seed = task
            meta = _store_meta(
                mix, buffer_bdp, discipline, substrate, short_rtt, duration_s,
                dt, whi_init_bdp, seed, record_interval_s, scheduler,
                topology, hops, cross_flows,
                hop_capacities, hop_delays, hop_disciplines,
                arrivals, flow_size_dist, load, flows,
            )
            if point.analysis is not None:
                meta["analysis"] = point.analysis
            if extra_meta:
                meta.update(extra_meta)
            store.put(
                point_key(task),
                point.metrics,
                meta=meta,
                runtime=point.runtime,
            )

    # The executor policy: an explicit ``executor`` wins, with ``workers``
    # filling its pool size when the policy leaves it unset; the bare
    # ``workers`` argument is shorthand for a default-policy pool.
    policy = executor if executor is not None else ExecutorPolicy(workers=workers)
    if executor is not None and policy.workers is None and workers is not None:
        policy = replace(policy, workers=workers)

    exec_failures: list[PointFailure] = []

    # ``retry_failed=False`` resume semantics: points whose last attempt is
    # recorded as a *failure* row are reported again without recomputation,
    # so a warm re-run after a partial campaign recomputes nothing.
    if store is not None and not retry_failed and pending:
        recorded = {rec["key"]: rec for rec in store.failures()}
        if recorded:
            fresh: list[tuple] = []
            for task in pending:
                record = recorded.get(point_key(task))
                if record is None:
                    fresh.append(task)
                else:
                    exec_failures.append(
                        PointFailure(
                            task=task,
                            error=str(record.get("error") or "recorded failure"),
                            attempts=0,
                        )
                    )
            pending = fresh

    point_kwargs = {
        "substrate": substrate,
        "short_rtt": short_rtt,
        "duration_s": duration_s,
        "dt": dt,
        "whi_init_bdp": whi_init_bdp,
        "record_interval_s": record_interval_s,
        "scheduler": scheduler,
        # The parent owns all cache and store writes; workers must not
        # open (or pick up via REPRO_STORE) the store file.
        "use_cache": False,
        "store": False,
        "topology": topology,
        "hops": hops,
        "cross_flows": cross_flows,
        "hop_capacities": hop_capacities,
        "hop_delays": hop_delays,
        "hop_disciplines": hop_disciplines,
        "arrivals": arrivals,
        "flow_size_dist": flow_size_dist,
        "load": load,
        "flows": flows,
    }

    def task_args(task: tuple) -> tuple[tuple, dict]:
        discipline, mix, buffer_bdp, seed = task
        return (mix, buffer_bdp, discipline), {**point_kwargs, "seed": seed}

    def describe(task: tuple) -> str:
        discipline, mix, buffer_bdp, seed = task
        return (
            f"mix={mix!r}, buffer_bdp={buffer_bdp}, "
            f"discipline={discipline!r}, seed={seed}"
        )

    def execute(batch: list[tuple]) -> None:
        report = ResilientExecutor(policy).run(
            batch, run_point, task_args, on_result=persist, describe=describe
        )
        exec_failures.extend(report.failures)

    if pending and policy.pooled:
        execute(pending)
    elif pending and substrate == "fluid":
        # Batched path: stack the chunk into one lockstep integration (the
        # big single-core win).  A chunk that fails falls back to per-point
        # execution under the executor policy, which isolates and reports
        # the offending point(s) without discarding the healthy ones.
        for chunk_start in range(0, len(pending), BATCH_CHUNK):
            chunk = pending[chunk_start : chunk_start + BATCH_CHUNK]
            try:
                configs = [
                    _point_config(
                        mix, buffer_bdp, discipline, short_rtt, duration_s, dt,
                        whi_init_bdp, seed, topology, hops, cross_flows,
                        hop_capacities, hop_delays, hop_disciplines,
                        arrivals, flow_size_dist, load, flows,
                    )
                    for discipline, mix, buffer_bdp, seed in chunk
                ]
                with RuntimeCapture() as capture:
                    traces = simulate_many(configs)
            except Exception:
                execute(chunk)
                continue
            # Lockstep chunks share one integration, so the measured cost
            # is amortised evenly over the chunk's points (``shared=``).
            chunk_runtime = capture.block(
                {"steps": int(round(duration_s / dt)) + 1, "lockstep": len(chunk)},
                shared=len(chunk),
            )
            for task, point_trace in zip(chunk, traces, strict=True):
                discipline, mix, buffer_bdp, seed = task
                persist(
                    task,
                    SweepPoint(
                        mix=mix,
                        buffer_bdp=buffer_bdp,
                        discipline=discipline,
                        substrate=substrate,
                        metrics=aggregate_metrics(point_trace),
                        seed=seed,
                        runtime=chunk_runtime,
                    ),
                )
    elif pending:
        # Serial path: the executor runs each point inline (retries,
        # timeouts and skip semantics still apply; no pool is spawned).
        execute(pending)

    # Materialise pruned aliases from their primaries: same metrics with
    # the occupancy column rescaled to the alias's own buffer, persisted
    # with a ``pruned`` meta block recording the aliasing.  A result row
    # supersedes any stale failure row for the alias in the store.
    for task, primary in alias_of.items():
        source = results.get(primary)
        if source is None:
            # The primary itself failed or was skipped; the alias simply
            # stays uncomputed (and unrecorded) this run.
            continue
        discipline, mix, buffer_bdp, seed = task
        primary_buffer = primary[2]
        occupancy = source.metrics.buffer_occupancy_percent
        if math.isinf(buffer_bdp):
            occupancy = 0.0
        elif not math.isnan(occupancy):
            occupancy = min(100.0, occupancy * (primary_buffer / buffer_bdp))
        TELEMETRY.count("sweep.pruned_points")
        persist(
            task,
            SweepPoint(
                mix=mix,
                buffer_bdp=buffer_bdp,
                discipline=discipline,
                substrate=substrate,
                metrics=replace(source.metrics, buffer_occupancy_percent=occupancy),
                seed=seed,
                runtime=None,
                analysis=source.analysis,
            ),
            extra_meta={
                "pruned": {
                    "aliased_to": point_key(primary),
                    "primary_buffer_bdp": primary_buffer,
                    "reason": (
                        "buffer never binds: inflight is provably below every "
                        "buffer in the group, so the trajectory is identical "
                        "up to occupancy normalisation"
                    ),
                }
            },
        )

    for task in duplicates:
        # A duplicate's primary may itself have failed; it then simply has
        # no result to share.
        key = task_key(task)
        if key in _CACHE:
            results[task] = _CACHE[key]

    failures: list[CampaignFailure] = []
    for failure in exec_failures:
        discipline, mix, buffer_bdp, seed = failure.task
        failures.append(
            CampaignFailure(
                mix=mix,
                buffer_bdp=buffer_bdp,
                discipline=discipline,
                substrate=substrate,
                seed=seed,
                error=failure.error,
                attempts=failure.attempts,
            )
        )
        if store is not None and failure.attempts > 0:
            # Freshly attempted failures are recorded (axis combo + error)
            # so warm re-runs can skip them; attempts == 0 means the row is
            # already in the store (served by retry_failed=False above).
            store.put_failure(
                point_key(failure.task),
                failure.error,
                meta=_store_meta(
                    mix, buffer_bdp, discipline, substrate, short_rtt, duration_s,
                    dt, whi_init_bdp, seed, record_interval_s, scheduler,
                    topology, hops, cross_flows,
                    hop_capacities, hop_delays, hop_disciplines,
                    arrivals, flow_size_dist, load, flows,
                ),
            )
    if failures and policy.on_failure == "raise":
        first = failures[0]
        raise SweepPointError(
            first.mix, first.buffer_bdp, first.discipline, first.seed,
            error=first.error,
        )

    if seeds is None:
        singles = [results[combo + (1,)] for combo in combos if combo + (1,) in results]
        return singles, failures
    summaries: list[SummaryPoint] = []
    for combo in combos:
        discipline, mix, buffer_bdp = combo
        replicas = [
            results[combo + (seed,)] for seed in seed_list if combo + (seed,) in results
        ]
        if not replicas:
            continue
        summaries.append(
            SummaryPoint(
                mix=mix,
                buffer_bdp=buffer_bdp,
                discipline=discipline,
                substrate=substrate,
                summary=summarize_metrics([p.metrics for p in replicas]),
                seeds=tuple(s for s in seed_list if combo + (s,) in results),
            )
        )
    return summaries, failures


def run_sweep(
    mixes: Iterable[str] | None = None,
    buffers_bdp: Iterable[float] | None = None,
    disciplines: Iterable[str] | None = None,
    substrate: str = "fluid",
    short_rtt: bool = False,
    duration_s: float = 5.0,
    dt: float = scenarios.SWEEP_DT,
    whi_init_bdp: float | None = None,
    workers: int | None = None,
    seeds: int | Sequence[int] | None = None,
    record_interval_s: float = DEFAULT_RECORD_INTERVAL_S,
    scheduler: str = DEFAULT_SCHEDULER,
    store: SweepStore | str | bool | None = None,
    topology: str | None = None,
    hops: int = 3,
    cross_flows: int = 1,
    hop_capacities: Sequence[float] | None = None,
    hop_delays: Sequence[float] | None = None,
    hop_disciplines: Sequence[str] | None = None,
    arrivals: str | None = None,
    flow_size_dist: str | None = None,
    load: float | None = None,
    flows: int | None = None,
    executor: ExecutorPolicy | None = None,
    retry_failed: bool = True,
    trace: str | Path | None = None,
    prune_analytic: bool = False,
    shard_index: int | None = None,
    shard_count: int | None = None,
) -> list[SweepPoint] | list[SummaryPoint]:
    """Run the full (or a reduced) aggregate-validation sweep.

    ``topology`` swaps the scenario family of every grid point from the
    paper's dumbbell to a multi-bottleneck preset ("parking-lot" or
    "multi-dumbbell") built with ``hops`` and ``cross_flows``; the (mix,
    buffer, discipline, seed) grid, the caches and the persistent store all
    work identically (the store key hashes the full scenario including its
    topology).  ``hop_capacities``/``hop_delays``/``hop_disciplines`` make
    every grid point's chain heterogeneous (one value per hop, validated
    against ``hops`` before any point runs).

    ``seeds`` (an int K or an explicit seed sequence) replicates every grid
    point across scenario seeds and returns :class:`SummaryPoint` rows with
    mean/std/95% CI; without it, single-seed :class:`SweepPoint` rows are
    returned.  The fluid substrate is deterministic, so its seed replicas
    alias onto a single computation (and a single store record).  ``store``
    (or the ``REPRO_STORE`` env var) persists each point as soon as it
    completes, so interrupted sweeps resume without recomputing finished
    points.

    Execution goes through a
    :class:`~repro.experiments.executor.ResilientExecutor`: ``workers=N``
    (N > 1) fans uncached points out to a process pool (each result is
    cached and persisted as it lands), otherwise fluid sweeps run batched
    in-process via :func:`~repro.core.simulator.simulate_many` and
    emulation sweeps run serially.  ``executor`` supplies the full policy —
    per-point retries with backoff, per-point timeouts, heartbeat progress
    logging, and ``on_failure``: under the default ``"raise"``, a point
    that exhausts its retries raises :class:`SweepPointError` naming its
    grid coordinates *after* the rest of the grid has completed and
    persisted; under ``"skip"``, failed points are recorded in the store as
    structured failure rows and the sweep returns the completed points (use
    :func:`run_campaign` to receive the failure report).  With
    ``retry_failed=False``, a warm re-run serves recorded failures from the
    store instead of recomputing them.  Cached points are never
    re-dispatched.

    ``arrivals`` switches every grid point to a churn workload with
    ``flows`` flows arriving by the named process at offered load ``load``
    and ``flow_size_dist`` sizes (see
    :func:`~repro.experiments.scenarios.churn_scenario`); the grid, the
    caches and the store keep working identically, and the churn axis rides
    along in the cache key and the store meta.

    ``trace`` names a JSON-lines span-log file: telemetry is enabled for
    the whole grid (workers included) and every span/counter/progress
    event is appended there (``repro-bbr trace export --chrome`` converts
    it for chrome://tracing).  Tracing never changes results — scenario
    keys and metric values are bit-identical with an untraced run.

    ``prune_analytic`` runs an analytic pre-pass over the grid: points
    whose buffer provably never binds (see
    :func:`repro.analysis.buffer_never_binds`) share one computed primary
    per group, with the aliases materialised from it (occupancy rescaled)
    and recorded in the store with a ``pruned`` meta block.

    ``shard_index``/``shard_count`` partition the grid deterministically by
    scenario-key hash (``shard_of(key, shard_count)``), so K hosts can each
    run one shard against separate stores and ``repro-bbr store merge``
    reassembles them.
    """
    points, _failures = _run_grid(**locals())
    return points


def run_campaign(
    mixes: Iterable[str] | None = None,
    buffers_bdp: Iterable[float] | None = None,
    disciplines: Iterable[str] | None = None,
    substrate: str = "fluid",
    short_rtt: bool = False,
    duration_s: float = 5.0,
    dt: float = scenarios.SWEEP_DT,
    whi_init_bdp: float | None = None,
    workers: int | None = None,
    seeds: int | Sequence[int] | None = None,
    record_interval_s: float = DEFAULT_RECORD_INTERVAL_S,
    scheduler: str = DEFAULT_SCHEDULER,
    store: SweepStore | str | bool | None = None,
    topology: str | None = None,
    hops: int = 3,
    cross_flows: int = 1,
    hop_capacities: Sequence[float] | None = None,
    hop_delays: Sequence[float] | None = None,
    hop_disciplines: Sequence[str] | None = None,
    arrivals: str | None = None,
    flow_size_dist: str | None = None,
    load: float | None = None,
    flows: int | None = None,
    executor: ExecutorPolicy | None = None,
    retry_failed: bool = True,
    trace: str | Path | None = None,
    prune_analytic: bool = False,
    shard_index: int | None = None,
    shard_count: int | None = None,
) -> CampaignResult:
    """Run a sweep grid and return points *and* structured failures.

    Identical to :func:`run_sweep` (same axes, caches, store and executor
    policy) but returns a :class:`CampaignResult` whose ``failures`` list
    reports every grid point the executor gave up on — the service-grade
    entry point: with ``executor=ExecutorPolicy(on_failure="skip", ...)``
    a campaign survives crashing or failing points, completes the rest of
    the grid, and reports what failed instead of raising.
    """
    points, failures = _run_grid(**locals())
    return CampaignResult(points=points, failures=failures)


def grid_point_keys(
    mixes: Iterable[str] | None = None,
    buffers_bdp: Iterable[float] | None = None,
    disciplines: Iterable[str] | None = None,
    substrate: str = "fluid",
    short_rtt: bool = False,
    duration_s: float = 5.0,
    dt: float = scenarios.SWEEP_DT,
    whi_init_bdp: float | None = None,
    seeds: int | Sequence[int] | None = None,
    record_interval_s: float = DEFAULT_RECORD_INTERVAL_S,
    scheduler: str = DEFAULT_SCHEDULER,
    topology: str | None = None,
    hops: int = 3,
    cross_flows: int = 1,
    hop_capacities: Sequence[float] | None = None,
    hop_delays: Sequence[float] | None = None,
    hop_disciplines: Sequence[str] | None = None,
    arrivals: str | None = None,
    flow_size_dist: str | None = None,
    load: float | None = None,
    flows: int | None = None,
    shard_index: int | None = None,
    shard_count: int | None = None,
) -> list[tuple[dict, str]]:
    """Enumerate a grid's ``(coords, scenario_key)`` pairs without running it.

    Powers ``repro-bbr status``: the same axis normalisation, combo
    enumeration and key derivation as :func:`_run_grid`, but no point is
    computed.  Tasks that alias onto one scenario key (fluid seed replicas
    of seed-free scenarios) are deduplicated — the returned list has one
    entry per *distinct* stored record the grid would produce, so
    ``done + failed + remaining`` adds up against the store.
    ``shard_index``/``shard_count`` restrict the enumeration to one shard,
    mirroring the partitioning of :func:`run_sweep`.
    """
    if substrate not in SUBSTRATES:
        raise ValueError(f"unknown substrate {substrate!r}")
    arrivals, flow_size_dist, load, flows = normalize_churn_axis(
        arrivals, flow_size_dist, load, flows
    )
    hop_capacities, hop_delays, hop_disciplines = scenarios.validate_hop_axis(
        hops, hop_capacities, hop_delays, hop_disciplines,
        preset=topology or "dumbbell",
    )
    shard_index, shard_count = validate_shard(shard_index, shard_count)
    mixes = list(mixes) if mixes is not None else list(scenarios.CCA_MIXES)
    buffers = list(buffers_bdp) if buffers_bdp is not None else list(scenarios.BUFFER_SWEEP_BDP)
    disciplines = list(disciplines) if disciplines is not None else list(scenarios.DISCIPLINES)
    if hop_disciplines is not None:
        if len(disciplines) > 1:
            raise ValueError(
                "hop_disciplines fixes every hop's queue discipline; restrict "
                "the grid to a single disciplines value"
            )
        disciplines = [hop_discipline_label(hop_disciplines)]
    seed_list = _seed_list(seeds) if seeds is not None else [1]
    out: list[tuple[dict, str]] = []
    seen: set[str] = set()
    for discipline in disciplines:
        for mix in mixes:
            for buffer_bdp in buffers:
                for seed in seed_list:
                    config = _point_config(
                        mix, buffer_bdp, discipline, short_rtt, duration_s, dt,
                        whi_init_bdp, seed, topology, hops, cross_flows,
                        hop_capacities, hop_delays, hop_disciplines,
                        arrivals, flow_size_dist, load, flows,
                    )
                    key = scenario_key(config, substrate, record_interval_s, scheduler)
                    if key in seen:
                        continue
                    seen.add(key)
                    if shard_count is not None and shard_of(key, shard_count) != shard_index:
                        continue
                    out.append(
                        (
                            {
                                "mix": mix,
                                "buffer_bdp": buffer_bdp,
                                "discipline": discipline,
                                "substrate": substrate,
                                "seed": seed,
                            },
                            key,
                        )
                    )
    return out


def series(
    points: Iterable[SweepPoint | SummaryPoint], metric: str, mix: str, discipline: str
) -> list[tuple[float, float]]:
    """Extract one figure line: (buffer, metric value) for a mix and discipline.

    :class:`SummaryPoint` rows contribute their per-seed mean.
    """
    rows = [
        (p.buffer_bdp, float(p.metrics.as_dict()[metric]))
        for p in points
        if p.mix == mix and p.discipline == discipline
    ]
    return sorted(rows)


def series_ci(
    points: Iterable[SummaryPoint], metric: str, mix: str, discipline: str
) -> list[tuple[float, float, float]]:
    """Extract one mean ± CI figure line: (buffer, mean, ci95 half-width)."""
    rows = []
    for p in points:
        if p.mix != mix or p.discipline != discipline:
            continue
        if isinstance(p, SummaryPoint):
            rows.append(
                (
                    p.buffer_bdp,
                    float(p.summary.mean.as_dict()[metric]),
                    float(p.summary.ci95.as_dict()[metric]),
                )
            )
        else:
            rows.append((p.buffer_bdp, float(p.metrics.as_dict()[metric]), 0.0))
    return sorted(rows)

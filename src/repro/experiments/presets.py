"""YAML campaign presets: declarative service-grade campaign definitions.

A preset file declares everything a campaign needs — the full axis grid,
the substrate, the seed replication, the store backend and the executor
policy — so a multi-hour campaign is one reviewable artifact instead of a
shell history entry::

    # campaign.yaml
    name: emulation-grid
    substrate: emulation
    seeds: 5
    duration_s: 5.0
    grid:
      mixes: [BBRv1, BBRv1/RENO]
      buffers_bdp: [1, 2.5, 5]
      disciplines: [droptail, red]
    store:
      path: results.sqlite
      backend: sqlite
    executor:
      workers: 4
      retries: 1
      timeout_s: 300
      on_failure: skip

    $ repro-bbr campaign --preset campaign.yaml

Topology-level presets ride along (the ``topology`` section mirrors the
``--topology/--hops/...`` axis of PR 5) and churn workloads via the
``churn`` section.  Unknown keys anywhere in the file are hard errors —
a typoed ``buffers`` must not silently run the default grid.  CLI flags
passed alongside ``--preset`` override the preset's values.

Parsing uses :mod:`yaml` when available; the loader degrades to a clear
error (not an import-time crash) on environments without PyYAML.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any

from .executor import ON_FAILURE_MODES, ExecutorPolicy

try:  # pragma: no cover - exercised only on environments without PyYAML
    import yaml
except ImportError:  # pragma: no cover
    yaml = None  # type: ignore[assignment]

#: Top-level preset keys (besides the nested sections below).
TOP_LEVEL_KEYS = frozenset(
    {"name", "substrate", "seeds", "duration_s", "short_rtt", "grid",
     "topology", "churn", "store", "executor"}
)
GRID_KEYS = frozenset({"mixes", "buffers_bdp", "disciplines"})
TOPOLOGY_KEYS = frozenset(
    {"preset", "hops", "cross_flows", "hop_capacities", "hop_delays",
     "hop_disciplines"}
)
CHURN_KEYS = frozenset({"arrivals", "flow_size_dist", "load", "flows"})
STORE_KEYS = frozenset({"path", "backend", "fsync"})
EXECUTOR_KEYS = frozenset(
    {"workers", "retries", "backoff_s", "timeout_s", "on_failure",
     "heartbeat_s", "retry_failed"}
)


class PresetError(ValueError):
    """A campaign preset file is malformed (unknown keys, bad types, ...)."""


@dataclass(frozen=True)
class CampaignPreset:
    """One parsed campaign preset (see the module docstring for the format).

    Field names deliberately mirror :func:`~repro.experiments.sweep.run_campaign`
    keyword arguments so :meth:`campaign_kwargs` is a straight projection —
    the devtools preset-coverage check relies on this correspondence to
    prove every scenario-affecting preset field reaches the cache key.
    """

    name: str = "campaign"
    substrate: str = "emulation"
    seeds: int | list[int] = 5
    duration_s: float = 5.0
    short_rtt: bool = False
    # grid
    mixes: list[str] | None = None
    buffers_bdp: list[float] | None = None
    disciplines: list[str] | None = None
    # topology axis
    topology: str | None = None
    hops: int = 3
    cross_flows: int = 1
    hop_capacities: list[float] | None = None
    hop_delays: list[float] | None = None
    hop_disciplines: list[str] | None = None
    # churn axis
    arrivals: str | None = None
    flow_size_dist: str | None = None
    load: float | None = None
    flows: int | None = None
    # store
    store_path: str | None = None
    store_backend: str | None = None
    store_fsync: bool = True
    # executor policy
    executor: ExecutorPolicy = field(default_factory=ExecutorPolicy)
    retry_failed: bool = True

    def campaign_kwargs(self) -> dict[str, Any]:
        """Keyword arguments for :func:`~repro.experiments.sweep.run_campaign`.

        The store is not included — the CLI resolves it separately so
        ``--store``/``--backend`` flags can override the preset's.
        """
        return {
            "mixes": self.mixes,
            "buffers_bdp": self.buffers_bdp,
            "disciplines": self.disciplines,
            "substrate": self.substrate,
            "short_rtt": self.short_rtt,
            "duration_s": self.duration_s,
            "seeds": self.seeds,
            "topology": self.topology,
            "hops": self.hops,
            "cross_flows": self.cross_flows,
            "hop_capacities": self.hop_capacities,
            "hop_delays": self.hop_delays,
            "hop_disciplines": self.hop_disciplines,
            "arrivals": self.arrivals,
            "flow_size_dist": self.flow_size_dist,
            "load": self.load,
            "flows": self.flows,
            "executor": self.executor,
            "retry_failed": self.retry_failed,
        }


def _require_mapping(value: Any, section: str) -> dict[str, Any]:
    if value is None:
        return {}
    if not isinstance(value, dict):
        raise PresetError(f"preset section {section!r} must be a mapping")
    return value


def _reject_unknown(data: dict[str, Any], allowed: frozenset[str], section: str) -> None:
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise PresetError(
            f"unknown key(s) in preset {section}: {', '.join(unknown)} "
            f"(expected one of: {', '.join(sorted(allowed))})"
        )


def _str_list(value: Any, key: str) -> list[str] | None:
    if value is None:
        return None
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise PresetError(f"preset key {key!r} must be a list of strings")
    return list(value)


def _float_list(value: Any, key: str) -> list[float] | None:
    if value is None:
        return None
    if not isinstance(value, list):
        raise PresetError(f"preset key {key!r} must be a list of numbers")
    try:
        return [float(v) for v in value]
    except (TypeError, ValueError):
        raise PresetError(f"preset key {key!r} must be a list of numbers") from None


def parse_preset(data: Any, name: str = "campaign") -> CampaignPreset:
    """Build a :class:`CampaignPreset` from a decoded YAML document.

    Every section rejects unknown keys with a :class:`PresetError` naming
    the offender and the accepted spelling; semantic validation (mix names,
    discipline values, load bounds, ...) is deferred to the sweep layer so
    the rules live in exactly one place.
    """
    doc = _require_mapping(data, "document")
    _reject_unknown(doc, TOP_LEVEL_KEYS, "document")
    grid = _require_mapping(doc.get("grid"), "grid")
    _reject_unknown(grid, GRID_KEYS, "'grid'")
    topo = _require_mapping(doc.get("topology"), "topology")
    _reject_unknown(topo, TOPOLOGY_KEYS, "'topology'")
    churn = _require_mapping(doc.get("churn"), "churn")
    _reject_unknown(churn, CHURN_KEYS, "'churn'")
    store = _require_mapping(doc.get("store"), "store")
    _reject_unknown(store, STORE_KEYS, "'store'")
    executor = _require_mapping(doc.get("executor"), "executor")
    _reject_unknown(executor, EXECUTOR_KEYS, "'executor'")

    seeds = doc.get("seeds", 5)
    if isinstance(seeds, bool) or not isinstance(seeds, int | list):
        raise PresetError("preset key 'seeds' must be an int count or a list of seeds")

    on_failure = executor.get("on_failure", "raise")
    if on_failure not in ON_FAILURE_MODES:
        raise PresetError(
            f"executor.on_failure must be one of {ON_FAILURE_MODES}, got {on_failure!r}"
        )
    try:
        policy = ExecutorPolicy(
            workers=executor.get("workers"),
            retries=int(executor.get("retries", 0)),
            backoff_s=float(executor.get("backoff_s", 0.5)),
            timeout_s=executor.get("timeout_s"),
            on_failure=on_failure,
            heartbeat_s=executor.get("heartbeat_s"),
        )
    except (TypeError, ValueError) as exc:
        raise PresetError(f"invalid executor policy: {exc}") from exc

    return CampaignPreset(
        name=str(doc.get("name", name)),
        substrate=str(doc.get("substrate", "emulation")),
        seeds=seeds,
        duration_s=float(doc.get("duration_s", 5.0)),
        short_rtt=bool(doc.get("short_rtt", False)),
        mixes=_str_list(grid.get("mixes"), "grid.mixes"),
        buffers_bdp=_float_list(grid.get("buffers_bdp"), "grid.buffers_bdp"),
        disciplines=_str_list(grid.get("disciplines"), "grid.disciplines"),
        topology=topo.get("preset"),
        hops=int(topo.get("hops", 3)),
        cross_flows=int(topo.get("cross_flows", 1)),
        hop_capacities=_float_list(topo.get("hop_capacities"), "topology.hop_capacities"),
        hop_delays=_float_list(topo.get("hop_delays"), "topology.hop_delays"),
        hop_disciplines=_str_list(topo.get("hop_disciplines"), "topology.hop_disciplines"),
        arrivals=churn.get("arrivals"),
        flow_size_dist=churn.get("flow_size_dist"),
        load=churn.get("load"),
        flows=churn.get("flows"),
        store_path=store.get("path"),
        store_backend=store.get("backend"),
        store_fsync=bool(store.get("fsync", True)),
        executor=policy,
        retry_failed=bool(executor.get("retry_failed", True)),
    )


def load_preset(path: str | Path) -> CampaignPreset:
    """Load and validate a campaign preset YAML file."""
    if yaml is None:  # pragma: no cover - environment without PyYAML
        raise PresetError(
            "campaign presets require PyYAML, which is not installed in this "
            "environment"
        )
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise PresetError(f"cannot read preset file {path}: {exc}") from exc
    try:
        data = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise PresetError(f"preset file {path} is not valid YAML: {exc}") from exc
    return parse_preset(data, name=path.stem)


#: Preset field names that configure execution machinery rather than the
#: scenario being computed (probed by the devtools CACHE005 check).
PRESET_EXECUTION_FIELDS = frozenset(
    {"name", "store_path", "store_backend", "store_fsync", "executor",
     "retry_failed", "seeds"}
)

#: Preset field -> run_campaign parameter aliases (identity otherwise).
PRESET_PARAM_ALIASES: dict[str, str] = {}


def preset_scenario_fields() -> list[str]:
    """Preset fields that must reach the campaign cache key (for devtools)."""
    return [
        f.name for f in fields(CampaignPreset) if f.name not in PRESET_EXECUTION_FIELDS
    ]

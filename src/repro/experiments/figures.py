"""Regeneration of every figure and analysis result of the paper.

Each ``figure_*`` function reproduces the data behind one figure of the
paper and returns it as plain Python structures (dictionaries of series).
The benchmark harness in ``benchmarks/`` calls these functions and prints
the resulting rows; EXPERIMENTS.md records how the regenerated shapes
compare with the published ones.

Figure index (cf. DESIGN.md):

* Fig. 1 — Reno vs. BBRv1 sending-rate competition.
* Fig. 2 — interplay of the BBRv1/BBRv2 fluid-model variables.
* Fig. 4 / 5 / 11 / 12 — single-flow trace validation of BBRv1 / BBRv2 /
  Reno / CUBIC under drop-tail and RED (fluid model vs. packet emulator).
* Fig. 6-10 — aggregate validation: Jain fairness, loss, buffer occupancy,
  utilization, jitter as functions of the buffer size for seven CCA mixes.
* Fig. 13-17 — the same five metrics for the short-RTT setting (Appendix C).
* Theorems 1-5 — equilibria and stability of the reduced models.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

import numpy as np

from ..analysis import (
    analyze_network,
    bbr2_queue_reduction_vs_bbr1,
    integrate_reduced,
    reference_network,
)
from ..core.simulator import simulate
from ..emulation.runner import emulate
from ..metrics.aggregate import aggregate_metrics
from . import scenarios, sweep

#: Metrics of the aggregate figures, in paper order.
AGGREGATE_FIGURES: dict[str, str] = {
    "fig06_fairness": "jain_fairness",
    "fig07_loss": "loss_percent",
    "fig08_queuing": "buffer_occupancy_percent",
    "fig09_utilization": "utilization_percent",
    "fig10_jitter": "jitter_ms",
}

#: Reduced sweep used by default so the benchmark suite stays tractable;
#: pass ``buffers_bdp=scenarios.BUFFER_SWEEP_BDP`` for the paper's full grid.
DEFAULT_SWEEP_BUFFERS: tuple[float, ...] = (1.0, 4.0, 7.0)


def _percent(rate: np.ndarray, capacity: float) -> np.ndarray:
    return 100.0 * rate / capacity


# --------------------------------------------------------------------------- #
# Trace figures
# --------------------------------------------------------------------------- #


def figure_1(
    duration_s: float = 10.0,
    substrates: Iterable[str] = ("fluid", "emulation"),
    dt: float = 1e-4,
) -> dict[str, Any]:
    """Fig. 1: sending rates of one Reno flow competing with one BBRv1 flow."""
    config = scenarios.competition_scenario(duration_s=duration_s, dt=dt)
    result: dict[str, Any] = {"config": config}
    for substrate in substrates:
        trace = simulate(config) if substrate == "fluid" else emulate(config)
        capacity = trace.bottleneck().capacity_pps
        result[substrate] = {
            "time": trace.time,
            "reno_pct": _percent(trace.flows[0].rate, capacity),
            "bbr1_pct": _percent(trace.flows[1].rate, capacity),
            "mean_reno_pct": float(np.mean(_percent(trace.flows[0].rate, capacity))),
            "mean_bbr1_pct": float(np.mean(_percent(trace.flows[1].rate, capacity))),
        }
    return result


def figure_2(duration_s: float = 1.0, dt: float = 1e-4) -> dict[str, Any]:
    """Fig. 2: the interplay of the BBR fluid-model variables for a single flow."""
    result: dict[str, Any] = {}
    for cca in ("bbr1", "bbr2"):
        config = scenarios.trace_validation_scenario(cca, duration_s=duration_s, dt=dt)
        trace = simulate(config)
        capacity = trace.bottleneck().capacity_pps
        flow = trace.flows[0]
        entry = {
            "time": trace.time,
            "rate_pct": _percent(flow.rate, capacity),
            "delivery_pct": _percent(flow.delivery_rate, capacity),
            "x_btl_pct": _percent(flow.extras["x_btl"], capacity),
            "x_max_pct": _percent(flow.extras["x_max"], capacity),
            "cwnd_pkts": flow.cwnd,
            "inflight_pkts": flow.inflight,
        }
        if cca == "bbr2":
            entry["w_hi_pkts"] = flow.extras["w_hi"]
            entry["w_lo_pkts"] = flow.extras["w_lo"]
        result[cca] = entry
    return result


def trace_validation_figure(
    cca: str,
    duration_s: float = 30.0,
    substrates: Iterable[str] = ("fluid", "emulation"),
    disciplines: Iterable[str] = scenarios.DISCIPLINES,
    dt: float = 1e-4,
) -> dict[str, Any]:
    """Figs. 4, 5, 11, 12: normalised single-flow traces, model vs. emulation.

    Returns, per discipline and substrate, the paper's four normalised
    series (rate, queue, loss, relative excess RTT) plus summary means.
    """
    result: dict[str, Any] = {"cca": cca}
    for discipline in disciplines:
        config = scenarios.trace_validation_scenario(
            cca, discipline=discipline, duration_s=duration_s, dt=dt
        )
        per_substrate: dict[str, Any] = {}
        for substrate in substrates:
            trace = simulate(config) if substrate == "fluid" else emulate(config)
            rows = trace.normalized_rows()
            summary = aggregate_metrics(trace)
            per_substrate[substrate] = {
                "rows": rows,
                "mean_rate_pct": float(np.mean(rows["rate_pct"])),
                "mean_queue_pct": float(np.mean(rows["queue_pct"])),
                "loss_pct": summary.loss_percent,
                "utilization_pct": summary.utilization_percent,
            }
        result[discipline] = per_substrate
    return result


def figure_4(**kwargs: Any) -> dict[str, Any]:
    """Fig. 4: BBRv1 trace validation."""
    return trace_validation_figure("bbr1", **kwargs)


def figure_5(**kwargs: Any) -> dict[str, Any]:
    """Fig. 5: BBRv2 trace validation."""
    return trace_validation_figure("bbr2", **kwargs)


def figure_11(**kwargs: Any) -> dict[str, Any]:
    """Fig. 11: Reno trace validation."""
    return trace_validation_figure("reno", **kwargs)


def figure_12(**kwargs: Any) -> dict[str, Any]:
    """Fig. 12: CUBIC trace validation."""
    return trace_validation_figure("cubic", **kwargs)


# --------------------------------------------------------------------------- #
# Aggregate figures
# --------------------------------------------------------------------------- #


def aggregate_figure(
    metric: str,
    substrate: str = "fluid",
    mixes: Iterable[str] | None = None,
    buffers_bdp: Iterable[float] | None = None,
    disciplines: Iterable[str] | None = None,
    short_rtt: bool = False,
    duration_s: float = 5.0,
    dt: float = scenarios.SWEEP_DT,
    workers: int | None = None,
    seeds: int | Iterable[int] | None = None,
    store: Any = None,
) -> dict[str, dict[str, list[tuple[float, ...]]]]:
    """One aggregate figure: ``{discipline: {mix: [(buffer_bdp, value), ...]}}``.

    ``workers=N`` fans uncached sweep points out to a process pool (most
    useful on the emulation substrate, whose points cannot be batched).
    ``seeds`` replicates every point across scenario seeds, in which case
    each series entry is a ``(buffer_bdp, mean, ci95)`` triple; ``store``
    (or the ``REPRO_STORE`` env var) persists points across processes.
    """
    if metric not in set(AGGREGATE_FIGURES.values()):
        raise ValueError(f"unknown aggregate metric {metric!r}")
    buffers = tuple(buffers_bdp) if buffers_bdp is not None else DEFAULT_SWEEP_BUFFERS
    mixes = tuple(mixes) if mixes is not None else tuple(scenarios.CCA_MIXES)
    disciplines = tuple(disciplines) if disciplines is not None else scenarios.DISCIPLINES
    points = sweep.run_sweep(
        mixes=mixes,
        buffers_bdp=buffers,
        disciplines=disciplines,
        substrate=substrate,
        short_rtt=short_rtt,
        duration_s=duration_s,
        dt=dt,
        workers=workers,
        seeds=seeds,
        store=store,
    )
    extract = sweep.series_ci if seeds is not None else sweep.series
    return {
        discipline: {mix: extract(points, metric, mix, discipline) for mix in mixes}
        for discipline in disciplines
    }


def figure_6(**kwargs: Any) -> dict[str, Any]:
    """Fig. 6: Jain fairness vs. buffer size."""
    return aggregate_figure("jain_fairness", **kwargs)


def figure_7(**kwargs: Any) -> dict[str, Any]:
    """Fig. 7: loss rate vs. buffer size."""
    return aggregate_figure("loss_percent", **kwargs)


def figure_8(**kwargs: Any) -> dict[str, Any]:
    """Fig. 8: buffer occupancy vs. buffer size."""
    return aggregate_figure("buffer_occupancy_percent", **kwargs)


def figure_9(**kwargs: Any) -> dict[str, Any]:
    """Fig. 9: bottleneck utilization vs. buffer size."""
    return aggregate_figure("utilization_percent", **kwargs)


def figure_10(**kwargs: Any) -> dict[str, Any]:
    """Fig. 10: jitter vs. buffer size."""
    return aggregate_figure("jitter_ms", **kwargs)


def figures_13_17(metric: str, **kwargs: Any) -> dict[str, Any]:
    """Figs. 13-17: the short-RTT (Appendix C) variant of an aggregate figure."""
    kwargs.setdefault("short_rtt", True)
    return aggregate_figure(metric, **kwargs)


def figure_8_insight5(
    buffers_bdp: Iterable[float] = (1.0, 3.0, 5.0, 7.0),
    duration_s: float = 5.0,
    dt: float = scenarios.SWEEP_DT,
) -> dict[str, Any]:
    """Insight 5: BBRv2 bufferbloat in large drop-tail buffers.

    The paper traces the effect to the start-up estimate of ``inflight_hi``;
    the fluid model reproduces it when ``w_hi``'s initial condition grows
    with the buffer (what an unconstrained start-up would measure).  Returns
    buffer occupancy with the default and with buffer-dependent ``w_hi``.
    """
    rows = []
    for buffer_bdp in buffers_bdp:
        default_point = sweep.run_point(
            "BBRv2", buffer_bdp, "droptail", duration_s=duration_s, dt=dt
        )
        distorted_point = sweep.run_point(
            "BBRv2",
            buffer_bdp,
            "droptail",
            duration_s=duration_s,
            dt=dt,
            whi_init_bdp=1.0 + float(buffer_bdp),
        )
        rows.append(
            {
                "buffer_bdp": buffer_bdp,
                "occupancy_default_pct": default_point.metrics.buffer_occupancy_percent,
                "occupancy_startup_distorted_pct": distorted_point.metrics.buffer_occupancy_percent,
            }
        )
    return {"rows": rows}


# --------------------------------------------------------------------------- #
# Theorems (Section 5)
# --------------------------------------------------------------------------- #


def theorem_table(
    flow_counts: Iterable[int] = (2, 5, 10, 50),
    propagation_delay_s: float = 0.035,
    capacity_mbps: float = 100.0,
) -> list[dict[str, Any]]:
    """Equilibria and stability of Theorems 1-5 for a range of flow counts.

    Built on the campaign-facing :func:`~repro.analysis.analyze_network`
    dispatcher (one network per theorem regime), so this table exercises
    the same closed-form dispatch that the analytic sweep substrate and
    ``repro-bbr stability`` run at campaign scale: a deep buffer selects
    Theorems 1+2, a shallow one Theorem 3, and BBRv2's fair point
    Theorems 4+5.
    """
    rows = []
    for n in flow_counts:
        # Buffers picked inside each theorem's hypotheses: deep means
        # B >= d C (Thm 1), shallow B <= (3/5) d C (Thm 3), and BBRv2's
        # fair point needs only B >= (N-1)/(4N+1) d C < 1 BDP (Thm 4).
        deep = analyze_network(
            ("bbr1",) * n,
            reference_network(
                n, rtt_s=propagation_delay_s, capacity_mbps=capacity_mbps
            ),
        )
        shallow = analyze_network(
            ("bbr1",) * n,
            reference_network(
                n,
                rtt_s=propagation_delay_s,
                capacity_mbps=capacity_mbps,
                buffer_bdp=0.5,
            ),
        )
        fair_v2 = analyze_network(
            ("bbr2",) * n,
            reference_network(
                n, rtt_s=propagation_delay_s, capacity_mbps=capacity_mbps
            ),
        )
        capacity_pps = deep.capacity_pps
        bdp_pkts = capacity_pps * propagation_delay_s
        assert (deep.theorems, shallow.theorems, fair_v2.theorems) == (
            "1+2",
            "3",
            "4+5",
        ), "reference networks must land inside the closed-form regimes"
        rows.append(
            {
                "num_flows": n,
                "thm1_queue_bdp": deep.queue_pkts / bdp_pkts,
                "thm2_stable": deep.max_real_part < 0,
                "thm3_rate_share": shallow.rates_pps[0] / capacity_pps,
                "thm3_loss_fraction": shallow.loss_fraction,
                "thm3_stable": shallow.max_real_part < 0,
                "thm4_queue_bdp": fair_v2.queue_pkts / bdp_pkts,
                "thm4_queue_reduction": bbr2_queue_reduction_vs_bbr1(n),
                "thm5_stable": fair_v2.max_real_part < 0,
            }
        )
    return rows


def convergence_demo(
    version: str = "bbr1",
    num_flows: int = 10,
    propagation_delay_s: float = 0.035,
    capacity_mbps: float = 100.0,
    duration_s: float = 60.0,
) -> dict[str, Any]:
    """Numerically integrate a reduced model from a perturbed state to its equilibrium."""
    net = reference_network(
        num_flows, rtt_s=propagation_delay_s, capacity_mbps=capacity_mbps
    )
    capacity_pps = net.capacity_pps
    rng_free_perturbation = np.linspace(0.5, 1.5, num_flows)
    x0 = capacity_pps / num_flows * rng_free_perturbation
    time, states = integrate_reduced(version, net, x0, queue0=0.0, duration_s=duration_s)
    expected_queue = (
        propagation_delay_s * capacity_pps
        if version == "bbr1"
        else (num_flows - 1.0) / (4.0 * num_flows + 1.0) * propagation_delay_s * capacity_pps
    )
    return {
        "time": time,
        "states": states,
        "final_queue_pkts": float(states[-1, -1]),
        "expected_queue_pkts": float(expected_queue),
        "final_rates_pps": states[-1, :-1].tolist(),
    }

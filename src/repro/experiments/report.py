"""Rendering helpers for experiment results: ASCII tables and CSV files.

The repository has no plotting dependency, so every figure of the paper is
regenerated as a *data series* — rows of (x, y) values per line of the
figure — printed as an aligned text table and optionally written to CSV.
EXPERIMENTS.md records the shape comparison against the paper.
"""

from __future__ import annotations

import csv
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path

from .. import units


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], float_format: str = "{:.3f}"
) -> str:
    """Format rows as an aligned, pipe-separated text table."""
    rendered_rows = []
    for row in rows:
        rendered = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def write_csv(path: str | Path, rows: Sequence[Mapping[str, object]]) -> Path:
    """Write a list of homogeneous dictionaries to a CSV file."""
    path = Path(path)
    if not rows:
        raise ValueError("cannot write an empty CSV")
    path.parent.mkdir(parents=True, exist_ok=True)
    fieldnames = list(rows[0].keys())
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def format_mean_ci(mean: float, ci: float, float_format: str = "{:.3f}") -> str:
    """Render a replicated value as ``mean ± ci`` (95% CI half-width)."""
    return f"{float_format.format(mean)} ± {float_format.format(ci)}"


def link_rows(metrics: Sequence) -> list[dict[str, object]]:
    """Flatten per-link aggregate metrics into display/CSV-friendly rows.

    ``metrics`` is a sequence of :class:`~repro.metrics.aggregate.LinkMetrics`
    (or anything with a compatible ``as_dict``); the internal packets/second
    capacity is rendered as Mbps, matching the paper's figures.
    """
    rows: list[dict[str, object]] = []
    for m in metrics:
        row = dict(m.as_dict())
        row["capacity_mbps"] = units.pps_to_mbps(float(row.pop("capacity_pps")))
        rows.append(row)
    if not rows:
        raise ValueError("at least one link is required")
    return rows


def link_table(metrics: Sequence) -> str:
    """Render per-link aggregate metrics (one row per queued link)."""
    rows = link_rows(metrics)
    return format_table(list(rows[0].keys()), [list(r.values()) for r in rows])


def series_table(
    title: str,
    series_by_label: Mapping[str, Sequence[tuple[float, ...]]],
    x_name: str = "buffer_bdp",
    y_format: str = "{:.3f}",
) -> str:
    """Render several series sharing the same x grid as one table.

    Entries may be ``(x, y)`` pairs or — for seed-replicated campaign
    results — ``(x, mean, ci95)`` triples, rendered as ``mean ± ci``.
    """
    labels = list(series_by_label)
    if not labels:
        raise ValueError("at least one series is required")
    x_values = [point[0] for point in series_by_label[labels[0]]]
    rows = []
    for i, x in enumerate(x_values):
        row: list[object] = [x]
        for label in labels:
            points = series_by_label[label]
            if i >= len(points):
                row.append(float("nan"))
                continue
            point = points[i]
            if len(point) >= 3:
                row.append(format_mean_ci(point[1], point[2], y_format))
            else:
                row.append(point[1])
        rows.append(row)
    table = format_table([x_name, *labels], rows, float_format=y_format)
    return f"{title}\n{table}"

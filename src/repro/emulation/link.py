"""Bottleneck link of the emulator: a packet queue plus a serialising transmitter.

The access links are never saturated (Fig. 3), so they are pure propagation
delays handled by the sender/receiver scheduling; only queued (topology)
links own a queue and a transmitter that serialises packets at the
configured capacity.  Multi-bottleneck topologies chain several of these
links: the runner wires per-flow routes (:meth:`BottleneckLink.set_routes`)
that push a departing packet either onto the forward delay line of the next
hop or — at the flow's last hop — onto the fused return path.

The transmitter is *virtual*: because service times are constant and the
queue is FIFO, the start and departure times of every admitted packet are
fully determined at arrival time (``start = max(arrival, busy_until)``,
``departure = start + service_time``), so no transmission-completion
events are scheduled at all.  An arrival consults the queue discipline for
the accept/drop decision (occupancy is the number of already-admitted
packets that have not started transmission yet) and, when accepted,
immediately pushes the packet onto its delivery path timed at the exact
instant the event-driven transmitter would have produced.  Queue-length
statistics and the ``transmitted`` counter are maintained lazily from the
recorded start times.

When the runner wires up routes (:meth:`BottleneckLink.set_routes`) the
propagation leg and the next hop are additionally fused into one delay-line
push: a packet departing at ``d`` reaches the next link's arrival at
``d + delay`` (forward route) or is acknowledged at
``(d + delay) + return_delay`` (last hop) — the same instants as with
separate hops.  The only heap events a packet ever occupies are therefore
its arrival pops (one batched delay-line pop per hop) and its
acknowledgement (a batched return delay-line pop).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from .events import DelayLine, EventQueue
from .packet import Packet
from .queues import PacketQueue


class BottleneckLink:
    """A store-and-forward link: finite queue, fixed service rate, fixed delay."""

    __slots__ = (
        "events",
        "queue",
        "capacity_pps",
        "delay_s",
        "deliver",
        "service_time_s",
        "_starts",
        "_busy_until",
        "_pending_departure",
        "_transmitted",
        "_prop_line",
        "_ack_routes",
        "_last_sample_time",
        "_queue_time_product",
    )

    def __init__(
        self,
        events: EventQueue,
        queue: PacketQueue,
        capacity_pps: float,
        delay_s: float,
        deliver: Callable[[Packet], None],
    ) -> None:
        if capacity_pps <= 0:
            raise ValueError("capacity must be positive")
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        self.events = events
        self.queue = queue
        self.capacity_pps = capacity_pps
        self.delay_s = delay_s
        self.deliver = deliver
        self.service_time_s = 1.0 / capacity_pps
        #: Transmission-start times of admitted packets that have not yet
        #: started (== the waiting queue, as departure times, minus service).
        self._starts: deque[float] = deque()
        #: Time the transmitter finishes its last admitted packet.
        self._busy_until = 0.0
        #: Departure time of the packet currently in (virtual) service.
        self._pending_departure: float | None = None
        self._transmitted = 0
        self._prop_line = DelayLine(events, delay_s, deliver)
        self._ack_routes: list[tuple[DelayLine, float]] | None = None
        # Let the queue discipline observe time and the service rate (RED
        # needs both for its idle-period average decay).
        queue.bind_clock(events, self.service_time_s)
        # Time-weighted queue statistics for the trace.
        self._last_sample_time = 0.0
        self._queue_time_product = 0.0

    @property
    def service_time(self) -> float:
        """Transmission time of one packet."""
        return self.service_time_s

    @property
    def transmitted(self) -> int:
        """Packets that have finished transmission by the current time."""
        self._flush(self.events.now)
        return self._transmitted

    @property
    def waiting(self) -> int:
        """Packets admitted but not yet in transmission at the current time."""
        self._flush(self.events.now)
        return len(self._starts)

    def set_routes(self, routes: list[tuple[DelayLine, float] | None]) -> None:
        """Fuse this link's propagation leg into per-flow onward routes.

        ``routes[flow_id] = (line, extra_delay_s)``: an admitted packet is
        pushed onto ``line`` timed at ``departure + delay_s + extra_delay_s``.
        For a flow's last hop the line is the receiving sender's return
        delay line and ``extra_delay_s`` its return propagation delay (the
        original ack fusion); for an intermediate hop it is the forward
        line whose sink is the next link's ``on_arrival`` with no extra
        delay.  Entries of flows that never traverse this link are None.
        """
        self._ack_routes = routes

    def _flush(self, horizon: float) -> None:
        """Advance the virtual transmitter state to time ``horizon``.

        Pops every queued packet whose transmission starts by ``horizon``,
        integrating the queue-length step function exactly at each start,
        and credits finished departures to the ``transmitted`` counter.
        """
        starts = self._starts
        t_prev = self._last_sample_time
        product = self._queue_time_product
        if starts and starts[0] <= horizon:
            occupancy = len(starts)
            while starts and starts[0] <= horizon:
                begin = starts.popleft()
                product += occupancy * (begin - t_prev)
                occupancy -= 1
                t_prev = begin
                # A new transmission starting proves the previous one (if
                # any) has departed: starts are never earlier than the
                # preceding departure.
                if self._pending_departure is not None:
                    self._transmitted += 1
                self._pending_departure = begin + self.service_time_s
            if not starts:
                self.queue.notify_idle(t_prev)
        pending = self._pending_departure
        if pending is not None and pending <= horizon:
            self._transmitted += 1
            self._pending_departure = None
        self._queue_time_product = product + len(starts) * (horizon - t_prev)
        self._last_sample_time = horizon

    def mean_queue_since(self, since_product: float, since_time: float) -> float:
        """Mean queue length (packets) since a recorded checkpoint."""
        self._flush(self.events.now)
        elapsed = self._last_sample_time - since_time
        if elapsed <= 0:
            return float(len(self._starts))
        return (self._queue_time_product - since_product) / elapsed

    def checkpoint(self) -> tuple[float, float]:
        """Snapshot for :meth:`mean_queue_since` (product, time)."""
        self._flush(self.events.now)
        return self._queue_time_product, self._last_sample_time

    def on_arrival(self, packet: Packet) -> None:
        """A packet arrives from an access link and is offered to the queue."""
        events = self.events
        now = events.now
        starts = self._starts
        if starts and starts[0] <= now:
            self._flush(now)
        else:
            # Inlined tail of _flush: nothing starts by now, only the
            # queue-length integral advances.
            self._queue_time_product += len(starts) * (now - self._last_sample_time)
            self._last_sample_time = now
        if self.queue.decide(len(starts), now):
            busy_until = self._busy_until
            begin = now if now > busy_until else busy_until
            self._busy_until = departure = begin + self.service_time_s
            starts.append(begin)
            routes = self._ack_routes
            if routes is not None:
                # Fused hop: acknowledgement lands at the same instant the
                # separate transmission/propagation/return events would
                # have produced it.  This append bypasses send_at's
                # non-decreasing ready-time guard; monotonicity holds by
                # construction — departures are globally non-decreasing
                # (departure = max(arrival, busy_until) + service) and each
                # flow's line adds a per-flow constant to its own
                # subsequence of them.
                line, return_delay = routes[packet.flow_id]
                pending = line._pending
                pending.append(((departure + self.delay_s) + return_delay, packet))
                timer = line._timer
                if timer._entry is None:
                    timer._arm(pending[0][0])
            else:
                self._prop_line.send_at(departure + self.delay_s, packet)

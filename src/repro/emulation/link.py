"""Bottleneck link of the emulator: a packet queue plus a serialising transmitter.

The dumbbell's access links are never saturated (Fig. 3), so they are pure
propagation delays handled by the sender/receiver scheduling; only the
shared bottleneck link owns a queue and a transmitter that serialises
packets at the configured capacity.
"""

from __future__ import annotations

from typing import Callable

from .events import EventQueue
from .packet import Packet
from .queues import PacketQueue


class BottleneckLink:
    """A store-and-forward link: finite queue, fixed service rate, fixed delay."""

    def __init__(
        self,
        events: EventQueue,
        queue: PacketQueue,
        capacity_pps: float,
        delay_s: float,
        deliver: Callable[[Packet], None],
    ) -> None:
        if capacity_pps <= 0:
            raise ValueError("capacity must be positive")
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        self.events = events
        self.queue = queue
        self.capacity_pps = capacity_pps
        self.delay_s = delay_s
        self.deliver = deliver
        self._busy = False
        self.transmitted = 0
        # Time-weighted queue statistics for the trace.
        self._last_sample_time = 0.0
        self._queue_time_product = 0.0

    @property
    def service_time(self) -> float:
        """Transmission time of one packet."""
        return 1.0 / self.capacity_pps

    def _account_queue(self) -> None:
        now = self.events.now
        self._queue_time_product += self.queue.occupancy * (now - self._last_sample_time)
        self._last_sample_time = now

    def mean_queue_since(self, since_product: float, since_time: float) -> float:
        """Mean queue length (packets) since a recorded checkpoint."""
        self._account_queue()
        elapsed = self._last_sample_time - since_time
        if elapsed <= 0:
            return float(self.queue.occupancy)
        return (self._queue_time_product - since_product) / elapsed

    def checkpoint(self) -> tuple[float, float]:
        """Snapshot for :meth:`mean_queue_since` (product, time)."""
        self._account_queue()
        return self._queue_time_product, self._last_sample_time

    def on_arrival(self, packet: Packet) -> None:
        """A packet arrives from an access link and is offered to the queue."""
        self._account_queue()
        accepted = self.queue.offer(packet)
        if accepted and not self._busy:
            self._start_transmission()

    def _start_transmission(self) -> None:
        packet = self.queue.pop()
        if packet is None:
            self._busy = False
            return
        self._account_queue()
        self._busy = True
        self.events.schedule(self.service_time, lambda p=packet: self._finish_transmission(p))

    def _finish_transmission(self, packet: Packet) -> None:
        self.transmitted += 1
        self.events.schedule(self.delay_s, lambda p=packet: self.deliver(p))
        self._account_queue()
        if self.queue.occupancy > 0:
            self._start_transmission()
        else:
            self._busy = False

"""Sender and receiver endpoints of the packet-level emulator.

A :class:`Sender` models an iPerf-like greedy source: it always has data to
send and is limited only by its congestion window and pacing rate.  The
destination host acknowledges every packet individually (SACK-style), so the
sender detects a loss as soon as a later-sent packet is acknowledged — the
network is FIFO, hence any still-unacknowledged packet that was sent before
an acknowledged one must have been dropped.  Lost packets are not
retransmitted (the throughput metrics of the paper measure delivered
traffic; retransmissions would only re-label which packets carry it).
"""

from __future__ import annotations

from typing import Callable

from .cca.base import AckSample, LossEvent, PacketCCA
from .events import EventQueue
from .link import BottleneckLink
from .packet import Packet

#: Minimum retransmission timeout, mirroring common kernel defaults.
MIN_RTO_S: float = 0.2
#: Periodic interval at which the sender checks for a stalled connection.
TIMEOUT_CHECK_INTERVAL_S: float = 0.1


class Sender:
    """A greedy traffic source controlled by a packet-level CCA."""

    def __init__(
        self,
        events: EventQueue,
        flow_id: int,
        cca: PacketCCA,
        bottleneck: BottleneckLink,
        access_delay_s: float,
        return_delay_s: float,
        mss_bytes: int,
        start_time_s: float = 0.0,
    ) -> None:
        if access_delay_s < 0 or return_delay_s < 0:
            raise ValueError("delays must be non-negative")
        self.events = events
        self.flow_id = flow_id
        self.cca = cca
        self.bottleneck = bottleneck
        self.access_delay_s = access_delay_s
        self.return_delay_s = return_delay_s
        self.mss_bytes = mss_bytes
        self.start_time_s = start_time_s

        self.next_seq = 0
        self.inflight: dict[int, Packet] = {}
        self.sent_count = 0
        self.delivered_count = 0
        self.lost_count = 0
        self.last_rtt_s = 0.0
        self.srtt_s: float | None = None
        self._next_send_time = start_time_s
        self._wakeup_pending = False
        self._last_ack_time = start_time_s
        self._started = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Schedule the first transmission and the stall watchdog."""
        if self._started:
            return
        self._started = True
        self.events.schedule_at(self.start_time_s, self._try_send)
        self.events.schedule_at(
            self.start_time_s + TIMEOUT_CHECK_INTERVAL_S, self._check_timeout
        )

    # ------------------------------------------------------------------ #
    # Transmission path
    # ------------------------------------------------------------------ #

    def _rto(self) -> float:
        if self.srtt_s is None:
            return 1.0
        return max(MIN_RTO_S, 4.0 * self.srtt_s)

    def _pacing_wakeup(self) -> None:
        self._wakeup_pending = False
        self._try_send()

    def _try_send(self) -> None:
        now = self.events.now
        window = self.cca.window_limit()
        interval = self.cca.pacing_interval()
        while len(self.inflight) < window:
            if now < self._next_send_time:
                break
            self._transmit(now)
            self._next_send_time = max(self._next_send_time, now) + interval
        if (
            len(self.inflight) < window
            and now < self._next_send_time
            and not self._wakeup_pending
        ):
            # Pacing-limited: wake up when the next transmission is allowed.
            # The pending flag is cleared only by the wakeup itself so that
            # ACK-triggered calls never pile up duplicate wakeup events.
            self._wakeup_pending = True
            self.events.schedule_at(self._next_send_time, self._pacing_wakeup)

    def _transmit(self, now: float) -> None:
        packet = Packet(
            flow_id=self.flow_id,
            seq=self.next_seq,
            size_bytes=self.mss_bytes,
            sent_time=now,
            delivered_at_send=self.delivered_count,
        )
        self.next_seq += 1
        self.sent_count += 1
        self.inflight[packet.seq] = packet
        self.events.schedule(
            self.access_delay_s, lambda p=packet: self.bottleneck.on_arrival(p)
        )

    # ------------------------------------------------------------------ #
    # Acknowledgement path
    # ------------------------------------------------------------------ #

    def on_packet_delivered(self, packet: Packet) -> None:
        """Called by the topology when a packet reaches the destination host."""
        self.events.schedule(self.return_delay_s, lambda p=packet: self._on_ack(p))

    def _on_ack(self, packet: Packet) -> None:
        now = self.events.now
        self._last_ack_time = now
        if packet.seq not in self.inflight:
            return  # e.g. already declared lost by the watchdog
        del self.inflight[packet.seq]
        self.delivered_count += 1

        # FIFO network: every unacknowledged packet sent before this one is
        # lost.  Packets enter ``inflight`` in strictly increasing sequence
        # order and dict iteration preserves insertion order, so the lost
        # packets form a prefix — stop at the first seq past the ACK instead
        # of scanning the whole window on every acknowledgement.
        lost: list[int] = []
        for seq in self.inflight:
            if seq >= packet.seq:
                break
            lost.append(seq)
        lost_seqs = tuple(lost)
        rtt = now - packet.sent_time
        self.last_rtt_s = rtt
        self.srtt_s = rtt if self.srtt_s is None else 0.875 * self.srtt_s + 0.125 * rtt
        elapsed = max(now - packet.sent_time, 1e-9)
        delivery_rate = (self.delivered_count - packet.delivered_at_send) / elapsed

        if lost_seqs:
            for seq in lost_seqs:
                del self.inflight[seq]
            self.lost_count += len(lost_seqs)
            self.cca.on_loss(
                LossEvent(
                    now=now,
                    num_lost=len(lost_seqs),
                    inflight=len(self.inflight),
                    highest_seq_sent=self.next_seq - 1,
                    lost_seqs=lost_seqs,
                )
            )
        self.cca.on_ack(
            AckSample(
                now=now,
                rtt=rtt,
                delivery_rate=delivery_rate,
                inflight=len(self.inflight),
                acked_seq=packet.seq,
                newly_delivered=1,
            )
        )
        self._try_send()

    # ------------------------------------------------------------------ #
    # Stall watchdog (retransmission timeout)
    # ------------------------------------------------------------------ #

    def _check_timeout(self) -> None:
        now = self.events.now
        if self.inflight and now - self._last_ack_time > self._rto():
            self.lost_count += len(self.inflight)
            self.inflight.clear()
            self.cca.on_timeout(now)
            self._last_ack_time = now
            self._try_send()
        self.events.schedule(TIMEOUT_CHECK_INTERVAL_S, self._check_timeout)


class Destination:
    """The shared destination host: routes delivered packets back to their sender."""

    def __init__(self, senders: dict[int, Sender]) -> None:
        self._senders = senders

    def deliver(self, packet: Packet) -> None:
        sender = self._senders.get(packet.flow_id)
        if sender is None:
            raise KeyError(f"packet for unknown flow {packet.flow_id}")
        sender.on_packet_delivered(packet)


def make_deliver_callback(senders: dict[int, Sender]) -> Callable[[Packet], None]:
    """Convenience wrapper returning the destination's delivery callback."""
    return Destination(senders).deliver

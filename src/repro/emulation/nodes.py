"""Sender and receiver endpoints of the packet-level emulator.

A :class:`Sender` models an iPerf-like greedy source: it always has data to
send and is limited only by its congestion window and pacing rate.  The
destination host acknowledges every packet individually (SACK-style), so the
sender detects a loss as soon as a later-sent packet is acknowledged — the
network is FIFO, hence any still-unacknowledged packet that was sent before
an acknowledged one must have been dropped.  Lost packets are not
retransmitted (the throughput metrics of the paper measure delivered
traffic; retransmissions would only re-label which packets carry it).

Event usage is O(1) per sender regardless of the number of in-flight
packets: the access leg and the return path are
:class:`~repro.emulation.events.DelayLine` FIFOs, and the pacing wakeup and
the RTO watchdog are reusable :class:`~repro.emulation.events.Timer`
handles.  No per-packet closures are ever scheduled (the pre-change
per-packet-lambda implementation survives as
:mod:`repro.emulation.closure_ref` for the equivalence tests).
"""

from __future__ import annotations

import math
from collections.abc import Callable

from .cca.base import LossEvent, PacketCCA
from .events import DelayLine, EventQueue, Timer
from .link import BottleneckLink
from .packet import Packet

#: Minimum retransmission timeout, mirroring common kernel defaults.
MIN_RTO_S: float = 0.2
#: Periodic interval at which the sender checks for a stalled connection.
TIMEOUT_CHECK_INTERVAL_S: float = 0.1

_INF = math.inf


class Sender:
    """A greedy traffic source controlled by a packet-level CCA."""

    __slots__ = (
        "events",
        "flow_id",
        "cca",
        "bottleneck",
        "access_delay_s",
        "return_delay_s",
        "mss_bytes",
        "start_time_s",
        "size_packets",
        "stop_time_s",
        "completed_time_s",
        "on_complete",
        "next_seq",
        "inflight",
        "n_inflight",
        "sent_count",
        "delivered_count",
        "lost_count",
        "timeout_count",
        "reconciled_count",
        "last_rtt_s",
        "srtt_s",
        "return_line",
        "_access_line",
        "_pacing_timer",
        "_watchdog",
        "_timeout_marked",
        "_cca_ack",
        "_loss_event",
        "_next_send_time",
        "_last_ack_time",
        "_started",
        "_done",
        "_stop_timer",
    )

    def __init__(
        self,
        events: EventQueue,
        flow_id: int,
        cca: PacketCCA,
        bottleneck: BottleneckLink,
        access_delay_s: float,
        return_delay_s: float,
        mss_bytes: int,
        start_time_s: float = 0.0,
        size_packets: int | None = None,
        stop_time_s: float | None = None,
    ) -> None:
        if access_delay_s < 0 or return_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if size_packets is not None and size_packets < 1:
            raise ValueError("flow size must be at least one packet")
        if stop_time_s is not None and stop_time_s <= start_time_s:
            raise ValueError("stop time must lie after the start time")
        self.events = events
        self.flow_id = flow_id
        self.cca = cca
        self.bottleneck = bottleneck
        self.access_delay_s = access_delay_s
        self.return_delay_s = return_delay_s
        self.mss_bytes = mss_bytes
        self.start_time_s = start_time_s
        #: Packets to deliver before the flow completes (None: long-lived).
        self.size_packets = size_packets
        #: Absolute switch-off time of an on/off source (None: never).
        self.stop_time_s = stop_time_s
        #: Absolute time the flow completed or switched off (None: active).
        self.completed_time_s: float | None = None
        #: Runner hook fired once at teardown (purges shared delay lines).
        self.on_complete: Callable[[Sender], None] | None = None

        self.next_seq = 0
        self.inflight: dict[int, Packet] = {}
        self.n_inflight = 0
        self.sent_count = 0
        self.delivered_count = 0
        self.lost_count = 0
        #: Number of retransmission timeouts fired by the watchdog.
        self.timeout_count = 0
        #: Packets first written off by the watchdog whose ACK arrived later
        #: (spurious-timeout reconciliation, see :meth:`_reconcile_late_ack`).
        self.reconciled_count = 0
        self.last_rtt_s = 0.0
        self.srtt_s: float | None = None
        self._next_send_time = start_time_s
        self._last_ack_time = start_time_s
        self._started = False
        self._done = False
        self._stop_timer = Timer(events, self._on_stop) if stop_time_s is not None else None

        #: Data path to the bottleneck (the sender's private access link).
        self._access_line = DelayLine(events, access_delay_s, bottleneck.on_arrival)
        #: Return path carrying ACKs back from the destination.  The link
        #: pushes straight onto this line when ack routes are fused.
        self.return_line = DelayLine(events, return_delay_s, self._on_ack)
        self._pacing_timer = Timer(events, self._try_send)
        self._watchdog = Timer(events, self._check_timeout)
        #: Sequences written off by the watchdog that may still be ACKed.
        self._timeout_marked: set[int] = set()
        # Bound hot-path ACK entry of the CCA (see PacketCCA.on_ack_fast);
        # the loss record is reused across calls (the CCA contract is to
        # read it synchronously, see cca/base.py) so the ACK hot path
        # allocates nothing beyond the packet itself.
        self._cca_ack = cca.on_ack_fast
        self._loss_event = LossEvent(0.0, 0, 0, 0)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Schedule the first transmission and the stall watchdog."""
        if self._started:
            return
        self._started = True
        self.events.schedule_at(self.start_time_s, self._try_send)
        self._watchdog.schedule_at(self.start_time_s + TIMEOUT_CHECK_INTERVAL_S)
        if self._stop_timer is not None and self.stop_time_s is not None:
            self._stop_timer.schedule_at(self.stop_time_s)

    # ------------------------------------------------------------------ #
    # Transmission path
    # ------------------------------------------------------------------ #

    def _rto(self) -> float:
        if self.srtt_s is None:
            return 1.0
        return max(MIN_RTO_S, 4.0 * self.srtt_s)

    def _try_send(self) -> None:
        if self._done:
            return
        now = self.events.now
        next_send = self._next_send_time
        if now < next_send and self._pacing_timer._entry is not None:
            # Pacing-limited and the wakeup is already armed: nothing to do
            # (the armed wakeup fires no later than any newly computed send
            # time would).
            return
        cca = self.cca
        window = cca.cwnd_pkts  # inlined cca.window_limit()
        if window < 1.0:
            window = 1.0
        n_inflight = self.n_inflight
        if n_inflight >= window:
            return
        limit = self.size_packets if self.size_packets is not None else _INF
        if self.next_seq >= limit:
            # Every packet of a finite flow is already injected; completion
            # fires once the last in-flight packet is acknowledged.
            return
        if now >= next_send:
            rate = cca.pacing_rate_pps  # inlined cca.pacing_interval()
            interval = 0.0 if rate <= 0.0 or rate == _INF else 1.0 / rate
            inflight = self.inflight
            line = self._access_line
            pending = line._pending
            flow_id = self.flow_id
            mss = self.mss_bytes
            delivered = self.delivered_count
            arrival = now + self.access_delay_s
            seq = first_seq = self.next_seq
            while True:
                packet = Packet(flow_id, seq, mss, now, delivered)
                inflight[seq] = packet
                pending.append((arrival, packet))
                seq += 1
                n_inflight += 1
                next_send = (next_send if next_send > now else now) + interval
                if n_inflight >= window or now < next_send or seq >= limit:
                    break
            self.sent_count += seq - first_seq
            self.next_seq = seq
            self.n_inflight = n_inflight
            self._next_send_time = next_send
            # The whole burst shares one arrival time, so the line's timer
            # is armed at most once per call.
            timer = line._timer
            if timer._entry is None:
                timer._arm(pending[0][0])
        if n_inflight < window and now < next_send and self.next_seq < limit:
            # Pacing-limited: wake up when the next transmission is allowed.
            timer = self._pacing_timer
            if timer._entry is None:
                timer._arm(next_send)

    # ------------------------------------------------------------------ #
    # Acknowledgement path
    # ------------------------------------------------------------------ #

    def on_packet_delivered(self, packet: Packet) -> None:
        """Called by the topology when a packet reaches the destination host."""
        if self._done:
            # Stragglers of a departed flow (packets that were already queued
            # at a bottleneck when the source switched off) die here rather
            # than re-arming the torn-down return line.
            return
        self.return_line.send(packet)

    def _on_ack(self, packet: Packet) -> None:
        if self._done:
            return
        now = self.events.now
        self._last_ack_time = now
        inflight = self.inflight
        seq = packet.seq
        if inflight.pop(seq, None) is None:
            self._reconcile_late_ack(seq)
            return
        n_inflight = self.n_inflight - 1
        delivered = self.delivered_count + 1
        self.delivered_count = delivered
        if self._timeout_marked:
            self._purge_marked(seq)

        # FIFO network: every unacknowledged packet sent before this one is
        # lost.  Packets enter ``inflight`` in strictly increasing sequence
        # order and dict iteration preserves insertion order, so the lost
        # packets form a prefix — stop at the first seq past the ACK instead
        # of scanning the whole window on every acknowledgement.
        lost: list[int] = []
        for s in inflight:
            if s >= seq:
                break
            lost.append(s)
        rtt = now - packet.sent_time
        self.last_rtt_s = rtt
        srtt = self.srtt_s
        self.srtt_s = rtt if srtt is None else 0.875 * srtt + 0.125 * rtt
        elapsed = rtt if rtt > 1e-9 else 1e-9
        delivery_rate = (delivered - packet.delivered_at_send) / elapsed

        if lost:
            for s in lost:
                del inflight[s]
            n_inflight -= len(lost)
            self.lost_count += len(lost)
            event = self._loss_event
            event.now = now
            event.num_lost = len(lost)
            event.inflight = n_inflight
            event.highest_seq_sent = self.next_seq - 1
            event.lost_seqs = tuple(lost)
            self.n_inflight = n_inflight
            self.cca.on_loss(event)
        else:
            self.n_inflight = n_inflight
        self._cca_ack(now, rtt, delivery_rate, n_inflight, seq, 1)
        size = self.size_packets
        if size is not None and self.next_seq >= size and n_inflight == 0:
            self._complete(now)
            return
        self._try_send()

    def _reconcile_late_ack(self, seq: int) -> None:
        """An ACK arrived for a packet the watchdog had written off.

        The packet was genuinely delivered, so the spurious timeout must not
        leave it counted as lost: move it from the loss tally to the
        delivery tally.  (The pre-change implementation silently dropped
        such ACKs, undercounting deliveries and overcounting losses after
        every spurious RTO.)
        """
        marked = self._timeout_marked
        if seq in marked:
            marked.remove(seq)
            self.lost_count -= 1
            self.delivered_count += 1
            self.reconciled_count += 1
            self._purge_marked(seq)

    def _purge_marked(self, acked_seq: int) -> None:
        """Drop timeout marks that can no longer be reconciled.

        The network is FIFO: once ``acked_seq`` is acknowledged, any marked
        packet with a smaller sequence would already have been acknowledged
        if it had been delivered — it is confirmed lost and its mark can be
        discarded (keeping the marked set bounded).
        """
        self._timeout_marked = {s for s in self._timeout_marked if s >= acked_seq}

    # ------------------------------------------------------------------ #
    # Stall watchdog (retransmission timeout)
    # ------------------------------------------------------------------ #

    def _check_timeout(self) -> None:
        if self._done:
            return
        now = self.events.now
        inflight = self.inflight
        if inflight and now - self._last_ack_time > self._rto():
            self.timeout_count += 1
            self.lost_count += len(inflight)
            # Keep the written-off sequences around: if an ACK still arrives
            # (spurious timeout) the counters are reconciled in _on_ack.
            self._timeout_marked.update(inflight)
            inflight.clear()
            self.n_inflight = 0
            self.cca.on_timeout(now)
            self._last_ack_time = now
            self._try_send()
            size = self.size_packets
            if size is not None and self.next_seq >= size and self.n_inflight == 0:
                # The write-off drained the window and every packet of the
                # finite flow is injected: nothing can restart this source.
                self._complete(now)
                return
        self._watchdog.schedule(TIMEOUT_CHECK_INTERVAL_S)

    # ------------------------------------------------------------------ #
    # Finite-size completion and on/off switch-off
    # ------------------------------------------------------------------ #

    def _on_stop(self) -> None:
        """On/off switch-off: abandon in-flight data and tear down."""
        if self._done:
            return
        # The source stops mid-transfer: whatever is still travelling is
        # abandoned, not awaited — the flow's lifetime ends exactly at the
        # configured stop time.
        self.inflight.clear()
        self.n_inflight = 0
        self._timeout_marked.clear()
        self._complete(self.events.now)

    def _complete(self, now: float) -> None:
        """Record the completion time and release every event-loop resource.

        After this call the sender occupies zero heap slots: the pacing
        timer, the RTO watchdog, the stop timer and both private delay
        lines are cancelled/drained, so a churn run's heap stays bounded by
        the *active* flow population.  Packets of this flow still inside
        shared infrastructure (bottleneck queues, multi-hop forward lines)
        are the runner's responsibility (see its ``on_complete`` hook).
        """
        self._done = True
        self.completed_time_s = now
        self._pacing_timer.cancel()
        self._watchdog.cancel()
        if self._stop_timer is not None:
            self._stop_timer.cancel()
        self._access_line.clear()
        self.return_line.clear()
        if self.on_complete is not None:
            self.on_complete(self)


class Destination:
    """The shared destination host: routes delivered packets back to their sender."""

    def __init__(self, senders: dict[int, Sender]) -> None:
        self._senders = senders

    def deliver(self, packet: Packet) -> None:
        sender = self._senders.get(packet.flow_id)
        if sender is None:
            raise KeyError(f"packet for unknown flow {packet.flow_id}")
        sender.on_packet_delivered(packet)


def make_deliver_callback(senders: dict[int, Sender]) -> Callable[[Packet], None]:
    """Convenience wrapper returning the destination's delivery callback."""
    return Destination(senders).deliver

"""Scenario runner of the packet-level emulator.

Builds the dumbbell topology of a :class:`~repro.config.ScenarioConfig`,
runs the discrete-event simulation, and samples the same
:class:`~repro.metrics.traces.Trace` structure the fluid model produces, so
that every metric of the paper's evaluation can be computed from either
substrate interchangeably (this emulator plays the role of the paper's
mininet experiments, cf. DESIGN.md).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

import numpy as np

from .. import units
from ..config import ScenarioConfig
from ..metrics.traces import FlowTrace, LinkTrace, Trace
from .cca import create_packet_cca
from .events import EventQueue
from .link import BottleneckLink
from .nodes import Destination, Sender
from .queues import make_queue


@dataclass
class _FlowSamples:
    """Accumulators for one flow's trace samples."""

    rate: list[float] = field(default_factory=list)
    delivery: list[float] = field(default_factory=list)
    cwnd: list[float] = field(default_factory=list)
    inflight: list[float] = field(default_factory=list)
    rtt: list[float] = field(default_factory=list)
    prev_sent: int = 0
    prev_delivered: int = 0


class EmulationRunner:
    """Runs one scenario on the packet-level emulator."""

    def __init__(self, config: ScenarioConfig, record_interval_s: float = 0.01) -> None:
        if record_interval_s <= 0:
            raise ValueError("record interval must be positive")
        self.config = config
        self.record_interval_s = record_interval_s
        self.rng = random.Random(config.seed)
        self.events = EventQueue()

        capacity_pps = config.bottleneck.capacity_pps
        buffer_pkts = config.buffer_packets()
        if math.isinf(buffer_pkts):
            buffer_pkts = 100.0 * config.bottleneck_bdp_packets()
        queue = make_queue(
            config.bottleneck.discipline, max(1, int(round(buffer_pkts))), self.rng
        )

        self.senders: dict[int, Sender] = {}
        destination = Destination(self.senders)
        self.bottleneck = BottleneckLink(
            events=self.events,
            queue=queue,
            capacity_pps=capacity_pps,
            delay_s=config.bottleneck.delay_s,
            deliver=destination.deliver,
        )
        for i, flow_cfg in enumerate(config.flows):
            cca = create_packet_cca(
                flow_cfg.cca,
                rng=random.Random(config.seed + 17 * (i + 1)),
                initial_rate_pps=capacity_pps / config.num_flows,
            )
            self.senders[i] = Sender(
                events=self.events,
                flow_id=i,
                cca=cca,
                bottleneck=self.bottleneck,
                access_delay_s=flow_cfg.access_delay_s,
                return_delay_s=flow_cfg.access_delay_s + config.bottleneck.delay_s,
                mss_bytes=units.MSS_BYTES,
                start_time_s=flow_cfg.start_time_s,
            )

        # Sampling state.
        self._times: list[float] = []
        self._flow_samples = [_FlowSamples() for _ in config.flows]
        self._queue_samples: list[float] = []
        self._loss_samples: list[float] = []
        self._arrival_samples: list[float] = []
        self._departure_samples: list[float] = []
        self._prev_enqueued = 0
        self._prev_dropped = 0
        self._prev_transmitted = 0
        self._queue_checkpoint = (0.0, 0.0)

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def _sample(self) -> None:
        now = self.events.now
        interval = self.record_interval_s
        self._times.append(now)
        for i, sender in self.senders.items():
            samples = self._flow_samples[i]
            sent_delta = sender.sent_count - samples.prev_sent
            delivered_delta = sender.delivered_count - samples.prev_delivered
            samples.prev_sent = sender.sent_count
            samples.prev_delivered = sender.delivered_count
            samples.rate.append(sent_delta / interval)
            samples.delivery.append(delivered_delta / interval)
            samples.cwnd.append(sender.cca.window_limit())
            samples.inflight.append(float(len(sender.inflight)))
            samples.rtt.append(
                sender.last_rtt_s
                if sender.last_rtt_s > 0
                else 2.0 * (sender.access_delay_s + self.config.bottleneck.delay_s)
            )
        queue = self.bottleneck.queue
        arrivals = (queue.enqueued + queue.dropped) - (
            self._prev_enqueued + self._prev_dropped
        )
        drops = queue.dropped - self._prev_dropped
        transmitted = self.bottleneck.transmitted - self._prev_transmitted
        self._prev_enqueued = queue.enqueued
        self._prev_dropped = queue.dropped
        self._prev_transmitted = self.bottleneck.transmitted
        mean_queue = self.bottleneck.mean_queue_since(*self._queue_checkpoint)
        self._queue_checkpoint = self.bottleneck.checkpoint()
        self._queue_samples.append(mean_queue)
        self._loss_samples.append(drops / arrivals if arrivals > 0 else 0.0)
        self._arrival_samples.append(arrivals / interval)
        self._departure_samples.append(transmitted / interval)
        self.events.schedule(interval, self._sample)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self) -> Trace:
        """Run the emulation for the configured duration and return its trace."""
        for sender in self.senders.values():
            sender.start()
        self.events.schedule(self.record_interval_s, self._sample)
        self.events.run(until=self.config.duration_s)
        return self._build_trace()

    def _build_trace(self) -> Trace:
        time = np.asarray(self._times, dtype=float)
        flows = []
        for i, flow_cfg in enumerate(self.config.flows):
            samples = self._flow_samples[i]
            flows.append(
                FlowTrace(
                    cca=flow_cfg.cca,
                    rate=np.asarray(samples.rate),
                    delivery_rate=np.asarray(samples.delivery),
                    cwnd=np.asarray(samples.cwnd),
                    inflight=np.asarray(samples.inflight),
                    rtt=np.asarray(samples.rtt),
                )
            )
        buffer_pkts = float(self.bottleneck.queue.capacity_pkts)
        links = [
            LinkTrace(
                name="bottleneck",
                capacity_pps=self.bottleneck.capacity_pps,
                buffer_pkts=buffer_pkts,
                queue=np.asarray(self._queue_samples),
                loss_prob=np.asarray(self._loss_samples),
                arrival_rate=np.asarray(self._arrival_samples),
                departure_rate=np.asarray(self._departure_samples),
            )
        ]
        return Trace(time=time, flows=flows, links=links, substrate="emulation")


def emulate(config: ScenarioConfig, record_interval_s: float = 0.01) -> Trace:
    """Convenience wrapper: build an :class:`EmulationRunner` and run it."""
    return EmulationRunner(config, record_interval_s=record_interval_s).run()

"""Scenario runner of the packet-level emulator.

Builds the topology of a :class:`~repro.config.ScenarioConfig` — the
paper's dumbbell, or an explicit multi-bottleneck
:class:`~repro.config.TopologyConfig` (parking lots, multi-dumbbells) —
runs the discrete-event simulation, and samples the same
:class:`~repro.metrics.traces.Trace` structure the fluid model produces, so
that every metric of the paper's evaluation can be computed from either
substrate interchangeably (this emulator plays the role of the paper's
mininet experiments, cf. DESIGN.md).

Multi-hop topologies chain one :class:`~repro.emulation.link.BottleneckLink`
per queued link via the existing delay-line primitives: each link's
propagation leg is fused into a forward delay line feeding the next hop's
arrival, and the last hop of every flow is fused with the flow's return
path (one heap event per hop per packet, exactly as on the dumbbell).
Per-link queue/loss/utilization series are recorded into the sampling
buffers and emitted as one :class:`~repro.metrics.traces.LinkTrace` per
queued link.

When the scenario carries a :class:`~repro.config.FlowSchedule`, the runner
materialises it once (the identical per-flow start/size/stop list the fluid
substrate consumes) and builds each sender with its scheduled activation
time, finite size and optional switch-off time.  A departing flow tears
itself down — timers cancelled, private delay lines drained — and the
runner's ``on_complete`` hook purges its stragglers from the shared
inter-link forward lines, so the event heap stays bounded by the *active*
flow population under churn.  Flow lifetimes are recorded on the
:class:`~repro.metrics.traces.FlowTrace` (``start_time_s``/``end_time_s``)
for flow-completion-time metrics.

Samples are recorded into preallocated numpy buffers on an absolute time
grid (sample ``k`` fires at exactly ``(k + 1) * record_interval_s``), so
emulation trace timestamps line up with the fluid traces' uniform grid
instead of accumulating floating-point drift from relative rescheduling.
When ``duration_s`` is not an integer multiple of ``record_interval_s``, a
final sample is flushed at ``duration_s`` with rates normalised by the
actual partial-interval length, so the trace covers the full run.

Per-flow randomness is derived via :func:`derive_rng`, which hashes the
(scenario seed, stream label) pair: every (seed, flow) combination gets an
independent RNG stream, a prerequisite for uncorrelated multi-seed
replication in the campaign layer (``repro-bbr campaign --seeds K``).
Multi-hop topologies additionally derive one queue-RNG stream per link
(``derive_rng(seed, f"link:{name}")``); single-bottleneck scenarios —
legacy or one-hop topology — keep the historical ``"queue"`` stream so
seeded runs stay reproducible across the two config forms.

``scheduler`` selects the event layer: ``"delayline"`` (default) uses the
typed delay-line/timer primitives of :mod:`repro.emulation.events`;
``"closure"`` uses the preserved pre-change per-packet-closure scheduler
(:mod:`repro.emulation.closure_ref`) for equivalence tests and benchmarks.
The closure reference predates the topology subsystem and supports
single-bottleneck scenarios only.
"""

from __future__ import annotations

import math

import numpy as np

from .. import units
from ..config import ScenarioConfig
from ..obs import TELEMETRY
from ..rng import derive_rng
from ..metrics.traces import FlowTrace, LinkTrace, Trace
from . import closure_ref
from .cca import create_packet_cca
from .events import DelayLine, EventQueue, Timer
from .link import BottleneckLink
from .nodes import Destination, Sender
from .queues import make_queue

#: Event-layer implementations selectable via ``EmulationRunner(scheduler=...)``.
SCHEDULERS = ("delayline", "closure")

#: Default emulated buffer, in reference-BDP multiples, standing in for an
#: "infinite" (``math.inf``) configured buffer.  The packet emulator needs a
#: concrete queue bound; 100 BDP is far beyond what any built-in CCA can
#: fill (their windows cap out earlier), so an unbounded buffer never drops.
#: Override per run via ``EmulationRunner(unbounded_buffer_bdp=...)``.
UNBOUNDED_BUFFER_BDP = 100.0

__all__ = ["derive_rng", "EmulationRunner", "emulate", "SCHEDULERS", "UNBOUNDED_BUFFER_BDP"]


class EmulationRunner:
    """Runs one scenario on the packet-level emulator."""

    def __init__(
        self,
        config: ScenarioConfig,
        record_interval_s: float = 0.01,
        scheduler: str = "delayline",
        unbounded_buffer_bdp: float = UNBOUNDED_BUFFER_BDP,
    ) -> None:
        if record_interval_s <= 0:
            raise ValueError("record interval must be positive")
        if scheduler not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}")
        if unbounded_buffer_bdp <= 0:
            raise ValueError("unbounded_buffer_bdp must be positive")
        topo = config.effective_topology()
        multi_hop = topo.num_links > 1
        if multi_hop and scheduler != "delayline":
            raise ValueError(
                "multi-bottleneck topologies require the delayline scheduler "
                "(the closure reference predates the topology subsystem)"
            )
        # Materialise the flow schedule once: both substrates consume the
        # identical per-flow (start, size, stop) list (see FlowSchedule).
        schedule_entries = config.flow_schedule()
        if schedule_entries is not None and scheduler != "delayline":
            raise ValueError(
                "flow schedules require the delayline scheduler "
                "(the closure reference predates time-varying flow populations)"
            )
        self._schedule_entries = schedule_entries
        self.config = config
        self.topology = topo
        self.record_interval_s = record_interval_s
        self.scheduler = scheduler
        self.unbounded_buffer_bdp = unbounded_buffer_bdp
        self.rng = derive_rng(config.seed, "queue")
        # The closure reference carries its own verbatim pre-change event
        # queue so the benchmark compares full old-vs-new event layers.
        self.events = (
            EventQueue() if scheduler == "delayline" else closure_ref.ClosureEventQueue()
        )

        # ---------- queued links (one BottleneckLink per topology link) --- #
        link_cls = BottleneckLink if scheduler == "delayline" else closure_ref.ClosureBottleneckLink
        sender_cls = Sender if scheduler == "delayline" else closure_ref.ClosureSender
        self.senders: dict[int, Sender] = {}
        destination = Destination(self.senders)
        ref_bdp = config.bottleneck_bdp_packets()
        self.links: list[BottleneckLink] = []
        link_by_name: dict[str, BottleneckLink] = {}
        for link_cfg in topo.links:
            buffer_pkts = config.link_buffer_packets(link_cfg)
            if math.isinf(buffer_pkts):
                buffer_pkts = unbounded_buffer_bdp * ref_bdp
            # Single-bottleneck scenarios keep the historical "queue" RNG
            # stream (one-hop topologies alias onto the legacy form
            # bit-for-bit); multi-hop links each get their own stream.
            queue_rng = (
                derive_rng(config.seed, f"link:{link_cfg.name}")
                if multi_hop
                else self.rng
            )
            queue = make_queue(
                link_cfg.discipline, max(1, int(round(buffer_pkts))), queue_rng
            )
            link = link_cls(
                events=self.events,
                queue=queue,
                capacity_pps=link_cfg.capacity_pps,
                delay_s=link_cfg.delay_s,
                deliver=destination.deliver,
            )
            self.links.append(link)
            link_by_name[link_cfg.name] = link
        #: The reference-bottleneck link (back-compat accessor; on the
        #: dumbbell this is *the* bottleneck).
        self.bottleneck = link_by_name[topo.reference]

        # ---------- senders ---------------------------------------------- #
        reference_capacity = self.bottleneck.capacity_pps
        for i, flow_cfg in enumerate(config.flows):
            cca = create_packet_cca(
                flow_cfg.cca,
                rng=derive_rng(config.seed, f"flow:{i}"),
                initial_rate_pps=reference_capacity / config.num_flows,
            )
            first_hop = link_by_name[topo.paths[i][0]]
            path_delay_s = sum(topo.link(name).delay_s for name in topo.paths[i])
            if schedule_entries is None:
                self.senders[i] = sender_cls(
                    events=self.events,
                    flow_id=i,
                    cca=cca,
                    bottleneck=first_hop,
                    access_delay_s=flow_cfg.access_delay_s,
                    return_delay_s=flow_cfg.access_delay_s + path_delay_s,
                    mss_bytes=units.MSS_BYTES,
                    start_time_s=flow_cfg.start_time_s,
                )
            else:
                # Schedule start times override FlowConfig.start_time_s (the
                # fluid substrate applies the same precedence).
                entry = schedule_entries[i]
                size = entry.size_packets
                self.senders[i] = sender_cls(
                    events=self.events,
                    flow_id=i,
                    cca=cca,
                    bottleneck=first_hop,
                    access_delay_s=flow_cfg.access_delay_s,
                    return_delay_s=flow_cfg.access_delay_s + path_delay_s,
                    mss_bytes=units.MSS_BYTES,
                    start_time_s=entry.start_time_s,
                    size_packets=None if size is None else max(1, math.ceil(size)),
                    stop_time_s=entry.stop_time_s,
                )
                self.senders[i].on_complete = self._on_flow_complete
        #: Shared inter-link forward lines, kept for churn teardown purges.
        self._forward_lines: dict[tuple[str, str], DelayLine] = {}
        if scheduler == "delayline":
            # Fuse every link's propagation leg into its onward routes: an
            # intermediate hop pushes straight onto the forward delay line
            # of the next link, and a flow's last hop pushes onto the
            # flow's return delay line (one event per packet per hop saved;
            # identical arrival/acknowledgement times).
            forward_lines = self._forward_lines
            for name, link in link_by_name.items():
                routes: list[tuple[DelayLine, float] | None] = [None] * config.num_flows
                used = False
                for i, path in enumerate(topo.paths):
                    if name not in path:
                        continue
                    used = True
                    hop = path.index(name)
                    if hop == len(path) - 1:
                        routes[i] = (
                            self.senders[i].return_line,
                            self.senders[i].return_delay_s,
                        )
                    else:
                        next_name = path[hop + 1]
                        line = forward_lines.get((name, next_name))
                        if line is None:
                            line = DelayLine(
                                self.events,
                                link.delay_s,
                                link_by_name[next_name].on_arrival,
                            )
                            forward_lines[(name, next_name)] = line
                        routes[i] = (line, 0.0)
                if used:
                    link.set_routes(routes)

        # Sampling state: preallocated buffers on the absolute time grid
        # (generously sized; _build_trace slices to the fired sample count).
        n_flows = config.num_flows
        n_links = len(self.links)
        capacity = int(config.duration_s / record_interval_s) + 2
        self._max_samples = capacity
        self._flow_buffers = np.empty((5, n_flows, capacity))
        self._link_buffers = np.empty((4, n_links, capacity))
        self._time_buf = np.empty(capacity)
        self._prev_sent = [0] * n_flows
        self._prev_delivered = [0] * n_flows
        self._prev_enqueued = [0] * n_links
        self._prev_dropped = [0] * n_links
        self._prev_transmitted = [0] * n_links
        self._queue_checkpoints = [(0.0, 0.0)] * n_links
        self._rtt_floor = [config.rtt_s(i) for i in range(n_flows)]
        self._sample_idx = 0
        # Live-heap high-water mark, refreshed on the sampling grid (cheap:
        # one len() per sample, not per event).
        self._heap_peak = 0
        self._sample_timer = (
            Timer(self.events, self._sample) if scheduler == "delayline" else None
        )

    # ------------------------------------------------------------------ #
    # Churn teardown
    # ------------------------------------------------------------------ #

    def _on_flow_complete(self, sender: Sender) -> None:
        """A scheduled flow completed or switched off: purge its stragglers.

        The sender has already cancelled its own timers and drained its
        private access/return lines; what remains are packets of this flow
        travelling *shared* inter-link forward lines (multi-hop topologies).
        Purging them keeps the heap and the deques bounded by the active
        flow population — a departed flow costs zero live events.
        """
        flow_id = sender.flow_id
        for line in self._forward_lines.values():
            line.purge(lambda packet: packet.flow_id == flow_id)

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def _sample(self) -> None:
        k = self._sample_idx
        if k >= self._max_samples:
            return
        interval = self.record_interval_s
        self._record((k + 1) * interval, interval)
        if k + 1 < self._max_samples:
            # Absolute grid: sample k fires at exactly (k + 1) * interval,
            # immune to the drift of relative rescheduling.
            if self._sample_timer is not None:
                self._sample_timer.schedule_at((k + 2) * interval)
            else:
                self.events.schedule_at((k + 2) * interval, self._sample)

    def _record(self, now: float, interval: float) -> None:
        """Record one sample at absolute time ``now`` covering ``interval`` seconds."""
        k = self._sample_idx
        rate_buf, delivery_buf, cwnd_buf, inflight_buf, rtt_buf = self._flow_buffers
        prev_sent = self._prev_sent
        prev_delivered = self._prev_delivered
        rtt_floor = self._rtt_floor
        for i, sender in self.senders.items():
            sent = sender.sent_count
            delivered = sender.delivered_count
            rate_buf[i, k] = (sent - prev_sent[i]) / interval
            delivery_buf[i, k] = (delivered - prev_delivered[i]) / interval
            prev_sent[i] = sent
            prev_delivered[i] = delivered
            cwnd_buf[i, k] = sender.cca.window_limit()
            inflight_buf[i, k] = float(len(sender.inflight))
            rtt_buf[i, k] = (
                sender.last_rtt_s if sender.last_rtt_s > 0 else rtt_floor[i]
            )
        queue_buf, loss_buf, arrival_buf, departure_buf = self._link_buffers
        for j, link in enumerate(self.links):
            queue = link.queue
            arrivals = (queue.enqueued + queue.dropped) - (
                self._prev_enqueued[j] + self._prev_dropped[j]
            )
            drops = queue.dropped - self._prev_dropped[j]
            transmitted = link.transmitted - self._prev_transmitted[j]
            self._prev_enqueued[j] = queue.enqueued
            self._prev_dropped[j] = queue.dropped
            self._prev_transmitted[j] = link.transmitted
            mean_queue = link.mean_queue_since(*self._queue_checkpoints[j])
            self._queue_checkpoints[j] = link.checkpoint()
            queue_buf[j, k] = mean_queue
            loss_buf[j, k] = drops / arrivals if arrivals > 0 else 0.0
            arrival_buf[j, k] = arrivals / interval
            departure_buf[j, k] = transmitted / interval
        self._time_buf[k] = now
        self._sample_idx = k + 1
        live = len(self.events)
        if live > self._heap_peak:
            self._heap_peak = live

    def _flush_tail(self) -> None:
        """Record the final partial interval when ``duration_s`` is not a
        multiple of ``record_interval_s`` (rates normalised by its actual
        length), so the trace covers the full run instead of silently
        dropping the tail."""
        duration = self.config.duration_s
        last_t = self._time_buf[self._sample_idx - 1] if self._sample_idx else 0.0
        partial = duration - last_t
        if partial > 1e-6 * self.record_interval_s and self._sample_idx < self._max_samples:
            self._record(duration, partial)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self) -> Trace:
        """Run the emulation for the configured duration and return its trace."""
        with TELEMETRY.span(
            "emu.run",
            flows=self.config.num_flows,
            duration_s=self.config.duration_s,
            scheduler=self.scheduler,
        ):
            for sender in self.senders.values():
                sender.start()
            if self._sample_timer is not None:
                self._sample_timer.schedule_at(self.record_interval_s)
            else:
                self.events.schedule_at(self.record_interval_s, self._sample)
            self.events.run(until=self.config.duration_s)
            self._flush_tail()
            trace = self._build_trace()
        if TELEMETRY.enabled:
            counters = self.runtime_counters()
            TELEMETRY.count("emu.events_popped", counters["events_popped"])
            TELEMETRY.count("emu.pkts_sent", counters["pkts_sent"])
            TELEMETRY.count("emu.pkts_delivered", counters["pkts_delivered"])
            TELEMETRY.gauge_max("emu.heap_peak", counters["heap_peak"])
        return trace

    def runtime_counters(self) -> dict[str, int]:
        """Substrate counters for the stored per-point ``runtime`` block."""
        return {
            "events_popped": int(getattr(self.events, "popped", 0)),
            "heap_peak": int(self._heap_peak),
            "pkts_sent": int(sum(s.sent_count for s in self.senders.values())),
            "pkts_delivered": int(
                sum(s.delivered_count for s in self.senders.values())
            ),
        }

    def _build_trace(self) -> Trace:
        n = self._sample_idx
        time = self._time_buf[:n].copy()
        rate_buf, delivery_buf, cwnd_buf, inflight_buf, rtt_buf = self._flow_buffers
        entries = self._schedule_entries
        flows = []
        for i, flow_cfg in enumerate(self.config.flows):
            sender = self.senders[i]
            start_s = entries[i].start_time_s if entries is not None else flow_cfg.start_time_s
            flows.append(
                FlowTrace(
                    cca=flow_cfg.cca,
                    rate=rate_buf[i, :n].copy(),
                    delivery_rate=delivery_buf[i, :n].copy(),
                    cwnd=cwnd_buf[i, :n].copy(),
                    inflight=inflight_buf[i, :n].copy(),
                    rtt=rtt_buf[i, :n].copy(),
                    start_time_s=start_s,
                    end_time_s=getattr(sender, "completed_time_s", None),
                )
            )
        queue_buf, loss_buf, arrival_buf, departure_buf = self._link_buffers
        links = []
        for j, (link_cfg, link) in enumerate(zip(self.topology.links, self.links, strict=True)):
            links.append(
                LinkTrace(
                    name=link_cfg.name,
                    capacity_pps=link.capacity_pps,
                    buffer_pkts=float(link.queue.capacity_pkts),
                    queue=queue_buf[j, :n].copy(),
                    loss_prob=loss_buf[j, :n].copy(),
                    arrival_rate=arrival_buf[j, :n].copy(),
                    departure_rate=departure_buf[j, :n].copy(),
                )
            )
        return Trace(time=time, flows=flows, links=links, substrate="emulation")


def emulate(
    config: ScenarioConfig,
    record_interval_s: float = 0.01,
    scheduler: str = "delayline",
    unbounded_buffer_bdp: float = UNBOUNDED_BUFFER_BDP,
) -> Trace:
    """Convenience wrapper: build an :class:`EmulationRunner` and run it."""
    return EmulationRunner(
        config,
        record_interval_s=record_interval_s,
        scheduler=scheduler,
        unbounded_buffer_bdp=unbounded_buffer_bdp,
    ).run()

"""Scenario runner of the packet-level emulator.

Builds the dumbbell topology of a :class:`~repro.config.ScenarioConfig`,
runs the discrete-event simulation, and samples the same
:class:`~repro.metrics.traces.Trace` structure the fluid model produces, so
that every metric of the paper's evaluation can be computed from either
substrate interchangeably (this emulator plays the role of the paper's
mininet experiments, cf. DESIGN.md).

Samples are recorded into preallocated numpy buffers on an absolute time
grid (sample ``k`` fires at exactly ``(k + 1) * record_interval_s``), so
emulation trace timestamps line up with the fluid traces' uniform grid
instead of accumulating floating-point drift from relative rescheduling.
When ``duration_s`` is not an integer multiple of ``record_interval_s``, a
final sample is flushed at ``duration_s`` with rates normalised by the
actual partial-interval length, so the trace covers the full run.

Per-flow randomness is derived via :func:`derive_rng`, which hashes the
(scenario seed, stream label) pair: every (seed, flow) combination gets an
independent RNG stream, a prerequisite for uncorrelated multi-seed
replication in the campaign layer (``repro-bbr campaign --seeds K``).

``scheduler`` selects the event layer: ``"delayline"`` (default) uses the
typed delay-line/timer primitives of :mod:`repro.emulation.events`;
``"closure"`` uses the preserved pre-change per-packet-closure scheduler
(:mod:`repro.emulation.closure_ref`) for equivalence tests and benchmarks.
"""

from __future__ import annotations

import hashlib
import math
import random

import numpy as np

from .. import units
from ..config import ScenarioConfig
from ..metrics.traces import FlowTrace, LinkTrace, Trace
from . import closure_ref
from .cca import create_packet_cca
from .events import EventQueue, Timer
from .link import BottleneckLink
from .nodes import Destination, Sender
from .queues import make_queue

#: Event-layer implementations selectable via ``EmulationRunner(scheduler=...)``.
SCHEDULERS = ("delayline", "closure")


def derive_rng(seed: int, stream: str) -> random.Random:
    """Derive an independent, collision-free RNG stream from a scenario seed.

    The old affine derivation ``seed + 17 * (i + 1)`` aliased across
    scenarios (seed 1 / flow 1 and seed 18 / flow 0 shared a stream), which
    would silently correlate multi-seed replicas.  Hashing the (seed,
    stream-label) pair instead gives every (scenario seed, stream) its own
    generator, deterministically across platforms and processes.
    """
    digest = hashlib.sha256(f"repro:{seed}:{stream}".encode()).digest()
    return random.Random(int.from_bytes(digest[:16], "big"))


class EmulationRunner:
    """Runs one scenario on the packet-level emulator."""

    def __init__(
        self,
        config: ScenarioConfig,
        record_interval_s: float = 0.01,
        scheduler: str = "delayline",
    ) -> None:
        if record_interval_s <= 0:
            raise ValueError("record interval must be positive")
        if scheduler not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}")
        self.config = config
        self.record_interval_s = record_interval_s
        self.scheduler = scheduler
        self.rng = derive_rng(config.seed, "queue")
        # The closure reference carries its own verbatim pre-change event
        # queue so the benchmark compares full old-vs-new event layers.
        self.events = (
            EventQueue() if scheduler == "delayline" else closure_ref.ClosureEventQueue()
        )

        capacity_pps = config.bottleneck.capacity_pps
        buffer_pkts = config.buffer_packets()
        if math.isinf(buffer_pkts):
            buffer_pkts = 100.0 * config.bottleneck_bdp_packets()
        queue = make_queue(
            config.bottleneck.discipline, max(1, int(round(buffer_pkts))), self.rng
        )

        link_cls = BottleneckLink if scheduler == "delayline" else closure_ref.ClosureBottleneckLink
        sender_cls = Sender if scheduler == "delayline" else closure_ref.ClosureSender
        self.senders: dict[int, Sender] = {}
        destination = Destination(self.senders)
        self.bottleneck = link_cls(
            events=self.events,
            queue=queue,
            capacity_pps=capacity_pps,
            delay_s=config.bottleneck.delay_s,
            deliver=destination.deliver,
        )
        for i, flow_cfg in enumerate(config.flows):
            cca = create_packet_cca(
                flow_cfg.cca,
                rng=derive_rng(config.seed, f"flow:{i}"),
                initial_rate_pps=capacity_pps / config.num_flows,
            )
            self.senders[i] = sender_cls(
                events=self.events,
                flow_id=i,
                cca=cca,
                bottleneck=self.bottleneck,
                access_delay_s=flow_cfg.access_delay_s,
                return_delay_s=flow_cfg.access_delay_s + config.bottleneck.delay_s,
                mss_bytes=units.MSS_BYTES,
                start_time_s=flow_cfg.start_time_s,
            )
        if scheduler == "delayline":
            # Fuse the bottleneck propagation leg with each flow's return
            # path: the link pushes finished packets straight onto the
            # receiving sender's return delay line (one event per packet
            # saved; identical acknowledgement times).
            self.bottleneck.set_ack_routes(
                [
                    (self.senders[i].return_line, self.senders[i].return_delay_s)
                    for i in range(config.num_flows)
                ]
            )

        # Sampling state: preallocated buffers on the absolute time grid
        # (generously sized; _build_trace slices to the fired sample count).
        n_flows = config.num_flows
        capacity = int(config.duration_s / record_interval_s) + 2
        self._max_samples = capacity
        self._flow_buffers = np.empty((5, n_flows, capacity))
        self._link_buffers = np.empty((4, capacity))
        self._time_buf = np.empty(capacity)
        self._prev_sent = [0] * n_flows
        self._prev_delivered = [0] * n_flows
        self._prev_enqueued = 0
        self._prev_dropped = 0
        self._prev_transmitted = 0
        self._queue_checkpoint = (0.0, 0.0)
        self._sample_idx = 0
        self._sample_timer = (
            Timer(self.events, self._sample) if scheduler == "delayline" else None
        )

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def _sample(self) -> None:
        k = self._sample_idx
        if k >= self._max_samples:
            return
        interval = self.record_interval_s
        self._record((k + 1) * interval, interval)
        if k + 1 < self._max_samples:
            # Absolute grid: sample k fires at exactly (k + 1) * interval,
            # immune to the drift of relative rescheduling.
            if self._sample_timer is not None:
                self._sample_timer.schedule_at((k + 2) * interval)
            else:
                self.events.schedule_at((k + 2) * interval, self._sample)

    def _record(self, now: float, interval: float) -> None:
        """Record one sample at absolute time ``now`` covering ``interval`` seconds."""
        k = self._sample_idx
        rate_buf, delivery_buf, cwnd_buf, inflight_buf, rtt_buf = self._flow_buffers
        prev_sent = self._prev_sent
        prev_delivered = self._prev_delivered
        bottleneck_delay = self.config.bottleneck.delay_s
        for i, sender in self.senders.items():
            sent = sender.sent_count
            delivered = sender.delivered_count
            rate_buf[i, k] = (sent - prev_sent[i]) / interval
            delivery_buf[i, k] = (delivered - prev_delivered[i]) / interval
            prev_sent[i] = sent
            prev_delivered[i] = delivered
            cwnd_buf[i, k] = sender.cca.window_limit()
            inflight_buf[i, k] = float(len(sender.inflight))
            rtt_buf[i, k] = (
                sender.last_rtt_s
                if sender.last_rtt_s > 0
                else 2.0 * (sender.access_delay_s + bottleneck_delay)
            )
        queue = self.bottleneck.queue
        arrivals = (queue.enqueued + queue.dropped) - (
            self._prev_enqueued + self._prev_dropped
        )
        drops = queue.dropped - self._prev_dropped
        transmitted = self.bottleneck.transmitted - self._prev_transmitted
        self._prev_enqueued = queue.enqueued
        self._prev_dropped = queue.dropped
        self._prev_transmitted = self.bottleneck.transmitted
        mean_queue = self.bottleneck.mean_queue_since(*self._queue_checkpoint)
        self._queue_checkpoint = self.bottleneck.checkpoint()
        queue_buf, loss_buf, arrival_buf, departure_buf = self._link_buffers
        queue_buf[k] = mean_queue
        loss_buf[k] = drops / arrivals if arrivals > 0 else 0.0
        arrival_buf[k] = arrivals / interval
        departure_buf[k] = transmitted / interval
        self._time_buf[k] = now
        self._sample_idx = k + 1

    def _flush_tail(self) -> None:
        """Record the final partial interval when ``duration_s`` is not a
        multiple of ``record_interval_s`` (rates normalised by its actual
        length), so the trace covers the full run instead of silently
        dropping the tail."""
        duration = self.config.duration_s
        last_t = self._time_buf[self._sample_idx - 1] if self._sample_idx else 0.0
        partial = duration - last_t
        if partial > 1e-6 * self.record_interval_s and self._sample_idx < self._max_samples:
            self._record(duration, partial)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self) -> Trace:
        """Run the emulation for the configured duration and return its trace."""
        for sender in self.senders.values():
            sender.start()
        if self._sample_timer is not None:
            self._sample_timer.schedule_at(self.record_interval_s)
        else:
            self.events.schedule_at(self.record_interval_s, self._sample)
        self.events.run(until=self.config.duration_s)
        self._flush_tail()
        return self._build_trace()

    def _build_trace(self) -> Trace:
        n = self._sample_idx
        time = self._time_buf[:n].copy()
        rate_buf, delivery_buf, cwnd_buf, inflight_buf, rtt_buf = self._flow_buffers
        flows = []
        for i, flow_cfg in enumerate(self.config.flows):
            flows.append(
                FlowTrace(
                    cca=flow_cfg.cca,
                    rate=rate_buf[i, :n].copy(),
                    delivery_rate=delivery_buf[i, :n].copy(),
                    cwnd=cwnd_buf[i, :n].copy(),
                    inflight=inflight_buf[i, :n].copy(),
                    rtt=rtt_buf[i, :n].copy(),
                )
            )
        queue_buf, loss_buf, arrival_buf, departure_buf = self._link_buffers
        buffer_pkts = float(self.bottleneck.queue.capacity_pkts)
        links = [
            LinkTrace(
                name="bottleneck",
                capacity_pps=self.bottleneck.capacity_pps,
                buffer_pkts=buffer_pkts,
                queue=queue_buf[:n].copy(),
                loss_prob=loss_buf[:n].copy(),
                arrival_rate=arrival_buf[:n].copy(),
                departure_rate=departure_buf[:n].copy(),
            )
        ]
        return Trace(time=time, flows=flows, links=links, substrate="emulation")


def emulate(
    config: ScenarioConfig,
    record_interval_s: float = 0.01,
    scheduler: str = "delayline",
) -> Trace:
    """Convenience wrapper: build an :class:`EmulationRunner` and run it."""
    return EmulationRunner(
        config, record_interval_s=record_interval_s, scheduler=scheduler
    ).run()

"""Pre-change per-packet-closure scheduler, kept verbatim as a reference.

This module preserves the emulator's original event layer — one lambda and
one heap entry per packet hop (access leg, transmitter completion,
bottleneck propagation, return path) — exactly as it stood before the
delay-line/timer rewrite of :mod:`repro.emulation.events`.  It exists for
two reasons:

* the seeded equivalence tests assert that the rewritten scheduler
  produces identical ``sent/delivered/lost`` counts on the droptail path
  (``tests/test_emulation_events.py``), and
* ``benchmarks/test_perf_emulation.py`` measures the packets/second
  speedup of the rewrite against this reference.

Select it with ``EmulationRunner(config, scheduler="closure")``.  Like the
``vectorized=False`` scalar loop of the fluid integrator, it intentionally
retains the pre-change behaviour, including the spurious-RTO accounting
bug and the stale RED idle average fixed in the live classes.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable

from .cca.base import AckSample, LossEvent, PacketCCA
from .packet import Packet
from .queues import PacketQueue


class ClosureEventQueue:
    """The original event queue: closure callbacks in a per-packet heap."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._stopped = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule events in the past")
        self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute time ``time``."""
        if time < self._now:
            raise ValueError("cannot schedule events in the past")
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def stop(self) -> None:
        """Stop the run loop after the current event."""
        self._stopped = True

    def run(self, until: float) -> None:
        """Execute events in order until time ``until`` or until stopped."""
        if until < self._now:
            raise ValueError("end time lies in the past")
        while self._heap and not self._stopped:
            time, _, callback = self._heap[0]
            if time > until:
                break
            heapq.heappop(self._heap)
            self._now = time
            callback()
        self._now = max(self._now, until) if not self._stopped else self._now

    def __len__(self) -> int:
        return len(self._heap)

#: Minimum retransmission timeout, mirroring common kernel defaults.
MIN_RTO_S: float = 0.2
#: Periodic interval at which the sender checks for a stalled connection.
TIMEOUT_CHECK_INTERVAL_S: float = 0.1


class ClosureBottleneckLink:
    """The original store-and-forward link: one closure per packet hop."""

    def __init__(
        self,
        events: ClosureEventQueue,
        queue: PacketQueue,
        capacity_pps: float,
        delay_s: float,
        deliver,
    ) -> None:
        if capacity_pps <= 0:
            raise ValueError("capacity must be positive")
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        self.events = events
        self.queue = queue
        self.capacity_pps = capacity_pps
        self.delay_s = delay_s
        self.deliver = deliver
        self._busy = False
        self.transmitted = 0
        # Time-weighted queue statistics for the trace.
        self._last_sample_time = 0.0
        self._queue_time_product = 0.0

    @property
    def service_time(self) -> float:
        """Transmission time of one packet."""
        return 1.0 / self.capacity_pps

    def _account_queue(self) -> None:
        now = self.events.now
        self._queue_time_product += self.queue.occupancy * (now - self._last_sample_time)
        self._last_sample_time = now

    def mean_queue_since(self, since_product: float, since_time: float) -> float:
        """Mean queue length (packets) since a recorded checkpoint."""
        self._account_queue()
        elapsed = self._last_sample_time - since_time
        if elapsed <= 0:
            return float(self.queue.occupancy)
        return (self._queue_time_product - since_product) / elapsed

    def checkpoint(self) -> tuple[float, float]:
        """Snapshot for :meth:`mean_queue_since` (product, time)."""
        self._account_queue()
        return self._queue_time_product, self._last_sample_time

    def on_arrival(self, packet: Packet) -> None:
        """A packet arrives from an access link and is offered to the queue."""
        self._account_queue()
        accepted = self.queue.offer(packet)
        if accepted and not self._busy:
            self._start_transmission()

    def _start_transmission(self) -> None:
        packet = self.queue.pop()
        if packet is None:
            self._busy = False
            return
        self._account_queue()
        self._busy = True
        self.events.schedule(self.service_time, lambda p=packet: self._finish_transmission(p))

    def _finish_transmission(self, packet: Packet) -> None:
        self.transmitted += 1
        self.events.schedule(self.delay_s, lambda p=packet: self.deliver(p))
        self._account_queue()
        if self.queue.occupancy > 0:
            self._start_transmission()
        else:
            self._busy = False


class ClosureSender:
    """The original greedy source: per-packet lambdas on both path legs."""

    def __init__(
        self,
        events: ClosureEventQueue,
        flow_id: int,
        cca: PacketCCA,
        bottleneck: ClosureBottleneckLink,
        access_delay_s: float,
        return_delay_s: float,
        mss_bytes: int,
        start_time_s: float = 0.0,
    ) -> None:
        if access_delay_s < 0 or return_delay_s < 0:
            raise ValueError("delays must be non-negative")
        self.events = events
        self.flow_id = flow_id
        self.cca = cca
        self.bottleneck = bottleneck
        self.access_delay_s = access_delay_s
        self.return_delay_s = return_delay_s
        self.mss_bytes = mss_bytes
        self.start_time_s = start_time_s

        self.next_seq = 0
        self.inflight: dict[int, Packet] = {}
        self.sent_count = 0
        self.delivered_count = 0
        self.lost_count = 0
        self.last_rtt_s = 0.0
        self.srtt_s: float | None = None
        self._next_send_time = start_time_s
        self._wakeup_pending = False
        self._last_ack_time = start_time_s
        self._started = False

    def start(self) -> None:
        """Schedule the first transmission and the stall watchdog."""
        if self._started:
            return
        self._started = True
        self.events.schedule_at(self.start_time_s, self._try_send)
        self.events.schedule_at(
            self.start_time_s + TIMEOUT_CHECK_INTERVAL_S, self._check_timeout
        )

    def _rto(self) -> float:
        if self.srtt_s is None:
            return 1.0
        return max(MIN_RTO_S, 4.0 * self.srtt_s)

    def _pacing_wakeup(self) -> None:
        self._wakeup_pending = False
        self._try_send()

    def _try_send(self) -> None:
        now = self.events.now
        window = self.cca.window_limit()
        interval = self.cca.pacing_interval()
        while len(self.inflight) < window:
            if now < self._next_send_time:
                break
            self._transmit(now)
            self._next_send_time = max(self._next_send_time, now) + interval
        if (
            len(self.inflight) < window
            and now < self._next_send_time
            and not self._wakeup_pending
        ):
            # Pacing-limited: wake up when the next transmission is allowed.
            self._wakeup_pending = True
            self.events.schedule_at(self._next_send_time, self._pacing_wakeup)

    def _transmit(self, now: float) -> None:
        packet = Packet(
            flow_id=self.flow_id,
            seq=self.next_seq,
            size_bytes=self.mss_bytes,
            sent_time=now,
            delivered_at_send=self.delivered_count,
        )
        self.next_seq += 1
        self.sent_count += 1
        self.inflight[packet.seq] = packet
        self.events.schedule(
            self.access_delay_s, lambda p=packet: self.bottleneck.on_arrival(p)
        )

    def on_packet_delivered(self, packet: Packet) -> None:
        """Called by the topology when a packet reaches the destination host."""
        self.events.schedule(self.return_delay_s, lambda p=packet: self._on_ack(p))

    def _on_ack(self, packet: Packet) -> None:
        now = self.events.now
        self._last_ack_time = now
        if packet.seq not in self.inflight:
            return  # e.g. already declared lost by the watchdog
        del self.inflight[packet.seq]
        self.delivered_count += 1

        # FIFO network: every unacknowledged packet sent before this one is
        # lost; the lost packets form a prefix of the inflight dict.
        lost: list[int] = []
        for seq in self.inflight:
            if seq >= packet.seq:
                break
            lost.append(seq)
        lost_seqs = tuple(lost)
        rtt = now - packet.sent_time
        self.last_rtt_s = rtt
        self.srtt_s = rtt if self.srtt_s is None else 0.875 * self.srtt_s + 0.125 * rtt
        elapsed = max(now - packet.sent_time, 1e-9)
        delivery_rate = (self.delivered_count - packet.delivered_at_send) / elapsed

        if lost_seqs:
            for seq in lost_seqs:
                del self.inflight[seq]
            self.lost_count += len(lost_seqs)
            self.cca.on_loss(
                LossEvent(
                    now=now,
                    num_lost=len(lost_seqs),
                    inflight=len(self.inflight),
                    highest_seq_sent=self.next_seq - 1,
                    lost_seqs=lost_seqs,
                )
            )
        self.cca.on_ack(
            AckSample(
                now=now,
                rtt=rtt,
                delivery_rate=delivery_rate,
                inflight=len(self.inflight),
                acked_seq=packet.seq,
                newly_delivered=1,
            )
        )
        self._try_send()

    def _check_timeout(self) -> None:
        now = self.events.now
        if self.inflight and now - self._last_ack_time > self._rto():
            self.lost_count += len(self.inflight)
            self.inflight.clear()
            self.cca.on_timeout(now)
            self._last_ack_time = now
            self._try_send()
        self.events.schedule(TIMEOUT_CHECK_INTERVAL_S, self._check_timeout)

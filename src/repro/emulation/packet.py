"""Packet and acknowledgement records used by the emulator."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class Packet:
    """A data packet travelling from a sender to the destination.

    Attributes:
        flow_id: index of the sending flow.
        seq: per-flow sequence number.
        size_bytes: packet size (one MSS for all data packets).
        sent_time: time the packet left the sender.
        delivered_at_send: cumulative number of packets the sender had seen
            acknowledged when this packet was sent.  Used by the BBR
            delivery-rate sampler (one sample per ACK).
        app_limited: whether the sender was application-limited when the
            packet was sent (never the case for the iPerf-like greedy
            sources used here, kept for completeness).
    """

    flow_id: int
    seq: int
    size_bytes: int
    sent_time: float
    delivered_at_send: int = 0
    app_limited: bool = False


@dataclass(slots=True)
class Ack:
    """An acknowledgement for a single data packet (SACK-style, per packet).

    Attributes:
        flow_id: index of the acknowledged flow.
        seq: sequence number of the acknowledged packet.
        packet_sent_time: when the acknowledged packet was sent.
        delivered_at_send: delivery counter snapshot carried by the packet.
        recv_time: when the destination received the packet.
    """

    flow_id: int
    seq: int
    packet_sent_time: float
    delivered_at_send: int
    recv_time: float

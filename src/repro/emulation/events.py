"""Discrete-event simulation core of the packet-level emulator.

The emulator replaces the paper's mininet/OvS/iPerf testbed (see DESIGN.md):
it provides packet-granular ground truth that the fluid-model predictions
are validated against.  The core is a conventional event queue: callbacks
scheduled at absolute times, executed in time order with a monotonically
increasing clock.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class EventQueue:
    """A time-ordered queue of callbacks."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._stopped = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule events in the past")
        self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute time ``time``."""
        if time < self._now:
            raise ValueError("cannot schedule events in the past")
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def stop(self) -> None:
        """Stop the run loop after the current event."""
        self._stopped = True

    def run(self, until: float) -> None:
        """Execute events in order until time ``until`` or until stopped."""
        if until < self._now:
            raise ValueError("end time lies in the past")
        while self._heap and not self._stopped:
            time, _, callback = self._heap[0]
            if time > until:
                break
            heapq.heappop(self._heap)
            self._now = time
            callback()
        self._now = max(self._now, until) if not self._stopped else self._now

    def __len__(self) -> int:
        return len(self._heap)

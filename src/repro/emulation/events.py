"""Discrete-event simulation core of the packet-level emulator.

The emulator replaces the paper's mininet/OvS/iPerf testbed (see DESIGN.md):
it provides packet-granular ground truth that the fluid-model predictions
are validated against.  The core is a conventional event queue — callbacks
scheduled at absolute times, executed in time order with a monotonically
increasing clock — plus two typed primitives that keep the heap small:

* :class:`Timer` — a reusable, cancellable handle bound to one callback.
  Rescheduling a timer tombstones its previous heap entry instead of
  leaking it, so a pacing wakeup, an RTO watchdog or a transmitter
  completion occupies at most one live heap slot for the whole run.

* :class:`DelayLine` — a constant-delay FIFO (the dumbbell's access links,
  the bottleneck propagation leg and the return path are all exactly
  that).  Items wait in a deque of ``(ready_time, item)`` pairs and a
  single self-rearming timer pops whatever is due; any number of in-flight
  packets therefore cost one heap entry, not one each.

Together these make the heap hold O(flows + links) events instead of one
closure per in-flight packet: per sender a pacing timer, a watchdog, an
access delay line and a return delay line; per link a transmitter timer
and a propagation delay line.  The previous per-packet-closure scheduler
is preserved verbatim in :mod:`repro.emulation.closure_ref` as the
reference for the equivalence tests and the performance benchmark
(``benchmarks/test_perf_emulation.py``).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from collections.abc import Callable

# A heap entry is a 4-element list ``[time, tie_break, callback, owner]``.
# ``callback=None`` marks a tombstoned (cancelled or rescheduled) entry;
# ``owner`` points back to the Timer that issued the entry (None for plain
# one-shot schedules) so the run loop can disarm it before the callback
# fires and the callback may immediately re-arm.
_Entry = list


class EventQueue:
    """A time-ordered queue of callbacks."""

    __slots__ = ("_heap", "_counter", "now", "_stopped", "_tombstones", "popped")

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._counter = itertools.count()
        #: Current simulation time in seconds (read-only for callers).
        self.now = 0.0
        self._stopped = False
        self._tombstones = 0
        #: Total callbacks dispatched across all ``run`` calls — the
        #: emulator's events-popped telemetry counter.  Accumulated from a
        #: loop-local integer so the hot loop never touches the attribute.
        self.popped = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule events in the past")
        heapq.heappush(
            self._heap, [self.now + delay, next(self._counter), callback, None]
        )

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute time ``time``."""
        if time < self.now:
            raise ValueError("cannot schedule events in the past")
        heapq.heappush(self._heap, [time, next(self._counter), callback, None])

    def timer(self, callback: Callable[[], None]) -> Timer:
        """Create a reusable :class:`Timer` bound to ``callback``."""
        return Timer(self, callback)

    def stop(self) -> None:
        """Stop the run loop after the current event."""
        self._stopped = True

    def run(self, until: float) -> None:
        """Execute events in order until time ``until`` or until stopped."""
        if until < self.now:
            raise ValueError("end time lies in the past")
        heap = self._heap
        pop = heapq.heappop
        popped = 0
        while heap and not self._stopped:
            entry = heap[0]
            time = entry[0]
            if time > until:
                break
            pop(heap)
            callback = entry[2]
            if callback is None:
                self._tombstones -= 1
                continue
            owner = entry[3]
            if owner is not None:
                owner._entry = None
            self.now = time
            popped += 1
            callback()
        self.popped += popped
        if not self._stopped:
            self.now = max(self.now, until)

    def __len__(self) -> int:
        """Number of live (non-tombstoned) scheduled events."""
        return len(self._heap) - self._tombstones


class Timer:
    """A reusable, cancellable timer bound to a single callback.

    At most one firing is pending at any moment: re-arming an active timer
    replaces the pending firing.  The bound callback is stored once at
    construction, so arming a timer allocates no closure.
    """

    __slots__ = ("_events", "_callback", "_entry")

    def __init__(self, events: EventQueue, callback: Callable[[], None]) -> None:
        self._events = events
        self._callback = callback
        self._entry: _Entry | None = None

    @property
    def active(self) -> bool:
        """Whether a firing is currently pending."""
        return self._entry is not None

    @property
    def when(self) -> float | None:
        """Absolute time of the pending firing, or None when inactive."""
        entry = self._entry
        return entry[0] if entry is not None else None

    def schedule_at(self, time: float) -> None:
        """Arm (or re-arm) the timer to fire at absolute time ``time``."""
        events = self._events
        if time < events.now:
            raise ValueError("cannot schedule events in the past")
        entry = self._entry
        if entry is not None:
            entry[2] = entry[3] = None
            events._tombstones += 1
        self._entry = entry = [time, next(events._counter), self._callback, self]
        heapq.heappush(events._heap, entry)

    def schedule(self, delay: float) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule events in the past")
        self.schedule_at(self._events.now + delay)

    def _arm(self, time: float) -> None:
        """Branch-free hot-path arm used by the per-packet code paths.

        The caller must guarantee the timer is idle (``_entry is None``) and
        ``time`` is not in the past; unlike :meth:`schedule_at` there is no
        tombstoning or validation.  This is the single definition of the
        heap-entry layout shared by every hot path.
        """
        events = self._events
        self._entry = entry = [time, next(events._counter), self._callback, self]
        heapq.heappush(events._heap, entry)

    def cancel(self) -> None:
        """Cancel the pending firing, if any."""
        entry = self._entry
        if entry is not None:
            entry[2] = entry[3] = None
            self._events._tombstones += 1
            self._entry = None


class DelayLine:
    """A constant-delay FIFO serviced by a single self-rearming timer.

    Models a pure propagation delay: every item sent at time ``t`` is handed
    to ``sink`` at ``t + delay_s``, in send order.  Because the delay is
    constant, ready times are non-decreasing and a deque plus one timer
    replace the per-item closures the event heap would otherwise hold.

    :meth:`send_at` additionally lets the caller supply a precomputed ready
    time (used to fuse consecutive constant-delay hops into one event);
    ready times must still be non-decreasing across calls.
    """

    __slots__ = ("_events", "delay_s", "_sink", "_pending", "_timer")

    def __init__(self, events: EventQueue, delay_s: float, sink: Callable) -> None:
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        self._events = events
        self.delay_s = delay_s
        self._sink = sink
        self._pending: deque = deque()
        self._timer = Timer(events, self._pop_ready)

    def __len__(self) -> int:
        return len(self._pending)

    def send(self, item) -> None:
        """Enqueue ``item`` for delivery ``delay_s`` seconds from now."""
        self.send_at(self._events.now + self.delay_s, item)

    def send_at(self, ready_time: float, item) -> None:
        """Enqueue ``item`` for delivery at absolute time ``ready_time``."""
        pending = self._pending
        if pending and ready_time < pending[-1][0]:
            raise ValueError("delay line requires non-decreasing ready times")
        pending.append((ready_time, item))
        if self._timer._entry is None:
            self._timer.schedule_at(ready_time)

    def purge(self, predicate: Callable) -> int:
        """Remove every pending item for which ``predicate(item)`` is true.

        Used when a flow departs mid-run: its packets still travelling a
        *shared* delay line (a multi-hop forward line) must not be delivered
        to a torn-down endpoint.  The timer is re-armed to the surviving
        head — :meth:`_pop_ready` pops the head unconditionally, so a stale
        firing time would deliver the wrong item early.  Returns the number
        of items removed.
        """
        pending = self._pending
        if not pending:
            return 0
        kept = deque(entry for entry in pending if not predicate(entry[1]))
        removed = len(pending) - len(kept)
        if removed:
            self._pending = kept
            self._timer.cancel()
            if kept:
                self._timer.schedule_at(kept[0][0])
        return removed

    def clear(self) -> int:
        """Drop every pending item and disarm the timer (endpoint teardown)."""
        removed = len(self._pending)
        if removed:
            self._pending.clear()
        self._timer.cancel()
        return removed

    def _pop_ready(self) -> None:
        pending = self._pending
        sink = self._sink
        sink(pending.popleft()[1])
        # Batch any further items that share the firing time (items sent in
        # one burst, e.g. a window of packets released by a single ACK).
        events = self._events
        now = events.now
        while pending and pending[0][0] <= now:
            sink(pending.popleft()[1])
        if pending:
            # Re-arm for the new head.  The timer just fired, so unless a
            # sink re-armed it reentrantly there is nothing to tombstone.
            timer = self._timer
            if timer._entry is None:
                timer._arm(pending[0][0])
            else:
                timer.schedule_at(pending[0][0])

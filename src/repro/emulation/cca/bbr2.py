"""Packet-level BBRv2 (Cardwell et al., IETF 104 drafts), simplified.

BBRv2 keeps BBRv1's STARTUP/DRAIN/PROBE_RTT structure but replaces the
continuous eight-phase gain cycle by an explicit probing schedule with four
ProbeBW sub-states and couples the congestion window to loss:

* **CRUISE**: pace at the bandwidth estimate, inflight capped at
  ``min(BDP, (1 - headroom) * inflight_hi, inflight_lo)``.
* **REFILL**: one round trip at gain 1 to bring the inflight to the BDP
  before probing.
* **UP**: gain 5/4 until the inflight exceeds 5/4 of the BDP or the loss
  rate of the round exceeds 2 %; ``inflight_hi`` grows while probing
  succeeds and is cut by 30 % when the probe ends in excessive loss.
* **DOWN**: gain 3/4 until the inflight falls below the drain target.

Probes are scheduled every ``min(62 RTTs, 2..3 s)``.  During CRUISE, loss
activates the short-term bound ``inflight_lo`` (multiplicatively decreased
by 30 %), which is reset at the start of the next probing period.
"""

from __future__ import annotations

import random
from collections import deque

from .base import AckSample, LossEvent, PacketCCA

STARTUP_GAIN: float = 2.885
DRAIN_GAIN: float = 1.0 / STARTUP_GAIN
PROBE_GAIN: float = 1.25
DOWN_GAIN: float = 0.75
CWND_GAIN: float = 2.0
PROBE_RTT_DURATION_S: float = 0.2
PROBE_RTT_INTERVAL_S: float = 10.0
BW_WINDOW_ROUNDS: int = 10
FULL_BW_THRESHOLD: float = 1.25
FULL_BW_ROUNDS: int = 3
MIN_CWND_PKTS: float = 4.0
LOSS_THRESHOLD: float = 0.02
BETA: float = 0.3
HEADROOM: float = 0.15
MAX_PROBE_INTERVAL_RTTS: float = 62.0
PROBE_WALL_MIN_S: float = 2.0
PROBE_WALL_MAX_S: float = 3.0


class Bbr2Packet(PacketCCA):
    """Packet-level BBRv2."""

    name = "bbr2"

    def __init__(self, rng: random.Random | None = None, initial_rate_pps: float = 1000.0) -> None:
        super().__init__()
        if initial_rate_pps <= 0:
            raise ValueError("initial rate must be positive")
        self._rng = rng or random.Random(0)
        self.state = "startup"
        self.btlbw_pps = initial_rate_pps
        self.rtprop_s = 0.1
        self._rtprop_stamp = 0.0
        self._rtprop_valid = False
        self._bw_samples: deque[tuple[int, float]] = deque()
        self._round = 0
        self._delivered = 0
        self._lost = 0
        self._round_delivered = 0
        self._round_lost = 0
        self._next_round_delivered = 0
        self._full_bw = 0.0
        self._full_bw_count = 0
        self.inflight_hi: float | None = None
        self.inflight_lo: float | None = None
        self._hi_cut_this_probe = False
        self._probe_wall_s = self._rng.uniform(PROBE_WALL_MIN_S, PROBE_WALL_MAX_S)
        self._last_probe_stamp = 0.0
        self._refill_stamp = 0.0
        self._probe_rtt_done_stamp: float | None = None
        self.pacing_gain = STARTUP_GAIN
        self.cwnd_gain = STARTUP_GAIN
        self.cwnd_pkts = 10.0
        self.pacing_rate_pps = initial_rate_pps * STARTUP_GAIN

    # ------------------------------------------------------------------ #
    # Estimators
    # ------------------------------------------------------------------ #

    def bdp_pkts(self) -> float:
        """Current bandwidth-delay-product estimate in packets."""
        return self.btlbw_pps * self.rtprop_s

    def _drain_target(self) -> float:
        target = self.bdp_pkts()
        if self.inflight_hi is not None:
            target = min(target, (1.0 - HEADROOM) * self.inflight_hi)
        return max(MIN_CWND_PKTS, target)

    def _round_loss_rate(self) -> float:
        total = self._round_delivered + self._round_lost
        if total == 0:
            return 0.0
        return self._round_lost / total

    def _update_round(self, sample: AckSample) -> bool:
        self._delivered += sample.newly_delivered
        self._round_delivered += sample.newly_delivered
        if self._delivered >= self._next_round_delivered:
            self._round += 1
            self._next_round_delivered = self._delivered + sample.inflight + 1
            self._round_delivered = 0
            self._round_lost = 0
            return True
        return False

    def _update_btlbw(self, sample: AckSample) -> None:
        if sample.delivery_rate <= 0:
            return
        # Monotonic deque: rates decrease from left to right, so the head is
        # always the windowed maximum (O(1) amortised per ACK instead of a
        # full window re-scan — this is the emulator's hottest code path).
        samples = self._bw_samples
        while samples and samples[-1][1] <= sample.delivery_rate:
            samples.pop()
        samples.append((self._round, sample.delivery_rate))
        horizon = self._round - BW_WINDOW_ROUNDS
        while samples[0][0] < horizon:
            samples.popleft()
        self.btlbw_pps = samples[0][1]

    def _update_rtprop(self, sample: AckSample) -> None:
        if not self._rtprop_valid or sample.rtt <= self.rtprop_s:
            self.rtprop_s = sample.rtt
            self._rtprop_stamp = sample.now
            self._rtprop_valid = True

    # ------------------------------------------------------------------ #
    # State machine
    # ------------------------------------------------------------------ #

    def _check_full_pipe(self, round_start: bool, sample: AckSample) -> None:
        if self.state != "startup":
            return
        loss_exit = self._round_loss_rate() > LOSS_THRESHOLD and self._round_lost >= 3
        if round_start:
            if self.btlbw_pps >= self._full_bw * FULL_BW_THRESHOLD:
                self._full_bw = self.btlbw_pps
                self._full_bw_count = 0
            else:
                self._full_bw_count += 1
        if self._full_bw_count >= FULL_BW_ROUNDS or loss_exit:
            if loss_exit and self.inflight_hi is None:
                self.inflight_hi = float(sample.inflight)
            self.state = "drain"

    def _probe_interval_s(self) -> float:
        return min(MAX_PROBE_INTERVAL_RTTS * self.rtprop_s, self._probe_wall_s)

    def _maybe_enter_probe_rtt(self, sample: AckSample) -> None:
        if self.state == "probe_rtt":
            if self._probe_rtt_done_stamp is None:
                self._probe_rtt_done_stamp = sample.now + PROBE_RTT_DURATION_S
            elif sample.now >= self._probe_rtt_done_stamp:
                self._rtprop_stamp = sample.now
                self._probe_rtt_done_stamp = None
                self.state = "cruise"
            return
        if (
            self._rtprop_valid
            and sample.now - self._rtprop_stamp > PROBE_RTT_INTERVAL_S
            and self.state in ("startup", "drain", "cruise", "refill", "up", "down")
        ):
            self.state = "probe_rtt"
            self._probe_rtt_done_stamp = None

    def _apply_state(self, sample: AckSample) -> None:
        bdp = self.bdp_pkts()
        if self.state == "startup":
            self.pacing_gain = STARTUP_GAIN
            self.cwnd_gain = STARTUP_GAIN
            return
        if self.state == "drain":
            self.pacing_gain = DRAIN_GAIN
            self.cwnd_gain = STARTUP_GAIN
            if sample.inflight <= bdp:
                self.state = "cruise"
                self._last_probe_stamp = sample.now
            return
        if self.state == "probe_rtt":
            self.pacing_gain = 1.0
            self.cwnd_gain = 1.0
            return
        if self.state == "cruise":
            self.pacing_gain = 1.0
            self.cwnd_gain = 1.0
            if sample.now - self._last_probe_stamp >= self._probe_interval_s():
                self.state = "refill"
                self._refill_stamp = sample.now
                self.inflight_lo = None
                self._hi_cut_this_probe = False
                self._probe_wall_s = self._rng.uniform(PROBE_WALL_MIN_S, PROBE_WALL_MAX_S)
            return
        if self.state == "refill":
            self.pacing_gain = 1.0
            self.cwnd_gain = CWND_GAIN
            if sample.now - self._refill_stamp >= self.rtprop_s:
                self.state = "up"
            return
        if self.state == "up":
            self.pacing_gain = PROBE_GAIN
            self.cwnd_gain = CWND_GAIN
            if self.inflight_hi is not None and sample.inflight >= self.inflight_hi:
                self.inflight_hi = float(sample.inflight)
            probe_done = sample.inflight > PROBE_GAIN * bdp
            loss_done = self._round_loss_rate() > LOSS_THRESHOLD
            if probe_done or loss_done:
                if self.inflight_hi is None or sample.inflight > self.inflight_hi:
                    self.inflight_hi = float(sample.inflight)
                if loss_done and not self._hi_cut_this_probe and self.inflight_hi is not None:
                    self.inflight_hi = max(MIN_CWND_PKTS, (1.0 - BETA) * self.inflight_hi)
                    self._hi_cut_this_probe = True
                self.state = "down"
            return
        if self.state == "down":
            self.pacing_gain = DOWN_GAIN
            self.cwnd_gain = CWND_GAIN
            if sample.inflight <= self._drain_target():
                self.state = "cruise"
                self._last_probe_stamp = sample.now
            return

    def _set_controls(self) -> None:
        self.pacing_rate_pps = max(1.0, self.pacing_gain * self.btlbw_pps)
        bdp = self.bdp_pkts()
        if self.state == "probe_rtt":
            self.cwnd_pkts = max(MIN_CWND_PKTS, bdp / 2.0)
            return
        cwnd = self.cwnd_gain * bdp
        if self.state in ("cruise", "down"):
            if self.inflight_hi is not None:
                cwnd = min(cwnd, (1.0 - HEADROOM) * self.inflight_hi)
            if self.state == "cruise" and self.inflight_lo is not None:
                cwnd = min(cwnd, self.inflight_lo)
        elif self.state in ("refill", "up") and self.inflight_hi is not None:
            cwnd = min(cwnd, PROBE_GAIN * max(self.inflight_hi, bdp))
        self.cwnd_pkts = max(MIN_CWND_PKTS, cwnd)

    # ------------------------------------------------------------------ #
    # Callbacks
    # ------------------------------------------------------------------ #

    def on_ack(self, sample: AckSample) -> None:
        round_start = self._update_round(sample)
        self._update_btlbw(sample)
        self._update_rtprop(sample)
        self._check_full_pipe(round_start, sample)
        self._maybe_enter_probe_rtt(sample)
        self._apply_state(sample)
        self._set_controls()

    def on_loss(self, event: LossEvent) -> None:
        self._lost += event.num_lost
        self._round_lost += event.num_lost
        if self.state == "cruise":
            base = self.inflight_lo if self.inflight_lo is not None else self.cwnd_pkts
            self.inflight_lo = max(MIN_CWND_PKTS, (1.0 - BETA) * base)
        elif self.state == "up" and self._round_loss_rate() > LOSS_THRESHOLD:
            if not self._hi_cut_this_probe:
                reference = self.inflight_hi if self.inflight_hi is not None else float(event.inflight)
                self.inflight_hi = max(MIN_CWND_PKTS, (1.0 - BETA) * reference)
                self._hi_cut_this_probe = True
            self.state = "down"
        elif (
            self.state == "startup"
            and self.inflight_hi is None
            and self._round_loss_rate() > LOSS_THRESHOLD
        ):
            self.inflight_hi = float(event.inflight)
        self._set_controls()

    def on_timeout(self, now: float) -> None:
        self._bw_samples.clear()
        self.btlbw_pps = max(1.0, self.btlbw_pps / 2.0)
        self.inflight_lo = MIN_CWND_PKTS
        self._set_controls()

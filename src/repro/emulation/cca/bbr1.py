"""Packet-level BBRv1 (Cardwell et al., 2016), simplified but structurally faithful.

The implementation follows the published state machine:

* **STARTUP**: pacing/cwnd gain 2.885 until the bandwidth estimate stops
  growing by at least 25 % for three consecutive round trips ("full pipe").
* **DRAIN**: inverse gain until the inflight falls to the estimated BDP.
* **PROBE_BW**: the eight-phase gain cycle (5/4, 3/4, 1, 1, 1, 1, 1, 1),
  each phase lasting one RTprop, starting at a random phase.
* **PROBE_RTT**: every 10 s without a new minimum-RTT sample, the window is
  cut to four packets for 200 ms.

Estimators: a windowed-max filter over the last ten round trips for the
bottleneck bandwidth, and a windowed-min over ten seconds for RTprop —
exactly the two quantities the paper's fluid model tracks as ``x_btl`` and
``tau_min``.  BBRv1 ignores packet loss entirely.
"""

from __future__ import annotations

import random
from collections import deque

from .base import AckSample, LossEvent, PacketCCA

STARTUP_GAIN: float = 2.885
DRAIN_GAIN: float = 1.0 / STARTUP_GAIN
PROBE_BW_GAINS: tuple[float, ...] = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
CWND_GAIN: float = 2.0
PROBE_RTT_CWND_PKTS: float = 4.0
PROBE_RTT_DURATION_S: float = 0.2
PROBE_RTT_INTERVAL_S: float = 10.0
BW_WINDOW_ROUNDS: int = 10
FULL_BW_THRESHOLD: float = 1.25
FULL_BW_ROUNDS: int = 3
MIN_CWND_PKTS: float = 4.0


class Bbr1Packet(PacketCCA):
    """Packet-level BBRv1."""

    name = "bbr1"

    def __init__(self, rng: random.Random | None = None, initial_rate_pps: float = 1000.0) -> None:
        super().__init__()
        if initial_rate_pps <= 0:
            raise ValueError("initial rate must be positive")
        self._rng = rng or random.Random(0)
        self.state = "startup"
        self.btlbw_pps = initial_rate_pps
        self.rtprop_s = 0.1
        self._rtprop_stamp = 0.0
        self._rtprop_valid = False
        self._bw_samples: deque[tuple[int, float]] = deque()
        self._round = 0
        self._delivered = 0
        self._next_round_delivered = 0
        self._full_bw = 0.0
        self._full_bw_count = 0
        self._cycle_index = self._rng.randrange(len(PROBE_BW_GAINS))
        if PROBE_BW_GAINS[self._cycle_index] == 0.75:
            self._cycle_index = (self._cycle_index + 1) % len(PROBE_BW_GAINS)
        self._cycle_stamp = 0.0
        self._probe_rtt_done_stamp: float | None = None
        self.pacing_gain = STARTUP_GAIN
        self.cwnd_gain = STARTUP_GAIN
        self.cwnd_pkts = 10.0
        self.pacing_rate_pps = initial_rate_pps * STARTUP_GAIN

    # ------------------------------------------------------------------ #
    # Estimators
    # ------------------------------------------------------------------ #

    def bdp_pkts(self) -> float:
        """Current bandwidth-delay-product estimate in packets."""
        return self.btlbw_pps * self.rtprop_s

    def _update_round(self, sample: AckSample) -> bool:
        self._delivered += sample.newly_delivered
        if self._delivered >= self._next_round_delivered:
            self._round += 1
            self._next_round_delivered = self._delivered + sample.inflight + 1
            return True
        return False

    def _update_btlbw(self, sample: AckSample) -> None:
        if sample.delivery_rate <= 0:
            return
        # Monotonic deque: rates decrease from left to right, so the head is
        # always the windowed maximum (O(1) amortised per ACK instead of a
        # full window re-scan — this is the emulator's hottest code path).
        samples = self._bw_samples
        while samples and samples[-1][1] <= sample.delivery_rate:
            samples.pop()
        samples.append((self._round, sample.delivery_rate))
        horizon = self._round - BW_WINDOW_ROUNDS
        while samples[0][0] < horizon:
            samples.popleft()
        self.btlbw_pps = samples[0][1]

    def _update_rtprop(self, sample: AckSample) -> None:
        if not self._rtprop_valid or sample.rtt <= self.rtprop_s:
            self.rtprop_s = sample.rtt
            self._rtprop_stamp = sample.now
            self._rtprop_valid = True

    # ------------------------------------------------------------------ #
    # State machine
    # ------------------------------------------------------------------ #

    def _check_full_pipe(self, round_start: bool) -> None:
        if not round_start or self.state != "startup":
            return
        if self.btlbw_pps >= self._full_bw * FULL_BW_THRESHOLD:
            self._full_bw = self.btlbw_pps
            self._full_bw_count = 0
            return
        self._full_bw_count += 1
        if self._full_bw_count >= FULL_BW_ROUNDS:
            self.state = "drain"

    def _advance_cycle(self, sample: AckSample) -> None:
        if sample.now - self._cycle_stamp > self.rtprop_s:
            self._cycle_index = (self._cycle_index + 1) % len(PROBE_BW_GAINS)
            self._cycle_stamp = sample.now

    def _maybe_enter_probe_rtt(self, sample: AckSample) -> None:
        if self.state == "probe_rtt":
            if self._probe_rtt_done_stamp is None:
                self._probe_rtt_done_stamp = sample.now + PROBE_RTT_DURATION_S
            elif sample.now >= self._probe_rtt_done_stamp:
                self._rtprop_stamp = sample.now
                self._probe_rtt_done_stamp = None
                self.state = "probe_bw"
                self._cycle_stamp = sample.now
            return
        if (
            self._rtprop_valid
            and sample.now - self._rtprop_stamp > PROBE_RTT_INTERVAL_S
            and self.state in ("probe_bw", "startup")
        ):
            self.state = "probe_rtt"
            self._probe_rtt_done_stamp = None

    def _apply_state(self, sample: AckSample) -> None:
        if self.state == "startup":
            self.pacing_gain = STARTUP_GAIN
            self.cwnd_gain = STARTUP_GAIN
        elif self.state == "drain":
            self.pacing_gain = DRAIN_GAIN
            self.cwnd_gain = STARTUP_GAIN
            if sample.inflight <= self.bdp_pkts():
                self.state = "probe_bw"
                self._cycle_stamp = sample.now
        if self.state == "probe_bw":
            self._advance_cycle(sample)
            self.pacing_gain = PROBE_BW_GAINS[self._cycle_index]
            self.cwnd_gain = CWND_GAIN
        if self.state == "probe_rtt":
            self.pacing_gain = 1.0
            self.cwnd_gain = 1.0

    def _set_controls(self) -> None:
        self.pacing_rate_pps = max(1.0, self.pacing_gain * self.btlbw_pps)
        if self.state == "probe_rtt":
            self.cwnd_pkts = PROBE_RTT_CWND_PKTS
        else:
            self.cwnd_pkts = max(MIN_CWND_PKTS, self.cwnd_gain * self.bdp_pkts())

    # ------------------------------------------------------------------ #
    # Callbacks
    # ------------------------------------------------------------------ #

    def on_ack(self, sample: AckSample) -> None:
        self.on_ack_fast(
            sample.now,
            sample.rtt,
            sample.delivery_rate,
            sample.inflight,
            sample.acked_seq,
            sample.newly_delivered,
        )

    def on_ack_fast(
        self,
        now: float,
        rtt: float,
        delivery_rate: float,
        inflight: int,
        acked_seq: int,
        newly_delivered: int = 1,
    ) -> None:
        # One inlined body equivalent to the helper pipeline
        #   _update_round -> _update_btlbw -> _update_rtprop ->
        #   _check_full_pipe -> _maybe_enter_probe_rtt -> _apply_state ->
        #   _set_controls
        # (the helpers above are kept as the readable specification).  This
        # runs once per acknowledgement — the emulator's hottest call after
        # the event loop itself — so the pipeline executes without per-stage
        # method calls and without touching a sample record.
        delivered = self._delivered + newly_delivered
        self._delivered = delivered
        round_start = delivered >= self._next_round_delivered
        if round_start:
            self._round += 1
            self._next_round_delivered = delivered + inflight + 1
        rate = delivery_rate
        if rate > 0:
            samples = self._bw_samples
            while samples and samples[-1][1] <= rate:
                samples.pop()
            samples.append((self._round, rate))
            horizon = self._round - BW_WINDOW_ROUNDS
            while samples[0][0] < horizon:
                samples.popleft()
            self.btlbw_pps = samples[0][1]
        if not self._rtprop_valid or rtt <= self.rtprop_s:
            self.rtprop_s = rtt
            self._rtprop_stamp = now
            self._rtprop_valid = True
        state = self.state
        if round_start and state == "startup":
            btlbw = self.btlbw_pps
            if btlbw >= self._full_bw * FULL_BW_THRESHOLD:
                self._full_bw = btlbw
                self._full_bw_count = 0
            else:
                self._full_bw_count += 1
                if self._full_bw_count >= FULL_BW_ROUNDS:
                    self.state = state = "drain"
        if state == "probe_rtt":
            if self._probe_rtt_done_stamp is None:
                self._probe_rtt_done_stamp = now + PROBE_RTT_DURATION_S
            elif now >= self._probe_rtt_done_stamp:
                self._rtprop_stamp = now
                self._probe_rtt_done_stamp = None
                self.state = state = "probe_bw"
                self._cycle_stamp = now
        elif (
            self._rtprop_valid
            and now - self._rtprop_stamp > PROBE_RTT_INTERVAL_S
            and (state == "probe_bw" or state == "startup")
        ):
            self.state = state = "probe_rtt"
            self._probe_rtt_done_stamp = None
        if state == "startup":
            self.pacing_gain = STARTUP_GAIN
            self.cwnd_gain = STARTUP_GAIN
        elif state == "drain":
            self.pacing_gain = DRAIN_GAIN
            self.cwnd_gain = STARTUP_GAIN
            if inflight <= self.btlbw_pps * self.rtprop_s:
                self.state = state = "probe_bw"
                self._cycle_stamp = now
        if state == "probe_bw":
            if now - self._cycle_stamp > self.rtprop_s:
                self._cycle_index = (self._cycle_index + 1) % len(PROBE_BW_GAINS)
                self._cycle_stamp = now
            self.pacing_gain = PROBE_BW_GAINS[self._cycle_index]
            self.cwnd_gain = CWND_GAIN
        elif state == "probe_rtt":
            self.pacing_gain = 1.0
            self.cwnd_gain = 1.0
        btlbw = self.btlbw_pps
        pacing = self.pacing_gain * btlbw
        self.pacing_rate_pps = pacing if pacing > 1.0 else 1.0
        if state == "probe_rtt":
            self.cwnd_pkts = PROBE_RTT_CWND_PKTS
        else:
            cwnd = self.cwnd_gain * (btlbw * self.rtprop_s)
            self.cwnd_pkts = cwnd if cwnd > MIN_CWND_PKTS else MIN_CWND_PKTS

    def on_loss(self, event: LossEvent) -> None:
        # BBRv1 deliberately ignores packet loss.
        return

    def on_timeout(self, now: float) -> None:
        # Conservative reaction: restart the estimator windows but keep the
        # model-based controls (BBRv1 has no loss-based window collapse).
        self._bw_samples.clear()
        self.btlbw_pps = max(1.0, self.btlbw_pps / 2.0)
        self._set_controls()

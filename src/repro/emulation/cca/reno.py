"""Packet-level TCP Reno (NewReno-style reaction, SACK-like loss detection)."""

from __future__ import annotations

import math

from .base import AckSample, LossEvent, PacketCCA


class RenoPacket(PacketCCA):
    """TCP Reno: slow start, AIMD congestion avoidance, halving on loss."""

    name = "reno"

    def __init__(self, initial_cwnd_pkts: float = 10.0, ssthresh_pkts: float = math.inf) -> None:
        super().__init__()
        if initial_cwnd_pkts < 1:
            raise ValueError("initial cwnd must be at least one packet")
        self.cwnd_pkts = initial_cwnd_pkts
        self.ssthresh_pkts = ssthresh_pkts
        # Sequence number marking the end of the current recovery episode:
        # losses of packets sent before it do not trigger another decrease.
        self._recovery_until = -1

    def in_slow_start(self) -> bool:
        """Whether the window is still below the slow-start threshold."""
        return self.cwnd_pkts < self.ssthresh_pkts

    def on_ack(self, sample: AckSample) -> None:
        if self.in_slow_start():
            self.cwnd_pkts += sample.newly_delivered
        else:
            self.cwnd_pkts += sample.newly_delivered / self.cwnd_pkts

    def on_ack_fast(
        self,
        now: float,
        rtt: float,
        delivery_rate: float,
        inflight: int,
        acked_seq: int,
        newly_delivered: int = 1,
    ) -> None:
        cwnd = self.cwnd_pkts
        if cwnd < self.ssthresh_pkts:
            self.cwnd_pkts = cwnd + newly_delivered
        else:
            self.cwnd_pkts = cwnd + newly_delivered / cwnd

    def on_loss(self, event: LossEvent) -> None:
        if event.lost_seqs and max(event.lost_seqs) <= self._recovery_until:
            return  # already reacted to this window of loss
        self.ssthresh_pkts = max(2.0, self.cwnd_pkts / 2.0)
        self.cwnd_pkts = self.ssthresh_pkts
        self._recovery_until = event.highest_seq_sent

    def on_timeout(self, now: float) -> None:
        self.ssthresh_pkts = max(2.0, self.cwnd_pkts / 2.0)
        self.cwnd_pkts = 1.0
        self._recovery_until = -1

"""Packet-level TCP CUBIC (RFC 8312 window growth, simplified).

The implementation follows the kernel structure: slow start up to the
slow-start threshold, then the cubic window-growth function anchored at the
window size of the last loss event.  The TCP-friendliness (Reno emulation)
region and hystart are omitted — they do not influence the macroscopic
behaviour the paper's figures report.
"""

from __future__ import annotations

import math

from .base import AckSample, LossEvent, PacketCCA

#: CUBIC growth constant ``C`` (RFC 8312).
CUBIC_C: float = 0.4
#: CUBIC multiplicative-decrease factor ``beta``.
CUBIC_BETA: float = 0.7


class CubicPacket(PacketCCA):
    """TCP CUBIC congestion control."""

    name = "cubic"

    def __init__(self, initial_cwnd_pkts: float = 10.0, ssthresh_pkts: float = math.inf) -> None:
        super().__init__()
        if initial_cwnd_pkts < 1:
            raise ValueError("initial cwnd must be at least one packet")
        self.cwnd_pkts = initial_cwnd_pkts
        self.ssthresh_pkts = ssthresh_pkts
        self.w_max = initial_cwnd_pkts
        self.epoch_start: float | None = None
        self._recovery_until = -1

    def in_slow_start(self) -> bool:
        """Whether the window is still below the slow-start threshold."""
        return self.cwnd_pkts < self.ssthresh_pkts

    def _cubic_target(self, now: float) -> float:
        if self.epoch_start is None:
            self.epoch_start = now
        k = ((self.w_max * (1.0 - CUBIC_BETA)) / CUBIC_C) ** (1.0 / 3.0)
        t = now - self.epoch_start
        return CUBIC_C * (t - k) ** 3 + self.w_max

    def on_ack(self, sample: AckSample) -> None:
        self.on_ack_fast(
            sample.now,
            sample.rtt,
            sample.delivery_rate,
            sample.inflight,
            sample.acked_seq,
            sample.newly_delivered,
        )

    def on_ack_fast(
        self,
        now: float,
        rtt: float,
        delivery_rate: float,
        inflight: int,
        acked_seq: int,
        newly_delivered: int = 1,
    ) -> None:
        if self.in_slow_start():
            self.cwnd_pkts += newly_delivered
            return
        target = self._cubic_target(now)
        if target > self.cwnd_pkts:
            # Approach the cubic target within roughly one RTT.
            self.cwnd_pkts += (
                (target - self.cwnd_pkts) / max(self.cwnd_pkts, 1.0)
            ) * newly_delivered
        else:
            # Very slow growth when above the target (kernel's 1/(100 cwnd)).
            self.cwnd_pkts += newly_delivered / (100.0 * max(self.cwnd_pkts, 1.0))

    def on_loss(self, event: LossEvent) -> None:
        if event.lost_seqs and max(event.lost_seqs) <= self._recovery_until:
            return
        self.w_max = self.cwnd_pkts
        self.cwnd_pkts = max(2.0, self.cwnd_pkts * CUBIC_BETA)
        self.ssthresh_pkts = self.cwnd_pkts
        self.epoch_start = event.now
        self._recovery_until = event.highest_seq_sent

    def on_timeout(self, now: float) -> None:
        self.w_max = self.cwnd_pkts
        self.ssthresh_pkts = max(2.0, self.cwnd_pkts * CUBIC_BETA)
        self.cwnd_pkts = 1.0
        self.epoch_start = None
        self._recovery_until = -1

"""Packet-level congestion-control interface of the emulator.

A :class:`PacketCCA` controls one sender through two knobs — the congestion
window (in packets) and an optional pacing rate (packets/second) — and is
driven by three callbacks fired by the sender: one per acknowledgement, one
per detected loss batch, and one per retransmission timeout.

The :class:`AckSample` carries everything a modern CCA needs: the RTT
sample, the delivery-rate sample of BBR's bandwidth estimator (delivered
packets since the acked packet was sent, divided by the elapsed time) and
the current inflight.

Callback records are ephemeral: the sender reuses one :class:`AckSample`
and one :class:`LossEvent` instance across calls to keep the per-ACK hot
path allocation-free, so a CCA must read the fields synchronously inside
the callback and never retain a reference to the record itself.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass


@dataclass(slots=True)
class AckSample:
    """Measurements delivered to the CCA with each acknowledgement.

    Instances may be reused by the caller between callbacks — read, don't
    retain (see the module docstring).
    """

    now: float
    rtt: float
    delivery_rate: float
    inflight: int
    acked_seq: int
    newly_delivered: int = 1


@dataclass(slots=True)
class LossEvent:
    """A batch of packets detected as lost.

    Instances may be reused by the caller between callbacks — read, don't
    retain (see the module docstring).
    """

    now: float
    num_lost: int
    inflight: int
    highest_seq_sent: int
    lost_seqs: tuple[int, ...] = ()


class PacketCCA(abc.ABC):
    """Abstract packet-level congestion-control algorithm."""

    name: str = "abstract"

    def __init__(self) -> None:
        self.cwnd_pkts: float = 10.0
        self.pacing_rate_pps: float = math.inf
        # Reusable record backing the default on_ack_fast -> on_ack bridge.
        self._fast_sample = AckSample(0.0, 0.0, 0.0, 0, 0, 1)

    @abc.abstractmethod
    def on_ack(self, sample: AckSample) -> None:
        """Process an acknowledgement."""

    def on_ack_fast(
        self,
        now: float,
        rtt: float,
        delivery_rate: float,
        inflight: int,
        acked_seq: int,
        newly_delivered: int = 1,
    ) -> None:
        """Positional-argument ACK hot path used by the sender.

        Semantically identical to :meth:`on_ack`; the default implementation
        packs the arguments into a reused :class:`AckSample` and delegates.
        Hot CCAs override this natively so the per-ACK path moves plain
        scalars instead of a record object.
        """
        sample = self._fast_sample
        sample.now = now
        sample.rtt = rtt
        sample.delivery_rate = delivery_rate
        sample.inflight = inflight
        sample.acked_seq = acked_seq
        sample.newly_delivered = newly_delivered
        self.on_ack(sample)

    @abc.abstractmethod
    def on_loss(self, event: LossEvent) -> None:
        """Process detected packet loss."""

    def on_timeout(self, now: float) -> None:
        """Process a retransmission timeout (default: collapse the window)."""
        self.cwnd_pkts = 1.0

    def window_limit(self) -> float:
        """Effective congestion window in packets (never below one packet)."""
        return max(1.0, self.cwnd_pkts)

    def pacing_interval(self) -> float:
        """Seconds between packet transmissions (0 when unpaced)."""
        if math.isinf(self.pacing_rate_pps) or self.pacing_rate_pps <= 0:
            return 0.0
        return 1.0 / self.pacing_rate_pps

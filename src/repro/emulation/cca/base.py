"""Packet-level congestion-control interface of the emulator.

A :class:`PacketCCA` controls one sender through two knobs — the congestion
window (in packets) and an optional pacing rate (packets/second) — and is
driven by three callbacks fired by the sender: one per acknowledgement, one
per detected loss batch, and one per retransmission timeout.

The :class:`AckSample` carries everything a modern CCA needs: the RTT
sample, the delivery-rate sample of BBR's bandwidth estimator (delivered
packets since the acked packet was sent, divided by the elapsed time) and
the current inflight.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass


@dataclass
class AckSample:
    """Measurements delivered to the CCA with each acknowledgement."""

    now: float
    rtt: float
    delivery_rate: float
    inflight: int
    acked_seq: int
    newly_delivered: int = 1


@dataclass
class LossEvent:
    """A batch of packets detected as lost."""

    now: float
    num_lost: int
    inflight: int
    highest_seq_sent: int
    lost_seqs: tuple[int, ...] = ()


class PacketCCA(abc.ABC):
    """Abstract packet-level congestion-control algorithm."""

    name: str = "abstract"

    def __init__(self) -> None:
        self.cwnd_pkts: float = 10.0
        self.pacing_rate_pps: float = math.inf

    @abc.abstractmethod
    def on_ack(self, sample: AckSample) -> None:
        """Process an acknowledgement."""

    @abc.abstractmethod
    def on_loss(self, event: LossEvent) -> None:
        """Process detected packet loss."""

    def on_timeout(self, now: float) -> None:
        """Process a retransmission timeout (default: collapse the window)."""
        self.cwnd_pkts = 1.0

    def window_limit(self) -> float:
        """Effective congestion window in packets (never below one packet)."""
        return max(1.0, self.cwnd_pkts)

    def pacing_interval(self) -> float:
        """Seconds between packet transmissions (0 when unpaced)."""
        if math.isinf(self.pacing_rate_pps) or self.pacing_rate_pps <= 0:
            return 0.0
        return 1.0 / self.pacing_rate_pps

"""Packet-level congestion-control algorithms of the emulator."""

from __future__ import annotations

import random

from .base import AckSample, LossEvent, PacketCCA
from .bbr1 import Bbr1Packet
from .bbr2 import Bbr2Packet
from .cubic import CubicPacket
from .reno import RenoPacket


def create_packet_cca(name: str, rng: random.Random, initial_rate_pps: float) -> PacketCCA:
    """Instantiate the packet-level CCA for a scenario flow."""
    name = name.lower()
    if name == "reno":
        return RenoPacket()
    if name == "cubic":
        return CubicPacket()
    if name == "bbr1":
        return Bbr1Packet(rng=rng, initial_rate_pps=initial_rate_pps)
    if name == "bbr2":
        return Bbr2Packet(rng=rng, initial_rate_pps=initial_rate_pps)
    raise ValueError(f"unknown CCA {name!r}")


__all__ = [
    "AckSample",
    "LossEvent",
    "PacketCCA",
    "RenoPacket",
    "CubicPacket",
    "Bbr1Packet",
    "Bbr2Packet",
    "create_packet_cca",
]

"""Packet queues of the emulator: drop-tail and RED.

These implement the per-packet counterparts of the fluid model's loss
equations (Eq. 4 and Eq. 6).  The RED queue uses the classic exponentially
weighted moving average of the queue length, which is precisely the
behaviour the paper identifies as the source of the fluid model's RED
idealisation error (Insight 9).
"""

from __future__ import annotations

import random
from collections import deque

from .packet import Packet


class PacketQueue:
    """Base class of a finite packet queue with drop accounting.

    A discipline must implement two admission entry points: :meth:`offer`
    (packet-storing, used by the closure reference scheduler and direct
    queue users) and :meth:`decide` (storage-free, used by the virtual
    transmitter of :class:`~repro.emulation.link.BottleneckLink`, which
    tracks the queue contents arithmetically and only consults the
    discipline for the accept/drop decision).  Both must keep the
    ``enqueued``/``dropped`` counters consistent.
    """

    def __init__(self, capacity_pkts: int) -> None:
        if capacity_pkts < 1:
            raise ValueError("queue capacity must be at least one packet")
        self.capacity_pkts = capacity_pkts
        self._queue: deque[Packet] = deque()
        self.dropped = 0
        self.enqueued = 0
        # Set by the owning link via bind_clock(); lets time-aware
        # disciplines (RED) observe the simulation clock and service rate.
        self._events = None
        self.service_time_s: float | None = None

    def bind_clock(self, events, service_time_s: float) -> None:
        """Attach the event clock and per-packet service time of the link."""
        self._events = events
        self.service_time_s = service_time_s

    def decide(self, occupancy: int, now: float) -> bool:
        """Storage-free admission decision for an externally held queue.

        The delay-line link models its queue arithmetically (packet start
        and departure times are deterministic) and only consults the
        discipline for the accept/drop decision; ``occupancy`` is the
        number of waiting packets at arrival time ``now``.  Updates the
        ``enqueued``/``dropped`` counters exactly like :meth:`offer`.
        Like :meth:`offer`, this is part of the required discipline
        interface — a subclass used with the delay-line link must
        implement it.
        """
        raise NotImplementedError

    def notify_idle(self, time: float) -> None:
        """Inform the discipline that the external queue emptied at ``time``."""

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def occupancy(self) -> int:
        """Current queue length in packets."""
        return len(self._queue)

    def offer(self, packet: Packet) -> bool:
        """Try to enqueue a packet; returns False (and counts a drop) if dropped."""
        raise NotImplementedError

    def pop(self) -> Packet | None:
        """Dequeue the head-of-line packet, or None if the queue is empty."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def _accept(self, packet: Packet) -> bool:
        self._queue.append(packet)
        self.enqueued += 1
        return True

    def _drop(self) -> bool:
        self.dropped += 1
        return False


class DropTailQueue(PacketQueue):
    """FIFO queue that drops arrivals when full."""

    def offer(self, packet: Packet) -> bool:
        if len(self._queue) >= self.capacity_pkts:
            return self._drop()
        return self._accept(packet)

    def decide(self, occupancy: int, now: float) -> bool:
        if occupancy >= self.capacity_pkts:
            self.dropped += 1
            return False
        self.enqueued += 1
        return True


class RedQueue(PacketQueue):
    """Random Early Detection queue.

    The drop probability grows linearly from 0 at ``min_threshold`` to
    ``max_probability`` at ``max_threshold`` of the *averaged* queue length,
    and everything above ``max_threshold`` is dropped.  Thresholds default to
    the whole buffer range so that the steady-state drop probability tracks
    ``q_avg / B`` — the idealisation the fluid model uses (Eq. 6) — while the
    averaging introduces the lag the paper discusses.
    """

    def __init__(
        self,
        capacity_pkts: int,
        rng: random.Random,
        min_threshold_fraction: float = 0.0,
        max_threshold_fraction: float = 1.0,
        max_probability: float = 1.0,
        ewma_weight: float = 0.002,
    ) -> None:
        super().__init__(capacity_pkts)
        if not 0 <= min_threshold_fraction < max_threshold_fraction <= 1.0:
            raise ValueError("RED thresholds must satisfy 0 <= min < max <= 1")
        if not 0 < max_probability <= 1.0:
            raise ValueError("max drop probability must be in (0, 1]")
        if not 0 < ewma_weight <= 1.0:
            raise ValueError("EWMA weight must be in (0, 1]")
        self._rng = rng
        self.min_threshold = min_threshold_fraction * capacity_pkts
        self.max_threshold = max_threshold_fraction * capacity_pkts
        self.max_probability = max_probability
        self.ewma_weight = ewma_weight
        self.avg_queue = 0.0
        self._idle_since: float | None = None

    def drop_probability(self) -> float:
        """Current RED drop probability based on the averaged queue length."""
        if self.avg_queue <= self.min_threshold:
            return 0.0
        if self.avg_queue >= self.max_threshold:
            return 1.0
        span = self.max_threshold - self.min_threshold
        return self.max_probability * (self.avg_queue - self.min_threshold) / span

    def pop(self) -> Packet | None:
        queue = self._queue
        if not queue:
            return None
        packet = queue.popleft()
        if not queue and self._events is not None:
            self._idle_since = self._events.now
        return packet

    def notify_idle(self, time: float) -> None:
        self._idle_since = time

    def _update_avg(self, occupancy: int, now: float | None) -> None:
        if occupancy == 0 and self._idle_since is not None and now is not None:
            # Classic RED idle-time correction (Floyd & Jacobson 1993,
            # Sec. 11): while the queue sat empty no arrivals updated the
            # EWMA, so it is stale-high and would over-drop the first burst
            # after the idle period.  Decay it as if the link had served
            # ``m`` (fractional) small packets during the idle time.
            idle_s = now - self._idle_since
            self._idle_since = None
            if self.service_time_s and idle_s > 0:
                m = idle_s / self.service_time_s
                self.avg_queue *= (1.0 - self.ewma_weight) ** m
            else:
                self.avg_queue *= 1.0 - self.ewma_weight
        else:
            self.avg_queue = (
                (1.0 - self.ewma_weight) * self.avg_queue + self.ewma_weight * occupancy
            )

    def offer(self, packet: Packet) -> bool:
        occupancy = len(self._queue)
        self._update_avg(occupancy, self._events.now if self._events is not None else None)
        if occupancy >= self.capacity_pkts:
            return self._drop()
        if self._rng.random() < self.drop_probability():
            return self._drop()
        return self._accept(packet)

    def decide(self, occupancy: int, now: float) -> bool:
        self._update_avg(occupancy, now)
        if occupancy >= self.capacity_pkts:
            self.dropped += 1
            return False
        if self._rng.random() < self.drop_probability():
            self.dropped += 1
            return False
        self.enqueued += 1
        return True


def make_queue(discipline: str, capacity_pkts: int, rng: random.Random) -> PacketQueue:
    """Factory for the queue discipline named in a scenario configuration."""
    if discipline == "droptail":
        return DropTailQueue(capacity_pkts)
    if discipline == "red":
        return RedQueue(capacity_pkts, rng)
    raise ValueError(f"unknown queue discipline {discipline!r}")

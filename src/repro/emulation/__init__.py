"""Packet-level discrete-event emulator (substitute for the paper's mininet testbed)."""

from .cca import Bbr1Packet, Bbr2Packet, CubicPacket, PacketCCA, RenoPacket, create_packet_cca
from .events import DelayLine, EventQueue, Timer
from .link import BottleneckLink
from .nodes import Destination, Sender
from .queues import DropTailQueue, PacketQueue, RedQueue, make_queue
from .runner import EmulationRunner, emulate

__all__ = [
    "Bbr1Packet",
    "Bbr2Packet",
    "CubicPacket",
    "PacketCCA",
    "RenoPacket",
    "create_packet_cca",
    "DelayLine",
    "EventQueue",
    "Timer",
    "BottleneckLink",
    "Destination",
    "Sender",
    "DropTailQueue",
    "PacketQueue",
    "RedQueue",
    "make_queue",
    "EmulationRunner",
    "emulate",
]

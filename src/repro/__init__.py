"""repro — fluid models, packet-level emulation, and analysis of BBRv1/BBRv2.

This library reproduces "Model-Based Insights on the Performance, Fairness,
and Stability of BBR" (Scherrer, Legner, Perrig, Schmid; ACM IMC 2022):

* :mod:`repro.core` — the paper's fluid models of BBRv1, BBRv2, Reno and
  CUBIC plus the delay-differential-equation network model and integrator.
* :mod:`repro.emulation` — a packet-level discrete-event emulator standing
  in for the paper's mininet testbed.
* :mod:`repro.metrics` — traces and the aggregate metrics of the evaluation.
* :mod:`repro.analysis` — reduced models, equilibria and Lyapunov stability
  (Theorems 1-5).
* :mod:`repro.experiments` — scenario definitions, sweeps and per-figure
  regeneration of the paper's evaluation.

Quickstart::

    from repro.config import dumbbell_scenario
    from repro.core import simulate
    from repro.metrics import aggregate_metrics

    config = dumbbell_scenario(["bbr1"] * 5 + ["reno"] * 5, buffer_bdp=2.0)
    trace = simulate(config)
    print(aggregate_metrics(trace))
"""

from . import analysis, config, core, emulation, experiments, metrics, topology, units
from .config import (
    FlowConfig,
    FluidParams,
    LinkConfig,
    ScenarioConfig,
    TopologyConfig,
    dumbbell_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "config",
    "core",
    "emulation",
    "experiments",
    "metrics",
    "topology",
    "units",
    "FlowConfig",
    "FluidParams",
    "LinkConfig",
    "ScenarioConfig",
    "TopologyConfig",
    "dumbbell_scenario",
    "__version__",
]

"""Per-point runtime capture: the ``runtime`` block stored with results.

Every store row gains a compact, *non-keyed* execution-metadata block::

    {"wall_s": 1.73, "cpu_s": 1.69, "max_rss_kb": 84512,
     "counters": {"steps": 50001, "flows": 4, ...}}

Non-keyed means it never participates in ``scenario_key`` — two runs of
the same scenario produce bit-identical keys and metrics regardless of
how long they took (registered as an ``EXECUTION_PARAMS`` concern in
``devtools/cachekey.py``; no ``SCHEMA_VERSION`` bump, old rows load
unchanged).

Caveats stated once here rather than per row: ``max_rss_kb`` is the
*process* high-water mark at capture end (``ru_maxrss``), so per-point
attribution is approximate inside a long-lived worker; batched lockstep
fluid chunks divide one measured wall/CPU time evenly across the chunk
and mark the block with ``"shared": N``.
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from typing import Any

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]


def _max_rss_kb() -> int | None:
    if resource is None:
        return None
    # Linux reports ru_maxrss in KiB (macOS in bytes; this repo targets Linux).
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class RuntimeCapture:
    """Context manager measuring wall seconds, CPU seconds, and peak RSS."""

    __slots__ = ("wall_s", "cpu_s", "max_rss_kb", "_wall0", "_cpu0")

    def __init__(self) -> None:
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.max_rss_kb: int | None = None
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> RuntimeCapture:
        self._wall0 = time.monotonic()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.wall_s = time.monotonic() - self._wall0
        self.cpu_s = time.process_time() - self._cpu0
        self.max_rss_kb = _max_rss_kb()
        return False

    def block(
        self,
        counters: Mapping[str, Any] | None = None,
        shared: int = 1,
    ) -> dict[str, Any]:
        """The ``runtime`` dict stored with a result row.

        ``shared=N`` amortizes one measurement over N lockstep-batched
        points (wall/CPU divided evenly, block marked ``"shared": N``).
        """
        divisor = max(shared, 1)
        block: dict[str, Any] = {
            "wall_s": round(self.wall_s / divisor, 6),
            "cpu_s": round(self.cpu_s / divisor, 6),
        }
        if self.max_rss_kb is not None:
            block["max_rss_kb"] = self.max_rss_kb
        if divisor > 1:
            block["shared"] = divisor
        if counters:
            block["counters"] = dict(counters)
        return block

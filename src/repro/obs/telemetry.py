"""Process-local telemetry registry: counters, gauges, timed spans.

One module-level :data:`TELEMETRY` instance serves the whole process.
It is *disabled* by default and every instrumented call site is written
so the disabled cost is a single attribute lookup::

    if TELEMETRY.enabled:
        TELEMETRY.count("emu.events_popped", popped)

    with TELEMETRY.span("fluid.integrate", flows=n):   # no-op stub when off
        ...

Spans time with ``time.monotonic()`` only (CLOCK_MONOTONIC is
system-wide on Linux, so parent and pool-worker timestamps share one
axis) and, when a trace path is configured, append one JSON line per
span via a crash-safe ``O_APPEND`` single-``write``: concurrent workers
interleave whole lines, never bytes.  Nothing here feeds simulation
state, metrics, or store keys — see ``devtools/allowlist.txt`` for the
DET001 justification.

Label discipline (enforced by devtools rule OBS001): labels are string
literals with a dotted ``layer.name`` prefix — ``emu.*``, ``fluid.*``,
``exec.*``, ``store.*``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from pathlib import Path
from typing import Any

#: Environment switch: unset/empty → disabled; ``1``/``true``/``on`` →
#: in-memory counters only; any other value → span-log path.
ENV_VAR = "REPRO_TELEMETRY"

_ON_VALUES = {"1", "true", "on", "yes"}


class _NullSpan:
    """Shared no-op context manager returned by ``span()`` when disabled."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live timed span; records duration into the registry on exit."""

    __slots__ = ("_telemetry", "name", "fields", "_started")

    def __init__(
        self, telemetry: Telemetry, name: str, fields: Mapping[str, Any]
    ) -> None:
        self._telemetry = telemetry
        self.name = name
        self.fields = fields
        self._started = 0.0

    def __enter__(self) -> _Span:
        self._started = time.monotonic()
        return self

    def __exit__(self, *exc: object) -> bool:
        ended = time.monotonic()
        self._telemetry._record_span(
            self.name, self._started, ended - self._started, self.fields
        )
        return False


class Telemetry:
    """Registry of counters, gauges and span timings for one process.

    Thread-safe: the executor heartbeat thread and the main thread both
    write to it.  All mutating methods are no-ops while ``enabled`` is
    False, so instrumentation can stay unconditional in warm (non-inner-
    loop) code; truly hot loops should guard on ``TELEMETRY.enabled``
    and use plain local accumulators instead.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.trace_path: Path | None = None
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.span_totals_s: dict[str, float] = {}
        self.span_counts: dict[str, int] = {}
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    def enable(self, trace_path: str | Path | None = None) -> None:
        """Turn collection on, optionally appending spans to a JSONL file."""
        self.trace_path = Path(trace_path) if trace_path is not None else None
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False
        self.trace_path = None

    def reset(self) -> None:
        """Clear accumulated data (enabled state is untouched)."""
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.span_totals_s.clear()
            self.span_counts.clear()

    @contextmanager
    def tracing(self, trace_path: str | Path) -> Iterator[Telemetry]:
        """Enable span logging for a block and export it to pool workers.

        Sets :data:`ENV_VAR` to the span-log path so worker processes
        (which import ``repro`` fresh) self-enable and append to the
        same file; prior state — enabled flag, trace path, env var — is
        restored on exit, after a final ``counters`` event is flushed.
        """
        path = Path(trace_path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        prev_enabled, prev_path = self.enabled, self.trace_path
        prev_env = os.environ.get(ENV_VAR)
        self.enable(path)
        os.environ[ENV_VAR] = str(path)
        try:
            yield self
        finally:
            self.flush_counters()
            self.enabled, self.trace_path = prev_enabled, prev_path
            if prev_env is None:
                os.environ.pop(ENV_VAR, None)
            else:
                os.environ[ENV_VAR] = prev_env

    # -- collection ----------------------------------------------------

    def count(self, label: str, value: float = 1) -> None:
        """Add ``value`` to a monotonically growing counter."""
        if not self.enabled:
            return
        with self._lock:
            self.counters[label] = self.counters.get(label, 0) + value

    def gauge(self, label: str, value: float) -> None:
        """Record the latest value of a point-in-time quantity."""
        if not self.enabled:
            return
        with self._lock:
            self.gauges[label] = value

    def gauge_max(self, label: str, value: float) -> None:
        """Record the high-water mark of a point-in-time quantity."""
        if not self.enabled:
            return
        with self._lock:
            if value > self.gauges.get(label, float("-inf")):
                self.gauges[label] = value

    def span(self, label: str, **fields: Any) -> _Span | _NullSpan:
        """A timed context manager; a shared no-op stub while disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, label, fields)

    def _record_span(
        self, name: str, started: float, duration_s: float, fields: Mapping[str, Any]
    ) -> None:
        with self._lock:
            self.span_totals_s[name] = self.span_totals_s.get(name, 0.0) + duration_s
            self.span_counts[name] = self.span_counts.get(name, 0) + 1
        if self.trace_path is not None:
            event: dict[str, Any] = {
                "ev": "span",
                "name": name,
                "pid": os.getpid(),
                "ts": round(started, 6),
                "dur": round(duration_s, 6),
            }
            if fields:
                event["fields"] = dict(fields)
            self.write_event(event)

    # -- output --------------------------------------------------------

    def write_event(self, payload: Mapping[str, Any]) -> None:
        """Append one JSON line to the span log (atomic ``O_APPEND`` write)."""
        if self.trace_path is None:
            return
        data = (json.dumps(payload, sort_keys=True) + "\n").encode()
        fd = os.open(
            self.trace_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, data)
        finally:
            os.close(fd)

    def snapshot(self) -> dict[str, Any]:
        """A point-in-time copy of all accumulated data."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "spans": {
                    name: {
                        "count": self.span_counts[name],
                        "total_s": round(self.span_totals_s[name], 6),
                    }
                    for name in sorted(self.span_counts)
                },
            }

    def flush_counters(self) -> None:
        """Write the counter/gauge snapshot as one ``counters`` event."""
        if not self.enabled or self.trace_path is None:
            return
        snap = self.snapshot()
        if not (snap["counters"] or snap["gauges"] or snap["spans"]):
            return
        self.write_event({"ev": "counters", "pid": os.getpid(), **snap})


#: The process-wide registry every instrumented layer shares.
TELEMETRY = Telemetry()


def _configure_from_env() -> None:
    value = os.environ.get(ENV_VAR, "").strip()
    if not value:
        return
    if value.lower() in _ON_VALUES:
        TELEMETRY.enable()
    else:
        TELEMETRY.enable(value)


_configure_from_env()

"""Structured stderr logger shared by the executor and the CLI.

One stream (stderr), one level gate, one format — fixing the historical
split where ``sweep`` printed progress to stdout and ``campaign`` to
stderr.  The level comes from ``REPRO_LOG_LEVEL`` (``debug``, ``info``,
``warning``, ``error``; ``quiet`` is an alias of ``error``) and can be
overridden per invocation by the CLI's ``-v``/``--quiet`` flags via
:func:`set_level`.

Every emitted record is ``event`` (a stable dotted name such as
``executor.heartbeat``), an optional human ``message``, and key=value
``fields``.  When telemetry is tracing to a span log, the record is
mirrored there as a ``log`` event so traces carry the operator-visible
narrative alongside the spans.

No wall-clock timestamps: log lines are deterministic given the same
run, which keeps this module clean under the determinism checker.
"""

from __future__ import annotations

import os
import sys
from typing import Any

from .telemetry import TELEMETRY

LEVELS = {
    "debug": 10,
    "info": 20,
    "warning": 30,
    "error": 40,
    "quiet": 40,  # alias: suppress chatter, keep errors
}

_DEFAULT_LEVEL = "info"

_level_name = _DEFAULT_LEVEL
_threshold = LEVELS[_DEFAULT_LEVEL]


def set_level(name: str) -> None:
    """Set the minimum level that reaches stderr."""
    global _level_name, _threshold
    key = name.strip().lower()
    if key not in LEVELS:
        choices = ", ".join(sorted(LEVELS))
        raise ValueError(f"unknown log level {name!r} (choices: {choices})")
    _level_name = key
    _threshold = LEVELS[key]


def level() -> str:
    """The current minimum level name."""
    return _level_name


def log(level_name: str, event: str, message: str | None = None, **fields: Any) -> None:
    """Emit one structured record at the given level."""
    severity = LEVELS[level_name]
    if TELEMETRY.enabled and TELEMETRY.trace_path is not None:
        record: dict[str, Any] = {"ev": "log", "level": level_name, "event": event}
        if message is not None:
            record["msg"] = message
        if fields:
            record["fields"] = {k: v for k, v in fields.items()}
        record["pid"] = os.getpid()
        TELEMETRY.write_event(record)
    if severity < _threshold:
        return
    text = message if message is not None else event
    if fields:
        rendered = " ".join(f"{key}={value}" for key, value in fields.items())
        text = f"{text} {rendered}" if text else rendered
    print(text, file=sys.stderr)


def debug(event: str, message: str | None = None, **fields: Any) -> None:
    log("debug", event, message, **fields)


def info(event: str, message: str | None = None, **fields: Any) -> None:
    log("info", event, message, **fields)


def warning(event: str, message: str | None = None, **fields: Any) -> None:
    log("warning", event, message, **fields)


def error(event: str, message: str | None = None, **fields: Any) -> None:
    log("error", event, message, **fields)


def _configure_from_env() -> None:
    value = os.environ.get("REPRO_LOG_LEVEL", "").strip().lower()
    if value in LEVELS:
        set_level(value)


_configure_from_env()

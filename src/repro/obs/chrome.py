"""Span-log → Chrome trace-event converter (``trace export --chrome``).

The ``--trace FILE`` span log is JSON lines; chrome://tracing (and
Perfetto's legacy loader) want a single JSON object with a
``traceEvents`` array of complete events (``"ph": "X"``, microsecond
timestamps).  ``time.monotonic`` is CLOCK_MONOTONIC system-wide on
Linux, so spans from the campaign parent and its pool workers already
share one time axis; each worker pid becomes its own process track.

``log`` records become instant events (``"ph": "i"``) on their pid's
track and the final ``counters`` snapshot becomes per-counter counter
events (``"ph": "C"``), so the flamegraph carries the run's narrative
and totals, not just its timings.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import Any


def _iter_span_log(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield parsed events from a JSON-lines span log, skipping torn lines."""
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a killed writer; spans are append-only
            if isinstance(event, dict):
                yield event


def chrome_trace(events: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Convert parsed span-log events to a Chrome trace-event document."""
    trace_events: list[dict[str, Any]] = []
    for event in events:
        kind = event.get("ev")
        pid = int(event.get("pid", 0))
        if kind == "span":
            entry: dict[str, Any] = {
                "name": str(event.get("name", "span")),
                "ph": "X",
                "ts": round(float(event.get("ts", 0.0)) * 1e6, 3),
                "dur": round(float(event.get("dur", 0.0)) * 1e6, 3),
                "pid": pid,
                "tid": pid,
            }
            fields = event.get("fields")
            if fields:
                entry["args"] = fields
            trace_events.append(entry)
        elif kind == "log":
            entry = {
                "name": str(event.get("event", "log")),
                "ph": "i",
                "s": "p",
                "ts": 0.0,
                "pid": pid,
                "tid": pid,
                "args": {
                    "level": event.get("level"),
                    "message": event.get("msg"),
                    **(event.get("fields") or {}),
                },
            }
            trace_events.append(entry)
        elif kind == "counters":
            for label, value in sorted((event.get("counters") or {}).items()):
                trace_events.append(
                    {
                        "name": label,
                        "ph": "C",
                        "ts": 0.0,
                        "pid": pid,
                        "args": {"value": value},
                    }
                )
    # Instant/counter events carry no timestamp of their own; pin them to
    # the start of their pid's earliest span so tracks render sensibly.
    starts: dict[int, float] = {}
    for entry in trace_events:
        if entry["ph"] == "X":
            pid = entry["pid"]
            starts[pid] = min(starts.get(pid, float("inf")), entry["ts"])
    for entry in trace_events:
        if entry["ph"] != "X":
            entry["ts"] = starts.get(entry["pid"], 0.0)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def export_chrome(
    span_log: str | Path, output: str | Path | None = None
) -> tuple[int, Path]:
    """Write the Chrome trace for a span log; returns (event count, path)."""
    span_log = Path(span_log)
    if output is None:
        output = span_log.with_suffix(".chrome.json")
    output = Path(output)
    document = chrome_trace(_iter_span_log(span_log))
    output.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    return len(document["traceEvents"]), output

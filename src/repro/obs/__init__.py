"""Runtime observability: telemetry spans/counters, structured logging.

This package is a deliberate leaf — it imports nothing from the rest of
``repro`` so every layer (core, emulation, experiments, cli) can
instrument itself without creating cycles.  The pieces:

``telemetry``
    Process-local :class:`~repro.obs.telemetry.Telemetry` registry of
    counters, gauges, and timed spans.  Disabled by default: hot paths
    pay one attribute lookup (``TELEMETRY.enabled``) and nothing else.
    Enabled via ``REPRO_TELEMETRY`` (value ``1`` for in-memory counters,
    a path for a JSON-lines span log) or programmatically via
    ``TELEMETRY.tracing(path)`` — the seam ``campaign --trace FILE``
    uses, which also exports the env var so pool workers self-enable.

``log``
    Structured stderr logger with level gating (``REPRO_LOG_LEVEL``,
    ``--quiet``/``-v``).  Executor heartbeats and campaign failure
    tables route through it so sweep and campaign agree on stream and
    verbosity.

``runtime``
    :class:`~repro.obs.runtime.RuntimeCapture` — the wall-s/CPU-s/peak-RSS
    block persisted into every store row as non-keyed execution metadata.

``chrome``
    Converter from the JSON-lines span log to Chrome trace-event JSON
    (``repro-bbr trace export --chrome`` → chrome://tracing).

Determinism contract: only ``time.monotonic``/``time.process_time`` are
ever read (allowlisted in ``devtools/allowlist.txt``), and nothing in
this package feeds simulation state, metrics, or store keys.
"""

from __future__ import annotations

from . import log
from .chrome import chrome_trace, export_chrome
from .runtime import RuntimeCapture
from .telemetry import ENV_VAR, TELEMETRY, Telemetry

__all__ = [
    "ENV_VAR",
    "TELEMETRY",
    "RuntimeCapture",
    "Telemetry",
    "chrome_trace",
    "export_chrome",
    "log",
]

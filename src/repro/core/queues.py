"""Queue and loss models of the fluid network (Section 2).

Two queueing disciplines are modelled, exactly as in the paper:

* **drop-tail** (Eq. 4): loss only occurs when the buffer is (nearly) full,
  in which case the loss probability equals the relative excess arrival
  rate.  The hard "queue full" condition is smoothed with a sharp sigmoid
  and a high power of the relative queue occupancy so that the model stays
  differentiable.
* **RED** (Eq. 6): the loss probability tracks the instantaneous relative
  queue occupancy ``q / B``.  (The paper notes — and we confirm in the
  emulator comparison — that real RED averages the queue, which the fluid
  model idealises away.)

The queue itself integrates the difference between the accepted arrival
rate and the transmission capacity (Eq. 2), clamped to ``[0, B]``.
"""

from __future__ import annotations

import math

import numpy as np

from . import smooth


def droptail_loss(
    arrival_rate: float,
    capacity: float,
    queue: float,
    buffer_size: float,
    sharpness: float = smooth.DEFAULT_SHARPNESS,
    exponent: float = 20.0,
) -> float:
    """Smooth drop-tail loss probability (Eq. 4).

    ``p = sigma(y - C) * (1 - C / y) * (q / B)^L`` — loss only when the
    arrival rate exceeds capacity *and* the queue is close to the buffer
    limit, in which case the loss equals the relative excess rate.

    The sigmoid argument is normalised by the capacity so that the sharpness
    constant is dimensionless (a 0.5 % rate excess already saturates it).
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    if arrival_rate < 0:
        raise ValueError("arrival rate must be non-negative")
    if queue < 0:
        raise ValueError("queue must be non-negative")
    if buffer_size <= 0:
        raise ValueError("buffer size must be positive")
    if arrival_rate == 0:
        return 0.0
    if math.isinf(buffer_size):
        return 0.0
    gate = smooth.sigmoid((arrival_rate - capacity) / capacity, sharpness)
    excess = max(0.0, 1.0 - capacity / arrival_rate)
    occupancy = min(1.0, queue / buffer_size) ** exponent
    return float(min(1.0, gate * excess * occupancy))


def red_loss(queue: float, buffer_size: float) -> float:
    """Idealised RED loss probability ``p = q / B`` (Eq. 6)."""
    if queue < 0:
        raise ValueError("queue must be non-negative")
    if buffer_size <= 0:
        raise ValueError("buffer size must be positive")
    if math.isinf(buffer_size):
        return 0.0
    return float(min(1.0, queue / buffer_size))


def loss_probability(
    discipline: str,
    arrival_rate: float,
    capacity: float,
    queue: float,
    buffer_size: float,
    sharpness: float = smooth.DEFAULT_SHARPNESS,
    exponent: float = 20.0,
) -> float:
    """Dispatch to the loss model of the given queue discipline."""
    if discipline == "droptail":
        return droptail_loss(arrival_rate, capacity, queue, buffer_size, sharpness, exponent)
    if discipline == "red":
        return red_loss(queue, buffer_size)
    raise ValueError(f"unknown queue discipline {discipline!r}")


def queue_derivative(
    arrival_rate: float,
    capacity: float,
    loss: float,
    queue: float,
    buffer_size: float,
) -> float:
    """Queue-length derivative (Eq. 2) with reflecting boundaries at 0 and B.

    The queue grows with the *accepted* arrival rate ``(1 - p) * y`` and
    drains at the link capacity, but can neither become negative nor exceed
    the buffer size.
    """
    if not 0 <= loss <= 1:
        raise ValueError("loss probability must be in [0, 1]")
    rate = (1.0 - loss) * arrival_rate - capacity
    if queue <= 0 and rate < 0:
        return 0.0
    if queue >= buffer_size and rate > 0:
        return 0.0
    return rate


def step_queue(
    queue: float,
    arrival_rate: float,
    capacity: float,
    loss: float,
    buffer_size: float,
    dt: float,
) -> float:
    """Advance the queue length by one Euler step, clamped to ``[0, B]``."""
    if dt <= 0:
        raise ValueError("dt must be positive")
    derivative = queue_derivative(arrival_rate, capacity, loss, queue, buffer_size)
    new_queue = queue + dt * derivative
    if math.isinf(buffer_size):
        return max(0.0, new_queue)
    return float(min(buffer_size, max(0.0, new_queue)))


# ---------------------------------------------------------------------- #
# Vectorized variants (one entry per queued link) used by the batched
# simulator hot loop.  They mirror the scalar functions operation for
# operation so that both integration paths produce identical traces.
# ---------------------------------------------------------------------- #


def droptail_loss_vec(
    arrival_rate: np.ndarray,
    capacity: np.ndarray,
    queue: np.ndarray,
    buffer_size: np.ndarray,
    sharpness: float = smooth.DEFAULT_SHARPNESS,
    exponent: float = 20.0,
) -> np.ndarray:
    """Element-wise :func:`droptail_loss` over all queued links at once."""
    positive = arrival_rate > 0.0
    arrival_safe = np.where(positive, arrival_rate, 1.0)
    gate = smooth.scaled_sigmoid((arrival_rate - capacity) / capacity * sharpness)
    excess = np.maximum(0.0, 1.0 - capacity / arrival_safe)
    occupancy = np.minimum(1.0, queue / buffer_size) ** exponent
    loss = np.minimum(1.0, gate * excess * occupancy)
    return np.where(positive & np.isfinite(buffer_size), loss, 0.0)


def red_loss_vec(queue: np.ndarray, buffer_size: np.ndarray) -> np.ndarray:
    """Element-wise :func:`red_loss`; infinite buffers yield zero loss."""
    return np.where(
        np.isfinite(buffer_size), np.minimum(1.0, queue / buffer_size), 0.0
    )


def step_queue_vec(
    queue: np.ndarray,
    arrival_rate: np.ndarray,
    capacity: np.ndarray,
    loss: np.ndarray,
    buffer_size: np.ndarray,
    dt: float,
) -> np.ndarray:
    """Element-wise :func:`step_queue` (Eq. 2 with reflecting boundaries)."""
    rate = (1.0 - loss) * arrival_rate - capacity
    rate = np.where((queue <= 0.0) & (rate < 0.0), 0.0, rate)
    rate = np.where((queue >= buffer_size) & (rate > 0.0), 0.0, rate)
    new_queue = queue + dt * rate
    return np.minimum(buffer_size, np.maximum(0.0, new_queue))

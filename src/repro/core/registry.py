"""Factory mapping CCA names to fluid-model instances."""

from __future__ import annotations

from ..config import FluidParams
from .bbr1 import Bbr1Fluid, Bbr1Params
from .bbr2 import Bbr2Fluid, Bbr2Params
from .cubic import CubicFluid
from .flow import FluidCCA
from .reno import RenoFluid


def create_model(name: str, fluid_params: FluidParams | None = None) -> FluidCCA:
    """Instantiate the fluid model for a CCA name.

    ``fluid_params`` carries the scenario-level numerical knobs (sigmoid
    sharpness, BBRv2 ``w_hi`` initial condition) into the model constructors.
    """
    params = fluid_params or FluidParams()
    name = name.lower()
    if name == "reno":
        return RenoFluid(initial_window_pkts=params.loss_based_init_window_pkts)
    if name == "cubic":
        return CubicFluid(initial_window_pkts=params.loss_based_init_window_pkts)
    if name == "bbr1":
        return Bbr1Fluid(Bbr1Params(sigmoid_sharpness=params.sigmoid_sharpness))
    if name == "bbr2":
        return Bbr2Fluid(
            Bbr2Params(
                whi_init_bdp=params.whi_init_bdp,
                loss_epsilon=params.loss_epsilon,
                sigmoid_sharpness=params.sigmoid_sharpness,
                loss_sharpness=params.loss_sharpness,
            )
        )
    raise ValueError(f"unknown CCA {name!r}")


def available_ccas() -> tuple[str, ...]:
    """Names of the CCAs with a fluid model."""
    return ("reno", "cubic", "bbr1", "bbr2")

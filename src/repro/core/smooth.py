"""Smooth primitives used by the fluid models.

The paper builds its BBR fluid model from a small set of smooth building
blocks (Section 2 and 3.2):

* a sharp sigmoid ``sigma`` (Eq. 5) used to approximate step functions,
* a smooth ReLU ``Gamma(v) = v * sigma(v)`` (Eq. 10),
* a rectangular *pulse* ``Phi`` built from two sigmoids (Eq. 21), used to
  confine BBRv1's probing/draining pacing gains to one phase of the
  eight-phase gain cycle.

All functions are vectorised over numpy arrays and guard against overflow
in ``exp`` for large negative arguments.
"""

from __future__ import annotations

import numpy as np

#: Default sharpness of the sigmoid approximation (the ``K >> 1`` of Eq. 5).
DEFAULT_SHARPNESS: float = 200.0

# Clip the exponent to avoid overflow warnings; exp(+-60) is far beyond the
# resolution of a float64 sigmoid anyway (sigma saturates at ~1e-26).
_EXP_CLIP: float = 60.0


def sigmoid(v: np.ndarray | float, sharpness: float = DEFAULT_SHARPNESS) -> np.ndarray | float:
    """Sharp sigmoid ``1 / (1 + exp(-K v))`` (Eq. 5).

    For ``sharpness -> inf`` this converges to the unit step function; the
    fluid model uses it to express "if"-like conditions (queue full, timer
    expired, loss above threshold) in a differentiable way.
    """
    if sharpness <= 0:
        raise ValueError("sharpness must be positive")
    z = np.clip(np.asarray(v, dtype=float) * sharpness, -_EXP_CLIP, _EXP_CLIP)
    out = 1.0 / (1.0 + np.exp(-z))
    if np.isscalar(v):
        return float(out)
    return out


def scaled_sigmoid(z: np.ndarray) -> np.ndarray:
    """Sigmoid of an already-scaled argument: ``1 / (1 + exp(-clip(z)))``.

    Hot-path variant of :func:`sigmoid` for the batched fluid models, where
    the sharpness varies per flow and is multiplied in by the caller.  The
    clip is spelled as ``minimum(maximum(...))`` (equal results, much lower
    call overhead than ``np.clip``), so results are bit-identical to
    ``sigmoid(v, k)`` with ``z = v * k``.
    """
    z = np.minimum(_EXP_CLIP, np.maximum(-_EXP_CLIP, z))
    return 1.0 / (1.0 + np.exp(-z))


def smooth_relu(v: np.ndarray | float, sharpness: float = DEFAULT_SHARPNESS) -> np.ndarray | float:
    """Differentiable approximation of ``max(0, v)``: ``Gamma(v) = v * sigma(v)`` (Eq. 10)."""
    out = np.asarray(v, dtype=float) * sigmoid(v, sharpness)
    if np.isscalar(v):
        return float(out)
    return out


def pulse(
    t: np.ndarray | float,
    start: float,
    end: float,
    sharpness: float = DEFAULT_SHARPNESS,
) -> np.ndarray | float:
    """Smooth rectangular pulse that is ~1 for ``start < t < end`` and ~0 outside.

    This is the paper's phase indicator ``Phi_i(t, phi)`` (Eq. 21) with
    ``start = phi * tau_min`` and ``end = (phi + 1) * tau_min``.
    """
    if end < start:
        raise ValueError("pulse end must not precede its start")
    out = sigmoid(np.asarray(t, dtype=float) - start, sharpness) * sigmoid(
        end - np.asarray(t, dtype=float), sharpness
    )
    if np.isscalar(t):
        return float(out)
    return out


def phase_pulse(
    t_pbw: np.ndarray | float,
    phase: int,
    tau_min: float,
    sharpness: float = DEFAULT_SHARPNESS,
) -> np.ndarray | float:
    """BBRv1 phase indicator ``Phi_i(t, phi)`` (Eq. 21).

    Returns ~1 while the ProbeBW period clock ``t_pbw`` lies inside phase
    ``phase`` of the eight-phase gain cycle (each phase lasts ``tau_min``).
    """
    if phase < 0:
        raise ValueError("phase must be non-negative")
    if tau_min <= 0:
        raise ValueError("tau_min must be positive")
    return pulse(t_pbw, phase * tau_min, (phase + 1) * tau_min, sharpness)


def indicator(condition: np.ndarray | float, sharpness: float = DEFAULT_SHARPNESS) -> np.ndarray | float:
    """Alias of :func:`sigmoid` that reads as a smooth indicator of ``condition > 0``."""
    return sigmoid(condition, sharpness)

"""Fluid models of the network and of the BBRv1/BBRv2/Reno/CUBIC CCAs."""

from .bbr1 import Bbr1Fluid, Bbr1Params
from .bbr2 import Bbr2Fluid, Bbr2Params
from .cubic import CubicFluid
from .flow import FlowInputs, FlowState, FluidCCA
from .network import Link, Network, Path
from .registry import available_ccas, create_model
from .reno import RenoFluid
from .simulator import FluidSimulator, simulate, simulate_many

__all__ = [
    "Bbr1Fluid",
    "Bbr1Params",
    "Bbr2Fluid",
    "Bbr2Params",
    "CubicFluid",
    "FlowInputs",
    "FlowState",
    "FluidCCA",
    "Link",
    "Network",
    "Path",
    "RenoFluid",
    "FluidSimulator",
    "simulate",
    "simulate_many",
    "available_ccas",
    "create_model",
]

"""BBRv1 fluid model (Sections 3.2 and 3.3 of the paper).

BBRv1 continuously estimates two path properties — the bottleneck bandwidth
``BtlBw`` (state ``x_btl``) and the minimum round-trip time ``RTprop``
(state ``tau_min``) — and alternates between two operating states:

* **ProbeBW** (almost all of the time): an eight-phase gain cycle of
  duration ``tau_min`` per phase.  One phase paces at ``5/4 * BtlBw`` to
  probe for more bandwidth, the next at ``3/4 * BtlBw`` to drain the queue
  built up by the probe, the remaining six at ``BtlBw``.  At the end of the
  cycle the maximum measured delivery rate becomes the new ``BtlBw``.
* **ProbeRTT** (200 ms every 10 s, unless a new minimum RTT keeps being
  observed): the inflight is cut to four segments so the queue drains and
  the propagation delay becomes measurable.

In addition, BBRv1 maintains a congestion window of twice the estimated
BDP, which — contrary to the design intention — becomes the binding
constraint when competing against loss-based CCAs in deep buffers.

Modelling notes (cf. DESIGN.md): the paper expresses the inherently discrete
parts (ProbeRTT toggling, period rollover, the adoption of the period's
maximum delivery rate) as sharp sigmoids so that the whole system reads as
one ODE.  We implement those transitions as crisp guarded updates evaluated
every integration step — which is what the sharp sigmoids approximate and
what the real protocol does — and keep the genuinely continuous parts
(probing pulse shape, inflight integration) smooth.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable
from typing import Any

import numpy as np

from . import smooth
from .flow import FlowInputs, FlowInputsBatch, FlowState, FlowStateBatch, FluidCCA
from .network import Network

#: Duration of the ProbeRTT state (seconds).
PROBE_RTT_DURATION_S: float = 0.2
#: Interval without a new minimum-RTT sample after which ProbeRTT is entered.
PROBE_RTT_INTERVAL_S: float = 10.0
#: ProbeRTT inflight limit of BBRv1, in segments (packets).
PROBE_RTT_CWND_PKTS: float = 4.0
#: Number of phases in the ProbeBW gain cycle.
GAIN_CYCLE_PHASES: int = 8
#: Pacing-gain of the probing phase.
PROBE_GAIN: float = 1.25
#: Pacing-gain of the draining phase.
DRAIN_GAIN: float = 0.75
#: Congestion window in ProbeBW state, in estimated BDPs.
CWND_GAIN: float = 2.0
#: Tolerance when deciding whether a latency sample establishes a new minimum.
RTT_SAMPLE_EPS_S: float = 1e-6


@dataclass
class Bbr1Params:
    """Tunable parameters of the BBRv1 fluid model.

    Attributes:
        initial_btl_share: initial ``BtlBw`` estimate as a share of the
            bottleneck capacity.  ``None`` (default) means ``1.0``: every
            flow starts believing it can obtain the full capacity, which is
            the state the (unmodelled) start-up phase leaves behind and which
            the paper's experiments include in their 5-second aggregates.
            ``1/N`` starts the flows at their fair share instead.
        sigmoid_sharpness: sharpness of the probing-pulse sigmoids (Eq. 21).
    """

    initial_btl_share: float | None = None
    sigmoid_sharpness: float = smooth.DEFAULT_SHARPNESS


class Bbr1Fluid(FluidCCA):
    """Fluid model of BBRv1."""

    name = "bbr1"

    def __init__(self, params: Bbr1Params | None = None) -> None:
        self.params = params or Bbr1Params()

    # ------------------------------------------------------------------ #
    # Initialisation
    # ------------------------------------------------------------------ #

    def initial_state(
        self, flow_index: int, num_flows: int, network: Network, params: Any
    ) -> FlowState:
        bottleneck = network.links[network.bottleneck_of(flow_index)]
        share = self.params.initial_btl_share
        if share is None:
            share = 1.0
        if not 0 < share <= 2.0:
            raise ValueError("initial_btl_share must be in (0, 2]")
        state = FlowState()
        extra = state.extra
        extra["x_btl"] = share * bottleneck.capacity_pps
        extra["x_max"] = 0.0
        extra["tau_min"] = network.propagation_rtt(flow_index)
        extra["t_pbw"] = 0.0
        extra["t_prt"] = 0.0
        extra["m_prt"] = 0.0
        # Desynchronise the gain cycles of same-RTT flows deterministically,
        # exactly as the paper does (phase = agent id modulo 6, Sec. 3.3).
        extra["phase"] = float(flow_index % 6)
        extra["cwnd"] = CWND_GAIN * extra["x_btl"] * extra["tau_min"]
        state.rate = 0.0
        return state

    # ------------------------------------------------------------------ #
    # Per-step dynamics
    # ------------------------------------------------------------------ #

    def step(self, state: FlowState, inputs: FlowInputs) -> None:
        if not inputs.active:
            state.rate = 0.0
            return
        extra = state.extra
        dt = inputs.dt

        # --- RTprop estimation (Eq. 9) -------------------------------- #
        new_min_sample = inputs.tau_delayed < extra["tau_min"] - RTT_SAMPLE_EPS_S
        if inputs.tau_delayed < extra["tau_min"]:
            extra["tau_min"] = inputs.tau_delayed
        tau_min = extra["tau_min"]

        # --- ProbeRTT state machine (Eq. 11-13) ------------------------ #
        in_probe_rtt = extra["m_prt"] >= 0.5
        extra["t_prt"] += dt
        if new_min_sample and not in_probe_rtt:
            # A fresh minimum-RTT sample re-arms the 10 s ProbeRTT timer.
            extra["t_prt"] = 0.0
        threshold = PROBE_RTT_DURATION_S if in_probe_rtt else PROBE_RTT_INTERVAL_S
        if extra["t_prt"] >= threshold:
            extra["m_prt"] = 0.0 if in_probe_rtt else 1.0
            extra["t_prt"] = 0.0
            in_probe_rtt = extra["m_prt"] >= 0.5

        # --- ProbeBW period clock and BtlBw adoption (Eq. 16, 18, 20) -- #
        extra["t_pbw"] += dt
        period = GAIN_CYCLE_PHASES * tau_min
        if extra["t_pbw"] >= period:
            if extra["x_max"] > 0.0:
                extra["x_btl"] = extra["x_max"]
            extra["x_max"] = 0.0
            extra["t_pbw"] = 0.0
        measurement = state.rate if _literal_xmax(inputs) else inputs.delivery_rate
        if measurement > extra["x_max"]:
            extra["x_max"] = measurement

        # --- Pacing rate with probing/draining pulses (Eq. 21-22) ------ #
        x_btl = extra["x_btl"]
        phase = int(extra["phase"])
        sharpness = self.params.sigmoid_sharpness / max(tau_min, 1e-6)
        probe = smooth.phase_pulse(extra["t_pbw"], phase, tau_min, sharpness)
        drain = smooth.phase_pulse(extra["t_pbw"], phase + 1, tau_min, sharpness)
        pacing = x_btl * (1.0 + (PROBE_GAIN - 1.0) * probe - (1.0 - DRAIN_GAIN) * drain)

        # --- Inflight limits and sending rate (Eq. 14-15, 23) ----------- #
        bdp = x_btl * tau_min
        cwnd_pbw = CWND_GAIN * bdp
        extra["cwnd"] = PROBE_RTT_CWND_PKTS if in_probe_rtt else cwnd_pbw
        tau = max(inputs.tau, 1e-9)
        if in_probe_rtt:
            state.rate = PROBE_RTT_CWND_PKTS / tau
        else:
            state.rate = min(cwnd_pbw / tau, pacing)
        self.update_inflight(state, inputs)

    # ------------------------------------------------------------------ #
    # Batched path
    # ------------------------------------------------------------------ #

    def batch_key(self) -> Hashable:
        # ``initial_btl_share`` only affects ``initial_state``; the per-step
        # dynamics depend solely on the pulse sharpness.
        return ("bbr1", self.params.sigmoid_sharpness)

    def step_all(self, batch: FlowStateBatch, inputs: FlowInputsBatch) -> None:
        extras = batch.extras
        dt = inputs.dt
        rate_old = batch.rate

        # The rare branches (ProbeRTT toggles, gain-cycle rollover, new
        # minimum-RTT samples) are guarded by ``any()`` checks: skipping an
        # all-False ``np.where`` leaves every value bit-identical and saves
        # most of the per-step cost on the hot path.

        # --- RTprop estimation (Eq. 9) -------------------------------- #
        tau_min_old = extras["tau_min"]
        new_min_sample = inputs.tau_delayed < tau_min_old - RTT_SAMPLE_EPS_S
        tau_min = np.minimum(tau_min_old, inputs.tau_delayed)

        # --- ProbeRTT state machine (Eq. 11-13) ------------------------ #
        m_prt_old = extras["m_prt"]
        in_probe_rtt = m_prt_old >= 0.5
        any_probe_rtt = in_probe_rtt.any()
        t_prt = extras["t_prt"] + dt
        if new_min_sample.any():
            t_prt = np.where(new_min_sample & ~in_probe_rtt, 0.0, t_prt)
        if any_probe_rtt:
            threshold = np.where(
                in_probe_rtt, PROBE_RTT_DURATION_S, PROBE_RTT_INTERVAL_S
            )
            expired = t_prt >= threshold
        else:
            expired = t_prt >= PROBE_RTT_INTERVAL_S
        if expired.any():
            # ``m_prt`` is exactly 0.0 or 1.0, so the toggle is ``1 - m_prt``.
            m_prt = np.where(expired, 1.0 - m_prt_old, m_prt_old)
            t_prt = np.where(expired, 0.0, t_prt)
            in_probe_rtt = m_prt >= 0.5
            any_probe_rtt = in_probe_rtt.any()
        else:
            m_prt = m_prt_old

        # --- ProbeBW period clock and BtlBw adoption (Eq. 16, 18, 20) -- #
        t_pbw = extras["t_pbw"] + dt
        period = GAIN_CYCLE_PHASES * tau_min
        rollover = t_pbw >= period
        x_max = extras["x_max"]
        if rollover.any():
            x_btl = np.where(rollover & (x_max > 0.0), x_max, extras["x_btl"])
            x_max = np.where(rollover, 0.0, x_max)
            t_pbw = np.where(rollover, 0.0, t_pbw)
        else:
            x_btl = extras["x_btl"]
        measurement = rate_old if inputs.literal_xmax else inputs.delivery_rate
        x_max = np.maximum(x_max, measurement)

        # --- Pacing rate with probing/draining pulses (Eq. 21-22) ------ #
        phase = extras["phase"]
        sharpness = self.params.sigmoid_sharpness / np.maximum(tau_min, 1e-6)
        probe_start = phase * tau_min
        drain_start = (phase + 1.0) * tau_min
        drain_end = (phase + 2.0) * tau_min
        # All four pulse sigmoids evaluated as one stacked call.
        gates = smooth.scaled_sigmoid(
            np.concatenate(
                [
                    t_pbw - probe_start,
                    drain_start - t_pbw,
                    t_pbw - drain_start,
                    drain_end - t_pbw,
                ]
            )
            * np.tile(sharpness, 4)
        )
        n = t_pbw.shape[0]
        probe = gates[:n] * gates[n : 2 * n]
        drain = gates[2 * n : 3 * n] * gates[3 * n :]
        pacing = x_btl * (1.0 + (PROBE_GAIN - 1.0) * probe - (1.0 - DRAIN_GAIN) * drain)

        # --- Inflight limits and sending rate (Eq. 14-15, 23) ----------- #
        cwnd_pbw = CWND_GAIN * (x_btl * tau_min)
        tau = np.maximum(inputs.tau, 1e-9)
        if any_probe_rtt:
            cwnd = np.where(in_probe_rtt, PROBE_RTT_CWND_PKTS, cwnd_pbw)
            rate = np.where(
                in_probe_rtt,
                PROBE_RTT_CWND_PKTS / tau,
                np.minimum(cwnd_pbw / tau, pacing),
            )
        else:
            cwnd = cwnd_pbw
            rate = np.minimum(cwnd_pbw / tau, pacing)
        inflight = self.update_inflight_all(batch, inputs, rate)

        active = inputs.active
        if active is None:
            extras["tau_min"] = tau_min
            extras["m_prt"] = m_prt
            extras["t_prt"] = t_prt
            extras["t_pbw"] = t_pbw
            extras["x_btl"] = x_btl
            extras["x_max"] = x_max
            extras["cwnd"] = cwnd
            batch.rate = rate
            batch.inflight = inflight
        else:
            extras["tau_min"] = np.where(active, tau_min, tau_min_old)
            extras["m_prt"] = np.where(active, m_prt, m_prt_old)
            extras["t_prt"] = np.where(active, t_prt, extras["t_prt"])
            extras["t_pbw"] = np.where(active, t_pbw, extras["t_pbw"])
            extras["x_btl"] = np.where(active, x_btl, extras["x_btl"])
            extras["x_max"] = np.where(active, x_max, extras["x_max"])
            extras["cwnd"] = np.where(active, cwnd, extras["cwnd"])
            batch.rate = np.where(active, rate, 0.0)
            batch.inflight = np.where(active, inflight, batch.inflight)

    def congestion_window_all(self, batch: FlowStateBatch) -> np.ndarray:
        return batch.extras["cwnd"]

    def trace_fields_all(self, batch: FlowStateBatch) -> dict[str, np.ndarray]:
        extras = batch.extras
        return {
            "x_btl": extras["x_btl"],
            "x_max": extras["x_max"],
            "tau_min": extras["tau_min"],
            "cwnd": extras["cwnd"],
            "m_prt": extras["m_prt"],
            "t_pbw": extras["t_pbw"],
        }

    def congestion_window(self, state: FlowState) -> float:
        return state.extra["cwnd"]

    def trace_fields(self, state: FlowState) -> dict[str, float]:
        extra = state.extra
        return {
            "x_btl": extra["x_btl"],
            "x_max": extra["x_max"],
            "tau_min": extra["tau_min"],
            "cwnd": extra["cwnd"],
            "m_prt": extra["m_prt"],
            "t_pbw": extra["t_pbw"],
        }


def _literal_xmax(inputs: FlowInputs) -> bool:
    """Whether to track the literal Eq. (18) (max of the sending rate).

    The simulator stores the choice on the inputs object so the model itself
    stays stateless with respect to numerical configuration.
    """
    return getattr(inputs, "literal_xmax", False)

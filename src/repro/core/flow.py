"""Base classes shared by all CCA fluid models.

Every congestion-control algorithm is modelled as a :class:`FluidCCA`
subclass.  A model owns a small mutable per-flow state object and, once per
integration step, receives a :class:`FlowInputs` snapshot computed by the
simulator: the current and delayed path latency, the delayed path loss
probability, and the delivery rate of Eq. (17).  From these it updates its
state (the CCA's differential equations and mode transitions) and reports
its sending rate.

The common bookkeeping shared by BBRv1 and BBRv2 — the inflight volume of
Eq. (19) — lives here as well.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from collections.abc import Hashable, Sequence
from typing import Any

import numpy as np

from .network import Network


@dataclass
class FlowInputs:
    """Per-step inputs handed by the simulator to each flow's CCA model.

    Attributes:
        t: current simulation time in seconds.
        dt: integration step in seconds.
        tau: current round-trip latency of the flow's path (Eq. 3).
        tau_delayed: path latency one propagation RTT ago (used by the
            RTprop estimator, Eq. 9).
        path_loss: loss probability of the path as observed by the sender
            (Eq. 7, read back one backward delay).
        delivery_rate: delivery rate of the flow (Eq. 17).
        rate_delayed: the flow's own sending rate one propagation RTT ago
            (the ``x_i(t - d^p_i)`` appearing in Eq. 39 and Eq. 40).
        propagation_rtt: the flow's propagation-only RTT ``d_i``.
        active: whether the flow has started sending.
        literal_xmax: see :class:`repro.config.FluidParams.literal_xmax`.
    """

    t: float
    dt: float
    tau: float
    tau_delayed: float
    path_loss: float
    delivery_rate: float
    rate_delayed: float
    propagation_rtt: float
    active: bool = True
    literal_xmax: bool = False


@dataclass
class FlowInputsBatch:
    """Array-valued :class:`FlowInputs` for the batched ``step_all`` path.

    Every array has one entry per flow of the batch, in batch order.
    ``active`` is ``None`` when every flow of the batch has started (the
    common case after the last start time), which lets implementations skip
    the masked writes entirely.
    """

    t: float
    dt: float
    tau: np.ndarray
    tau_delayed: np.ndarray
    path_loss: np.ndarray
    delivery_rate: np.ndarray
    rate_delayed: np.ndarray
    propagation_rtt: np.ndarray
    active: np.ndarray | None = None
    literal_xmax: bool = False


@dataclass
class FlowStateBatch:
    """Structure-of-arrays view of the states of one batch of flows.

    Mirrors :class:`FlowState`: ``rate``/``inflight`` are ``(n,)`` arrays
    and ``extras`` maps each model-specific key to an ``(n,)`` array.
    """

    rate: np.ndarray
    inflight: np.ndarray
    extras: dict[str, np.ndarray]

    @property
    def size(self) -> int:
        return int(self.rate.shape[0])


@dataclass
class FlowState:
    """Base state common to all CCA fluid models.

    Attributes:
        rate: current sending rate ``x_i`` in packets/second.
        inflight: inflight volume ``v_i`` in packets (Eq. 19).
        extra: model-specific scalar state, exposed for tracing.
    """

    rate: float = 0.0
    inflight: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)


class FluidCCA(abc.ABC):
    """Abstract base class of a congestion-control fluid model."""

    #: Canonical lower-case name (``"reno"``, ``"cubic"``, ``"bbr1"``, ``"bbr2"``).
    name: str = "abstract"

    @abc.abstractmethod
    def initial_state(
        self, flow_index: int, num_flows: int, network: Network, params: Any
    ) -> FlowState:
        """Create the initial state of flow ``flow_index``."""

    @abc.abstractmethod
    def step(self, state: FlowState, inputs: FlowInputs) -> None:
        """Advance the flow state by one integration step and update ``state.rate``."""

    def congestion_window(self, state: FlowState) -> float:
        """Current congestion-window size in packets (for traces); 0 if not applicable."""
        return state.extra.get("cwnd", 0.0)

    def trace_fields(self, state: FlowState) -> dict[str, float]:
        """Model-specific fields worth recording in traces."""
        return dict(state.extra)

    @staticmethod
    def update_inflight(state: FlowState, inputs: FlowInputs) -> None:
        """Integrate the inflight volume ``dv/dt = x - x_dlv`` (Eq. 19)."""
        state.inflight = max(
            0.0, state.inflight + inputs.dt * (state.rate - inputs.delivery_rate)
        )

    # ------------------------------------------------------------------ #
    # Optional batched path (structure-of-arrays, one call per step for
    # all same-CCA flows).  Models that do not override ``batch_key`` are
    # stepped one flow at a time through ``step`` — arbitrary heterogeneous
    # mixes and custom models keep working unchanged.
    # ------------------------------------------------------------------ #

    def batch_key(self) -> Hashable | None:
        """Grouping key for the batched path, or ``None`` if unsupported.

        Flows whose models return the same non-``None`` key are stepped
        together through :meth:`step_all`.  The key must therefore capture
        every model parameter that influences :meth:`step`.
        """
        return None

    def make_batch(self, states: Sequence[FlowState]) -> FlowStateBatch:
        """Pack per-flow states into arrays (called once before the run)."""
        keys = list(states[0].extra)
        return FlowStateBatch(
            rate=np.array([s.rate for s in states], dtype=float),
            inflight=np.array([s.inflight for s in states], dtype=float),
            extras={
                key: np.array([s.extra[key] for s in states], dtype=float)
                for key in keys
            },
        )

    def write_back(self, batch: FlowStateBatch, states: Sequence[FlowState]) -> None:
        """Unpack batch arrays into the per-flow state objects."""
        for i, state in enumerate(states):
            state.rate = float(batch.rate[i])
            state.inflight = float(batch.inflight[i])
            for key, values in batch.extras.items():
                state.extra[key] = float(values[i])

    def step_all(self, batch: FlowStateBatch, inputs: FlowInputsBatch) -> None:
        """Advance all flows of the batch by one step (vectorized ``step``)."""
        raise NotImplementedError(f"{type(self).__name__} has no batched step")

    def congestion_window_all(self, batch: FlowStateBatch) -> np.ndarray:
        """Batched :meth:`congestion_window` (for trace recording)."""
        cwnd = batch.extras.get("cwnd")
        if cwnd is None:
            return np.zeros(batch.size)
        return cwnd

    def trace_fields_all(self, batch: FlowStateBatch) -> dict[str, np.ndarray]:
        """Batched :meth:`trace_fields`: model-specific arrays worth recording."""
        return dict(batch.extras)

    @staticmethod
    def update_inflight_all(
        batch: FlowStateBatch, inputs: FlowInputsBatch, rate: np.ndarray
    ) -> np.ndarray:
        """Batched Eq. (19) integration; returns the candidate new inflight."""
        return np.maximum(
            0.0, batch.inflight + inputs.dt * (rate - inputs.delivery_rate)
        )

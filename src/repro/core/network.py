"""Fluid-model network description (Section 2 of the paper).

The network consists of links with capacity ``C_l``, buffer ``B_l`` and
propagation delay ``d_l``; each flow (agent) follows a path, i.e. an ordered
sequence of links.  The evaluation of the paper exclusively uses the
dumbbell topology of Fig. 3 (private access links into a switch, one shared
bottleneck link to the destination), which :func:`Network.dumbbell` builds;
:func:`Network.from_topology` builds the multi-bottleneck topologies
(parking lots, multi-dumbbells — listed as future work in the paper) from
an explicit :class:`~repro.config.TopologyConfig`, and
:func:`Network.from_scenario` dispatches between the two forms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .. import units
from ..config import ScenarioConfig


@dataclass
class Link:
    """A unidirectional link of the fluid model.

    Attributes:
        capacity_pps: transmission capacity in packets/second (``math.inf``
            for links that can never be saturated, e.g. access links).
        delay_s: one-way propagation delay in seconds.
        buffer_pkts: buffer size in packets (ignored for unsaturated links).
        discipline: ``"droptail"`` or ``"red"``.
        name: human-readable identifier.
    """

    capacity_pps: float
    delay_s: float
    buffer_pkts: float = math.inf
    discipline: str = "droptail"
    name: str = ""

    def __post_init__(self) -> None:
        if self.capacity_pps <= 0:
            raise ValueError("capacity must be positive")
        if self.delay_s < 0:
            raise ValueError("delay must be non-negative")
        if self.buffer_pkts <= 0:
            raise ValueError("buffer must be positive")

    @property
    def has_queue(self) -> bool:
        """Whether the link can build a queue (finite capacity)."""
        return math.isfinite(self.capacity_pps)


@dataclass
class Path:
    """The path of one flow: an ordered list of link indices plus delay bookkeeping.

    Attributes:
        link_indices: indices into ``Network.links``, in traversal order.
        return_delay_s: propagation delay of the reverse (ACK) direction.
    """

    link_indices: tuple[int, ...]
    return_delay_s: float = 0.0
    forward_delays_s: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.link_indices:
            raise ValueError("a path needs at least one link")
        self.link_indices = tuple(self.link_indices)


class Network:
    """A set of links plus one path per flow."""

    def __init__(self, links: list[Link], paths: list[Path]) -> None:
        if not links:
            raise ValueError("network needs at least one link")
        if not paths:
            raise ValueError("network needs at least one path")
        for path in paths:
            for idx in path.link_indices:
                if not 0 <= idx < len(links):
                    raise ValueError(f"path references unknown link {idx}")
        self.links = list(links)
        self.paths = list(paths)
        self._compute_delays()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_scenario(cls, config: ScenarioConfig) -> Network:
        """Build the network a scenario describes (dumbbell or explicit topology)."""
        if config.topology is not None:
            return cls.from_topology(config)
        return cls.dumbbell(config)

    @classmethod
    def from_topology(cls, config: ScenarioConfig) -> Network:
        """Build a multi-bottleneck network from an explicit topology.

        Layout mirrors :meth:`dumbbell` (queued links first, then one access
        link per flow), so a one-hop topology produces a structurally — and
        numerically — identical network to the legacy dumbbell.  Link
        buffers are scaled by the reference-bottleneck BDP; the return path
        is a pure propagation delay matching the forward path (symmetric
        routing).
        """
        topo = config.topology
        if topo is None:
            raise ValueError("scenario has no explicit topology")
        links: list[Link] = []
        index: dict[str, int] = {}
        for link_cfg in topo.links:
            links.append(
                Link(
                    capacity_pps=link_cfg.capacity_pps,
                    delay_s=link_cfg.delay_s,
                    buffer_pkts=config.link_buffer_packets(link_cfg),
                    discipline=link_cfg.discipline,
                    name=link_cfg.name,
                )
            )
            index[link_cfg.name] = len(links) - 1
        paths: list[Path] = []
        for i, flow in enumerate(config.flows):
            access = Link(
                capacity_pps=math.inf,
                delay_s=flow.access_delay_s,
                name=f"access-{i}",
            )
            links.append(access)
            access_idx = len(links) - 1
            forward = (access_idx,) + tuple(index[name] for name in topo.paths[i])
            return_delay = flow.access_delay_s + sum(
                topo.link(name).delay_s for name in topo.paths[i]
            )
            paths.append(Path(link_indices=forward, return_delay_s=return_delay))
        return cls(links, paths)

    @classmethod
    def dumbbell(cls, config: ScenarioConfig) -> Network:
        """Build the dumbbell topology of Fig. 3 from a scenario configuration.

        Each sender gets its own unsaturated access link (pure delay); all
        senders share the bottleneck link between switch and destination.
        """
        bottleneck = Link(
            capacity_pps=config.bottleneck.capacity_pps,
            delay_s=config.bottleneck.delay_s,
            buffer_pkts=config.buffer_packets(),
            discipline=config.bottleneck.discipline,
            name="bottleneck",
        )
        links: list[Link] = [bottleneck]
        paths: list[Path] = []
        for i, flow in enumerate(config.flows):
            access = Link(
                capacity_pps=math.inf,
                delay_s=flow.access_delay_s,
                name=f"access-{i}",
            )
            links.append(access)
            access_idx = len(links) - 1
            # Forward: access link then bottleneck; ACKs return over a path
            # with the same propagation delay (symmetric dumbbell).
            paths.append(
                Path(
                    link_indices=(access_idx, 0),
                    return_delay_s=flow.access_delay_s + config.bottleneck.delay_s,
                )
            )
        return cls(links, paths)

    # ------------------------------------------------------------------ #
    # Delay bookkeeping
    # ------------------------------------------------------------------ #

    def _compute_delays(self) -> None:
        for path in self.paths:
            cumulative = 0.0
            path.forward_delays_s = {}
            for idx in path.link_indices:
                # Forward delay d^f_{i,l}: propagation from the sender to the
                # *entrance* of link l, i.e. the sum of delays of earlier links.
                path.forward_delays_s[idx] = cumulative
                cumulative += self.links[idx].delay_s

    @property
    def num_flows(self) -> int:
        return len(self.paths)

    @property
    def num_links(self) -> int:
        return len(self.links)

    def queued_link_indices(self) -> list[int]:
        """Indices of links whose queue dynamics must be integrated."""
        return [i for i, link in enumerate(self.links) if link.has_queue]

    def users(self, link_index: int) -> list[int]:
        """Flow indices whose path traverses ``link_index`` (the ``U_l`` of Eq. 1)."""
        return [
            i for i, path in enumerate(self.paths) if link_index in path.link_indices
        ]

    def propagation_delay(self, flow_index: int) -> float:
        """One-way forward propagation delay of a flow's path."""
        path = self.paths[flow_index]
        return sum(self.links[idx].delay_s for idx in path.link_indices)

    def propagation_rtt(self, flow_index: int) -> float:
        """Round-trip propagation delay ``d_i`` of a flow (no queueing)."""
        path = self.paths[flow_index]
        return self.propagation_delay(flow_index) + path.return_delay_s

    def forward_delay(self, flow_index: int, link_index: int) -> float:
        """Propagation delay from sender ``i`` to link ``l`` (the ``d^f_{i,l}`` of Eq. 1)."""
        path = self.paths[flow_index]
        if link_index not in path.forward_delays_s:
            raise KeyError(f"flow {flow_index} does not use link {link_index}")
        return path.forward_delays_s[link_index]

    def backward_delay(self, flow_index: int, link_index: int) -> float:
        """Propagation delay from link ``l`` back to sender ``i`` (the ``d^b_{i,l}`` of Eq. 17).

        Information about the link state reaches the sender via packets that
        still have to traverse the rest of the path and the returning ACK, so
        the backward delay is the full propagation RTT minus the forward delay.
        """
        return self.propagation_rtt(flow_index) - self.forward_delay(
            flow_index, link_index
        )

    def upstream_queued_links(self, flow_index: int, link_index: int) -> list[int]:
        """Queued links of a flow's path strictly before ``link_index``, in order."""
        out: list[int] = []
        for idx in self.paths[flow_index].link_indices:
            if idx == link_index:
                return out
            if self.links[idx].has_queue:
                out.append(idx)
        raise KeyError(f"flow {flow_index} does not use link {link_index}")

    def bottleneck_of(
        self, flow_index: int, survival: dict[int, float] | None = None
    ) -> int:
        """Index of the flow's reference bottleneck link.

        Without ``survival`` this is the smallest-*raw*-capacity queued link
        on the path (first on ties, i.e. the most upstream).  With upstream
        loss attenuation, traffic reaching a downstream link has already
        been thinned, so the link that actually caps the flow is the one
        with the smallest *effective* capacity: ``survival`` maps a queued
        link index to the probability that the flow's traffic survives all
        queued links upstream of it (``prod(1 - p_m)``), and saturating link
        ``l`` then requires a sending rate of ``C_l / survival[l]``.  The
        smallest such effective capacity wins; ties again go to the most
        upstream link, where the constraint binds first.  (The fluid
        simulator applies this rule dynamically each step from the delayed
        per-link loss state.)
        """
        path = self.paths[flow_index]
        queued = [idx for idx in path.link_indices if self.links[idx].has_queue]
        if not queued:
            raise ValueError(f"flow {flow_index} has no queued link on its path")
        if survival is None:
            return min(queued, key=lambda idx: self.links[idx].capacity_pps)
        best = queued[0]
        best_eff = math.inf
        for idx in queued:
            s = survival.get(idx, 1.0)
            if not 0.0 <= s <= 1.0:
                raise ValueError(f"survival of link {idx} must be in [0, 1]")
            # Zero survival = the link is unreachable (everything dropped
            # upstream): infinite effective capacity, never the reference.
            eff = self.links[idx].capacity_pps / s if s > 0.0 else math.inf
            if eff < best_eff:
                best, best_eff = idx, eff
        return best

    def path_latency(self, flow_index: int, queue_lengths: dict[int, float]) -> float:
        """Round-trip latency of a flow's path given current queue lengths (Eq. 3).

        ``queue_lengths`` maps queued-link index to queue length in packets.
        """
        latency = self.paths[flow_index].return_delay_s
        for idx in self.paths[flow_index].link_indices:
            link = self.links[idx]
            latency += link.delay_s
            if link.has_queue:
                latency += queue_lengths.get(idx, 0.0) / link.capacity_pps
        return latency

    def bdp_packets(self, flow_index: int) -> float:
        """Bandwidth-delay product of a flow: bottleneck capacity times propagation RTT."""
        bottleneck = self.links[self.bottleneck_of(flow_index)]
        return units.bdp_packets(bottleneck.capacity_pps, self.propagation_rtt(flow_index))

"""TCP CUBIC fluid model (Appendix B.2, following Vardoyan et al.).

CUBIC cannot be written as a single ODE in the window size.  Instead the
model tracks two instrumental variables (Eq. 40a/40b):

* ``s_i`` — the time since the last loss event, which grows at unit rate in
  the absence of loss and is pulled back to zero when losses occur, and
* ``w_max_i`` — the window size at the moment of the last loss, which
  assimilates towards the current window under loss.

The congestion window is then given by the CUBIC window-growth function
(Eq. 41) with the standardised constants ``c = 0.4`` and ``b = 0.7``
(RFC 8312), and the sending rate again follows ``x = w / tau``.
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import Any

import numpy as np

from .flow import FlowInputs, FlowInputsBatch, FlowState, FlowStateBatch, FluidCCA
from .network import Network

#: CUBIC growth constant ``c`` (RFC 8312 / Linux tcp_cubic).
CUBIC_C: float = 0.4
#: CUBIC multiplicative-decrease factor ``b`` (RFC 8312).
CUBIC_BETA: float = 0.7
#: Smallest congestion window maintained by the model, in packets.
MIN_WINDOW_PKTS: float = 1.0


def cubic_window(
    s: float | np.ndarray,
    w_max: float | np.ndarray,
    c: float = CUBIC_C,
    beta: float = CUBIC_BETA,
) -> float | np.ndarray:
    """CUBIC window-growth function ``w(s) = c (s - K)^3 + w_max`` (Eq. 41).

    ``K = (w_max * b / c)^(1/3)`` is the time at which the window returns to
    the pre-loss level ``w_max`` when growing from ``b * w_max``.  Accepts
    scalars or arrays (element-wise, for the batched model path).
    """
    if np.ndim(w_max) == 0:
        if w_max < 0:
            raise ValueError("w_max must be non-negative")
    elif np.any(np.asarray(w_max) < 0):
        raise ValueError("w_max must be non-negative")
    inflection = (w_max * beta / c) ** (1.0 / 3.0)
    return c * (s - inflection) ** 3 + w_max


class CubicFluid(FluidCCA):
    """Fluid model of TCP CUBIC."""

    name = "cubic"

    def __init__(self, initial_window_pkts: float = 10.0) -> None:
        if initial_window_pkts < MIN_WINDOW_PKTS:
            raise ValueError("initial window must be at least one packet")
        self.initial_window_pkts = initial_window_pkts

    def initial_state(
        self, flow_index: int, num_flows: int, network: Network, params: Any
    ) -> FlowState:
        state = FlowState()
        state.extra["s"] = 0.0
        state.extra["w_max"] = self.initial_window_pkts
        state.extra["cwnd"] = self.initial_window_pkts
        state.rate = 0.0
        return state

    def step(self, state: FlowState, inputs: FlowInputs) -> None:
        if not inputs.active:
            state.rate = 0.0
            return
        s = state.extra["s"]
        w_max = state.extra["w_max"]
        w = state.extra["cwnd"]
        x_delayed = inputs.rate_delayed
        p = min(1.0, max(0.0, inputs.path_loss))
        loss_rate = x_delayed * p  # losses per second observed by the sender
        # Eq. (40a): the elapsed-time variable grows at unit rate and is reset
        # towards zero at the rate at which losses arrive.
        s = max(0.0, s + inputs.dt * (1.0 - s * loss_rate))
        # Eq. (40b): the reference window assimilates to the current window
        # at the loss-arrival rate.
        w_max = max(MIN_WINDOW_PKTS, w_max + inputs.dt * (w - w_max) * loss_rate)
        w = max(MIN_WINDOW_PKTS, cubic_window(s, w_max))
        state.extra["s"] = s
        state.extra["w_max"] = w_max
        state.extra["cwnd"] = w
        state.rate = w / max(inputs.tau, 1e-9)
        self.update_inflight(state, inputs)

    def congestion_window(self, state: FlowState) -> float:
        return state.extra["cwnd"]

    # ------------------------------------------------------------------ #
    # Batched path
    # ------------------------------------------------------------------ #

    def batch_key(self) -> Hashable:
        # ``step`` reads no instance attributes, so all CUBIC flows batch
        # together regardless of their initial window.
        return ("cubic",)

    def step_all(self, batch: FlowStateBatch, inputs: FlowInputsBatch) -> None:
        extras = batch.extras
        s = extras["s"]
        w_max = extras["w_max"]
        w = extras["cwnd"]
        x_delayed = inputs.rate_delayed
        p = np.minimum(1.0, np.maximum(0.0, inputs.path_loss))
        loss_rate = x_delayed * p
        # Eq. (40a/40b) and Eq. (41), element-wise over every CUBIC flow.
        s_new = np.maximum(0.0, s + inputs.dt * (1.0 - s * loss_rate))
        w_max_new = np.maximum(
            MIN_WINDOW_PKTS, w_max + inputs.dt * (w - w_max) * loss_rate
        )
        w_new = np.maximum(MIN_WINDOW_PKTS, cubic_window(s_new, w_max_new))
        rate = w_new / np.maximum(inputs.tau, 1e-9)
        inflight = self.update_inflight_all(batch, inputs, rate)
        active = inputs.active
        if active is None:
            extras["s"] = s_new
            extras["w_max"] = w_max_new
            extras["cwnd"] = w_new
            batch.rate = rate
            batch.inflight = inflight
        else:
            extras["s"] = np.where(active, s_new, s)
            extras["w_max"] = np.where(active, w_max_new, w_max)
            extras["cwnd"] = np.where(active, w_new, w)
            batch.rate = np.where(active, rate, 0.0)
            batch.inflight = np.where(active, inflight, batch.inflight)

"""TCP Reno fluid model (Appendix B.1, following Low et al. and Misra et al.).

In congestion avoidance, Reno grows its congestion window by one segment
per acknowledged window and halves it upon loss.  The classic fluid
approximation (Eq. 39) is

    dw/dt = x(t - d) * (1 - p(t - d)) / w  -  x(t - d) * p(t - d) * w / 2

with the sending rate coupled through ``x = w / tau`` (Eq. 8).  The model
starts directly in congestion avoidance (the paper's fluid models ignore
the start-up/slow-start phase, see Insight 9) from a configurable initial
window.
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import Any

import numpy as np

from .flow import FlowInputs, FlowInputsBatch, FlowState, FlowStateBatch, FluidCCA
from .network import Network

#: Smallest congestion window the fluid model maintains, in packets.  The
#: real protocol never shrinks below one segment either.
MIN_WINDOW_PKTS: float = 1.0


class RenoFluid(FluidCCA):
    """Fluid model of TCP Reno's congestion-avoidance dynamics."""

    name = "reno"

    def __init__(self, initial_window_pkts: float = 10.0) -> None:
        if initial_window_pkts < MIN_WINDOW_PKTS:
            raise ValueError("initial window must be at least one packet")
        self.initial_window_pkts = initial_window_pkts

    def initial_state(
        self, flow_index: int, num_flows: int, network: Network, params: Any
    ) -> FlowState:
        state = FlowState()
        state.extra["cwnd"] = self.initial_window_pkts
        state.rate = 0.0
        return state

    def step(self, state: FlowState, inputs: FlowInputs) -> None:
        if not inputs.active:
            state.rate = 0.0
            return
        w = state.extra["cwnd"]
        x_delayed = inputs.rate_delayed
        p = min(1.0, max(0.0, inputs.path_loss))
        # Eq. (39): additive increase of one packet per acknowledged window,
        # multiplicative decrease of half the window per lost packet.
        growth = x_delayed * (1.0 - p) / max(w, MIN_WINDOW_PKTS)
        decrease = x_delayed * p * w / 2.0
        w = max(MIN_WINDOW_PKTS, w + inputs.dt * (growth - decrease))
        state.extra["cwnd"] = w
        state.rate = w / max(inputs.tau, 1e-9)
        self.update_inflight(state, inputs)

    def congestion_window(self, state: FlowState) -> float:
        return state.extra["cwnd"]

    # ------------------------------------------------------------------ #
    # Batched path
    # ------------------------------------------------------------------ #

    def batch_key(self) -> Hashable:
        # ``step`` reads no instance attributes, so all Reno flows batch
        # together regardless of their initial window.
        return ("reno",)

    def step_all(self, batch: FlowStateBatch, inputs: FlowInputsBatch) -> None:
        w = batch.extras["cwnd"]
        x_delayed = inputs.rate_delayed
        p = np.minimum(1.0, np.maximum(0.0, inputs.path_loss))
        # Eq. (39), element-wise over every Reno flow at once.
        growth = x_delayed * (1.0 - p) / np.maximum(w, MIN_WINDOW_PKTS)
        decrease = x_delayed * p * w / 2.0
        w_new = np.maximum(MIN_WINDOW_PKTS, w + inputs.dt * (growth - decrease))
        rate = w_new / np.maximum(inputs.tau, 1e-9)
        inflight = self.update_inflight_all(batch, inputs, rate)
        active = inputs.active
        if active is None:
            batch.extras["cwnd"] = w_new
            batch.rate = rate
            batch.inflight = inflight
        else:
            batch.extras["cwnd"] = np.where(active, w_new, w)
            batch.rate = np.where(active, rate, 0.0)
            batch.inflight = np.where(active, inflight, batch.inflight)
